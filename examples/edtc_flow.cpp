// The paper's worked example (§3.4), end to end.
//
// Runs the EDTC_example blueprint through the exact designer scenario
// the paper narrates — write an HDL model, simulate (bad, then good),
// synthesize into a schematic hierarchy, watch the netlister fire
// automatically, then modify the model and watch the outofdate event
// invalidate every derived view. Prints each step, the final project
// report and the audit journal.
#include <cstdio>

#include "blueprint/printer.hpp"
#include "query/report.hpp"
#include "tools/scheduler.hpp"
#include "workload/edtc.hpp"

int main() {
  using namespace damocles;

  engine::ProjectServer server("EDTC");
  server.InitializeBlueprint(workload::EdtcBlueprintText());

  // Show the effective rule set the administrator installed.
  std::printf("=== installed blueprint ===\n%s\n",
              blueprint::FormatBlueprint(server.engine().Current()).c_str());

  tools::ToolScheduler scheduler(server);
  tools::Netlister netlister(server);
  scheduler.InstallStandardScripts(netlister);

  std::printf("=== designer scenario (paper section 3.4) ===\n");
  const auto steps = workload::RunEdtcScenario(server, scheduler);
  for (size_t i = 0; i < steps.size(); ++i) {
    std::printf("%zu. %s\n     -> %s\n", i + 1,
                steps[i].description.c_str(), steps[i].detail.c_str());
  }

  std::printf("\n=== project state ===\n%s\n",
              query::FormatProjectReport(
                  query::BuildProjectReport(server.database()))
                  .c_str());

  query::ProjectQuery q(server.database());
  const auto blockers = q.DistanceToPlannedState(
      {{"uptodate", "true"}, {"sim_result", "good"}},
      {"HDL_model", "schematic", "netlist"});
  std::printf("%s\n", query::FormatBlockers(blockers).c_str());

  std::printf("=== audit journal ===\n%s",
              server.engine().journal().Dump().c_str());

  const auto& stats = server.engine().stats();
  std::printf("\nengine: %zu events, %zu propagated deliveries, "
              "%zu property writes, netlister ran %zu time(s)\n",
              stats.events_processed, stats.propagated_deliveries,
              stats.property_writes, scheduler.automatic_runs());
  return 0;
}
