// A durable wire-protocol server: a stdin/stdout session loop over a
// WAL-backed project server, built to be killed.
//
//   example_durable_server <wal-dir> [fsync-policy] [num-shards]
//                          [--fail-fsync-after N]
//
// Every structural operation is logged to the WAL before the response
// is printed. The demo defaults to fsync=batch — each acked command is
// flushed and fsynced at its drain boundary — so `kill -9` at any
// point loses at most the operation in flight. (Pass `none` for the
// best-effort tier: appends stay buffered in the process, and a kill
// loses the buffered tail.) Restarting on the same directory recovers
// (newest valid checkpoint + operation replay) and resumes accepting
// wire sessions; the first line printed is the `wal-status` report
// showing what was recovered. Try:
//
//   $ example_durable_server /tmp/demo.wal &
//   $ ... drive it, kill -9 it ...
//   $ example_durable_server /tmp/demo.wal     # picks up where it died
//
// With --fail-fsync-after N (failpoint builds only) the Nth and every
// later fsync fails with an injected EIO until the operator heals the
// server — a self-contained degraded-mode demo:
//
//   $ example_durable_server /tmp/demo.wal every_record 1 --fail-fsync-after 3
//   > checkin CPU layout          # a few of these...
//   degraded: server is read-only (...); heal with wal-reopen
//   > health                      # reads still answer
//   > failpoint clear wal.fsync   # the "disk" comes back
//   > wal-reopen                  # heal: verify tail, checkpoint, resume
//   > checkin CPU layout          # writes flow again
#include <cstdio>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "engine/wire_session.hpp"
#include "events/wal.hpp"
#include "workload/edtc.hpp"

int main(int argc, char** argv) {
  using namespace damocles;

  long fail_fsync_after = -1;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fail-fsync-after") {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "example_durable_server: --fail-fsync-after needs N\n");
        return 2;
      }
      fail_fsync_after = std::stol(argv[++i]);
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.empty() || positional.size() > 3) {
    std::fprintf(stderr,
                 "usage: example_durable_server <wal-dir> "
                 "[none|batch|every_record] [num-shards] "
                 "[--fail-fsync-after N]\n");
    return 2;
  }

  engine::ServerOptions options;
  options.wal_dir = positional[0];
  options.wal_fsync = events::FsyncPolicy::kBatch;
  try {
    if (positional.size() >= 2) {
      options.wal_fsync = events::ParseFsyncPolicy(positional[1]);
    }
    if (positional.size() >= 3) {
      options.num_shards = static_cast<uint32_t>(std::stoul(positional[2]));
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "example_durable_server: %s\n", error.what());
    return 2;
  }

  if (fail_fsync_after >= 0) {
    // Skip the first N fsyncs, then fail every one (injected EIO)
    // until `failpoint clear wal.fsync` — the degraded-mode demo.
    try {
      common::Failpoints::Instance().Configure(
          "wal.fsync", "errno:EIO,skip=" + std::to_string(fail_fsync_after));
      std::fprintf(stdout, "failpoint: wal.fsync fails after %ld fsync(s)\n",
                   fail_fsync_after);
    } catch (const Error& error) {
      std::fprintf(stderr, "example_durable_server: %s\n", error.what());
      return 2;
    }
  }

  engine::ProjectServer server("durable", options);
  // A fresh directory starts from the EDTC blueprint; a recovered one
  // already replayed its own blueprint install.
  if (!server.engine().HasBlueprint()) {
    server.InitializeBlueprint(workload::EdtcBlueprintText());
  }

  engine::WireSession session(server, "operator");
  std::fputs(session.HandleLine("wal-status").c_str(), stdout);
  std::fflush(stdout);

  char line[4096];
  while (std::fgets(line, sizeof line, stdin) != nullptr) {
    std::string text(line);
    while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
      text.pop_back();
    }
    if (text == "quit" || text == "exit") break;
    std::fputs(session.HandleLine(text).c_str(), stdout);
    std::fflush(stdout);
  }
  return 0;
}
