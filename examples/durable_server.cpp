// A durable wire-protocol server: a stdin/stdout session loop over a
// WAL-backed project server, built to be killed.
//
//   example_durable_server <wal-dir> [fsync-policy] [num-shards]
//
// Every structural operation is logged to the WAL before the response
// is printed. The demo defaults to fsync=batch — each acked command is
// flushed and fsynced at its drain boundary — so `kill -9` at any
// point loses at most the operation in flight. (Pass `none` for the
// best-effort tier: appends stay buffered in the process, and a kill
// loses the buffered tail.) Restarting on the same directory recovers
// (newest valid checkpoint + operation replay) and resumes accepting
// wire sessions; the first line printed is the `wal-status` report
// showing what was recovered. Try:
//
//   $ example_durable_server /tmp/demo.wal &
//   $ ... drive it, kill -9 it ...
//   $ example_durable_server /tmp/demo.wal     # picks up where it died
#include <cstdio>
#include <string>

#include "common/error.hpp"
#include "engine/wire_session.hpp"
#include "events/wal.hpp"
#include "workload/edtc.hpp"

int main(int argc, char** argv) {
  using namespace damocles;

  if (argc < 2 || argc > 4) {
    std::fprintf(stderr,
                 "usage: example_durable_server <wal-dir> "
                 "[none|batch|every_record] [num-shards]\n");
    return 2;
  }

  engine::ServerOptions options;
  options.wal_dir = argv[1];
  options.wal_fsync = events::FsyncPolicy::kBatch;
  try {
    if (argc >= 3) options.wal_fsync = events::ParseFsyncPolicy(argv[2]);
    if (argc >= 4) options.num_shards =
        static_cast<uint32_t>(std::stoul(argv[3]));
  } catch (const std::exception& error) {
    std::fprintf(stderr, "example_durable_server: %s\n", error.what());
    return 2;
  }

  engine::ProjectServer server("durable", options);
  // A fresh directory starts from the EDTC blueprint; a recovered one
  // already replayed its own blueprint install.
  if (!server.engine().HasBlueprint()) {
    server.InitializeBlueprint(workload::EdtcBlueprintText());
  }

  engine::WireSession session(server, "operator");
  std::fputs(session.HandleLine("wal-status").c_str(), stdout);
  std::fflush(stdout);

  char line[4096];
  while (std::fgets(line, sizeof line, stdin) != nullptr) {
    std::string text(line);
    while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
      text.pop_back();
    }
    if (text == "quit" || text == "exit") break;
    std::fputs(session.HandleLine(text).c_str(), stdout);
    std::fflush(stdout);
  }
  return 0;
}
