// Project policies: permission gating, automatic tool invocation and
// designer notifications.
//
// Paper §3.3: wrapper programs request permission based on the state of
// their input data, and exec rules give "partially or fully automated
// design flows which reduce both the risk of errors and the design
// cycle time".  This example walks the full tool suite through those
// policies and prints every enforcement decision.
#include <cstdio>

#include "common/error.hpp"
#include "policy/policy_engine.hpp"
#include "query/report.hpp"
#include "tools/scheduler.hpp"
#include "workload/edtc.hpp"

int main() {
  using namespace damocles;

  engine::ProjectServer server("policies");
  server.InitializeBlueprint(workload::EdtcBlueprintText());

  // Designer notifications surface on stdout (a real deployment would
  // send mail; the sink is pluggable).
  server.engine().SetNotificationSink([](const engine::Notification& note) {
    std::printf("  [notify] %s\n", note.message.c_str());
  });

  tools::ToolScheduler scheduler(server);
  tools::Netlister netlister(server);
  scheduler.InstallStandardScripts(netlister);

  tools::HdlEditor editor(server);
  tools::HdlSimulator hdl_sim(server, tools::VerdictModel{0.0});
  tools::SynthesisTool synthesis(server);
  tools::NetlistSimulator nl_sim(server, tools::VerdictModel{0.0});
  tools::LayoutEditor layout(server);
  tools::DrcTool drc(server, tools::VerdictModel{0.0});
  tools::LvsTool lvs(server, tools::VerdictModel{0.0});

  // Policy 1: synthesis refuses to run on an unvalidated model.
  editor.Edit("CPU", "hdl model rev A", "alice");
  std::printf("synthesis before simulation: %s\n",
              synthesis.Synthesize("CPU", {"REG"}, "bob").has_value()
                  ? "RAN (policy violated!)"
                  : "DENIED (sim_result != good)");

  // Simulate, then synthesis is allowed; the netlister runs by itself.
  hdl_sim.Simulate("CPU", "alice");
  const auto top = synthesis.Synthesize("CPU", {"REG"}, "bob");
  std::printf("synthesis after good simulation: %s\n",
              top.has_value() ? "GRANTED" : "DENIED");
  std::printf("netlister automatic runs so far: %zu\n",
              scheduler.automatic_runs());

  // Policy 2: the netlist simulator requires an up-to-date netlist.
  std::printf("netlist sim on fresh netlist: '%s'\n",
              nl_sim.Simulate("CPU", "bob").c_str());
  editor.Edit("CPU", "hdl model rev B", "alice");  // Invalidates all.
  const std::string denied_verdict = nl_sim.Simulate("CPU", "bob");
  std::printf("netlist sim after HDL edit: '%s' (%zu denial(s))\n",
              denied_verdict.c_str(), nl_sim.denials());

  // Recover: revalidate the model, re-synthesize (netlister fires
  // again), then run the back end.
  hdl_sim.Simulate("CPU", "alice");
  synthesis.Synthesize("CPU", {"REG"}, "bob");
  std::printf("netlist sim after re-synthesis: '%s'\n",
              nl_sim.Simulate("CPU", "bob").c_str());
  layout.Draw("CPU", "carol");
  std::printf("drc: '%s', lvs: '%s'\n", drc.Check("CPU", "carol").c_str(),
              lvs.Check("CPU", "carol").c_str());

  // Policy 3: the workspace enforces exclusive checkouts.
  server.CheckOut("CPU", "HDL_model", "alice");
  try {
    server.CheckOut("CPU", "HDL_model", "bob");
  } catch (const PermissionError& error) {
    std::printf("checkout policy: %s\n", error.what());
  }
  server.CheckIn("CPU", "HDL_model", "release", "alice");  // Drop the lock.

  // Policy 4: administrator-written project policies (the paper's
  // title feature): group-based and phase-based restrictions evaluated
  // before any designer operation.
  policy::PolicyEngine project_policy = policy::ParsePolicyText(R"(
      group cad_admins dora
      allow checkin user=@cad_admins view=synth_lib
      deny checkin view=synth_lib reason="only CAD admins install libraries"
      deny checkin view=layout phase=signoff reason="layout frozen in signoff"
  )");
  server.SetPolicy(&project_policy);

  try {
    server.CheckIn("CPU", "synth_lib", "rogue lib", "bob");
  } catch (const PermissionError& error) {
    std::printf("library policy: %s\n", error.what());
  }
  server.CheckIn("CPU", "synth_lib", "stdcells v2", "dora");
  std::printf("library policy: dora (cad_admins) installed synth_lib v%d\n",
              server.workspace().LatestVersion("CPU", "synth_lib"));

  server.SetProjectPhase("signoff");
  try {
    server.CheckIn("CPU", "layout", "late edit", "carol");
  } catch (const PermissionError& error) {
    std::printf("phase policy: %s\n", error.what());
  }
  server.SetProjectPhase("");
  server.SetPolicy(nullptr);

  std::printf("\n=== tool ledger ===\n");
  for (const auto& run : scheduler.ledger()) {
    std::printf("  %s on %s (event %s) -> exit %d\n", run.script.c_str(),
                metadb::FormatOid(run.trigger).c_str(), run.event.c_str(),
                run.exit_status);
  }

  std::printf("\n=== final state ===\n%s",
              query::FormatProjectReport(
                  query::BuildProjectReport(server.database()))
                  .c_str());
  return 0;
}
