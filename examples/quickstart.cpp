// Quickstart: track a two-view design with the project BluePrint.
//
// Demonstrates the minimal public API surface:
//   1. stand up a ProjectServer,
//   2. initialize a blueprint from rule-file text,
//   3. check design data in (the observer registers it automatically),
//   4. post a design event the way a wrapper script would,
//   5. query the project state.
#include <cstdio>

#include "engine/project_server.hpp"
#include "query/report.hpp"

int main() {
  using namespace damocles;

  // 1. The project server bundles the meta-database, the run-time
  //    engine, the simulated clock and a workspace.
  engine::ProjectServer server("quickstart");

  // 2. A tiny blueprint: an RTL view feeding a netlist view. Checking
  //    in a new RTL version invalidates the netlist (outofdate travels
  //    down the derive link); a sim event records its verdict.
  server.InitializeBlueprint(R"(
      blueprint quickstart
      view default
        property uptodate default true
        when ckin do uptodate = true; post outofdate down done
        when outofdate do uptodate = false done
      endview
      view rtl
        property sim default not_run
        when sim_done do sim = $arg done
      endview
      view netlist
        link_from rtl move propagates outofdate type derive_from
        let state = ($uptodate == true)
      endview
      endblueprint)");

  // 3. Design activity: check in the RTL, then the netlist derived
  //    from it, and register the derivation link.
  const metadb::Oid rtl = server.CheckIn("soc", "rtl", "module soc; ...",
                                         "alice");
  const metadb::Oid netlist =
      server.CheckIn("soc", "netlist", "netlist of soc", "bob");
  server.RegisterLink(metadb::LinkKind::kDerive, rtl, netlist);

  // 4. A wrapper program reports a simulation result over the wire
  //    protocol (paper §3.1).
  server.SubmitWireLine("postEvent sim_done up soc,rtl,1 \"good\"", "alice");

  // 5. Modify the RTL: the new version's ckin posts outofdate down and
  //    the netlist becomes stale.
  server.AdvanceClock(3600);
  server.CheckIn("soc", "rtl", "module soc; // rev2", "alice");

  std::printf("%s\n", query::FormatProjectReport(
                          query::BuildProjectReport(server.database()))
                          .c_str());

  query::ProjectQuery q(server.database());
  for (const auto& match : q.OutOfDate()) {
    std::printf("needs regeneration: %s\n",
                metadb::FormatOid(match.oid).c_str());
  }
  return 0;
}
