// Project administration console: tasks, visualization and the wire
// command session.
//
// Extends the paper with its own future-work list (conclusion section):
// design tasks as a higher-level description of design activities, and
// visualization of the design state relative to its flow. The console
// drives the whole project through the textual command interface a
// remote client would use.
#include <cstdio>

#include "engine/wire_session.hpp"
#include "tasks/task_graph.hpp"
#include "tools/scheduler.hpp"
#include "viz/flow_viz.hpp"
#include "workload/edtc.hpp"

int main() {
  using namespace damocles;

  engine::ProjectServer server("console");
  server.InitializeBlueprint(workload::EdtcBlueprintText());
  tools::ToolScheduler scheduler(server);
  tools::Netlister netlister(server);
  scheduler.InstallStandardScripts(netlister);

  // --- The flow as the administrator sees it -----------------------------
  std::printf("%s\n", viz::RenderFlowDiagram(server.engine().Current())
                          .c_str());

  // --- Milestones: the tape-out task graph -------------------------------
  tasks::TaskGraph milestones;
  milestones.AddTask({"model_validated",
                      "HDL model passes simulation",
                      {{"CPU", "HDL_model", "sim_result", "good"}},
                      {}});
  milestones.AddTask({"front_end_current",
                      "all schematics up to date",
                      {{"", "schematic", "uptodate", "true"}},
                      {"model_validated"}});
  milestones.AddTask({"netlist_signoff",
                      "netlist simulated clean",
                      {{"CPU", "netlist", "sim_result", "good"}},
                      {"front_end_current"}});
  milestones.AddTask({"layout_signoff",
                      "DRC clean and LVS equivalent",
                      {{"CPU", "layout", "drc_result", "good"},
                       {"CPU", "layout", "lvs_result", "is_equiv"}},
                      {"netlist_signoff"}});

  const auto show_tasks = [&](const char* when) {
    std::printf("=== milestones %s (progress %.0f%%) ===\n%s\n", when,
                milestones.Progress(server.database()) * 100.0,
                tasks::FormatTaskReport(
                    milestones.EvaluateAll(server.database()))
                    .c_str());
  };
  show_tasks("at project start");

  // --- Designers work through the wire console ---------------------------
  engine::WireSession alice(server, "alice");
  engine::WireSession bob(server, "bob");
  const auto run = [](engine::WireSession& who, const char* line) {
    std::printf("%s> %s\n", who.user().c_str(), line);
    std::printf("%s", who.HandleLine(line).c_str());
  };

  run(alice, "checkin CPU HDL_model \"module cpu; endmodule\"");
  run(alice, "postEvent hdl_sim up CPU,HDL_model,1 \"good\"");
  std::printf("\n");
  show_tasks("after model validation");

  // Synthesis and back end run as tools (outside the console).
  tools::SynthesisTool synthesis(server);
  tools::LayoutEditor layout(server);
  tools::DrcTool drc(server, tools::VerdictModel{0.0});
  tools::LvsTool lvs(server, tools::VerdictModel{0.0});
  synthesis.Synthesize("CPU", {"REG"}, "bob");
  run(bob, "postEvent nl_sim up CPU,netlist,1 \"good\"");
  layout.Draw("CPU", "bob");
  drc.Check("CPU", "bob");
  lvs.Check("CPU", "bob");
  std::printf("\n");
  show_tasks("after back-end sign-off");

  run(bob, "blockers uptodate=true sim_result=good");
  run(bob, "snapshot signoff_candidate");
  run(alice, "validate");

  // --- The state relative to the flow ------------------------------------
  std::printf("\n%s", viz::RenderBlockState(server.database(), "CPU").c_str());

  std::printf("\n=== Graphviz export (render with: dot -Tsvg) ===\n%s",
              viz::ExportDot(server.database()).c_str());
  return 0;
}
