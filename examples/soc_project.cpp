// A multi-phase SoC project: loosened early phase, strict late phase.
//
// Paper §3.2: "Different BluePrints can be defined ... for each phase of
// a project ... early in the design cycle, when the data has not yet
// been validated and changes occur very often, the BluePrint can be
// 'loosened' thereby limiting change propagation."
//
// This example generates a synthetic SoC (a block hierarchy plus a
// five-view flow per subsystem), runs a stochastic design session under
// the loose blueprint, re-initializes with the strict rules for the
// validation phase, and shows how the same activities now fan out into
// invalidations. Configurations snapshot the project between phases.
#include <cstdio>

#include "metadb/config_builder.hpp"
#include "query/report.hpp"
#include "workload/generators.hpp"

int main() {
  using namespace damocles;

  workload::FlowSpec flow;
  flow.n_views = 5;

  workload::FlowSpec loose = flow;
  loose.propagation_cutoff = 0;  // No link propagates outofdate.

  engine::ProjectServer server("soc");
  server.InitializeBlueprint(workload::MakeFlowBlueprint(loose, "soc_loose"));

  // The SoC: four subsystems, each with its own five-view flow.
  const std::vector<std::string> subsystems = {"cpu", "dsp", "noc", "memctl"};
  for (const std::string& block : subsystems) {
    workload::InstantiateFlow(server, loose, block);
  }
  // Plus a schematic-style hierarchy under the golden view of the cpu.
  workload::HierarchySpec hier;
  hier.depth = 2;
  hier.fanout = 3;
  hier.view = "view_0";
  hier.root_block = "cpu_core";
  const auto hierarchy = workload::BuildHierarchy(server, hier);
  std::printf("generated SoC: %zu subsystems, %zu hierarchy blocks\n",
              subsystems.size(), hierarchy.blocks.size());

  // --- Phase 1: exploration under the loosened blueprint -------------
  workload::TraceSpec churn;
  churn.n_actions = 400;
  churn.seed = 7;
  const auto phase1 = workload::RunDesignSession(server, loose, subsystems,
                                                 churn);
  query::ProjectQuery q(server.database());
  std::printf("\nphase 1 (loose): %zu checkins, %zu result events, "
              "%zu regenerations -> %zu out-of-date views\n",
              phase1.checkins, phase1.result_events, phase1.installs,
              q.OutOfDate().size());
  std::printf("propagated deliveries so far: %zu\n",
              server.engine().stats().propagated_deliveries);

  // Snapshot the exploration state before switching phases.
  auto& db = server.database();
  db.SaveConfiguration(metadb::BuildFullCheckpoint(
      db, "end_of_exploration", server.clock().NowSeconds()));

  // --- Phase 2: validation under the strict blueprint -----------------
  server.InitializeBlueprint(workload::MakeFlowBlueprint(flow, "soc_strict"));
  workload::TraceSpec validation;
  validation.n_actions = 400;
  validation.seed = 8;
  const auto phase2 = workload::RunDesignSession(server, flow, subsystems,
                                                 validation);
  std::printf("\nphase 2 (strict): %zu checkins, %zu result events, "
              "%zu regenerations -> %zu out-of-date views\n",
              phase2.checkins, phase2.result_events, phase2.installs,
              q.OutOfDate().size());
  std::printf("propagated deliveries total: %zu (max wave %zu OIDs)\n",
              server.engine().stats().propagated_deliveries,
              server.engine().stats().max_wave_extent);

  db.SaveConfiguration(metadb::BuildFullCheckpoint(
      db, "end_of_validation", server.clock().NowSeconds()));

  // Diff the two phase snapshots: how many database addresses appeared?
  const auto& before =
      db.GetConfiguration(*db.FindConfiguration("end_of_exploration"));
  const auto& after =
      db.GetConfiguration(*db.FindConfiguration("end_of_validation"));
  std::printf("\nsnapshot diff: %zu new/changed addresses "
              "(%zu -> %zu objects tracked)\n",
              metadb::ConfigurationDiff(before, after).size(),
              before.oids.size(), after.oids.size());

  std::printf("\n=== final project report (latest versions) ===\n%s",
              query::FormatProjectReport(
                  query::BuildProjectReport(server.database()))
                  .c_str());
  return 0;
}
