// Claim C1 — "light weight ... non obstructive" (paper §1, §4).
//
// Quantifies tracking overhead per design activity for three regimes:
//   observer   — the DAMOCLES/BluePrint engine (events after the fact),
//   activity   — NELSIS-style pre-approval of every action,
//   polling    — cron-style repository scans.
// Series: tracking operations and wall time per 1000 design actions,
// plus the polling tracker's detection lag (the observer's is zero).
#include "bench_util.hpp"

#include <chrono>

#include "baseline/activity_driven.hpp"
#include "baseline/polling.hpp"

namespace {

using namespace damocles;

constexpr int kViews = 5;

double SecondsSince(
    const std::chrono::high_resolution_clock::time_point& start) {
  return std::chrono::duration<double>(
             std::chrono::high_resolution_clock::now() - start)
      .count();
}

/// Observer regime: run a seeded design session through the engine.
void BM_ObserverPerAction(benchmark::State& state) {
  auto project = benchutil::MakeFlowProject(kViews, 4);
  workload::TraceSpec trace;
  trace.n_actions = 64;
  trace.seed = 11;
  for (auto _ : state) {
    workload::RunDesignSession(*project.server, project.flow, project.blocks,
                               trace);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(trace.n_actions));
}
BENCHMARK(BM_ObserverPerAction);

/// Activity-driven regime: the same action count through Begin/End.
void BM_ActivityDrivenPerAction(benchmark::State& state) {
  std::vector<baseline::ActivityDef> flow;
  for (int i = 1; i < kViews; ++i) {
    flow.push_back({"gen" + std::to_string(i),
                    {"view_" + std::to_string(i - 1)},
                    {"view_" + std::to_string(i)}});
  }
  baseline::ActivityDrivenManager manager(flow);
  manager.SeedData("blk", "view_0");
  int cursor = 1;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      const std::string activity = "gen" + std::to_string(cursor);
      if (auto ticket = manager.BeginActivity(activity, "blk")) {
        manager.EndActivity(*ticket, true);
      }
      cursor = cursor % (kViews - 1) + 1;
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ActivityDrivenPerAction);

/// Polling regime: scans of a realistic repository.
void BM_PollingScan(benchmark::State& state) {
  auto project = benchutil::MakeFlowProject(kViews, 8);
  baseline::PollingTracker tracker(project.server->workspace());
  int64_t now = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracker.Poll(now++));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["files"] =
      static_cast<double>(project.server->workspace().FileCount());
}
BENCHMARK(BM_PollingScan);

void PrintSeries() {
  benchutil::PrintHeader(
      "Claim C1: non-obstructive, light-weight tracking",
      "paper sections 1 and 4",
      "Tracking cost per design action: observer engine vs activity-driven "
      "manager vs polling.");

  constexpr size_t kActions = 1000;

  // Observer.
  auto project = benchutil::MakeFlowProject(kViews, 4);
  workload::TraceSpec trace;
  trace.n_actions = kActions;
  trace.seed = 11;
  auto start = std::chrono::high_resolution_clock::now();
  workload::RunDesignSession(*project.server, project.flow, project.blocks,
                             trace);
  const double observer_seconds = SecondsSince(start);
  const auto& es = project.server->engine().stats();
  const size_t observer_ops = es.assign_actions + es.reevaluations +
                              es.propagated_deliveries + es.post_actions;

  // Activity-driven: same number of designer actions.
  std::vector<baseline::ActivityDef> flow;
  for (int i = 1; i < kViews; ++i) {
    flow.push_back({"gen" + std::to_string(i),
                    {"view_" + std::to_string(i - 1)},
                    {"view_" + std::to_string(i)}});
  }
  baseline::ActivityDrivenManager manager(flow);
  for (const auto& block : project.blocks) manager.SeedData(block, "view_0");
  Rng rng(11);
  start = std::chrono::high_resolution_clock::now();
  size_t denials_retries = 0;
  for (size_t i = 0; i < kActions; ++i) {
    const std::string block = project.blocks[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(project.blocks.size()) - 1))];
    const std::string activity =
        "gen" + std::to_string(rng.UniformInt(1, kViews - 1));
    if (auto ticket = manager.BeginActivity(activity, block)) {
      manager.EndActivity(*ticket, true);
    } else {
      ++denials_retries;
    }
  }
  const double activity_seconds = SecondsSince(start);
  const auto& as = manager.stats();
  const size_t activity_ops =
      as.state_checks + as.locks_taken + as.state_updates;

  // Polling: the same number of design actions interleaved with a poll
  // every 10 actions (design activity advances 600 simulated seconds per
  // action, so the poll interval is 6000s).
  metadb::Workspace polled_workspace("polled");
  baseline::PollingTracker tracker(polled_workspace);
  Rng polling_rng(11);
  start = std::chrono::high_resolution_clock::now();
  int64_t now = 0;
  for (size_t i = 0; i < kActions; ++i) {
    now += 600;
    const std::string block = project.blocks[static_cast<size_t>(
        polling_rng.UniformInt(
            0, static_cast<int64_t>(project.blocks.size()) - 1))];
    polled_workspace.CheckIn(block, "view_0", "edit", "bench", now);
    if ((i + 1) % 10 == 0) tracker.Poll(now);
  }
  const double polling_seconds = SecondsSince(start);

  std::printf("%-16s %-22s %-18s %-24s\n", "regime",
              "tracking ops/action", "us per action", "designer obstruction");
  std::printf("%-16s %-22.2f %-18.2f %-24s\n", "observer",
              static_cast<double>(observer_ops) / kActions,
              observer_seconds * 1e6 / kActions, "none (after the fact)");
  std::printf("%-16s %-22.2f %-18.2f %zu denials blocked work\n",
              "activity-driven",
              static_cast<double>(activity_ops) / kActions,
              activity_seconds * 1e6 / kActions, denials_retries);
  std::printf("%-16s %-22.2f %-18.2f avg detection lag %.0fs\n", "polling",
              static_cast<double>(tracker.stats().files_scanned) / kActions,
              polling_seconds * 1e6 / kActions,
              tracker.stats().AverageLagSeconds());
  std::printf(
      "\nExpected shape (paper): the observer tracks without pre-approving "
      "or blocking any\naction; the activity-driven manager obstructs and "
      "the polling tracker detects late.\n\n");

  // Machine-readable trajectory: ns per design action and actions/sec
  // per tracking regime (deliveries == designer actions tracked here).
  const auto add = [&](const char* name, double seconds) {
    benchutil::AddBenchJson(name, seconds * 1e9 / kActions,
                            seconds > 0.0 ? kActions / seconds : 0.0);
  };
  add("overhead_observer", observer_seconds);
  add("overhead_activity_driven", activity_seconds);
  add("overhead_polling", polling_seconds);
}

}  // namespace

int main(int argc, char** argv) {
  PrintSeries();
  damocles::benchutil::RunBenchmarks(argc, argv);
  damocles::benchutil::WriteBenchJson();
  return 0;
}
