// Figure 1 — BluePrint architecture: design events -> FIFO queue ->
// engine -> meta-database.
//
// The figure is an architecture diagram; the quantity it implies is the
// cost of the event path. We measure (a) end-to-end event processing
// throughput through the full pipeline (wire parse -> queue -> rules ->
// continuous assignments -> propagation) as a function of meta-database
// size, and (b) raw queue operations, confirming the queue itself is
// never the bottleneck.
#include "bench_util.hpp"

#include "events/wire.hpp"

namespace {

using namespace damocles;

/// Full pipeline: parse a wire line, queue it, process it (the EDTC
/// hdl_sim rule: one assign + continuous reevaluation, no propagation).
void BM_EventPipeline_RuleOnly(benchmark::State& state) {
  auto server = benchutil::MakeEdtcServer();
  const int n_blocks = static_cast<int>(state.range(0));
  for (int i = 0; i < n_blocks; ++i) {
    server->CheckIn("blk" + std::to_string(i), "HDL_model", "m", "bench");
  }
  const std::string line =
      "postEvent hdl_sim up blk0,HDL_model,1 \"good\"";
  for (auto _ : state) {
    server->SubmitWireLine(line, "bench");
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["db_objects"] =
      static_cast<double>(server->database().Stats().live_objects);
}
BENCHMARK(BM_EventPipeline_RuleOnly)->Arg(10)->Arg(100)->Arg(1000);

/// Full pipeline including propagation: ckin on the golden view of a
/// flow chain fans outofdate across the whole chain.
void BM_EventPipeline_WithPropagation(benchmark::State& state) {
  const int chain = static_cast<int>(state.range(0));
  auto project = benchutil::MakeFlowProject(chain, /*n_blocks=*/1);
  for (auto _ : state) {
    project.server->CheckIn("blk0", "view_0", "edit", "bench");
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["wave_extent"] = static_cast<double>(chain);
}
BENCHMARK(BM_EventPipeline_WithPropagation)->Arg(2)->Arg(8)->Arg(32);

/// Queue mechanics alone.
void BM_QueuePushPop(benchmark::State& state) {
  events::EventQueue queue;
  events::EventMessage event;
  event.name = "ckin";
  event.target = metadb::Oid{"blk", "view", 1};
  for (auto _ : state) {
    queue.Push(event);
    benchmark::DoNotOptimize(queue.Pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueuePushPop);

/// Wire codec alone (the tool-integration boundary).
void BM_WireCodec(benchmark::State& state) {
  const std::string line =
      "postEvent ckin up reg,verilog,4 \"logic sim passed\"";
  for (auto _ : state) {
    benchmark::DoNotOptimize(events::ParseWireEvent(line));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WireCodec);

void PrintSeries() {
  benchutil::PrintHeader(
      "Figure 1: BluePrint architecture", "paper fig. 1",
      "Events flow designer -> wire protocol -> FIFO queue -> run-time "
      "engine -> meta-data.\nSeries: queue depth high-water mark and "
      "per-event work for a burst of design activity.");

  std::printf("%-12s %-14s %-16s %-18s %-14s\n", "burst", "events",
              "queue high-water", "propagated-deliv.", "prop-writes");
  for (const size_t burst : {10u, 100u, 1000u}) {
    auto project = benchutil::MakeFlowProject(5, 4);
    auto& engine = project.server->engine();
    // Batch intake: queue the whole burst, then drain — the shape that
    // exercises the FIFO (interactive mode drains after every event).
    for (size_t i = 0; i < burst; ++i) {
      events::EventMessage event;
      event.name = "res0";
      event.direction = events::Direction::kUp;
      event.target = metadb::Oid{
          project.blocks[i % project.blocks.size()],
          "view_" + std::to_string(i % 5), 1};
      event.user = "bench";
      engine.PostEvent(event);
    }
    engine.ProcessAll();
    std::printf("%-12zu %-14zu %-16zu %-18zu %-14zu\n", burst,
                engine.stats().events_processed,
                engine.queue().Stats().high_water_mark,
                engine.stats().propagated_deliveries,
                engine.stats().property_writes);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintSeries();
  damocles::benchutil::RunBenchmarks(argc, argv);
  return 0;
}
