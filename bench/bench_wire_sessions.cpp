// Multi-session wire throughput over the session mux.
//
// The paper's tracking system serves a whole design team concurrently;
// this bench quantifies what the epoch-versioned snapshot read path
// buys: N threaded WireSessions issue a mixed 90/10 read/write stream
// through a SessionMux — reads run lock-free on pinned published
// snapshots, writes are serialized through the bounded mutation queue
// (and, in the sharded configurations, the sharded intake rings).
// Multi-session read throughput exceeding the single-session baseline
// is the claim CI's Release guard checks.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "engine/session_mux.hpp"

namespace {

using damocles::engine::ProjectServer;
using damocles::engine::ServerOptions;
using damocles::engine::SessionMux;

struct MuxRunResult {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t busy = 0;
  double seconds = 0.0;
};

/// Runs `sessions` threads of 90% reads / 10% writes against one mux.
MuxRunResult RunMixedSessions(ProjectServer& server, int sessions,
                              int ops_per_session, int n_blocks) {
  SessionMux mux(server);
  std::atomic<bool> go{false};
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> writes{0};
  std::atomic<uint64_t> busy{0};
  std::vector<std::thread> threads;
  threads.reserve(sessions);
  for (int s = 0; s < sessions; ++s) {
    threads.emplace_back([&, s] {
      auto session = mux.Connect("designer" + std::to_string(s));
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      uint64_t my_reads = 0;
      uint64_t my_writes = 0;
      uint64_t my_busy = 0;
      for (int i = 0; i < ops_per_session; ++i) {
        const int block = (s * 7919 + i) % n_blocks;
        if (i % 10 == 9) {
          const std::string line = "postEvent ckin up blk" +
                                   std::to_string(block) + ",view_0,1";
          std::string response = session->Execute(line);
          while (response.rfind("busy:", 0) == 0) {
            ++my_busy;
            std::this_thread::yield();
            response = session->Execute(line);
          }
          ++my_writes;
        } else if (i % 10 == 4) {
          benchmark::DoNotOptimize(session->Execute("query outofdate"));
          ++my_reads;
        } else {
          benchmark::DoNotOptimize(session->Execute(
              "query block blk" + std::to_string(block)));
          ++my_reads;
        }
      }
      reads.fetch_add(my_reads);
      writes.fetch_add(my_writes);
      busy.fetch_add(my_busy);
    });
  }

  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;

  MuxRunResult result;
  result.reads = reads.load();
  result.writes = writes.load();
  result.busy = busy.load();
  result.seconds = std::chrono::duration<double>(elapsed).count();
  return result;
}

void PrintSessionSeries() {
  damocles::benchutil::PrintHeader(
      "Multiplexed wire sessions", "paper §1: designers query while waves run",
      "sessions x shards, mixed 90/10 read/write; reads pin published "
      "snapshots");

  const int n_blocks = damocles::benchutil::SeriesScale(16, 4);
  const int ops = damocles::benchutil::SeriesScale(4000, 120);
  const struct {
    int sessions;
    uint32_t shards;
  } combos[] = {{1, 1}, {2, 1}, {4, 1}, {8, 1}, {4, 4}, {8, 4}};

  std::printf("%-10s %-8s %-12s %-16s %-14s %-8s\n", "sessions", "shards",
              "reads", "reads/sec", "ns/read", "busy");

  for (const auto& combo : combos) {
    ServerOptions options;
    options.num_shards = combo.shards;
    ProjectServer server("bench", options);
    damocles::workload::FlowSpec flow;
    flow.n_views = 4;
    server.InitializeBlueprint(
        damocles::workload::MakeFlowBlueprint(flow, "bench"));
    for (int i = 0; i < n_blocks; ++i) {
      damocles::workload::InstantiateFlow(server, flow,
                                          "blk" + std::to_string(i));
    }

    const MuxRunResult run =
        RunMixedSessions(server, combo.sessions, ops, n_blocks);
    const double reads_per_sec =
        run.seconds > 0.0 ? static_cast<double>(run.reads) / run.seconds : 0.0;
    const double ns_per_read =
        run.reads > 0 ? run.seconds * 1e9 / static_cast<double>(run.reads)
                      : 0.0;
    damocles::benchutil::AddBenchJson(
        "wire_sessions_s" + std::to_string(combo.sessions) + "_sh" +
            std::to_string(combo.shards),
        ns_per_read, reads_per_sec);
    std::printf("%-10d %-8u %-12llu %-16.0f %-14.0f %-8llu\n", combo.sessions,
                combo.shards, static_cast<unsigned long long>(run.reads),
                reads_per_sec, ns_per_read,
                static_cast<unsigned long long>(run.busy));
  }
  std::printf(
      "\nExpected shape: snapshot reads are lock-free, so aggregate "
      "reads/sec should scale\npast the single-session baseline instead of "
      "serializing behind the writer.\n\n");
}

/// google-benchmark view of the single-session read dispatch cost.
void BM_SnapshotReadDispatch(benchmark::State& state) {
  ProjectServer server("bench");
  damocles::workload::FlowSpec flow;
  flow.n_views = 4;
  server.InitializeBlueprint(
      damocles::workload::MakeFlowBlueprint(flow, "bench"));
  damocles::workload::InstantiateFlow(server, flow, "blk0");
  server.database().PublishSnapshot();
  damocles::engine::WireSession session(server, "bench");
  session.set_snapshot_reads(true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.HandleLine("query block blk0"));
  }
}
BENCHMARK(BM_SnapshotReadDispatch);

}  // namespace

int main(int argc, char** argv) {
  PrintSessionSeries();
  damocles::benchutil::RunBenchmarks(argc, argv);
  damocles::benchutil::WriteBenchJson();
  return 0;
}
