// Claim C6 — tool scheduling "supports partially or fully automated
// design flows which reduce both the risk of errors and the design
// cycle time" (paper §3.3).
//
// Simulates N front-end iterations under two regimes:
//   automated — the EDTC exec rule regenerates the netlist on every
//               schematic check-in;
//   manual    — a designer must remember to rerun the netlister and
//               forgets with probability p; the data-state gate catches
//               the stale netlist at simulation time, costing a late
//               context switch (and, without gates, it would have been
//               a silent error).
// Series: simulated design-cycle time and stale-data incidents; the
// wall-clock cost per tracked front-end iteration feeds the
// DAMOCLES_BENCH_JSON trajectory (scheduling_automated / _manual_p25).
#include "bench_util.hpp"

#include <chrono>

#include "tools/scheduler.hpp"

namespace {

using namespace damocles;

// Simulated durations (seconds).
constexpr int64_t kEdit = 3600;
constexpr int64_t kSynthesis = 1800;
constexpr int64_t kNetlist = 600;
constexpr int64_t kSim = 1200;
constexpr int64_t kLateContextSwitch = 2700;  // Cost of a caught staleness.

struct Outcome {
  int64_t cycle_seconds = 0;
  size_t stale_incidents = 0;  ///< Times the gate caught stale data.
  size_t netlister_runs = 0;
};

Outcome RunRegime(bool automated, double p_forget, int iterations,
                  uint64_t seed) {
  auto server = benchutil::MakeEdtcServer();
  tools::ToolScheduler scheduler(*server);
  tools::Netlister netlister(*server);
  if (automated) {
    scheduler.InstallStandardScripts(netlister);
  }
  tools::HdlEditor editor(*server);
  tools::SynthesisTool synthesis(*server);
  tools::NetlistSimulator nl_sim(*server, tools::VerdictModel{0.0});
  Rng rng(seed);

  const int64_t start = server->clock().NowSeconds();
  Outcome outcome;

  for (int i = 0; i < iterations; ++i) {
    server->AdvanceClock(kEdit);
    editor.Edit("CPU", "model rev " + std::to_string(i), "alice");
    server->SubmitWireLine(
        "postEvent hdl_sim up CPU,HDL_model," + std::to_string(i + 1) +
            " good",
        "alice");
    server->AdvanceClock(kSynthesis);
    synthesis.Synthesize("CPU", {}, "bob");

    if (automated) {
      // The exec rule already ran the netlister during the check-in.
      server->AdvanceClock(kNetlist);
    } else if (!rng.Chance(p_forget)) {
      server->AdvanceClock(kNetlist);
      netlister.Netlist("CPU", "bob");
    }

    server->AdvanceClock(kSim);
    if (nl_sim.Simulate("CPU", "bob").empty()) {
      // Gate caught a stale/missing netlist: late rework.
      ++outcome.stale_incidents;
      server->AdvanceClock(kLateContextSwitch + kNetlist);
      netlister.Netlist("CPU", "bob");
      server->AdvanceClock(kSim);
      nl_sim.Simulate("CPU", "bob");
    }
  }
  outcome.cycle_seconds = server->clock().NowSeconds() - start;
  outcome.netlister_runs =
      netlister.runs() + scheduler.automatic_runs();
  return outcome;
}

void BM_AutomatedIteration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunRegime(true, 0.0, 8, 1));
  }
}
BENCHMARK(BM_AutomatedIteration);

void BM_ManualIteration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunRegime(false, 0.25, 8, 1));
  }
}
BENCHMARK(BM_ManualIteration);

void PrintSeries() {
  benchutil::PrintHeader(
      "Claim C6: automatic tool invocation shortens the design cycle",
      "paper section 3.3",
      "64 front-end iterations; manual designers forget the netlister with "
      "probability p.\nThe wrapper's data-state gate turns every forgotten "
      "run into late rework instead of\na silent stale-data error.");

  const int kIterations = benchutil::SeriesScale(64, 8);
  std::printf("%-26s %-18s %-18s %-16s\n", "regime", "cycle time (h)",
              "stale incidents", "netlister runs");

  // Wall-clock per tracked iteration is the trajectory series: the
  // paper's "non-obstructive" claim says automation must stay cheap.
  const auto timed_regime = [&](const char* series, bool automated,
                                double p_forget) {
    const auto start = std::chrono::steady_clock::now();
    const Outcome outcome = RunRegime(automated, p_forget, kIterations, 7);
    const double ns =
        std::chrono::duration<double, std::nano>(
            std::chrono::steady_clock::now() - start)
            .count() /
        kIterations;
    benchutil::AddBenchJson(series, ns, ns > 0.0 ? 1e9 / ns : 0.0);
    return outcome;
  };

  const Outcome automated =
      timed_regime("scheduling_automated", true, 0.0);
  std::printf("%-26s %-18.1f %-18zu %-16zu\n", "automated (exec rule)",
              automated.cycle_seconds / 3600.0, automated.stale_incidents,
              automated.netlister_runs);
  for (const double p : {0.1, 0.25, 0.5}) {
    const Outcome manual =
        p == 0.25 ? timed_regime("scheduling_manual_p25", false, p)
                  : RunRegime(false, p, kIterations, 7);
    char label[48];
    std::snprintf(label, sizeof(label), "manual (p_forget=%.2f)", p);
    std::printf("%-26s %-18.1f %-18zu %-16zu\n", label,
                manual.cycle_seconds / 3600.0, manual.stale_incidents,
                manual.netlister_runs);
  }
  std::printf(
      "\nExpected shape (paper): the automated flow never pays the late "
      "context switch; manual\ncycle time and incident count grow with the "
      "forgetting rate.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintSeries();
  damocles::benchutil::RunBenchmarks(argc, argv);
  damocles::benchutil::WriteBenchJson();
  return 0;
}
