// Claim C4 — "light weight configuration objects" (paper §2).
//
// A Configuration is a set of database addresses (handles), not a copy
// of the data. We compare snapshotting a project as a configuration vs
// deep-copying the referenced meta-data (what a tracking system without
// address-based configurations would store), in both time and bytes.
// Snapshot latency at 64 blocks feeds the DAMOCLES_BENCH_JSON
// trajectory (config_snapshot_b64 / config_deepcopy_b64).
#include "bench_util.hpp"

#include "metadb/config_builder.hpp"

namespace {

using namespace damocles;

/// What a deep-copy snapshot would have to materialize.
struct DeepCopySnapshot {
  std::vector<metadb::MetaObject> objects;
  std::vector<metadb::Link> links;
};

DeepCopySnapshot DeepCopy(const metadb::MetaDatabase& db) {
  DeepCopySnapshot snapshot;
  db.ForEachObject([&](metadb::OidId, const metadb::MetaObject& object) {
    snapshot.objects.push_back(object);
  });
  db.ForEachLink([&](metadb::LinkId, const metadb::Link& link) {
    snapshot.links.push_back(link);
  });
  return snapshot;
}

size_t ApproxBytes(const DeepCopySnapshot& snapshot) {
  size_t bytes = 0;
  for (const auto& object : snapshot.objects) {
    bytes += sizeof(object) + object.oid.block.size() + object.oid.view.size();
    for (const auto& [name, value] : object.properties) {
      bytes += name.size() + value.size() + 2 * sizeof(void*);
    }
  }
  for (const auto& link : snapshot.links) {
    bytes += sizeof(link) + link.type.size();
    for (const auto& event : link.propagates) bytes += event.size();
  }
  return bytes;
}

size_t ApproxBytes(const metadb::Configuration& config) {
  return sizeof(config) + config.name.size() + config.built_from.size() +
         config.oids.size() * sizeof(metadb::OidId) +
         config.links.size() * sizeof(metadb::LinkId);
}

void BM_ConfigurationSnapshot(benchmark::State& state) {
  auto project = benchutil::MakeFlowProject(5, static_cast<int>(state.range(0)),
                                            2, 3);
  const auto& db = project.server->database();
  for (auto _ : state) {
    benchmark::DoNotOptimize(metadb::BuildFullCheckpoint(db, "snap", 0));
  }
  state.counters["objects"] = static_cast<double>(db.Stats().live_objects);
}
BENCHMARK(BM_ConfigurationSnapshot)->Arg(4)->Arg(16)->Arg(64);

void BM_DeepCopySnapshot(benchmark::State& state) {
  auto project = benchutil::MakeFlowProject(5, static_cast<int>(state.range(0)),
                                            2, 3);
  const auto& db = project.server->database();
  for (auto _ : state) {
    benchmark::DoNotOptimize(DeepCopy(db));
  }
  state.counters["objects"] = static_cast<double>(db.Stats().live_objects);
}
BENCHMARK(BM_DeepCopySnapshot)->Arg(4)->Arg(16)->Arg(64);

void PrintSeries() {
  benchutil::PrintHeader(
      "Claim C4: light-weight configuration objects", "paper section 2",
      "Snapshot of the whole design state: configuration (set of database "
      "addresses) vs deep copy.");

  std::printf("%-10s %-10s %-20s %-20s %-10s\n", "blocks", "objects",
              "config bytes", "deep-copy bytes", "ratio");
  for (const int blocks : {4, 16, 64, 256}) {
    auto project = benchutil::MakeFlowProject(5, blocks, 2, 3);
    const auto& db = project.server->database();
    const auto config = metadb::BuildFullCheckpoint(db, "snap", 0);
    const auto deep = DeepCopy(db);
    const size_t config_bytes = ApproxBytes(config);
    const size_t deep_bytes = ApproxBytes(deep);
    std::printf("%-10d %-10zu %-20zu %-20zu %-10.1f\n", blocks,
                db.Stats().live_objects, config_bytes, deep_bytes,
                static_cast<double>(deep_bytes) /
                    static_cast<double>(config_bytes ? config_bytes : 1));
  }
  std::printf(
      "\nExpected shape (paper): configurations stay a constant factor of "
      "8-16 bytes per address;\nthe deep copy scales with property payload "
      "and is an order of magnitude heavier.\n\n");

  // Trajectory series: snapshot latency on the largest printed project.
  const int blocks = benchutil::SeriesScale(64, 4);
  const int reps = benchutil::SeriesScale(20, 2);
  auto project = benchutil::MakeFlowProject(5, blocks, 2, 3);
  const auto& db = project.server->database();
  benchutil::TimedSeries("config_snapshot_b64", reps, [&] {
    return metadb::BuildFullCheckpoint(db, "snap", 0);
  });
  benchutil::TimedSeries("config_deepcopy_b64", reps,
                         [&] { return DeepCopy(db); });
}

}  // namespace

int main(int argc, char** argv) {
  PrintSeries();
  damocles::benchutil::RunBenchmarks(argc, argv);
  damocles::benchutil::WriteBenchJson();
  return 0;
}
