// WAL append overhead: what durability costs on the mutation path.
//
// The write-ahead log mirrors every journal row and logs every
// structural operation. This bench sweeps the fsync policies against a
// no-WAL baseline on the same check-in + event workload, for 1-shard
// and 4-shard servers:
//
//   wal_append_off_s1 / s4            no WAL (the baseline)
//   wal_append_none_s1 / s4           WAL, flush at drain
//   wal_append_batch_s1 / s4          WAL, flush + fsync at drain
//   wal_append_every_record_s1 / s4   WAL, fsync per append group
//
// CI's Release guard asserts fsync=none stays within 15% of the
// baseline: logging must be a memcpy-and-buffer tax, not a second
// engine.
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "events/wal.hpp"

namespace {

using damocles::engine::ProjectServer;
using damocles::engine::ServerOptions;
using damocles::events::FsyncPolicy;

struct Variant {
  const char* tag;
  bool wal = false;
  FsyncPolicy fsync = FsyncPolicy::kNone;
};

constexpr Variant kVariants[] = {
    {"off", false, FsyncPolicy::kNone},
    {"none", true, FsyncPolicy::kNone},
    {"batch", true, FsyncPolicy::kBatch},
    {"every_record", true, FsyncPolicy::kEveryRecord},
};

std::filesystem::path ScratchDir(const std::string& tag) {
  return std::filesystem::temp_directory_path() / ("damocles-bench-" + tag);
}

/// One bench fixture: a (possibly durable) server plus its workload
/// cursor.
struct Fixture {
  std::string name;
  std::filesystem::path dir;
  std::unique_ptr<ProjectServer> server;
  int cursor = 0;
  double best_ns = 0.0;

  /// One measured op: a check-in (meta-data registration + ckin wave)
  /// followed by a posted event, then a drain — the durable mutation
  /// path end to end.
  void Step() {
    const std::string block = "blk" + std::to_string(cursor++ % 16);
    server->CheckIn(block, "HDL_model", "content", "bench");
    server->SubmitWireLine(
        "postEvent hdl_sim up " + block + ",HDL_model,1 \"good\"", "bench");
    benchmark::DoNotOptimize(server->Drain());
  }
};

/// The guard compares ratios of these series, so the measurement has to
/// survive a noisy CI box: every variant is timed once per pass, passes
/// interleave the variants, and each series reports its best pass.
/// Slow ticks (frequency drift, a neighbor stealing the core) then hit
/// some pass of every variant rather than one variant wholesale.
void RunSeries(uint32_t shards) {
  const int reps = damocles::benchutil::SeriesScale(300, 20);
  const int passes = damocles::benchutil::SeriesScale(16, 2);
  const std::string suffix = "_s" + std::to_string(shards);

  std::vector<Fixture> fixtures;
  for (const Variant& variant : kVariants) {
    Fixture fixture;
    fixture.name = std::string("wal_append_") + variant.tag + suffix;
    fixture.dir = ScratchDir(fixture.name);
    std::filesystem::remove_all(fixture.dir);

    ServerOptions options;
    options.num_shards = shards;
    if (shards > 1) options.deterministic_shards = true;
    if (variant.wal) {
      options.wal_dir = fixture.dir.string();
      options.wal_fsync = variant.fsync;
    }
    fixture.server = std::make_unique<ProjectServer>("bench", options);
    fixture.server->InitializeBlueprint(
        damocles::workload::EdtcBlueprintText());
    fixtures.push_back(std::move(fixture));
  }

  for (Fixture& fixture : fixtures) {
    for (int warm = 0; warm < reps / 4; ++warm) fixture.Step();
  }
  for (int pass = 0; pass < passes; ++pass) {
    for (Fixture& fixture : fixtures) {
      const auto start = std::chrono::steady_clock::now();
      for (int r = 0; r < reps; ++r) fixture.Step();
      const double ns = std::chrono::duration<double, std::nano>(
                            std::chrono::steady_clock::now() - start)
                            .count() /
                        reps;
      if (pass == 0 || ns < fixture.best_ns) fixture.best_ns = ns;
    }
  }

  std::printf("%-28s %14s %16s\n", "series", "ns/op", "ops/sec");
  for (Fixture& fixture : fixtures) {
    damocles::benchutil::AddBenchJson(
        fixture.name, fixture.best_ns,
        fixture.best_ns > 0.0 ? 1e9 / fixture.best_ns : 0.0);
    std::printf("%-28s %14.1f %16.1f\n", fixture.name.c_str(),
                fixture.best_ns, 1e9 / fixture.best_ns);
    fixture.server.reset();
    std::filesystem::remove_all(fixture.dir);
  }
}

}  // namespace

int main(int argc, char** argv) {
  damocles::benchutil::PrintHeader(
      "WAL append overhead", "durability layer",
      "check-in + event mutation cost: no WAL vs fsync=none/batch/"
      "every_record, 1 and 4 shards");
  RunSeries(1);
  std::printf("\n");
  RunSeries(4);
  damocles::benchutil::WriteBenchJson();
  damocles::benchutil::RunBenchmarks(argc, argv);
  return 0;
}
