// Shared helpers for the benchmark harness.
//
// Every bench regenerates one figure or quantified claim of the paper
// (see DESIGN.md §4 and EXPERIMENTS.md). Benches print their series as
// aligned text tables — the "rows the paper reports" — and then run
// google-benchmark timings where wall-clock numbers matter.
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "engine/project_server.hpp"
#include "workload/edtc.hpp"
#include "workload/generators.hpp"

namespace damocles::benchutil {

/// True when the DAMOCLES_BENCH_SMOKE environment variable is set (and
/// not "0"). CI uses this to exercise every bench binary with tiny
/// iteration counts so benchmarks cannot silently rot; PrintSeries
/// functions shrink their sweeps accordingly.
inline bool SmokeMode() {
  const char* env = std::getenv("DAMOCLES_BENCH_SMOKE");
  return env != nullptr && *env != '\0' && *env != '0';
}

/// Smoke-aware series scaling: `full` normally, `smoke` under
/// DAMOCLES_BENCH_SMOKE.
inline int SeriesScale(int full, int smoke) {
  return SmokeMode() ? smoke : full;
}

// --- Machine-readable results (DAMOCLES_BENCH_JSON) -----------------------
//
// Benches that track a perf trajectory register their series here and
// call WriteBenchJson() at the end of main. When the DAMOCLES_BENCH_JSON
// environment variable names a path, the collected series are written
// there as JSON: {"series": [{"name": ..., "ns_per_op": ...,
// "deliveries_per_sec": ...}, ...]}. CI uploads the files as artifacts
// so the speedups are comparable across commits.

struct BenchJsonSeries {
  std::string name;
  double ns_per_op = 0.0;
  double deliveries_per_sec = 0.0;
};

inline std::vector<BenchJsonSeries>& BenchJsonData() {
  static std::vector<BenchJsonSeries> data;
  return data;
}

/// Registers one series result (no-op cost when the emitter is unused).
inline void AddBenchJson(std::string name, double ns_per_op,
                         double deliveries_per_sec) {
  BenchJsonData().push_back(
      BenchJsonSeries{std::move(name), ns_per_op, deliveries_per_sec});
}

/// Times `reps` calls of `fn` and registers the mean as a JSON series
/// (ns/op plus the ops/sec view). The shared helper keeps every bench's
/// trajectory methodology identical.
template <typename Fn>
inline void TimedSeries(const char* series, int reps, Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) benchmark::DoNotOptimize(fn());
  const double ns = std::chrono::duration<double, std::nano>(
                        std::chrono::steady_clock::now() - start)
                        .count() /
                    (reps > 0 ? reps : 1);
  AddBenchJson(series, ns, ns > 0.0 ? 1e9 / ns : 0.0);
}

/// Writes the registered series to $DAMOCLES_BENCH_JSON; no-op when the
/// variable is unset or empty. Call once, at the end of the bench main.
inline void WriteBenchJson() {
  const char* path = std::getenv("DAMOCLES_BENCH_JSON");
  if (path == nullptr || *path == '\0') return;
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench: cannot write DAMOCLES_BENCH_JSON=%s\n", path);
    return;
  }
  std::fprintf(out, "{\n  \"series\": [\n");
  const std::vector<BenchJsonSeries>& data = BenchJsonData();
  for (size_t i = 0; i < data.size(); ++i) {
    // Series names are internal identifiers (no quotes/backslashes to
    // escape).
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"ns_per_op\": %.1f, "
                 "\"deliveries_per_sec\": %.1f}%s\n",
                 data[i].name.c_str(), data[i].ns_per_op,
                 data[i].deliveries_per_sec, i + 1 < data.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
}

/// Shared bench main body: forwards argv to google-benchmark, injecting
/// a minimal --benchmark_min_time in smoke mode (explicit flags win —
/// the injected flag comes first, later flags override it).
inline void RunBenchmarks(int argc, char** argv) {
  static char min_time[] = "--benchmark_min_time=0.001";
  std::vector<char*> args;
  args.push_back(argc > 0 ? argv[0] : min_time);
  if (SmokeMode()) args.push_back(min_time);
  for (int i = 1; i < argc; ++i) args.push_back(argv[i]);
  int count = static_cast<int>(args.size());
  ::benchmark::Initialize(&count, args.data());
  ::benchmark::RunSpecifiedBenchmarks();
}

/// A server with the EDTC blueprint loaded.
inline std::unique_ptr<engine::ProjectServer> MakeEdtcServer() {
  auto server = std::make_unique<engine::ProjectServer>("bench");
  server->InitializeBlueprint(workload::EdtcBlueprintText());
  return server;
}

/// A server with an n-view flow blueprint and one instantiated block
/// hierarchy: `blocks` roots, each with the full view chain, plus a
/// use-link tree of the given depth/fanout under each root's view_0.
struct FlowProject {
  std::unique_ptr<engine::ProjectServer> server;
  workload::FlowSpec flow;
  std::vector<std::string> blocks;
};

inline FlowProject MakeFlowProject(int n_views, int n_blocks,
                                   int hierarchy_depth = 0,
                                   int hierarchy_fanout = 2) {
  FlowProject project;
  project.flow.n_views = n_views;
  project.server = std::make_unique<engine::ProjectServer>("bench");
  project.server->InitializeBlueprint(
      workload::MakeFlowBlueprint(project.flow, "bench"));
  for (int i = 0; i < n_blocks; ++i) {
    const std::string block = "blk" + std::to_string(i);
    workload::InstantiateFlow(*project.server, project.flow, block);
    if (hierarchy_depth > 0) {
      workload::HierarchySpec spec;
      spec.depth = hierarchy_depth;
      spec.fanout = hierarchy_fanout;
      spec.view = "view_0";
      spec.root_block = block + "_sub";
      workload::BuildHierarchy(*project.server, spec);
    }
    project.blocks.push_back(block);
  }
  return project;
}

/// Prints the standard bench header naming the experiment.
inline void PrintHeader(const char* experiment, const char* paper_ref,
                        const char* what) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s  (%s)\n%s\n", experiment, paper_ref, what);
  std::printf("==============================================================="
              "=================\n");
}

}  // namespace damocles::benchutil
