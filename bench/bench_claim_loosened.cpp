// Claim C3 — "the BluePrint can be 'loosened' thereby limiting change
// propagation" (paper §3.2).
//
// The identical stochastic design session is run under blueprints of
// decreasing strictness: full propagation, a cutoff after k links, and
// rule-level loosening (ckin stops posting outofdate). Series: events,
// propagated deliveries and invalidations per session — the knob the
// project administrator turns between design phases.
#include "bench_util.hpp"

#include "query/query.hpp"

namespace {

using namespace damocles;

struct Variant {
  const char* label;
  int cutoff;             // FlowSpec::propagation_cutoff.
  bool post_on_ckin;      // FlowSpec::post_outofdate_on_ckin.
};

constexpr Variant kVariants[] = {
    {"strict (all links)", -1, true},
    {"cutoff after 2", 2, true},
    {"cutoff after 1", 1, true},
    {"links only, no post", -1, false},
};

workload::FlowSpec MakeSpec(const Variant& variant) {
  workload::FlowSpec flow;
  flow.n_views = 6;
  flow.propagation_cutoff = variant.cutoff;
  flow.post_outofdate_on_ckin = variant.post_on_ckin;
  return flow;
}

void RunSession(engine::ProjectServer& server, const workload::FlowSpec& flow,
                const std::vector<std::string>& blocks) {
  workload::TraceSpec trace;
  trace.n_actions = 500;
  trace.seed = 1995;
  workload::RunDesignSession(server, flow, blocks, trace);
}

void BM_SessionUnderVariant(benchmark::State& state) {
  const Variant& variant = kVariants[state.range(0)];
  const workload::FlowSpec flow = MakeSpec(variant);
  for (auto _ : state) {
    engine::ProjectServer server("loose");
    server.InitializeBlueprint(workload::MakeFlowBlueprint(flow, "loose"));
    std::vector<std::string> blocks;
    for (int b = 0; b < 4; ++b) {
      const std::string block = "blk" + std::to_string(b);
      workload::InstantiateFlow(server, flow, block);
      blocks.push_back(block);
    }
    RunSession(server, flow, blocks);
    benchmark::DoNotOptimize(server.engine().stats().propagated_deliveries);
  }
  state.SetLabel(variant.label);
}
BENCHMARK(BM_SessionUnderVariant)->DenseRange(0, 3);

void PrintSeries() {
  benchutil::PrintHeader(
      "Claim C3: loosened blueprints limit change propagation",
      "paper section 3.2",
      "The same 500-action session (seed 1995) under four strictness "
      "levels of the same 6-view flow.");

  std::printf("%-22s %-10s %-14s %-14s %-18s\n", "blueprint", "events",
              "propagated", "prop-writes", "stale at end");
  for (const Variant& variant : kVariants) {
    const workload::FlowSpec flow = MakeSpec(variant);
    engine::ProjectServer server("loose");
    server.InitializeBlueprint(workload::MakeFlowBlueprint(flow, "loose"));
    std::vector<std::string> blocks;
    for (int b = 0; b < 4; ++b) {
      const std::string block = "blk" + std::to_string(b);
      workload::InstantiateFlow(server, flow, block);
      blocks.push_back(block);
    }
    RunSession(server, flow, blocks);
    query::ProjectQuery q(server.database());
    const auto& stats = server.engine().stats();
    std::printf("%-22s %-10zu %-14zu %-14zu %-18zu\n", variant.label,
                stats.events_processed, stats.propagated_deliveries,
                stats.property_writes, q.OutOfDate().size());
  }
  std::printf(
      "\nExpected shape (paper): propagation volume falls monotonically as "
      "the blueprint is\nloosened; with no posting at all, tracking reduces "
      "to recording results.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintSeries();
  damocles::benchutil::RunBenchmarks(argc, argv);
  return 0;
}
