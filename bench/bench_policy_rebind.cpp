// Policy-version rebind costs: promote latency and wave throughput
// while the live rule set keeps changing.
//
// The versioned policy lifecycle recompiles a promoted version through
// the compiled-rules generation counter; engines rebind per-OID rule
// caches lazily at the next delivery instead of stopping the world.
// Two questions matter operationally:
//   1. how long does policy-promote itself take (parse + compile +
//      retemplate every live link), and
//   2. what does steady-state event throughput look like when
//      promotions keep invalidating the binding caches mid-stream.
// Both run single-shard and 4-shard (the structural path delegates to
// shard 0 either way, but the rebind fans out to every lane engine).
#include <chrono>
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "engine/project_server.hpp"
#include "workload/generators.hpp"

namespace {

using damocles::engine::ProjectServer;
using damocles::engine::ServerOptions;
using damocles::workload::FlowSpec;
using damocles::workload::InstantiateFlow;
using damocles::workload::MakeFlowBlueprint;

struct RebindRun {
  uint64_t promotes = 0;
  double promote_seconds = 0.0;
  uint64_t processed = 0;
  double wave_seconds = 0.0;
};

/// Alternates promoting a strict and a loosened flow blueprint, posting
/// a burst of ckin waves after every promotion.
RebindRun RunRebind(uint32_t shards, int n_blocks, int rounds,
                    int events_per_round) {
  ServerOptions options;
  options.num_shards = shards;
  options.auto_drain = false;
  ProjectServer server("bench", options);

  FlowSpec strict;
  strict.n_views = 5;
  FlowSpec loose = strict;
  loose.propagation_cutoff = 0;
  loose.post_outofdate_on_ckin = false;

  server.InitializeBlueprint(MakeFlowBlueprint(strict, "bench"));
  for (int i = 0; i < n_blocks; ++i) {
    InstantiateFlow(server, strict, "blk" + std::to_string(i));
  }
  const uint64_t strict_id = server.PolicyPropose(
      MakeFlowBlueprint(strict, "bench"), "bench", "strict phase");
  server.PolicyValidate(strict_id);
  const uint64_t loose_id = server.PolicyPropose(
      MakeFlowBlueprint(loose, "bench"), "bench", "loosened phase");
  server.PolicyValidate(loose_id);

  RebindRun run;
  bool promote_loose = true;
  for (int round = 0; round < rounds; ++round) {
    const uint64_t target = promote_loose ? loose_id : strict_id;
    promote_loose = !promote_loose;
    const auto p0 = std::chrono::steady_clock::now();
    server.PolicyPromote(target);
    run.promote_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - p0)
            .count();
    ++run.promotes;

    const auto w0 = std::chrono::steady_clock::now();
    for (int e = 0; e < events_per_round; ++e) {
      server.SubmitWireLine("postEvent ckin down blk" +
                                std::to_string(e % n_blocks) + ",view_0,1",
                            "bench");
    }
    run.processed += server.Drain();
    run.wave_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - w0)
            .count();
  }
  return run;
}

void PrintRebindSeries() {
  damocles::benchutil::PrintHeader(
      "Policy rebind", "paper §3.2: loosening/tightening the BluePrint",
      "promote latency + wave throughput during repeated live rebinds");

  const int n_blocks = damocles::benchutil::SeriesScale(8, 2);
  const int rounds = damocles::benchutil::SeriesScale(40, 4);
  const int events = damocles::benchutil::SeriesScale(200, 20);

  std::printf("%-8s %-10s %-16s %-12s %-16s\n", "shards", "promotes",
              "promote us/op", "events", "events/sec");
  for (const uint32_t shards : {1u, 4u}) {
    const RebindRun run = RunRebind(shards, n_blocks, rounds, events);
    const double promote_ns =
        run.promotes > 0
            ? run.promote_seconds * 1e9 / static_cast<double>(run.promotes)
            : 0.0;
    const double events_per_sec =
        run.wave_seconds > 0.0
            ? static_cast<double>(run.processed) / run.wave_seconds
            : 0.0;
    damocles::benchutil::AddBenchJson(
        "policy_promote_s" + std::to_string(shards), promote_ns,
        promote_ns > 0.0 ? 1e9 / promote_ns : 0.0);
    damocles::benchutil::AddBenchJson(
        "rebind_wave_s" + std::to_string(shards),
        events_per_sec > 0.0 ? 1e9 / events_per_sec : 0.0, events_per_sec);
    std::printf("%-8u %-10llu %-16.1f %-12llu %-16.0f\n", shards,
                static_cast<unsigned long long>(run.promotes),
                promote_ns / 1e3,
                static_cast<unsigned long long>(run.processed),
                events_per_sec);
  }
  std::printf(
      "\nExpected shape: promote cost is dominated by retemplating live "
      "links; event\nthroughput should stay the same order as a "
      "rebind-free run because bindings\nre-resolve lazily per OID.\n\n");
}

/// google-benchmark view of one promote/rollback pair (the minimal
/// rebind cycle: two recompiles + two retemplating passes).
void BM_PromoteRollback(benchmark::State& state) {
  ProjectServer server("bench");
  FlowSpec strict;
  strict.n_views = 4;
  FlowSpec loose = strict;
  loose.propagation_cutoff = 0;
  server.InitializeBlueprint(MakeFlowBlueprint(strict, "bench"));
  InstantiateFlow(server, strict, "blk0");
  const uint64_t loose_id = server.PolicyPropose(
      MakeFlowBlueprint(loose, "bench"), "bench", "loosened phase");
  server.PolicyValidate(loose_id);
  for (auto _ : state) {
    server.PolicyPromote(loose_id);
    server.PolicyRollback();
  }
}
BENCHMARK(BM_PromoteRollback);

}  // namespace

int main(int argc, char** argv) {
  PrintRebindSeries();
  damocles::benchutil::RunBenchmarks(argc, argv);
  damocles::benchutil::WriteBenchJson();
  return 0;
}
