// Figure 2 — template rule for a property of view GDSII.
//
// The figure shows "property DRC default bad copy": creating GDSII v6
// copies the DRC value from v5. We regenerate the figure's behaviour
// (printed demo) and measure version-creation cost as a function of how
// many properties the template carries and of the carry policy mix.
#include "bench_util.hpp"

#include "blueprint/parser.hpp"
#include "common/clock.hpp"
#include "engine/run_time_engine.hpp"

namespace {

using namespace damocles;

std::string TemplateBlueprint(int n_properties, const char* carry) {
  std::string text = "blueprint f2\nview GDSII\n";
  for (int i = 0; i < n_properties; ++i) {
    text += "  property p" + std::to_string(i) + " default bad " + carry +
            "\n";
  }
  text += "endview\nendblueprint\n";
  return text;
}

void BM_VersionCreation(benchmark::State& state) {
  const int n_properties = static_cast<int>(state.range(0));
  const char* carry = state.range(1) == 0   ? ""
                      : state.range(1) == 1 ? "copy"
                                            : "move";
  metadb::MetaDatabase db;
  SimClock clock;
  engine::RunTimeEngine engine(db, clock);
  engine.LoadBlueprint(
      blueprint::ParseBlueprint(TemplateBlueprint(n_properties, carry)));

  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.OnCreateObject("alu", "GDSII", "bench"));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::string("carry=") + (*carry ? carry : "default") +
                 " props=" + std::to_string(n_properties));
}
BENCHMARK(BM_VersionCreation)
    ->Args({1, 0})
    ->Args({8, 0})
    ->Args({32, 0})
    ->Args({1, 1})
    ->Args({8, 1})
    ->Args({32, 1})
    ->Args({8, 2});

void PrintSeries() {
  benchutil::PrintHeader(
      "Figure 2: property template with copy inheritance", "paper fig. 2",
      "Creating <alu.GDSII.6> copies the DRC property from v5 instead of "
      "re-defaulting.");

  metadb::MetaDatabase db;
  SimClock clock;
  engine::RunTimeEngine engine(db, clock);
  engine.LoadBlueprint(blueprint::ParseBlueprint(R"(
      blueprint f2
      view GDSII
        property DRC default bad copy
      endview
      endblueprint)"));

  metadb::OidId v5;
  for (int v = 1; v <= 5; ++v) v5 = engine.OnCreateObject("alu", "GDSII", "u");
  db.SetProperty(v5, "DRC", "ok");
  std::printf("  %s  Prop: DRC = %s\n", FormatOid(db.GetObject(v5).oid).c_str(),
              db.GetProperty(v5, "DRC")->c_str());

  const metadb::OidId v6 = engine.OnCreateObject("alu", "GDSII", "u");
  std::printf("  -- create new OID (copy property) -->\n");
  std::printf("  %s  Prop: DRC = %s   <- copied, as in the figure\n",
              FormatOid(db.GetObject(v6).oid).c_str(),
              db.GetProperty(v6, "DRC")->c_str());
  std::printf("  properties carried so far: %zu\n\n",
              engine.stats().properties_carried);

  std::printf("%-10s %-10s %-22s\n", "props", "carry", "writes per creation");
  for (const int props : {1, 8, 32}) {
    for (const char* carry : {"", "copy", "move"}) {
      metadb::MetaDatabase db2;
      SimClock clock2;
      engine::RunTimeEngine engine2(db2, clock2);
      engine2.LoadBlueprint(
          blueprint::ParseBlueprint(TemplateBlueprint(props, carry)));
      engine2.OnCreateObject("alu", "GDSII", "u");
      engine2.ResetStats();
      engine2.OnCreateObject("alu", "GDSII", "u");
      std::printf("%-10d %-10s %-22zu\n", props, *carry ? carry : "default",
                  engine2.stats().property_writes);
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintSeries();
  damocles::benchutil::RunBenchmarks(argc, argv);
  return 0;
}
