// Figure 5 — the BluePrint representation of the same design flow:
// views, links and event messages instead of tool invocations.
//
// Runs the identical front-to-back design iterations as
// bench_fig4_classical_flow, but through the EDTC blueprint: tools are
// free-running wrappers, the tracking system merely observes events.
// The printed series contrasts the designer-facing cost (zero
// pre-approval actions) with the tracking work done behind the scenes.
#include "bench_util.hpp"

#include "tools/scheduler.hpp"

namespace {

using namespace damocles;

struct Project {
  std::unique_ptr<engine::ProjectServer> server;
  std::unique_ptr<tools::ToolScheduler> scheduler;
  std::unique_ptr<tools::Netlister> netlister;
  std::unique_ptr<tools::HdlEditor> editor;
  std::unique_ptr<tools::HdlSimulator> hdl_sim;
  std::unique_ptr<tools::SynthesisTool> synthesis;
  std::unique_ptr<tools::NetlistSimulator> nl_sim;
  std::unique_ptr<tools::LayoutEditor> layout;
  std::unique_ptr<tools::DrcTool> drc;
  std::unique_ptr<tools::LvsTool> lvs;
};

Project MakeProject() {
  Project p;
  p.server = benchutil::MakeEdtcServer();
  p.scheduler = std::make_unique<tools::ToolScheduler>(*p.server);
  p.netlister = std::make_unique<tools::Netlister>(*p.server);
  p.scheduler->InstallStandardScripts(*p.netlister);
  p.editor = std::make_unique<tools::HdlEditor>(*p.server);
  p.hdl_sim = std::make_unique<tools::HdlSimulator>(*p.server,
                                                    tools::VerdictModel{0.0});
  p.synthesis = std::make_unique<tools::SynthesisTool>(*p.server);
  p.nl_sim = std::make_unique<tools::NetlistSimulator>(
      *p.server, tools::VerdictModel{0.0});
  p.layout = std::make_unique<tools::LayoutEditor>(*p.server);
  p.drc = std::make_unique<tools::DrcTool>(*p.server,
                                           tools::VerdictModel{0.0});
  p.lvs = std::make_unique<tools::LvsTool>(*p.server,
                                           tools::VerdictModel{0.0});
  return p;
}

/// One designer iteration mirroring bench_fig4: edit, simulate,
/// synthesize (netlister fires automatically), simulate the netlist,
/// draw the layout, sign off. Returns designer-facing actions.
size_t RunIteration(Project& p, int iteration) {
  size_t designer_actions = 0;
  p.server->AdvanceClock(600);
  p.editor->Edit("CPU", "model rev " + std::to_string(iteration), "alice");
  ++designer_actions;
  p.hdl_sim->Simulate("CPU", "alice");
  ++designer_actions;
  p.synthesis->Synthesize("CPU", {"REG"}, "bob");
  ++designer_actions;  // Netlister is NOT a designer action: exec rule.
  p.nl_sim->Simulate("CPU", "bob");
  ++designer_actions;
  p.layout->Draw("CPU", "carol");
  ++designer_actions;
  p.drc->Check("CPU", "carol");
  ++designer_actions;
  p.lvs->Check("CPU", "carol");
  ++designer_actions;
  return designer_actions;
}

void BM_BlueprintIteration(benchmark::State& state) {
  Project p = MakeProject();
  int iteration = 0;
  size_t actions = 0;
  for (auto _ : state) {
    actions += RunIteration(p, iteration++);
  }
  state.SetItemsProcessed(static_cast<int64_t>(actions));
  const auto& stats = p.server->engine().stats();
  state.counters["events_per_action"] =
      static_cast<double>(stats.events_processed) /
      static_cast<double>(actions ? actions : 1);
}
BENCHMARK(BM_BlueprintIteration);

void PrintSeries() {
  benchutil::PrintHeader(
      "Figure 5: BluePrint (view/link/event) flow representation",
      "paper fig. 5",
      "The same iterations as Figure 4, tracked by the observer engine: "
      "designers never ask\npermission of the tracking system; wrappers "
      "gate on data state and post events.");

  std::printf("%-12s %-14s %-10s %-12s %-12s %-12s %-12s\n", "iterations",
              "pre-approvals", "events", "propagated", "prop-writes",
              "auto-runs", "tool-denials");
  for (const int iterations : {1, 10, 100}) {
    Project p = MakeProject();
    for (int i = 0; i < iterations; ++i) RunIteration(p, i);
    const auto& stats = p.server->engine().stats();
    const size_t denials = p.hdl_sim->denials() + p.synthesis->denials() +
                           p.nl_sim->denials() + p.layout->denials() +
                           p.drc->denials() + p.lvs->denials();
    std::printf("%-12d %-14d %-10zu %-12zu %-12zu %-12zu %-12zu\n",
                iterations, 0, stats.events_processed,
                stats.propagated_deliveries, stats.property_writes,
                p.scheduler->automatic_runs(), denials);
  }
  std::printf(
      "\n'pre-approvals' is the designer-facing obstruction count: zero by "
      "construction in the\nobserver approach (Figure 4's manager charges "
      "Begin/End for every action). Tool-side\ndenials are data-state gates "
      "(paper 3.3), not methodology enforcement.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintSeries();
  damocles::benchutil::RunBenchmarks(argc, argv);
  return 0;
}
