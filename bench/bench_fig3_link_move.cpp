// Figure 3 — template rule for a derive link from NetList to GDSII.
//
// The figure shows a MOVE derive link being shifted from GDSII.v5 to
// GDSII.v6 when the new version is created. We regenerate the shift
// (printed demo) and measure the version-creation cost as a function of
// the number of links hanging off the previous version — the cost of
// the inheritance scheme for heavily connected design objects.
#include "bench_util.hpp"

#include "blueprint/parser.hpp"
#include "common/clock.hpp"
#include "engine/run_time_engine.hpp"

namespace {

using namespace damocles;
using metadb::LinkKind;

constexpr const char* kFigureBlueprint = R"(
    blueprint f3
    view GDSII
      link_from NetList propagates OutOfDate type derive_from move
    endview
    view NetList
    endview
    endblueprint)";

/// A GDSII object with `n_links` incoming move-links from netlists;
/// creating the next version shifts all of them.
void BM_VersionCreationWithLinkCarry(benchmark::State& state) {
  const int n_links = static_cast<int>(state.range(0));
  metadb::MetaDatabase db;
  SimClock clock;
  engine::RunTimeEngine engine(db, clock);
  engine.LoadBlueprint(blueprint::ParseBlueprint(kFigureBlueprint));

  std::vector<metadb::OidId> netlists;
  for (int i = 0; i < n_links; ++i) {
    netlists.push_back(
        engine.OnCreateObject("net" + std::to_string(i), "NetList", "u"));
  }
  metadb::OidId gdsii = engine.OnCreateObject("alu", "GDSII", "u");
  for (const metadb::OidId netlist : netlists) {
    engine.OnCreateLink(LinkKind::kDerive, netlist, gdsii);
  }

  for (auto _ : state) {
    gdsii = engine.OnCreateObject("alu", "GDSII", "u");
    benchmark::DoNotOptimize(gdsii);
  }
  state.SetItemsProcessed(state.iterations() * n_links);
  state.SetLabel("links=" + std::to_string(n_links));
}
BENCHMARK(BM_VersionCreationWithLinkCarry)->Arg(1)->Arg(8)->Arg(64)->Arg(256);

void PrintSeries() {
  benchutil::PrintHeader(
      "Figure 3: move derive-link shifted across versions", "paper fig. 3",
      "The derive link <alu.NetList.8> -> <alu.GDSII.5> carries MOVE; "
      "creating v6 shifts it.");

  metadb::MetaDatabase db;
  SimClock clock;
  engine::RunTimeEngine engine(db, clock);
  engine.LoadBlueprint(blueprint::ParseBlueprint(kFigureBlueprint));

  metadb::OidId netlist;
  for (int v = 1; v <= 8; ++v) {
    netlist = engine.OnCreateObject("alu", "NetList", "u");
  }
  metadb::OidId gdsii;
  for (int v = 1; v <= 5; ++v) gdsii = engine.OnCreateObject("alu", "GDSII", "u");
  const metadb::LinkId link =
      engine.OnCreateLink(LinkKind::kDerive, netlist, gdsii);

  const auto show = [&](const char* when) {
    const metadb::Link& l = db.GetLink(link);
    std::printf("  %s: %s --%s/%s--> %s\n", when,
                FormatOid(db.GetObject(l.from).oid).c_str(),
                l.properties.at("PROPAGATE").c_str(), l.type.c_str(),
                FormatOid(db.GetObject(l.to).oid).c_str());
  };
  show("before");
  engine.OnCreateObject("alu", "GDSII", "u");
  show("after create new OID (move link)");
  std::printf("  links carried: %zu\n\n", engine.stats().links_carried);

  std::printf("%-10s %-24s\n", "links", "shifted per new version");
  for (const int n : {1, 8, 64, 256}) {
    metadb::MetaDatabase db2;
    SimClock clock2;
    engine::RunTimeEngine engine2(db2, clock2);
    engine2.LoadBlueprint(blueprint::ParseBlueprint(kFigureBlueprint));
    metadb::OidId target = engine2.OnCreateObject("alu", "GDSII", "u");
    for (int i = 0; i < n; ++i) {
      const metadb::OidId src =
          engine2.OnCreateObject("net" + std::to_string(i), "NetList", "u");
      engine2.OnCreateLink(LinkKind::kDerive, src, target);
    }
    engine2.ResetStats();
    engine2.OnCreateObject("alu", "GDSII", "u");
    std::printf("%-10d %-24zu\n", n, engine2.stats().links_carried);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintSeries();
  damocles::benchutil::RunBenchmarks(argc, argv);
  return 0;
}
