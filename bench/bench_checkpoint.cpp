// Incremental + background checkpoint cost.
//
// Two claims the checkpoint subsystem makes, measured directly:
//
//  1. A delta checkpoint's write cost scales with the dirty set, not
//     the database. Against a database of several thousand objects with
//     a handful of dirty slots, the delta should be a small fraction of
//     the full dump:
//
//       checkpoint_full_s1 / s4          full dump, 16 dirty of ~3000
//       checkpoint_delta_s1 / s4         delta,     16 dirty of ~3000
//       checkpoint_delta_wide_s1         delta,    256 dirty of ~3000
//
//  2. Background checkpointing keeps the mutation path live: the op
//     that trips an auto-checkpoint pays only the cut (pinned snapshot
//     + dirty delta), not serialization + file writes. The series
//     report the WORST single-op latency over a run that crosses
//     several auto-checkpoint thresholds:
//
//       checkpoint_stall_inline          worst op ns, inline full ckpts
//       checkpoint_stall_background      worst op ns, background ckpts
//
// CI's Release guard gates delta-vs-full and background-vs-inline
// ratios on these series.
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>

#include "bench_util.hpp"

namespace {

using damocles::engine::CheckpointMode;
using damocles::engine::ProjectServer;
using damocles::engine::ServerOptions;

std::filesystem::path ScratchDir(const std::string& tag) {
  return std::filesystem::temp_directory_path() / ("damocles-bench-" + tag);
}

/// A durable server with `objects` registered design objects (each a
/// checked-in version), so full dumps have real weight.
std::unique_ptr<ProjectServer> MakePopulatedServer(const std::string& dir,
                                                   uint32_t shards,
                                                   int objects) {
  ServerOptions options;
  options.wal_dir = dir;
  options.num_shards = shards;
  if (shards > 1) options.deterministic_shards = true;
  // Timing series issue hundreds of delta checkpoints; an unbounded
  // chain keeps every measured call a genuine delta (recovery cost is
  // not what this bench measures).
  options.checkpoint_chain_limit = 1u << 20;
  auto server = std::make_unique<ProjectServer>("bench", options);
  server->InitializeBlueprint(damocles::workload::EdtcBlueprintText());
  for (int i = 0; i < objects; ++i) {
    server->CheckIn("blk" + std::to_string(i), "HDL_model",
                    "content v1 of object " + std::to_string(i), "bench");
  }
  server->Drain();
  return server;
}

/// Dirties `count` distinct objects (new checked-in versions).
void DirtySome(ProjectServer& server, int count, int* cursor, int objects) {
  for (int i = 0; i < count; ++i) {
    const std::string block = "blk" + std::to_string(*cursor % objects);
    server.CheckIn(block, "HDL_model",
                   "rev " + std::to_string(*cursor), "bench");
    ++*cursor;
  }
  server.Drain();
}

void RunWriteCostSeries(uint32_t shards) {
  const int objects = damocles::benchutil::SeriesScale(3000, 200);
  const int reps = damocles::benchutil::SeriesScale(30, 3);
  const std::string suffix = "_s" + std::to_string(shards);

  struct Variant {
    std::string name;
    CheckpointMode mode;
    int dirty;
  };
  std::vector<Variant> variants = {
      {"checkpoint_full" + suffix, CheckpointMode::kFull, 16},
      {"checkpoint_delta" + suffix, CheckpointMode::kDelta, 16},
  };
  if (shards == 1) {
    variants.push_back(
        {"checkpoint_delta_wide" + suffix, CheckpointMode::kDelta, 256});
  }

  std::printf("%-28s %14s %16s\n", "series", "ns/op", "ops/sec");
  for (const Variant& variant : variants) {
    const std::filesystem::path dir = ScratchDir(variant.name);
    std::filesystem::remove_all(dir);
    auto server = MakePopulatedServer(dir.string(), shards, objects);
    int cursor = 0;
    server->WalCheckpoint(CheckpointMode::kFull);  // The chain base.
    DirtySome(*server, variant.dirty, &cursor, objects);
    server->WalCheckpoint(variant.mode);  // Warm-up.

    double total_ns = 0.0;
    for (int r = 0; r < reps; ++r) {
      DirtySome(*server, variant.dirty, &cursor, objects);
      const auto start = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(server->WalCheckpoint(variant.mode));
      total_ns += std::chrono::duration<double, std::nano>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    }
    const double ns = total_ns / reps;
    damocles::benchutil::AddBenchJson(variant.name, ns,
                                      ns > 0.0 ? 1e9 / ns : 0.0);
    std::printf("%-28s %14.1f %16.1f\n", variant.name.c_str(), ns,
                ns > 0.0 ? 1e9 / ns : 0.0);
    server.reset();
    std::filesystem::remove_all(dir);
  }
}

/// Worst single-op latency across a run whose op count crosses several
/// auto-checkpoint thresholds. Inline full checkpoints stall the
/// triggering op for the whole dump + write; background checkpoints
/// charge it only the cut. Reports the best-of-passes maximum so one
/// noisy CI tick cannot fake a stall.
void RunStallSeries(bool background) {
  const int objects = damocles::benchutil::SeriesScale(3000, 200);
  const int ops = damocles::benchutil::SeriesScale(256, 24);
  const int passes = damocles::benchutil::SeriesScale(5, 2);
  const std::string name = std::string("checkpoint_stall_") +
                           (background ? "background" : "inline");

  const std::filesystem::path dir = ScratchDir(name);
  std::filesystem::remove_all(dir);
  ServerOptions options;
  options.wal_dir = dir.string();
  options.checkpoint_every_ops = static_cast<size_t>(
      damocles::benchutil::SeriesScale(64, 8));
  options.auto_checkpoint_mode = CheckpointMode::kFull;  // Maximum stall.
  options.background_checkpoints = background;
  auto server = std::make_unique<ProjectServer>("bench", options);
  server->InitializeBlueprint(damocles::workload::EdtcBlueprintText());
  for (int i = 0; i < objects; ++i) {
    server->CheckIn("blk" + std::to_string(i), "HDL_model",
                    "content v1 of object " + std::to_string(i), "bench");
  }
  server->Drain();

  int cursor = 0;
  double best_max_ns = 0.0;
  for (int pass = 0; pass < passes; ++pass) {
    double max_ns = 0.0;
    for (int i = 0; i < ops; ++i) {
      const std::string block = "blk" + std::to_string(cursor % objects);
      const auto start = std::chrono::steady_clock::now();
      server->CheckIn(block, "HDL_model", "rev " + std::to_string(cursor),
                      "bench");
      benchmark::DoNotOptimize(server->Drain());
      const double ns = std::chrono::duration<double, std::nano>(
                            std::chrono::steady_clock::now() - start)
                            .count();
      if (ns > max_ns) max_ns = ns;
      ++cursor;
    }
    if (pass == 0 || max_ns < best_max_ns) best_max_ns = max_ns;
  }
  damocles::benchutil::AddBenchJson(name, best_max_ns,
                                    best_max_ns > 0.0 ? 1e9 / best_max_ns
                                                      : 0.0);
  std::printf("%-28s %14.1f %16.1f\n", name.c_str(), best_max_ns,
              best_max_ns > 0.0 ? 1e9 / best_max_ns : 0.0);
  server.reset();
  std::filesystem::remove_all(dir);
}

}  // namespace

int main(int argc, char** argv) {
  damocles::benchutil::PrintHeader(
      "Checkpoint cost", "durability layer",
      "full vs delta checkpoint write cost (dirty-set scaling) and the "
      "mutation-path stall inline vs background");
  RunWriteCostSeries(1);
  std::printf("\n");
  RunWriteCostSeries(4);
  std::printf("\n%-28s %14s %16s\n", "series", "max op ns", "1/max");
  RunStallSeries(/*background=*/false);
  RunStallSeries(/*background=*/true);
  damocles::benchutil::WriteBenchJson();
  damocles::benchutil::RunBenchmarks(argc, argv);
  return 0;
}
