// Figure 4 — the classical, tool-centric representation of the sample
// design flow (synthesis -> schematic -> netlist -> simulation, layout
// -> DRC/LVS).
//
// In a tool-centric (activity-driven, NELSIS-style) framework the flow
// is a state machine over activities: every tool run must be announced,
// checked against the flow definition, and committed. This bench runs a
// synthetic design session through that manager and reports the
// obstruction ledger — the numbers Figure 5's observer flow is compared
// against.
#include "bench_util.hpp"

#include "baseline/activity_driven.hpp"

namespace {

using namespace damocles;
using baseline::ActivityDef;
using baseline::ActivityDrivenManager;

/// The sample flow of Figs. 4/5 as an activity graph.
std::vector<ActivityDef> SampleFlow() {
  return {
      {"synthesis", {"HDL_model", "synth_lib"}, {"schematic"}},
      {"netlister", {"schematic"}, {"netlist"}},
      {"nl_sim", {"netlist"}, {}},
      {"layout_edit", {"schematic"}, {"layout"}},
      {"drc", {"layout"}, {}},
      {"lvs", {"layout", "schematic"}, {}},
  };
}

/// One designer iteration: (re)validate the model, run the front-to-back
/// flow, retrying activities whose inputs are not yet valid the way a
/// designer banging against an obstructive system does.
size_t RunIteration(ActivityDrivenManager& manager, const std::string& block) {
  size_t designer_actions = 0;
  manager.SeedData(block, "HDL_model");  // Editing happens outside the flow.
  manager.SeedData(block, "synth_lib");
  for (const char* activity :
       {"synthesis", "netlister", "nl_sim", "layout_edit", "drc", "lvs"}) {
    ++designer_actions;
    auto ticket = manager.BeginActivity(activity, block);
    if (!ticket.has_value()) {
      // Denied: the designer must first rerun the producing activity —
      // modelled as one extra action per denial.
      ++designer_actions;
      continue;
    }
    manager.EndActivity(*ticket, /*success=*/true);
  }
  return designer_actions;
}

void BM_ActivityDrivenIteration(benchmark::State& state) {
  ActivityDrivenManager manager(SampleFlow());
  size_t actions = 0;
  for (auto _ : state) {
    actions += RunIteration(manager, "CPU");
  }
  state.SetItemsProcessed(static_cast<int64_t>(actions));
  state.counters["checks_per_action"] =
      static_cast<double>(manager.stats().state_checks) /
      static_cast<double>(actions ? actions : 1);
}
BENCHMARK(BM_ActivityDrivenIteration);

void PrintSeries() {
  benchutil::PrintHeader(
      "Figure 4: classical (tool-centric) flow representation",
      "paper fig. 4",
      "The sample flow run under an activity-driven manager: every tool "
      "run is announced,\nchecked and committed. Series: obstruction "
      "ledger vs number of design iterations.");

  std::printf("%-12s %-10s %-10s %-10s %-10s %-12s %-14s\n", "iterations",
              "begins", "denials", "checks", "locks", "state-upd.",
              "invalidations");
  for (const int iterations : {1, 10, 100, 1000}) {
    ActivityDrivenManager manager(SampleFlow());
    for (int i = 0; i < iterations; ++i) RunIteration(manager, "CPU");
    const auto& stats = manager.stats();
    std::printf("%-12d %-10zu %-10zu %-10zu %-10zu %-12zu %-14zu\n",
                iterations, stats.begin_requests, stats.denials,
                stats.state_checks, stats.locks_taken, stats.state_updates,
                stats.invalidations);
  }
  std::printf(
      "\nEvery design action pays Begin/End bookkeeping up front — the "
      "methodology is imposed\n(the cost DAMOCLES' observer approach avoids; "
      "compare bench_fig5_blueprint_flow).\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintSeries();
  damocles::benchutil::RunBenchmarks(argc, argv);
  return 0;
}
