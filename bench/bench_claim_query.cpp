// Claim C5 — "Designers can retrieve the state of the project by
// performing queries. Therefore, designers know exactly what data still
// needs to be modified before reaching a planned state" (paper §1).
//
// Measures the designer-facing query latencies (out-of-date scan,
// distance-to-planned-state, hierarchy membership, full report) as the
// meta-database grows. The three core queries also feed the
// DAMOCLES_BENCH_JSON trajectory (query_outofdate / query_planned /
// query_report at 16 blocks).
#include "bench_util.hpp"

#include "query/query.hpp"
#include "query/report.hpp"

namespace {

using namespace damocles;

benchutil::FlowProject MakeAgedProject(int blocks) {
  auto project = benchutil::MakeFlowProject(5, blocks, 2, 3);
  workload::TraceSpec trace;
  trace.n_actions = 200;
  trace.seed = 5;
  workload::RunDesignSession(*project.server, project.flow, project.blocks,
                             trace);
  return project;
}

void BM_QueryOutOfDate(benchmark::State& state) {
  auto project = MakeAgedProject(static_cast<int>(state.range(0)));
  query::ProjectQuery q(project.server->database());
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.OutOfDate());
  }
  state.counters["objects"] =
      static_cast<double>(project.server->database().Stats().live_objects);
}
BENCHMARK(BM_QueryOutOfDate)->Arg(4)->Arg(16)->Arg(64);

void BM_QueryPlannedState(benchmark::State& state) {
  auto project = MakeAgedProject(static_cast<int>(state.range(0)));
  query::ProjectQuery q(project.server->database());
  const std::vector<query::PlannedProperty> plan = {
      {"uptodate", "true"}, {"result_0", "good"}, {"result_1", "good"}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.DistanceToPlannedState(plan, {}));
  }
}
BENCHMARK(BM_QueryPlannedState)->Arg(4)->Arg(16)->Arg(64);

void BM_QueryHierarchy(benchmark::State& state) {
  auto project = MakeAgedProject(8);
  query::ProjectQuery q(project.server->database());
  const metadb::Oid root{"blk0_sub", "view_0", 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.HierarchyMembers(root));
  }
}
BENCHMARK(BM_QueryHierarchy);

void BM_FullReport(benchmark::State& state) {
  auto project = MakeAgedProject(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        query::BuildProjectReport(project.server->database()));
  }
}
BENCHMARK(BM_FullReport)->Arg(4)->Arg(64);

void PrintSeries() {
  benchutil::PrintHeader(
      "Claim C5: project-state queries", "paper section 1 / 3.2",
      "After a 200-action session: what a designer learns from one query.");

  auto project = MakeAgedProject(16);
  query::ProjectQuery q(project.server->database());
  const auto stale = q.OutOfDate();
  const auto blockers = q.DistanceToPlannedState(
      {{"uptodate", "true"}, {"result_0", "good"}, {"result_1", "good"}}, {});
  const auto report = query::BuildProjectReport(project.server->database());

  std::printf("database: %zu live objects, %zu live links\n",
              project.server->database().Stats().live_objects,
              project.server->database().Stats().live_links);
  std::printf("out-of-date objects ....... %zu\n", stale.size());
  std::printf("planned-state blockers .... %zu\n", blockers.size());
  std::printf("latest-version rows ....... %zu (state-ok %zu)\n",
              report.total, report.state_ok);
  std::printf("\nSample of the blocker list (first 5):\n");
  for (size_t i = 0; i < blockers.size() && i < 5; ++i) {
    std::printf("  %s %s = '%s' (needs '%s')\n",
                FormatOid(blockers[i].oid).c_str(),
                blockers[i].property.c_str(),
                blockers[i].actual_value.c_str(),
                blockers[i].required_value.c_str());
  }
  std::printf("\n");

  // Trajectory series: latency of each core query on the aged project.
  const int reps = benchutil::SeriesScale(50, 3);
  benchutil::TimedSeries("query_outofdate", reps,
                         [&] { return q.OutOfDate(); });
  benchutil::TimedSeries("query_planned", reps, [&] {
    return q.DistanceToPlannedState(
        {{"uptodate", "true"}, {"result_0", "good"}, {"result_1", "good"}},
        {});
  });
  benchutil::TimedSeries("query_report", reps, [&] {
    return query::BuildProjectReport(project.server->database());
  });
}

}  // namespace

int main(int argc, char** argv) {
  PrintSeries();
  damocles::benchutil::RunBenchmarks(argc, argv);
  damocles::benchutil::WriteBenchJson();
  return 0;
}
