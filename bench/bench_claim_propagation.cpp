// Claim C2 — selective change propagation (paper §3.2).
//
// "Upon reception of a design event, the run-time engine propagates
// throughout the meta-data the event by selectively traversing the data
// relationships."  The alternative is to rederive everyone's state from
// scratch after every change. Series: objects touched and wall time per
// change event, selective engine vs full-recompute baseline, sweeping
// the design size — the gap should widen linearly with design size
// (full recompute is O(V+E) per event, selective is O(affected)).
// The second half benchmarks the engine's wave-expansion fast paths on
// a hub-heavy design where most links do not propagate the event being
// delivered, across the engine's three generations:
//   scan     — pre-index engine: linear link scans per delivery;
//   indexed  — PR-1 engine: per-OID index, string-keyed lookups,
//              per-delivery payload copies (use_propagation_index only);
//   interned — symbol-interned hot path: packed integer keys, compiled
//              rule tables, copy-free wave delivery (the default).
// The third half scales out: the sharded engine partitions the design
// into block subtrees (metadb::ShardMap) and runs one engine + worker
// per shard, so independent subtrees propagate concurrently; the series
// sweeps 1/2/4/8 shards over a fixed multi-subtree workload and reports
// aggregate deliveries/sec (expect ~min(shards, cores, subtrees)x).
// Series are also registered with the DAMOCLES_BENCH_JSON emitter so
// the perf trajectory is machine-readable (see bench_util.hpp).
#include "bench_util.hpp"

#include <chrono>
#include <memory>

#include "baseline/full_recompute.hpp"
#include "common/clock.hpp"
#include "engine/run_time_engine.hpp"
#include "engine/sharded_engine.hpp"
#include "metadb/meta_database.hpp"

namespace {

using namespace damocles;

/// A project whose golden-view edit invalidates one flow chain out of
/// many: the paper's locality argument in its purest form.
benchutil::FlowProject MakeWideProject(int n_blocks) {
  return benchutil::MakeFlowProject(5, n_blocks, /*hierarchy_depth=*/2,
                                    /*hierarchy_fanout=*/3);
}

void BM_SelectivePropagation(benchmark::State& state) {
  auto project = MakeWideProject(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    project.server->CheckIn("blk0", "view_0", "edit", "bench");
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["db_objects"] =
      static_cast<double>(project.server->database().Stats().live_objects);
}
BENCHMARK(BM_SelectivePropagation)->Arg(4)->Arg(16)->Arg(64);

void BM_FullRecompute(benchmark::State& state) {
  auto project = MakeWideProject(static_cast<int>(state.range(0)));
  baseline::FullRecomputeTracker tracker(project.server->database());
  for (auto _ : state) {
    project.server->CheckIn("blk0", "view_0", "edit", "bench");
    tracker.RecomputeAll();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["db_objects"] =
      static_cast<double>(project.server->database().Stats().live_objects);
}
BENCHMARK(BM_FullRecompute)->Arg(4)->Arg(16)->Arg(64);

// --- Wave-expansion fast path: scan vs indexed vs interned ----------------

/// The engine generations the hub benchmark compares.
enum class EngineMode { kScan, kIndexed, kInterned };

const char* ModeName(EngineMode mode) {
  switch (mode) {
    case EngineMode::kScan: return "scan";
    case EngineMode::kIndexed: return "indexed";
    case EngineMode::kInterned: return "interned";
  }
  return "?";
}

engine::EngineOptions ModeOptions(EngineMode mode) {
  engine::EngineOptions options;
  options.use_propagation_index = mode != EngineMode::kScan;
  options.interned_fast_path = mode == EngineMode::kInterned;
  options.journal_propagated = false;
  return options;
}

/// A hub with `degree` outgoing derive links. Only every 16th link
/// propagates "edit"; the rest carry a realistic mix of other event
/// names the linear scan has to wade through on every wave.
struct HubDesign {
  metadb::MetaDatabase db;
  SimClock clock;
  std::unique_ptr<engine::RunTimeEngine> engine;
  metadb::Oid hub;
};

std::unique_ptr<HubDesign> MakeHubDesign(int degree, EngineMode mode) {
  auto design = std::make_unique<HubDesign>();
  design->engine = std::make_unique<engine::RunTimeEngine>(
      design->db, design->clock, ModeOptions(mode));

  const metadb::OidId hub =
      design->db.CreateNextVersion("hub", "netlist", "bench", 0);
  design->hub = design->db.GetObject(hub).oid;
  const std::vector<std::string> bystander = {
      "ckin", "outofdate", "hdl_sim", "nl_sim", "lvs", "drc", "erc"};
  for (int i = 0; i < degree; ++i) {
    const metadb::OidId spoke = design->db.CreateNextVersion(
        "spoke" + std::to_string(i), "derived", "bench", 0);
    design->db.CreateLink(
        metadb::LinkKind::kDerive, hub, spoke,
        i % 16 == 0 ? std::vector<std::string>{"edit", "ckin"} : bystander,
        "derive_from", metadb::CarryPolicy::kNone);
  }
  return design;
}

void DeliverWave(HubDesign& design) {
  events::EventMessage event;
  event.name = "edit";
  event.direction = events::Direction::kDown;
  event.target = design.hub;
  event.user = "bench";
  design.engine->PostEvent(std::move(event));
  design.engine->ProcessAll();
  design.engine->ClearJournal();
}

void BM_WaveExpansion(benchmark::State& state, EngineMode mode) {
  auto design = MakeHubDesign(static_cast<int>(state.range(0)), mode);
  for (auto _ : state) {
    DeliverWave(*design);
  }
  state.SetItemsProcessed(state.iterations());
  const engine::EngineStats& stats = design->engine->stats();
  state.counters["deliveries_per_wave"] = stats.DeliveriesPerWave();
  // Per-wave averages (totals would scale with iteration count).
  state.counters["links_scanned"] = benchmark::Counter(
      static_cast<double>(stats.links_scanned), benchmark::Counter::kAvgIterations);
  state.counters["index_lookups"] = benchmark::Counter(
      static_cast<double>(stats.index_lookups), benchmark::Counter::kAvgIterations);
}
BENCHMARK_CAPTURE(BM_WaveExpansion, linear_scan, EngineMode::kScan)
    ->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK_CAPTURE(BM_WaveExpansion, indexed, EngineMode::kIndexed)
    ->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK_CAPTURE(BM_WaveExpansion, interned, EngineMode::kInterned)
    ->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void PrintSeries() {
  benchutil::PrintHeader(
      "Claim C2: selective propagation vs full recomputation",
      "paper section 3.2",
      "One golden-view edit in a project of N independent subsystems. "
      "Selective cost follows\nthe affected chain only; full recompute "
      "touches the whole database every time.");

  std::printf("%-10s %-12s %-22s %-22s %-10s\n", "blocks", "objects",
              "selective (touched)", "full sweep (touched)", "ratio");
  const int max_blocks = benchutil::SeriesScale(128, 8);
  for (const int blocks : {2, 8, 32, 128}) {
    if (blocks > max_blocks) break;
    auto project = MakeWideProject(blocks);
    auto& engine = project.server->engine();

    engine.ResetStats();
    project.server->CheckIn("blk0", "view_0", "edit", "bench");
    // Touched = origin + propagated deliveries.
    const size_t selective = 1 + engine.stats().propagated_deliveries;

    baseline::FullRecomputeTracker tracker(project.server->database());
    tracker.RecomputeAll();
    const size_t full = tracker.stats().objects_visited;

    std::printf("%-10d %-12zu %-22zu %-22zu %-10.1f\n", blocks,
                project.server->database().Stats().live_objects, selective,
                full, static_cast<double>(full) /
                          static_cast<double>(selective ? selective : 1));
  }
  std::printf(
      "\nExpected shape (paper): the selective engine's work is flat in "
      "total design size;\nthe baseline grows linearly, so the ratio widens "
      "with the project.\n\n");
}

void PrintFastPathSeries() {
  benchutil::PrintHeader(
      "Wave-expansion fast path: scan vs indexed vs interned engine",
      "run-time engine phase 5",
      "One 'edit' wave leaves a hub whose degree grows; only 1 in 16 links "
      "propagates the\nevent. scan wades through every PROPAGATE list; "
      "indexed (PR-1) hashes event-name\nstrings and copies the payload per "
      "delivery; interned does one integer probe per\nOID on a shared "
      "payload.");

  const int waves = benchutil::SeriesScale(2000, 20);
  const int warmup = benchutil::SeriesScale(100, 2);
  const int max_degree = benchutil::SeriesScale(4096, 256);
  constexpr EngineMode kModes[] = {EngineMode::kScan, EngineMode::kIndexed,
                                   EngineMode::kInterned};
  std::printf("%-10s %-18s %-14s %-14s %-14s %-12s %-12s\n", "degree",
              "deliveries/wave", "scan (us)", "indexed (us)", "interned (us)",
              "idx/scan", "int/idx");
  for (const int degree : {256, 1024, 4096}) {
    if (degree > max_degree) break;
    double micros[3] = {0.0, 0.0, 0.0};
    double deliveries_per_wave = 0.0;
    for (const EngineMode mode : kModes) {
      auto design = MakeHubDesign(degree, mode);
      for (int i = 0; i < warmup; ++i) DeliverWave(*design);
      design->engine->ResetStats();
      const auto start = std::chrono::steady_clock::now();
      for (int i = 0; i < waves; ++i) DeliverWave(*design);
      const auto elapsed = std::chrono::steady_clock::now() - start;
      const double us_per_wave =
          std::chrono::duration<double, std::micro>(elapsed).count() / waves;
      micros[static_cast<int>(mode)] = us_per_wave;
      deliveries_per_wave = design->engine->stats().DeliveriesPerWave();
      benchutil::AddBenchJson(
          std::string("wave_") + ModeName(mode) + "_d" +
              std::to_string(degree),
          us_per_wave * 1e3,
          us_per_wave > 0.0 ? deliveries_per_wave * 1e6 / us_per_wave : 0.0);
    }
    std::printf("%-10d %-18.1f %-14.2f %-14.2f %-14.2f %-12.2f %-12.2f\n",
                degree, deliveries_per_wave, micros[0], micros[1], micros[2],
                micros[0] / micros[1], micros[1] / micros[2]);
  }
  std::printf(
      "\nExpected shape: scan cost grows with hub degree while the indexed "
      "engines follow\nthe receiver count only; the interned engine drops "
      "the per-delivery string and\ncopy work on top, so int/idx holds "
      "above 1.5x from degree 1024 up.\n\n");
}

// --- Sharded wave engine: aggregate throughput by shard count ---------------

/// A project of `subtrees` independent hub blocks, each with `degree`
/// use-linked component blocks (1 in 4 links propagates "edit") and an
/// assign rule per delivery — hub + components form one use-link
/// subtree, the unit the shard map deals out, so waves never cross
/// shards and the series isolates parallel wave throughput.
struct ShardedDesign {
  metadb::MetaDatabase db;
  SimClock clock;
  std::unique_ptr<engine::ShardedEngine> engine;
  std::vector<metadb::Oid> hubs;
  size_t deliveries_per_round = 0;
};

std::unique_ptr<ShardedDesign> MakeShardedDesign(int subtrees, int degree,
                                                 uint32_t shards) {
  auto design = std::make_unique<ShardedDesign>();
  engine::ShardedEngineOptions options;
  options.num_shards = shards;
  options.engine.journal_propagated = false;
  design->engine = std::make_unique<engine::ShardedEngine>(
      design->db, design->clock, options);
  // Per-delivery work: one compiled-table hit plus one assign, so the
  // series measures wave throughput, not empty-loop dispatch.
  design->engine->LoadBlueprintText(R"(blueprint sharded_bench
view default
  when edit do last_edit = $arg done
endview
endblueprint)");

  for (int s = 0; s < subtrees; ++s) {
    const std::string block = "hub" + std::to_string(s);
    const metadb::OidId hub =
        design->engine->OnCreateObject(block, "netlist", "bench");
    design->hubs.push_back(design->db.GetObject(hub).oid);
    for (int i = 0; i < degree; ++i) {
      // Use links (hierarchy) keep every component in the hub's
      // subtree — and thus on the hub's shard.
      const metadb::OidId component = design->engine->OnCreateObject(
          block + "_c" + std::to_string(i), "netlist", "bench");
      design->db.CreateLink(
          metadb::LinkKind::kUse, hub, component,
          i % 4 == 0 ? std::vector<std::string>{"edit"}
                     : std::vector<std::string>{"ckin", "lvs", "drc"},
          "", metadb::CarryPolicy::kNone);
    }
  }
  // Construction done: deal the subtree roots round-robin across the
  // shards (until a rebalance, fresh roots ride the hash fallback).
  design->engine->shard_map().Rebalance();
  design->deliveries_per_round = static_cast<size_t>(subtrees) *
                                 (1 + static_cast<size_t>((degree + 3) / 4));
  return design;
}

void DeliverShardedRound(ShardedDesign& design) {
  for (const metadb::Oid& hub : design.hubs) {
    events::EventMessage event;
    event.name = "edit";
    event.direction = events::Direction::kDown;
    event.target = hub;
    event.user = "bench";
    design.engine->PostEvent(std::move(event));
  }
  design.engine->Drain();
  design.engine->ClearJournals();
}

void PrintShardedSeries() {
  benchutil::PrintHeader(
      "Sharded wave engine: aggregate throughput by shard count",
      "block-subtree shards, src/engine/sharded_engine.hpp",
      "One 'edit' wave per subtree per round across 32 independent "
      "subtrees; the shard map\ndeals subtrees round-robin, so shards "
      "propagate concurrently. Aggregate\ndeliveries/sec should scale "
      "with min(shards, cores, subtrees).");

  const int subtrees = benchutil::SeriesScale(32, 8);
  const int degree = benchutil::SeriesScale(512, 64);
  const int rounds = benchutil::SeriesScale(200, 4);
  const int warmup = benchutil::SeriesScale(20, 1);

  double base_rate = 0.0;
  std::printf("%-10s %-16s %-22s %-10s\n", "shards", "us/round",
              "deliveries/sec", "vs 1");
  for (const uint32_t shards : {1u, 2u, 4u, 8u}) {
    auto design = MakeShardedDesign(subtrees, degree, shards);
    for (int i = 0; i < warmup; ++i) DeliverShardedRound(*design);
    design->engine->ResetStats();
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < rounds; ++i) DeliverShardedRound(*design);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    const double us_per_round =
        std::chrono::duration<double, std::micro>(elapsed).count() / rounds;
    const double rate =
        us_per_round > 0.0
            ? static_cast<double>(design->deliveries_per_round) * 1e6 /
                  us_per_round
            : 0.0;
    if (shards == 1) base_rate = rate;
    std::printf("%-10u %-16.1f %-22.0f %-10.2f\n", shards, us_per_round, rate,
                base_rate > 0.0 ? rate / base_rate : 0.0);
    benchutil::AddBenchJson("wave_sharded_s" + std::to_string(shards),
                            us_per_round * 1e3, rate);
  }
  std::printf(
      "\nExpected shape: near-linear up to the core count (flat on a "
      "single-core host);\nwave_sharded_s1 also pins the sharded layer's "
      "routing overhead against the plain\ninterned engine above.\n\n");
}

// --- Batched cross-shard handoff: boundary-heavy workload --------------------

/// A deliberately boundary-heavy design: `hubs` hub blocks, each with
/// `degree` derive links to single-block spoke subtrees dealt
/// round-robin across the shards — so a hub wave's foreign receivers
/// interleave across every shard with run length ~1, the worst case
/// for the PR-4 consecutive-run handoff (one sub-wave task per
/// receiver) and the best case for per-(epoch, shard) batching (one
/// task per shard).
struct BoundaryDesign {
  metadb::MetaDatabase db;
  SimClock clock;
  std::unique_ptr<engine::ShardedEngine> engine;
  std::vector<metadb::Oid> hubs;
  size_t deliveries_per_round = 0;
};

std::unique_ptr<BoundaryDesign> MakeBoundaryDesign(int hubs, int degree,
                                                   uint32_t shards,
                                                   bool batched) {
  auto design = std::make_unique<BoundaryDesign>();
  engine::ShardedEngineOptions options;
  options.num_shards = shards;
  options.batched_handoff = batched;
  options.engine.journal_propagated = false;
  design->engine = std::make_unique<engine::ShardedEngine>(
      design->db, design->clock, options);
  design->engine->LoadBlueprintText(R"(blueprint boundary_bench
view default
  when edit do last_edit = x done
endview
endblueprint)");

  for (int h = 0; h < hubs; ++h) {
    const std::string block = "bhub" + std::to_string(h);
    const metadb::OidId hub =
        design->engine->OnCreateObject(block, "netlist", "bench");
    design->hubs.push_back(design->db.GetObject(hub).oid);
    for (int i = 0; i < degree; ++i) {
      // Each spoke is its own block (and thus its own subtree root):
      // round-robin dealing spreads consecutive receivers across
      // shards.
      const metadb::OidId spoke = design->engine->OnCreateObject(
          block + "_s" + std::to_string(i), "netlist", "bench");
      design->db.CreateLink(metadb::LinkKind::kDerive, hub, spoke, {"edit"},
                            "derive_from", metadb::CarryPolicy::kNone);
    }
  }
  design->engine->shard_map().Rebalance();
  design->deliveries_per_round =
      static_cast<size_t>(hubs) * (1 + static_cast<size_t>(degree));
  return design;
}

void DeliverBoundaryRound(BoundaryDesign& design) {
  for (const metadb::Oid& hub : design.hubs) {
    events::EventMessage event;
    event.name = "edit";
    event.direction = events::Direction::kDown;
    event.target = hub;
    event.user = "bench";
    design.engine->PostEvent(std::move(event));
  }
  design.engine->Drain();
  design.engine->ClearJournals();
}

void PrintBatchedHandoffSeries() {
  benchutil::PrintHeader(
      "Batched cross-shard handoff: aggregated vs per-run sub-waves",
      "per-(epoch, target shard) seed batching + lane stealing, "
      "src/engine/sharded_engine.hpp",
      "Hub waves whose foreign receivers interleave across every shard "
      "(run length ~1).\nUnbatched posts one sub-wave task per receiver "
      "run; batched posts one aggregated\ntask per (wave, target shard), "
      "amortizing ring traffic and claim rounds.");

  // The Release CI job HARD-GATES on batched_s8 > unbatched_s8 from
  // the smoke run, so the smoke sample is kept deliberately larger
  // than the other series' (the measured gap is ~1.4-3x; 30 rounds on
  // this small design still finish in a few ms and keep one scheduler
  // hiccup from inverting the ratio on a shared runner).
  const int hubs = benchutil::SeriesScale(8, 4);
  const int degree = benchutil::SeriesScale(256, 48);
  const int rounds = benchutil::SeriesScale(150, 30);
  const int warmup = benchutil::SeriesScale(15, 3);

  std::printf("%-10s %-12s %-16s %-22s %-14s %-12s\n", "shards", "mode",
              "us/round", "deliveries/sec", "handoff", "batched/un");
  for (const uint32_t shards : {2u, 4u, 8u}) {
    double rates[2] = {0.0, 0.0};
    size_t handoffs[2] = {0, 0};
    for (const bool batched : {false, true}) {
      auto design = MakeBoundaryDesign(hubs, degree, shards, batched);
      for (int i = 0; i < warmup; ++i) DeliverBoundaryRound(*design);
      design->engine->ResetStats();
      const auto start = std::chrono::steady_clock::now();
      for (int i = 0; i < rounds; ++i) DeliverBoundaryRound(*design);
      const auto elapsed = std::chrono::steady_clock::now() - start;
      const double us_per_round =
          std::chrono::duration<double, std::micro>(elapsed).count() / rounds;
      const double rate =
          us_per_round > 0.0
              ? static_cast<double>(design->deliveries_per_round) * 1e6 /
                    us_per_round
              : 0.0;
      rates[batched ? 1 : 0] = rate;
      handoffs[batched ? 1 : 0] =
          design->engine->stats().handoff_waves / static_cast<size_t>(rounds);
      benchutil::AddBenchJson(
          std::string("wave_sharded_") + (batched ? "batched" : "unbatched") +
              "_s" + std::to_string(shards),
          us_per_round * 1e3, rate);
      std::printf("%-10u %-12s %-16.1f %-22.0f %-14zu %-12s\n", shards,
                  batched ? "batched" : "unbatched", us_per_round, rate,
                  handoffs[batched ? 1 : 0], "");
    }
    std::printf("%-10u %-12s %-16s %-22s %-14s %-12.2f\n", shards, "ratio",
                "", "", "", rates[0] > 0.0 ? rates[1] / rates[0] : 0.0);
  }
  std::printf(
      "\nExpected shape: batched posts ~(shards-1) sub-wave tasks per hub "
      "wave instead of\n~degree, so deliveries/sec should hold a >=1.2x "
      "lead at 8 shards on this workload.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintSeries();
  PrintFastPathSeries();
  PrintShardedSeries();
  PrintBatchedHandoffSeries();
  damocles::benchutil::RunBenchmarks(argc, argv);
  damocles::benchutil::WriteBenchJson();
  return 0;
}
