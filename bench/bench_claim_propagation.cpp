// Claim C2 — selective change propagation (paper §3.2).
//
// "Upon reception of a design event, the run-time engine propagates
// throughout the meta-data the event by selectively traversing the data
// relationships."  The alternative is to rederive everyone's state from
// scratch after every change. Series: objects touched and wall time per
// change event, selective engine vs full-recompute baseline, sweeping
// the design size — the gap should widen linearly with design size
// (full recompute is O(V+E) per event, selective is O(affected)).
// The second half benchmarks the engine's wave-expansion fast path: the
// per-OID propagation index versus the pre-index linear link scan
// (EngineOptions::use_propagation_index = false), on a hub-heavy design
// where most links do not propagate the event being delivered.
#include "bench_util.hpp"

#include <chrono>
#include <memory>

#include "baseline/full_recompute.hpp"
#include "common/clock.hpp"
#include "engine/run_time_engine.hpp"
#include "metadb/meta_database.hpp"

namespace {

using namespace damocles;

/// A project whose golden-view edit invalidates one flow chain out of
/// many: the paper's locality argument in its purest form.
benchutil::FlowProject MakeWideProject(int n_blocks) {
  return benchutil::MakeFlowProject(5, n_blocks, /*hierarchy_depth=*/2,
                                    /*hierarchy_fanout=*/3);
}

void BM_SelectivePropagation(benchmark::State& state) {
  auto project = MakeWideProject(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    project.server->CheckIn("blk0", "view_0", "edit", "bench");
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["db_objects"] =
      static_cast<double>(project.server->database().Stats().live_objects);
}
BENCHMARK(BM_SelectivePropagation)->Arg(4)->Arg(16)->Arg(64);

void BM_FullRecompute(benchmark::State& state) {
  auto project = MakeWideProject(static_cast<int>(state.range(0)));
  baseline::FullRecomputeTracker tracker(project.server->database());
  for (auto _ : state) {
    project.server->CheckIn("blk0", "view_0", "edit", "bench");
    tracker.RecomputeAll();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["db_objects"] =
      static_cast<double>(project.server->database().Stats().live_objects);
}
BENCHMARK(BM_FullRecompute)->Arg(4)->Arg(16)->Arg(64);

// --- Wave-expansion fast path: propagation index vs linear link scan ------

/// A hub with `degree` outgoing derive links. Only every 16th link
/// propagates "edit"; the rest carry a realistic mix of other event
/// names the linear scan has to wade through on every wave.
struct HubDesign {
  metadb::MetaDatabase db;
  SimClock clock;
  std::unique_ptr<engine::RunTimeEngine> engine;
  metadb::Oid hub;
};

std::unique_ptr<HubDesign> MakeHubDesign(int degree, bool use_index) {
  auto design = std::make_unique<HubDesign>();
  engine::EngineOptions options;
  options.use_propagation_index = use_index;
  options.journal_propagated = false;
  design->engine = std::make_unique<engine::RunTimeEngine>(
      design->db, design->clock, options);

  const metadb::OidId hub =
      design->db.CreateNextVersion("hub", "netlist", "bench", 0);
  design->hub = design->db.GetObject(hub).oid;
  const std::vector<std::string> bystander = {
      "ckin", "outofdate", "hdl_sim", "nl_sim", "lvs", "drc", "erc"};
  for (int i = 0; i < degree; ++i) {
    const metadb::OidId spoke = design->db.CreateNextVersion(
        "spoke" + std::to_string(i), "derived", "bench", 0);
    design->db.CreateLink(
        metadb::LinkKind::kDerive, hub, spoke,
        i % 16 == 0 ? std::vector<std::string>{"edit", "ckin"} : bystander,
        "derive_from", metadb::CarryPolicy::kNone);
  }
  return design;
}

void DeliverWave(HubDesign& design) {
  events::EventMessage event;
  event.name = "edit";
  event.direction = events::Direction::kDown;
  event.target = design.hub;
  event.user = "bench";
  design.engine->PostEvent(std::move(event));
  design.engine->ProcessAll();
  design.engine->ClearJournal();
}

void BM_WaveExpansion(benchmark::State& state, bool use_index) {
  auto design = MakeHubDesign(static_cast<int>(state.range(0)), use_index);
  for (auto _ : state) {
    DeliverWave(*design);
  }
  state.SetItemsProcessed(state.iterations());
  const engine::EngineStats& stats = design->engine->stats();
  state.counters["deliveries_per_wave"] = stats.DeliveriesPerWave();
  // Per-wave averages (totals would scale with iteration count).
  state.counters["links_scanned"] = benchmark::Counter(
      static_cast<double>(stats.links_scanned), benchmark::Counter::kAvgIterations);
  state.counters["index_lookups"] = benchmark::Counter(
      static_cast<double>(stats.index_lookups), benchmark::Counter::kAvgIterations);
}
BENCHMARK_CAPTURE(BM_WaveExpansion, indexed, true)
    ->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK_CAPTURE(BM_WaveExpansion, linear_scan, false)
    ->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void PrintSeries() {
  benchutil::PrintHeader(
      "Claim C2: selective propagation vs full recomputation",
      "paper section 3.2",
      "One golden-view edit in a project of N independent subsystems. "
      "Selective cost follows\nthe affected chain only; full recompute "
      "touches the whole database every time.");

  std::printf("%-10s %-12s %-22s %-22s %-10s\n", "blocks", "objects",
              "selective (touched)", "full sweep (touched)", "ratio");
  const int max_blocks = benchutil::SeriesScale(128, 8);
  for (const int blocks : {2, 8, 32, 128}) {
    if (blocks > max_blocks) break;
    auto project = MakeWideProject(blocks);
    auto& engine = project.server->engine();

    engine.ResetStats();
    project.server->CheckIn("blk0", "view_0", "edit", "bench");
    // Touched = origin + propagated deliveries.
    const size_t selective = 1 + engine.stats().propagated_deliveries;

    baseline::FullRecomputeTracker tracker(project.server->database());
    tracker.RecomputeAll();
    const size_t full = tracker.stats().objects_visited;

    std::printf("%-10d %-12zu %-22zu %-22zu %-10.1f\n", blocks,
                project.server->database().Stats().live_objects, selective,
                full, static_cast<double>(full) /
                          static_cast<double>(selective ? selective : 1));
  }
  std::printf(
      "\nExpected shape (paper): the selective engine's work is flat in "
      "total design size;\nthe baseline grows linearly, so the ratio widens "
      "with the project.\n\n");
}

void PrintFastPathSeries() {
  benchutil::PrintHeader(
      "Wave-expansion fast path: propagation index vs linear link scan",
      "run-time engine phase 5",
      "One 'edit' wave leaves a hub whose degree grows; only 1 in 16 links "
      "propagates the\nevent. The pre-index engine scans every link's "
      "PROPAGATE list per wave; the indexed\nengine asks one hash lookup "
      "per OID.");

  const int waves = benchutil::SeriesScale(2000, 20);
  const int warmup = benchutil::SeriesScale(100, 2);
  const int max_degree = benchutil::SeriesScale(4096, 256);
  std::printf("%-10s %-18s %-18s %-18s %-10s\n", "degree", "deliveries/wave",
              "scan (us/wave)", "indexed (us/wave)", "speedup");
  for (const int degree : {256, 1024, 4096}) {
    if (degree > max_degree) break;
    double micros[2] = {0.0, 0.0};
    double deliveries_per_wave = 0.0;
    for (const bool use_index : {false, true}) {
      auto design = MakeHubDesign(degree, use_index);
      for (int i = 0; i < warmup; ++i) DeliverWave(*design);
      design->engine->ResetStats();
      const auto start = std::chrono::steady_clock::now();
      for (int i = 0; i < waves; ++i) DeliverWave(*design);
      const auto elapsed = std::chrono::steady_clock::now() - start;
      micros[use_index ? 1 : 0] =
          std::chrono::duration<double, std::micro>(elapsed).count() / waves;
      deliveries_per_wave = design->engine->stats().DeliveriesPerWave();
    }
    std::printf("%-10d %-18.1f %-18.2f %-18.2f %-10.2f\n", degree,
                deliveries_per_wave, micros[0], micros[1],
                micros[0] / micros[1]);
  }
  std::printf(
      "\nExpected shape: scan cost grows with hub degree while indexed cost "
      "follows the\nreceiver count only, so the speedup widens with "
      "connectivity.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintSeries();
  PrintFastPathSeries();
  damocles::benchutil::RunBenchmarks(argc, argv);
  return 0;
}
