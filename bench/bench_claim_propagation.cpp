// Claim C2 — selective change propagation (paper §3.2).
//
// "Upon reception of a design event, the run-time engine propagates
// throughout the meta-data the event by selectively traversing the data
// relationships."  The alternative is to rederive everyone's state from
// scratch after every change. Series: objects touched and wall time per
// change event, selective engine vs full-recompute baseline, sweeping
// the design size — the gap should widen linearly with design size
// (full recompute is O(V+E) per event, selective is O(affected)).
#include "bench_util.hpp"

#include <chrono>

#include "baseline/full_recompute.hpp"

namespace {

using namespace damocles;

/// A project whose golden-view edit invalidates one flow chain out of
/// many: the paper's locality argument in its purest form.
benchutil::FlowProject MakeWideProject(int n_blocks) {
  return benchutil::MakeFlowProject(5, n_blocks, /*hierarchy_depth=*/2,
                                    /*hierarchy_fanout=*/3);
}

void BM_SelectivePropagation(benchmark::State& state) {
  auto project = MakeWideProject(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    project.server->CheckIn("blk0", "view_0", "edit", "bench");
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["db_objects"] =
      static_cast<double>(project.server->database().Stats().live_objects);
}
BENCHMARK(BM_SelectivePropagation)->Arg(4)->Arg(16)->Arg(64);

void BM_FullRecompute(benchmark::State& state) {
  auto project = MakeWideProject(static_cast<int>(state.range(0)));
  baseline::FullRecomputeTracker tracker(project.server->database());
  for (auto _ : state) {
    project.server->CheckIn("blk0", "view_0", "edit", "bench");
    tracker.RecomputeAll();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["db_objects"] =
      static_cast<double>(project.server->database().Stats().live_objects);
}
BENCHMARK(BM_FullRecompute)->Arg(4)->Arg(16)->Arg(64);

void PrintSeries() {
  benchutil::PrintHeader(
      "Claim C2: selective propagation vs full recomputation",
      "paper section 3.2",
      "One golden-view edit in a project of N independent subsystems. "
      "Selective cost follows\nthe affected chain only; full recompute "
      "touches the whole database every time.");

  std::printf("%-10s %-12s %-22s %-22s %-10s\n", "blocks", "objects",
              "selective (touched)", "full sweep (touched)", "ratio");
  for (const int blocks : {2, 8, 32, 128}) {
    auto project = MakeWideProject(blocks);
    auto& engine = project.server->engine();

    engine.ResetStats();
    project.server->CheckIn("blk0", "view_0", "edit", "bench");
    // Touched = origin + propagated deliveries.
    const size_t selective = 1 + engine.stats().propagated_deliveries;

    baseline::FullRecomputeTracker tracker(project.server->database());
    tracker.RecomputeAll();
    const size_t full = tracker.stats().objects_visited;

    std::printf("%-10d %-12zu %-22zu %-22zu %-10.1f\n", blocks,
                project.server->database().Stats().live_objects, selective,
                full, static_cast<double>(full) /
                          static_cast<double>(selective ? selective : 1));
  }
  std::printf(
      "\nExpected shape (paper): the selective engine's work is flat in "
      "total design size;\nthe baseline grows linearly, so the ratio widens "
      "with the project.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintSeries();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
