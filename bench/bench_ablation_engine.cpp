// Ablations of the run-time engine's design choices (DESIGN.md §5).
//
// Three decisions the reproduction makes are measured by turning each
// off (or simulating its absence):
//   A1  journal of propagated deliveries — audit trail vs raw speed;
//   A2  idempotent link registration — what parallel duplicate links
//       would cost the propagation walker;
//   A3  interactive (auto-drain) vs batch event intake — queue latency
//       against throughput.
#include "bench_util.hpp"

namespace {

using namespace damocles;

// --- A1: journaling -----------------------------------------------------------

void BM_A1_PropagationJournalOn(benchmark::State& state) {
  engine::ServerOptions options;
  options.engine.journal_propagated = true;
  engine::ProjectServer server("a1", options);
  workload::FlowSpec flow;
  flow.n_views = 16;
  server.InitializeBlueprint(workload::MakeFlowBlueprint(flow, "a1"));
  workload::InstantiateFlow(server, flow, "blk");
  for (auto _ : state) {
    server.CheckIn("blk", "view_0", "edit", "bench");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_A1_PropagationJournalOn);

void BM_A1_PropagationJournalOff(benchmark::State& state) {
  engine::ServerOptions options;
  options.engine.journal_propagated = false;
  engine::ProjectServer server("a1", options);
  workload::FlowSpec flow;
  flow.n_views = 16;
  server.InitializeBlueprint(workload::MakeFlowBlueprint(flow, "a1"));
  workload::InstantiateFlow(server, flow, "blk");
  for (auto _ : state) {
    server.CheckIn("blk", "view_0", "edit", "bench");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_A1_PropagationJournalOff);

// --- A2: duplicate links ----------------------------------------------------

/// Builds a 2-node graph with N parallel duplicate links (bypassing the
/// engine's idempotence, the way repeated tool runs would have without
/// it) and measures one propagation wave.
void BM_A2_ParallelDuplicateLinks(benchmark::State& state) {
  const int duplicates = static_cast<int>(state.range(0));
  auto server = std::make_unique<engine::ProjectServer>("a2");
  workload::FlowSpec flow;
  flow.n_views = 2;
  server->InitializeBlueprint(workload::MakeFlowBlueprint(flow, "a2"));
  workload::InstantiateFlow(*server, flow, "blk");

  auto& db = server->database();
  const auto from = *db.FindLatest("blk", "view_0");
  const auto to = *db.FindLatest("blk", "view_1");
  for (int i = 1; i < duplicates; ++i) {
    db.CreateLink(metadb::LinkKind::kDerive, from, to, {"outofdate"},
                  "derive_from", metadb::CarryPolicy::kNone);
  }
  events::EventMessage event;
  event.name = "outofdate";
  event.direction = events::Direction::kDown;
  event.target = db.GetObject(from).oid;
  for (auto _ : state) {
    server->Submit(event);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("parallel links=" + std::to_string(duplicates));
}
BENCHMARK(BM_A2_ParallelDuplicateLinks)->Arg(1)->Arg(16)->Arg(256);

// --- A3: intake mode ----------------------------------------------------------

void BM_A3_InteractiveIntake(benchmark::State& state) {
  auto project = benchutil::MakeFlowProject(5, 2);
  events::EventMessage event;
  event.name = "res0";
  event.direction = events::Direction::kUp;
  event.target = metadb::Oid{"blk0", "view_1", 1};
  for (auto _ : state) {
    project.server->Submit(event);  // Drains after every event.
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_A3_InteractiveIntake);

void BM_A3_BatchIntake(benchmark::State& state) {
  engine::ServerOptions options;
  options.auto_drain = false;
  engine::ProjectServer server("a3", options);
  workload::FlowSpec flow;
  flow.n_views = 5;
  server.InitializeBlueprint(workload::MakeFlowBlueprint(flow, "a3"));
  workload::InstantiateFlow(server, flow, "blk0");
  server.Drain();
  events::EventMessage event;
  event.name = "res0";
  event.direction = events::Direction::kUp;
  event.target = metadb::Oid{"blk0", "view_1", 1};
  constexpr int kBatch = 64;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) server.Submit(event);
    server.Drain();
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_A3_BatchIntake);

void PrintSeries() {
  benchutil::PrintHeader(
      "Ablations: engine design choices", "DESIGN.md section 5",
      "A1 journal of propagated deliveries, A2 idempotent link "
      "registration, A3 intake mode.");

  // A2's series: wave work with duplicate parallel links.
  std::printf("A2: one outofdate wave across N parallel duplicate links\n");
  std::printf("%-18s %-22s\n", "parallel links", "deliveries per wave");
  for (const int duplicates : {1, 16, 256}) {
    auto server = std::make_unique<engine::ProjectServer>("a2");
    workload::FlowSpec flow;
    flow.n_views = 2;
    server->InitializeBlueprint(workload::MakeFlowBlueprint(flow, "a2"));
    workload::InstantiateFlow(*server, flow, "blk");
    auto& db = server->database();
    const auto from = *db.FindLatest("blk", "view_0");
    const auto to = *db.FindLatest("blk", "view_1");
    for (int i = 1; i < duplicates; ++i) {
      db.CreateLink(metadb::LinkKind::kDerive, from, to, {"outofdate"},
                    "derive_from", metadb::CarryPolicy::kNone);
    }
    server->engine().ResetStats();
    events::EventMessage event;
    event.name = "outofdate";
    event.direction = events::Direction::kDown;
    event.target = db.GetObject(from).oid;
    server->Submit(event);
    std::printf("%-18d %-22zu\n", duplicates,
                server->engine().stats().propagated_deliveries);
  }
  std::printf(
      "\nThe shared visited set keeps deliveries flat even under duplicate "
      "links; the timed\nsection shows the residual per-link scan cost the "
      "idempotent registration avoids.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintSeries();
  damocles::benchutil::RunBenchmarks(argc, argv);
  return 0;
}
