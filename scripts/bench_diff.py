#!/usr/bin/env python3
"""Compare DAMOCLES bench JSON against a baseline from a previous commit.

Usage: bench_diff.py BASELINE_DIR CURRENT_DIR [--threshold PCT]

Both directories hold BENCH_*.json files written by the bench binaries'
DAMOCLES_BENCH_JSON emitter ({"series": [{"name", "ns_per_op",
"deliveries_per_sec"}, ...]}). Series are matched by (file, name); a
series whose ns_per_op grew by more than the threshold (default 20%) is
flagged as a regression.

A series present only on one side is reported exactly once: a fresh
series paired with a missing series from the same file is folded into a
single "renamed" line (matched by closest ns_per_op, the strongest
signal available without history) and still diffed across the rename;
the leftovers are listed as fresh (new bench) or missing (retired
bench). Earlier versions reported a rename as both fresh AND missing,
which double-counted every rename and buried real retirements.

Exit code is always 0 — regressions warn, they do not fail the build —
so a missing or partial baseline (first run on a branch, renamed bench)
degrades quietly. CI gates on *series presence* separately; this script
is only the trajectory diff.

Output is plain text plus GitHub ::warning:: annotations so regressions
surface on the workflow summary.
"""

import argparse
import json
import math
import pathlib
import sys


def load_series(directory: pathlib.Path) -> dict:
    """(file stem, series name) -> series dict, for every readable file."""
    series = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            print(f"bench_diff: skipping unreadable {path.name}: {error}")
            continue
        entries = data.get("series") if isinstance(data, dict) else None
        if not isinstance(entries, list):
            print(f"bench_diff: {path.name} has no series list — skipping")
            continue
        for entry in entries:
            if not isinstance(entry, dict):
                continue
            name = entry.get("name")
            if name:
                series[(path.stem, name)] = entry
    return series


def ns_per_op(entry: dict) -> float:
    """The entry's ns_per_op as a positive float, or 0.0 when missing,
    non-numeric, zero or negative (all of which mean "cannot diff")."""
    value = entry.get("ns_per_op")
    try:
        value = float(value)
    except (TypeError, ValueError):
        return 0.0
    return value if value > 0.0 else 0.0


# A fresh/missing pair only reads as a rename while the timings are
# within 4x of each other: a rename keeps the workload, so wildly
# different ns_per_op means an added series plus an unrelated retired
# one, not one series under a new name.
MAX_RENAME_LOG_RATIO = math.log(4.0)


def pair_renames(fresh: list, missing: list, baseline: dict, current: dict):
    """Pairs fresh/missing keys from the same file by closest ns_per_op
    (log-ratio distance, capped at MAX_RENAME_LOG_RATIO): a rename
    keeps the workload, so its timing is the best available
    fingerprint. All candidate pairs are ranked globally before taking
    them greedily, so a fresh series with an earlier name cannot steal
    a missing series from its true (closer-timed) rename partner.
    Returns (renames, fresh, missing) with every key appearing in
    exactly one list; a rename is (old_key, new_key)."""
    candidates = []
    for new_key in fresh:
        new_ns = ns_per_op(current[new_key])
        if new_ns <= 0.0:
            continue  # No fingerprint — cannot claim a rename.
        for old_key in missing:
            if old_key[0] != new_key[0]:
                continue  # Renames stay within one bench binary's file.
            old_ns = ns_per_op(baseline[old_key])
            if old_ns <= 0.0:
                continue
            distance = abs(math.log(new_ns / old_ns))
            if distance <= MAX_RENAME_LOG_RATIO:
                candidates.append((distance, old_key, new_key))

    renames = []
    taken_old = set()
    taken_new = set()
    for _, old_key, new_key in sorted(candidates):
        if old_key in taken_old or new_key in taken_new:
            continue
        taken_old.add(old_key)
        taken_new.add(new_key)
        renames.append((old_key, new_key))
    leftover_fresh = [key for key in fresh if key not in taken_new]
    remaining_missing = [key for key in missing if key not in taken_old]
    return renames, leftover_fresh, remaining_missing


def diff_directories(baseline_dir: pathlib.Path, current_dir: pathlib.Path,
                     threshold: float) -> dict:
    """The structured diff the CLI prints (and the unit test asserts):
    {compared, regressions, improvements, fresh, missing, renames,
    skipped} — regression/improvement entries are printable lines,
    renames are (old "file:name", new "file:name") pairs."""
    baseline = load_series(baseline_dir)
    current = load_series(current_dir)
    report = {
        "baseline_series": len(baseline),
        "compared": 0,
        "regressions": [],
        "improvements": [],
        "fresh": [],
        "missing": [],
        "renames": [],
        "skipped": [],
    }
    if not baseline:
        return report

    fresh_keys = [key for key in sorted(current) if key not in baseline]
    missing_keys = [key for key in sorted(baseline) if key not in current]
    renames, fresh_keys, missing_keys = pair_renames(
        fresh_keys, missing_keys, baseline, current)

    def compare(old_key, old_entry, new_key, new_entry, renamed):
        old_ns = ns_per_op(old_entry)
        new_ns = ns_per_op(new_entry)
        label = f"{new_key[0]}:{new_key[1]}"
        if renamed:
            label = f"{old_key[1]} -> {new_key[1]} ({new_key[0]}, renamed)"
        if old_ns == 0.0 or new_ns == 0.0:
            report["skipped"].append(label)
            return
        report["compared"] += 1
        delta_pct = (new_ns - old_ns) / old_ns * 100.0
        line = f"{label}: {old_ns:.1f} -> {new_ns:.1f} ns/op ({delta_pct:+.1f}%)"
        if delta_pct > threshold:
            report["regressions"].append(line)
        elif delta_pct < -threshold:
            report["improvements"].append(line)

    for key in sorted(current):
        if key in baseline:
            compare(key, baseline[key], key, current[key], renamed=False)
    for old_key, new_key in renames:
        report["renames"].append(
            (f"{old_key[0]}:{old_key[1]}", f"{new_key[0]}:{new_key[1]}"))
        compare(old_key, baseline[old_key], new_key, current[new_key],
                renamed=True)
    report["fresh"] = [f"{key[0]}:{key[1]}" for key in fresh_keys]
    report["missing"] = [f"{key[0]}:{key[1]}" for key in missing_keys]
    return report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=pathlib.Path)
    parser.add_argument("current", type=pathlib.Path)
    parser.add_argument("--threshold", type=float, default=20.0,
                        help="regression threshold in percent (default 20)")
    args = parser.parse_args()

    if not args.baseline.is_dir():
        print(f"bench_diff: no baseline at {args.baseline} "
              "(first run on this branch?) — nothing to compare")
        return 0

    report = diff_directories(args.baseline, args.current, args.threshold)
    if report["baseline_series"] == 0:
        print("bench_diff: baseline holds no series — nothing to compare")
        return 0

    print(f"bench_diff: compared {report['compared']} series "
          f"(threshold {args.threshold:.0f}%)")
    for label in report["skipped"]:
        print(f"bench_diff: {label} has no usable ns_per_op on one side "
              "— skipping")
    for old, new in report["renames"]:
        print(f"bench_diff: renamed series {old} -> {new} "
              "(reported once; diffed across the rename)")
    if report["fresh"]:
        print(f"bench_diff: {len(report['fresh'])} series without baseline "
              f"(diffed from the next run): {', '.join(report['fresh'])}")
    if report["missing"]:
        print(f"bench_diff: {len(report['missing'])} baseline series no "
              f"longer emitted: {', '.join(report['missing'])}")
    for line in report["improvements"]:
        print(f"  improved: {line}")
    for line in report["regressions"]:
        print(f"  REGRESSED: {line}")
        # Annotate on the workflow run; smoke-mode numbers are noisy, so
        # this warns rather than fails until a trend is established.
        print(f"::warning title=bench regression::{line}")
    if not report["regressions"]:
        print("bench_diff: no regressions above threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
