#!/usr/bin/env python3
"""Compare DAMOCLES bench JSON against a baseline from a previous commit.

Usage: bench_diff.py BASELINE_DIR CURRENT_DIR [--threshold PCT]

Both directories hold BENCH_*.json files written by the bench binaries'
DAMOCLES_BENCH_JSON emitter ({"series": [{"name", "ns_per_op",
"deliveries_per_sec"}, ...]}). Series are matched by (file, name); a
series whose ns_per_op grew by more than the threshold (default 20%) is
flagged as a regression.

Exit code is always 0 — regressions warn, they do not fail the build —
so a missing or partial baseline (first run on a branch, renamed bench)
degrades quietly. CI gates on *series presence* separately; this script
is only the trajectory diff.

Output is plain text plus GitHub ::warning:: annotations so regressions
surface on the workflow summary.
"""

import argparse
import json
import pathlib
import sys


def load_series(directory: pathlib.Path) -> dict:
    """(file stem, series name) -> series dict, for every readable file."""
    series = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            print(f"bench_diff: skipping unreadable {path.name}: {error}")
            continue
        entries = data.get("series") if isinstance(data, dict) else None
        if not isinstance(entries, list):
            print(f"bench_diff: {path.name} has no series list — skipping")
            continue
        for entry in entries:
            if not isinstance(entry, dict):
                continue
            name = entry.get("name")
            if name:
                series[(path.stem, name)] = entry
    return series


def ns_per_op(entry: dict) -> float:
    """The entry's ns_per_op as a positive float, or 0.0 when missing,
    non-numeric, zero or negative (all of which mean "cannot diff")."""
    value = entry.get("ns_per_op")
    try:
        value = float(value)
    except (TypeError, ValueError):
        return 0.0
    return value if value > 0.0 else 0.0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=pathlib.Path)
    parser.add_argument("current", type=pathlib.Path)
    parser.add_argument("--threshold", type=float, default=20.0,
                        help="regression threshold in percent (default 20)")
    args = parser.parse_args()

    if not args.baseline.is_dir():
        print(f"bench_diff: no baseline at {args.baseline} "
              "(first run on this branch?) — nothing to compare")
        return 0

    baseline = load_series(args.baseline)
    current = load_series(args.current)
    if not baseline:
        print("bench_diff: baseline holds no series — nothing to compare")
        return 0

    regressions = []
    improvements = []
    fresh = []
    compared = 0
    for key, entry in sorted(current.items()):
        base = baseline.get(key)
        if base is None:
            # A series with no baseline (new bench, renamed series) is
            # expected on its first run: note it, never divide by it.
            fresh.append(f"{key[0]}:{key[1]}")
            continue
        old_ns = ns_per_op(base)
        new_ns = ns_per_op(entry)
        if old_ns == 0.0 or new_ns == 0.0:
            print(f"bench_diff: {key[0]}:{key[1]} has no usable ns_per_op "
                  "on one side — skipping")
            continue
        compared += 1
        delta_pct = (new_ns - old_ns) / old_ns * 100.0
        line = (f"{key[0]}:{key[1]}: {old_ns:.1f} -> {new_ns:.1f} ns/op "
                f"({delta_pct:+.1f}%)")
        if delta_pct > args.threshold:
            regressions.append(line)
        elif delta_pct < -args.threshold:
            improvements.append(line)

    print(f"bench_diff: compared {compared} series "
          f"(threshold {args.threshold:.0f}%)")
    if fresh:
        print(f"bench_diff: {len(fresh)} series without baseline "
              f"(diffed from the next run): {', '.join(fresh)}")
    for line in improvements:
        print(f"  improved: {line}")
    for line in regressions:
        print(f"  REGRESSED: {line}")
        # Annotate on the workflow run; smoke-mode numbers are noisy, so
        # this warns rather than fails until a trend is established.
        print(f"::warning title=bench regression::{line}")
    if not regressions:
        print("bench_diff: no regressions above threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
