#!/usr/bin/env python3
"""Unit tests for bench_diff.py — in particular the rename folding: a
series that changed name between runs must be reported exactly once (as
a rename, diffed across it), not double-counted as both "fresh" and
"missing". Registered with ctest as bench_diff_py."""

import json
import pathlib
import sys
import tempfile
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import bench_diff  # noqa: E402


def write_bench(directory: pathlib.Path, stem: str, series: dict) -> None:
    payload = {"series": [
        {"name": name, "ns_per_op": ns, "deliveries_per_sec": 1.0}
        for name, ns in series.items()
    ]}
    (directory / f"{stem}.json").write_text(json.dumps(payload))


class BenchDiffTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        root = pathlib.Path(self._tmp.name)
        self.baseline = root / "baseline"
        self.current = root / "current"
        self.baseline.mkdir()
        self.current.mkdir()

    def tearDown(self):
        self._tmp.cleanup()

    def diff(self, threshold=20.0):
        return bench_diff.diff_directories(self.baseline, self.current,
                                           threshold)

    def test_identical_series_report_nothing(self):
        write_bench(self.baseline, "BENCH_a", {"wave_s1": 100.0})
        write_bench(self.current, "BENCH_a", {"wave_s1": 104.0})
        report = self.diff()
        self.assertEqual(report["compared"], 1)
        self.assertEqual(report["regressions"], [])
        self.assertEqual(report["fresh"], [])
        self.assertEqual(report["missing"], [])
        self.assertEqual(report["renames"], [])

    def test_regression_and_improvement_flagged(self):
        write_bench(self.baseline, "BENCH_a",
                    {"slow": 100.0, "fast": 100.0, "flat": 100.0})
        write_bench(self.current, "BENCH_a",
                    {"slow": 150.0, "fast": 50.0, "flat": 101.0})
        report = self.diff()
        self.assertEqual(len(report["regressions"]), 1)
        self.assertIn("slow", report["regressions"][0])
        self.assertEqual(len(report["improvements"]), 1)
        self.assertIn("fast", report["improvements"][0])

    def test_rename_reported_once_not_as_fresh_plus_missing(self):
        # The bug this pins: "wave_old" -> "wave_new" used to surface as
        # BOTH a fresh series and (in a missing report) a retired one.
        write_bench(self.baseline, "BENCH_a", {"wave_old": 100.0})
        write_bench(self.current, "BENCH_a", {"wave_new": 102.0})
        report = self.diff()
        self.assertEqual(report["renames"],
                         [("BENCH_a:wave_old", "BENCH_a:wave_new")])
        self.assertEqual(report["fresh"], [])
        self.assertEqual(report["missing"], [])
        # The rename is still diffed (and +2% is below threshold).
        self.assertEqual(report["compared"], 1)
        self.assertEqual(report["regressions"], [])

    def test_rename_pairs_by_closest_ns_within_file(self):
        write_bench(self.baseline, "BENCH_a",
                    {"old_cheap": 10.0, "old_dear": 1000.0})
        write_bench(self.current, "BENCH_a",
                    {"new_cheap": 11.0, "new_dear": 990.0})
        report = self.diff()
        self.assertEqual(sorted(report["renames"]),
                         [("BENCH_a:old_cheap", "BENCH_a:new_cheap"),
                          ("BENCH_a:old_dear", "BENCH_a:new_dear")])

    def test_rename_never_crosses_files_or_dissimilar_timings(self):
        # BENCH_a's loss must not pair with BENCH_b's gain (different
        # file), and BENCH_b's own fresh/missing pair is 20x apart in
        # ns_per_op — an added series plus a retirement, not a rename.
        write_bench(self.baseline, "BENCH_a", {"gone": 100.0, "kept": 7.0})
        write_bench(self.current, "BENCH_a", {"gone2": 95.0, "kept": 7.0})
        write_bench(self.baseline, "BENCH_b", {"stable": 5.0})
        write_bench(self.current, "BENCH_b", {"arrived": 100.0})
        report = self.diff()
        self.assertEqual(report["renames"],
                         [("BENCH_a:gone", "BENCH_a:gone2")])
        self.assertEqual(report["fresh"], ["BENCH_b:arrived"])
        self.assertEqual(report["missing"], ["BENCH_b:stable"])

    def test_earlier_named_fresh_series_cannot_steal_rename_partner(self):
        # "a_new" sorts before "z_renamed" but z_renamed is the true
        # rename of "old" (identical timing); global distance ranking
        # must pair (old, z_renamed) and leave a_new fresh.
        write_bench(self.baseline, "BENCH_a", {"old": 104.0})
        write_bench(self.current, "BENCH_a",
                    {"a_new": 100.0, "z_renamed": 104.0})
        report = self.diff()
        self.assertEqual(report["renames"],
                         [("BENCH_a:old", "BENCH_a:z_renamed")])
        self.assertEqual(report["fresh"], ["BENCH_a:a_new"])
        self.assertEqual(report["missing"], [])

    def test_genuinely_fresh_and_missing_still_reported(self):
        write_bench(self.baseline, "BENCH_a",
                    {"stable": 100.0, "retired": 70.0})
        write_bench(self.current, "BENCH_a",
                    {"stable": 100.0, "retired2": 71.0, "brand_new": 5.0})
        report = self.diff()
        # retired->retired2 is the rename (closest ns); brand_new stays
        # fresh.
        self.assertEqual(report["renames"],
                         [("BENCH_a:retired", "BENCH_a:retired2")])
        self.assertEqual(report["fresh"], ["BENCH_a:brand_new"])
        self.assertEqual(report["missing"], [])

    def test_regression_detected_across_rename(self):
        write_bench(self.baseline, "BENCH_a", {"old_name": 100.0})
        write_bench(self.current, "BENCH_a", {"new_name": 160.0})
        report = self.diff()
        self.assertEqual(len(report["regressions"]), 1)
        self.assertIn("renamed", report["regressions"][0])

    def test_zero_and_malformed_ns_are_skipped(self):
        write_bench(self.baseline, "BENCH_a", {"zeroed": 0.0, "ok": 10.0})
        write_bench(self.current, "BENCH_a", {"zeroed": 50.0, "ok": 10.0})
        report = self.diff()
        self.assertEqual(report["compared"], 1)
        self.assertEqual(len(report["skipped"]), 1)

    def test_empty_baseline_short_circuits(self):
        write_bench(self.current, "BENCH_a", {"anything": 1.0})
        report = self.diff()
        self.assertEqual(report["baseline_series"], 0)
        self.assertEqual(report["compared"], 0)


if __name__ == "__main__":
    unittest.main()
