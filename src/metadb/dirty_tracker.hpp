// Dirty-slot tracking for incremental (delta) checkpoints.
//
// A full checkpoint serializes every slot of the MetaDatabase; under
// heavy traffic that is an O(total state) stall per checkpoint. The
// DirtyTracker records which object/link/configuration slots mutated
// since the last checkpoint cut so the server can write a delta
// containing only those slots (metadb/persistence's
// SaveDatabaseDeltaString), chained onto the previous checkpoint by
// the manifest's base pointer.
//
// Thread contract (the MetaDatabase mutation contract, verbatim):
// structural mutations (slot appends, which grow the stamp arrays) are
// single-writer and never concurrent with wave workers; property
// writes from workers of disjoint shards may mark concurrently, so
// stamps are relaxed atomics. Cut() and MergeBack() are writer-side
// and quiescent-only, exactly like MetaDatabase::PublishSnapshot().
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace damocles::metadb {

/// The slots that mutated between two checkpoint cuts, per kind,
/// ascending. Returned by DirtyTracker::Cut(); consumed by
/// SaveDatabaseDeltaString and (on checkpoint failure) MergeBack.
struct DirtySet {
  std::vector<uint32_t> objects;
  std::vector<uint32_t> links;
  std::vector<uint32_t> configs;

  bool empty() const noexcept {
    return objects.empty() && links.empty() && configs.empty();
  }
  size_t size() const noexcept {
    return objects.size() + links.size() + configs.size();
  }
};

/// Per-slot dirty stamps. Each stamp holds the cut generation the slot
/// was last marked under; Cut() collects stamps equal to the current
/// generation (every mark since the previous cut stored exactly that
/// value) and advances it.
class DirtyTracker {
 public:
  void MarkObject(size_t slot) noexcept { Mark(objects_, slot); }
  void MarkLink(size_t slot) noexcept { Mark(links_, slot); }
  void MarkConfig(size_t slot) noexcept { Mark(configs_, slot); }

  /// Collects every slot marked since the previous cut and starts the
  /// next generation. Quiescent callers only.
  DirtySet Cut();

  /// Re-marks `set`'s slots under the current generation so a failed
  /// checkpoint's dirty set is carried into the next cut instead of
  /// being lost. Quiescent callers only.
  void MergeBack(const DirtySet& set) noexcept;

  /// Cuts taken so far plus one (the generation new marks stamp).
  uint64_t generation() const noexcept {
    return generation_.load(std::memory_order_relaxed);
  }

 private:
  struct StampArray {
    std::unique_ptr<std::atomic<uint64_t>[]> stamps;
    size_t size = 0;
    size_t capacity = 0;
  };

  void Mark(StampArray& array, size_t slot) noexcept;
  static void Grow(StampArray& array, size_t needed);
  static void Collect(const StampArray& array, uint64_t generation,
                      std::vector<uint32_t>& out);
  static void Restamp(StampArray& array, const std::vector<uint32_t>& slots,
                      uint64_t generation) noexcept;

  /// Relaxed: marks read it mid-mutation, Cut/MergeBack write it only
  /// at quiescent points.
  std::atomic<uint64_t> generation_{1};
  StampArray objects_;
  StampArray links_;
  StampArray configs_;
};

}  // namespace damocles::metadb
