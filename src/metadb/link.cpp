#include "metadb/link.hpp"

namespace damocles::metadb {

const char* LinkKindName(LinkKind kind) noexcept {
  switch (kind) {
    case LinkKind::kUse:
      return "use";
    case LinkKind::kDerive:
      return "derive";
  }
  return "unknown";
}

const char* CarryPolicyName(CarryPolicy policy) noexcept {
  switch (policy) {
    case CarryPolicy::kNone:
      return "none";
    case CarryPolicy::kCopy:
      return "copy";
    case CarryPolicy::kMove:
      return "move";
  }
  return "unknown";
}

}  // namespace damocles::metadb
