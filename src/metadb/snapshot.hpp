// Epoch-versioned snapshot reads over the meta-database.
//
// The paper's tracking system is a network service: designers "retrieve
// the state of the project by performing queries" while change
// propagation runs. At that scale the read path cannot share locks with
// committing waves, so reads go through Snapshot — a cheap, immutable,
// epoch-stamped handle over a published version of the MetaDatabase —
// instead of the live database.
//
// The publish discipline is the one PR 5 built for the sharded engine's
// ClaimStores, generalized to the whole database:
//  * the WRITER (the session mux's apply loop, or any owner at a
//    drain-quiescent point) calls MetaDatabase::PublishSnapshot(),
//    which freezes the current state under the next epoch (monotone
//    from 1) and publishes it behind an atomic head pointer. Publishing
//    is a no-op returning the existing head when nothing mutated since
//    the last publish (the database keeps a relaxed-atomic mutation
//    generation exactly for this test), so idle publishes are free.
//  * READERS call MetaDatabase::Latest() — a wait-free head acquisition
//    (left-right pattern: arrive on a read indicator, copy the active
//    slot, depart), no locks, never blocked by (and never blocking) a
//    committing wave — or MetaDatabase::AtEpoch(e) to pin a version.
//    A pinned snapshot stays valid and byte-stable for as long as the
//    handle lives, no matter how many waves commit after it.
//  * retired versions are merged out lazily: the store keeps a bounded
//    history ring and advances an atomic purge floor past dropped
//    epochs — AtEpoch() below the floor reports the version as merged
//    out, exactly like a ClaimStore's purged claim sets.
//
// A Snapshot can also wrap the live database unpinned (epoch 0) — the
// compatibility currency for single-threaded callers that used to pass
// `const MetaDatabase&` straight into query/report/viz.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>

namespace damocles::metadb {

class MetaDatabase;

/// An immutable, epoch-stamped read handle. Copying is cheap (one
/// shared_ptr); the pinned version stays alive while any handle does.
class Snapshot {
 public:
  /// Epoch of unpinned live views (and default-constructed handles).
  static constexpr uint64_t kLiveEpoch = 0;

  Snapshot() = default;

  /// Wraps the live database unpinned: reads see in-place mutations,
  /// epoch() == kLiveEpoch. This is the compatibility path for callers
  /// that serialize reads against mutations themselves; concurrent
  /// sessions must use published snapshots instead.
  static Snapshot Live(const MetaDatabase& db) noexcept {
    return Snapshot(nullptr, &db, kLiveEpoch);
  }

  bool valid() const noexcept { return db_ != nullptr; }

  /// True when this handle pins a published immutable version (as
  /// opposed to wrapping the live database).
  bool pinned() const noexcept { return frozen_ != nullptr; }

  /// The epoch this snapshot was published under (kLiveEpoch when
  /// wrapping the live database).
  uint64_t epoch() const noexcept { return epoch_; }

  /// The database state behind the handle. For pinned snapshots this is
  /// a frozen, handle-identical version — OidId/LinkId/ConfigId handles
  /// mean the same slots as in the live database at publish time.
  const MetaDatabase& db() const noexcept { return *db_; }
  const MetaDatabase* operator->() const noexcept { return db_; }

 private:
  friend class SnapshotStore;

  Snapshot(std::shared_ptr<const MetaDatabase> frozen, const MetaDatabase* db,
           uint64_t epoch) noexcept
      : frozen_(std::move(frozen)), db_(db), epoch_(epoch) {}

  std::shared_ptr<const MetaDatabase> frozen_;  ///< Owns pinned versions.
  const MetaDatabase* db_ = nullptr;            ///< frozen_.get() or live.
  uint64_t epoch_ = kLiveEpoch;
};

/// The epoch-versioned publish machinery. One store per MetaDatabase
/// (owned behind a unique_ptr so the database stays movable); callers
/// go through the MetaDatabase::PublishSnapshot()/Latest()/AtEpoch()
/// facade rather than touching the store directly.
///
/// Thread contract: Publish() is writer-side and must run at a
/// drain-quiescent point (no wave is mutating the database). Latest(),
/// AtEpoch(), purge_floor(), head_epoch() and Touch() are safe from any
/// thread at any time; Latest() is lock-free.
class SnapshotStore {
 public:
  /// Published versions retained for AtEpoch(); older epochs are merged
  /// out and the purge floor advances past them.
  static constexpr size_t kDefaultRetention = 32;

  explicit SnapshotStore(size_t retention = kDefaultRetention)
      : retention_(retention == 0 ? 1 : retention) {}

  /// Records one database mutation (relaxed: the count only needs to be
  /// exact at quiescent points, where Publish reads it).
  void Touch() noexcept { generation_.fetch_add(1, std::memory_order_relaxed); }

  /// Mutations recorded so far.
  uint64_t generation() const noexcept {
    return generation_.load(std::memory_order_relaxed);
  }

  /// Freezes `db` under the next epoch and publishes it; returns the
  /// existing head unchanged when no mutation happened since it was
  /// published. Writer-side, quiescent callers only.
  Snapshot Publish(const MetaDatabase& db);

  /// The newest published version (wait-free, no locks), or an
  /// unpinned live view of `live` when nothing was published yet.
  Snapshot Latest(const MetaDatabase& live) const;

  /// The newest published version with epoch <= `epoch`. Throws
  /// NotFoundError when `epoch` is kLiveEpoch, below the purge floor,
  /// or predates the first publish.
  Snapshot AtEpoch(uint64_t epoch) const;

  /// Epoch of the newest published version (0 before the first publish).
  uint64_t head_epoch() const noexcept;

  /// The epoch at (and below) which versions have been merged out of
  /// the history — 0 until the retention cap first trims. Atomic, any
  /// thread (the ShardedStats::claim_purge_floor idiom).
  uint64_t purge_floor() const noexcept {
    return purge_floor_.load(std::memory_order_acquire);
  }

  /// Adjusts the retention cap (takes effect at the next publish).
  void SetRetention(size_t retention) {
    std::lock_guard<std::mutex> lock(mutex_);
    retention_ = retention == 0 ? 1 : retention;
  }

 private:
  struct Version {
    uint64_t epoch = 0;
    uint64_t generation = 0;  ///< Mutation generation at publish time.
    std::shared_ptr<const MetaDatabase> frozen;
  };

  /// Wait-free copy of the current head version (left-right reader).
  std::shared_ptr<const Version> LatestVersion() const noexcept;

  /// Installs `version` as the head (left-right writer). Called under
  /// mutex_ only; waits for readers to drain off the side it rewrites.
  void InstallHead(std::shared_ptr<const Version> version);

  std::atomic<uint64_t> generation_{0};
  std::atomic<uint64_t> purge_floor_{0};
  /// The lock-free read head, kept as a left-right pair (Ramalhete &
  /// Correia) instead of std::atomic<shared_ptr>: readers arrive on a
  /// read indicator, copy the active slot, and depart — wait-free and
  /// free of the plain pointer accesses libstdc++'s atomic shared_ptr
  /// hides behind its embedded lock bit (which TSan reports as races).
  /// The publisher only ever assigns the slot no reader is on.
  mutable std::array<std::atomic<uint64_t>, 2> read_count_{};
  std::atomic<int> left_right_{0};
  std::atomic<int> version_index_{0};
  std::array<std::shared_ptr<const Version>, 2> slot_;
  /// Publish serialization + the AtEpoch history (ascending epochs).
  mutable std::mutex mutex_;
  std::deque<std::shared_ptr<const Version>> history_;
  size_t retention_;
};

}  // namespace damocles::metadb
