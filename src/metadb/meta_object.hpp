// The meta-data object: everything the tracking system knows about one
// version of one view of one block.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "metadb/ids.hpp"
#include "metadb/oid.hpp"

namespace damocles::metadb {

/// Property map. std::map keeps dumps and iteration deterministic,
/// which the persistence layer and the test suite rely on.
using PropertyMap = std::map<std::string, std::string>;

/// A meta-data object. Created once per design-object version; never
/// mutated structurally (only its properties change), and tombstoned
/// rather than erased so handles stay stable.
struct MetaObject {
  Oid oid;                 ///< The <block, view, version> triplet.
  PropertyMap properties;  ///< Property/value annotations.
  int64_t created_at = 0;  ///< SimClock seconds at creation.
  std::string created_by;  ///< User that created this version.
  bool alive = true;       ///< False once deleted.

  /// Returns the property value or `fallback` when absent.
  const std::string& PropertyOr(const std::string& name,
                                const std::string& fallback) const {
    const auto it = properties.find(name);
    return it == properties.end() ? fallback : it->second;
  }

  bool HasProperty(const std::string& name) const {
    return properties.find(name) != properties.end();
  }
};

}  // namespace damocles::metadb
