// Builders for Configuration snapshots.
//
// Paper §2: configurations "can be built by traversing a hierarchy while
// following certain rules, or can be made as a result of a query, in
// which case they will be a non-hierarchical set of data."
#pragma once

#include <functional>
#include <string>

#include "metadb/configuration.hpp"
#include "metadb/meta_database.hpp"

namespace damocles::metadb {

/// Rules steering the hierarchy traversal of BuildHierarchyConfiguration.
struct TraversalRules {
  bool follow_use_links = true;     ///< Descend through hierarchy links.
  bool follow_derive_links = false; ///< Also cross derive links.
  /// Only cross derive links whose TYPE is in this list (empty = all).
  std::vector<std::string> derive_types;
  /// Include the traversed links in the configuration.
  bool include_links = true;
  /// Stop descending below this depth (root = 0; negative = unlimited).
  int max_depth = -1;
};

/// Builds a configuration by depth-first traversal from `root`,
/// following links in their source->target orientation under `rules`.
/// Cycles are tolerated (each object is recorded once).
Configuration BuildHierarchyConfiguration(const MetaDatabase& db, OidId root,
                                          std::string name,
                                          const TraversalRules& rules,
                                          int64_t timestamp);

/// Builds a non-hierarchical configuration from a predicate over all
/// live objects (the "result of a query" form).
Configuration BuildQueryConfiguration(
    const MetaDatabase& db, std::string name,
    const std::function<bool(OidId, const MetaObject&)>& predicate,
    int64_t timestamp);

/// Checkpoint of every live object and link — "the state of the design
/// hierarchy in a snapshot at each step of the design cycle". Named
/// "checkpoint" to keep persistent Configuration captures distinct from
/// the in-memory epoch-versioned read snapshots of metadb/snapshot.hpp.
Configuration BuildFullCheckpoint(const MetaDatabase& db, std::string name,
                                  int64_t timestamp);

/// Deprecated alias for BuildFullCheckpoint (pre-rename name).
inline Configuration BuildFullSnapshot(const MetaDatabase& db,
                                       std::string name, int64_t timestamp) {
  return BuildFullCheckpoint(db, std::move(name), timestamp);
}

/// Returns the objects of `config` whose given property differs from the
/// current database value recorded in `other`, i.e. the drift between
/// two snapshots of the same scope. Objects present in only one of the
/// two configurations are also reported.
std::vector<OidId> ConfigurationDiff(const Configuration& older,
                                     const Configuration& newer);

}  // namespace damocles::metadb
