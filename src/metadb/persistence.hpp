// Text persistence for the meta-database.
//
// The on-disk format is line-oriented and human-inspectable, in the
// spirit of the paper's ASCII blueprint files. All slots — including
// tombstoned ones — are saved so that handles (OidId / LinkId) are
// bit-identical after a round trip; configurations store raw handles
// and would otherwise dangle.
//
// Two shapes share the per-slot record format:
//  * the FULL checkpoint ("damocles-metadb v1") — every slot, loaded
//    from scratch by LoadDatabaseText;
//  * the DELTA checkpoint ("damocles-metadb-delta v1") — only the
//    slots in a DirtyTracker cut, applied on top of an existing
//    database by ApplyDatabaseDeltaText. A delta records the slot
//    totals the database must have after application, so a delta
//    applied to the wrong base fails loudly instead of corrupting
//    state.
#pragma once

#include <iosfwd>
#include <string>

#include "metadb/dirty_tracker.hpp"
#include "metadb/meta_database.hpp"

namespace damocles::metadb {

/// Writes the full database to `out`. Deterministic: two saves of equal
/// databases produce byte-identical text.
void SaveDatabaseText(const MetaDatabase& db, std::ostream& out);

/// Reads a database previously written by SaveDatabaseText. Throws
/// WireFormatError on malformed input.
MetaDatabase LoadDatabaseText(std::istream& in);

/// Convenience wrappers over string buffers.
std::string SaveDatabaseString(const MetaDatabase& db);
MetaDatabase LoadDatabaseString(const std::string& text);

/// Writes only `dirty`'s slots (ascending, full record per slot) plus
/// the post-application slot totals. Deterministic like the full save.
void SaveDatabaseDeltaText(const MetaDatabase& db, const DirtySet& dirty,
                           std::ostream& out);

/// Applies a delta produced by SaveDatabaseDeltaText on top of `db`
/// (the base checkpoint state plus any earlier deltas in the chain).
/// Rebuilds link adjacency afterwards so the result is
/// indistinguishable from a full-checkpoint load. Throws
/// WireFormatError on malformed input or when the post-application
/// slot totals do not match (delta applied to the wrong base).
void ApplyDatabaseDeltaText(std::istream& in, MetaDatabase& db);

/// Convenience wrappers over string buffers.
std::string SaveDatabaseDeltaString(const MetaDatabase& db,
                                    const DirtySet& dirty);
void ApplyDatabaseDeltaString(const std::string& text, MetaDatabase& db);

}  // namespace damocles::metadb
