// Text persistence for the meta-database.
//
// The on-disk format is line-oriented and human-inspectable, in the
// spirit of the paper's ASCII blueprint files. All slots — including
// tombstoned ones — are saved so that handles (OidId / LinkId) are
// bit-identical after a round trip; configurations store raw handles
// and would otherwise dangle.
#pragma once

#include <iosfwd>
#include <string>

#include "metadb/meta_database.hpp"

namespace damocles::metadb {

/// Writes the full database to `out`. Deterministic: two saves of equal
/// databases produce byte-identical text.
void SaveDatabaseText(const MetaDatabase& db, std::ostream& out);

/// Reads a database previously written by SaveDatabaseText. Throws
/// WireFormatError on malformed input.
MetaDatabase LoadDatabaseText(std::istream& in);

/// Convenience wrappers over string buffers.
std::string SaveDatabaseString(const MetaDatabase& db);
MetaDatabase LoadDatabaseString(const std::string& text);

}  // namespace damocles::metadb
