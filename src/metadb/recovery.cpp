#include "metadb/recovery.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>

#include "common/errno_string.hpp"
#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/strings.hpp"
#include "metadb/persistence.hpp"

namespace damocles::metadb {

namespace {

constexpr const char* kManifestMagic = "damocles-wal-manifest v1";
constexpr const char* kWorkspaceMagic = "damocles-workspace v1";

std::string PadIndex(uint64_t index) {
  std::string digits = std::to_string(index);
  if (digits.size() < 6) digits.insert(0, 6 - digits.size(), '0');
  return digits;
}

[[noreturn]] void FailLine(const char* what, size_t line_no,
                           const std::string& message) {
  throw WireFormatError(std::string(what) + ", line " +
                        std::to_string(line_no) + ": " + message);
}

/// Cursor over one manifest / workspace line: quoted strings and
/// whitespace-separated integers.
struct LineCursor {
  std::string_view line;
  size_t pos = 0;
  size_t line_no = 0;
  const char* what = "";

  void SkipSpaces() {
    while (pos < line.size() && line[pos] == ' ') ++pos;
  }

  std::string Quoted(const char* field) {
    SkipSpaces();
    std::string out;
    if (!UnquoteString(line, pos, out)) {
      FailLine(what, line_no, std::string("expected quoted ") + field);
    }
    return out;
  }

  uint64_t U64(const char* field) {
    SkipSpaces();
    const size_t begin = pos;
    while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') ++pos;
    if (pos == begin) {
      FailLine(what, line_no, std::string("expected number for ") + field);
    }
    return std::stoull(std::string(line.substr(begin, pos - begin)));
  }

  int64_t I64(const char* field) {
    SkipSpaces();
    bool negative = false;
    if (pos < line.size() && line[pos] == '-') {
      negative = true;
      ++pos;
    }
    const uint64_t magnitude = U64(field);
    return negative ? -static_cast<int64_t>(magnitude)
                    : static_cast<int64_t>(magnitude);
  }

  void ExpectEnd() {
    SkipSpaces();
    if (pos != line.size()) {
      FailLine(what, line_no, "trailing garbage on line");
    }
  }
};

bool ReadFileToString(const std::string& path, std::string& out) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return false;
  char buffer[1u << 16];
  out.clear();
  size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    out.append(buffer, got);
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  return !failed;
}

/// Writes + fsyncs a file, throwing on failure; notifies the observer
/// with the final size so the crash harness can cut inside it.
///
/// "checkpoint.write" failpoint: `short:<n>` writes only the first n
/// bytes before failing (the partial file a real ENOSPC leaves behind);
/// `error` / `errno:<E>` fail after the full write. Either way the
/// previous manifest chain stays untouched — the manifest pointing at
/// this file is never written.
void WriteFileDurable(const std::string& path, const std::string& content,
                      events::WalAppendObserver* observer) {
  common::FailpointHit hit;
  const bool injected = DAMOCLES_FAILPOINT("checkpoint.write", &hit);
  std::string_view body(content);
  if (injected && hit.action == common::FailpointAction::kShortWrite) {
    body = body.substr(0, static_cast<size_t>(hit.param));
  }
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    throw Error("checkpoint: cannot create " + path + ": " +
                common::ErrnoString(errno));
  }
  const bool write_ok =
      body.empty() ||
      std::fwrite(body.data(), 1, body.size(), file) == body.size();
  const bool flush_ok = std::fflush(file) == 0;
  const bool sync_ok = ::fsync(fileno(file)) == 0;
  std::fclose(file);
  if (injected) {
    const int err = hit.action == common::FailpointAction::kErrno
                        ? hit.error_number
                        : EIO;
    throw Error("checkpoint: write failed on " + path + ": " +
                common::ErrnoString(err) + " (injected)");
  }
  if (!write_ok || !flush_ok || !sync_ok) {
    throw Error("checkpoint: write failed on " + path);
  }
  if (observer != nullptr) observer->OnDurableExtent(path, content.size());
}

/// Best-effort directory fsync so renames survive power loss.
void SyncDirectory(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

/// (id, path) of every manifest file, sorted ascending by id.
std::vector<std::pair<uint64_t, std::string>> ListManifests(
    const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<std::pair<uint64_t, std::string>> manifests;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (!StartsWith(name, "manifest-") || !EndsWith(name, ".txt")) continue;
    const std::string digits = name.substr(9, name.size() - 9 - 4);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    manifests.emplace_back(std::stoull(digits), entry.path().string());
  }
  std::sort(manifests.begin(), manifests.end());
  return manifests;
}

}  // namespace

// --- Manifest text ---------------------------------------------------------

std::string FormatWalManifest(const WalManifest& manifest) {
  std::string out = kManifestMagic;
  out += "\n";
  out += "checkpoint " + std::to_string(manifest.checkpoint_id) + "\n";
  if (manifest.delta) {
    // Written only for delta checkpoints, so full manifests stay
    // byte-stable for servers predating incremental checkpoints.
    out += "kind delta\n";
    out += "base " + std::to_string(manifest.base_id) + "\n";
  }
  out += "op-seq " + std::to_string(manifest.op_seq) + "\n";
  out += "ops-offset " + std::to_string(manifest.ops_offset) + "\n";
  out += "clock " + std::to_string(manifest.clock_seconds) + "\n";
  out += "epoch-next " + std::to_string(manifest.epoch_next) + "\n";
  out += "epoch-waves " + std::to_string(manifest.epoch_waves) + "\n";
  out += "shards " + std::to_string(manifest.num_shards) + "\n";
  out += "db " + QuoteString(manifest.db_file) + " " +
         std::to_string(manifest.db_bytes) + "\n";
  out += "blueprint " + QuoteString(manifest.blueprint_file) + " " +
         std::to_string(manifest.blueprint_bytes) + "\n";
  out += "workspace " + QuoteString(manifest.workspace_file) + " " +
         std::to_string(manifest.workspace_bytes) + "\n";
  if (!manifest.policy_file.empty()) {
    // Written only when a policy store was checkpointed, so manifests
    // stay byte-stable for servers predating policy versioning.
    out += "policy " + QuoteString(manifest.policy_file) + " " +
           std::to_string(manifest.policy_bytes) + "\n";
  }
  for (const auto& [name, offset] : manifest.streams) {
    out += "stream " + QuoteString(name) + " " + std::to_string(offset) + "\n";
  }
  out += "end\n";
  return out;
}

WalManifest ParseWalManifest(const std::string& text) {
  constexpr const char* kWhat = "wal manifest";
  const std::vector<std::string> lines = Split(text, '\n');
  if (lines.empty() || lines[0] != kManifestMagic) {
    FailLine(kWhat, 1, std::string("expected magic '") + kManifestMagic + "'");
  }
  WalManifest manifest;
  bool saw_end = false;
  bool saw_db = false;
  bool saw_workspace = false;
  for (size_t i = 1; i < lines.size(); ++i) {
    const size_t line_no = i + 1;
    const std::string& line = lines[i];
    if (line.empty()) {
      if (!saw_end) FailLine(kWhat, line_no, "unexpected blank line");
      continue;
    }
    if (saw_end) {
      FailLine(kWhat, line_no, "content after 'end'");
    }
    if (line == "end") {
      saw_end = true;
      continue;
    }
    const size_t space = line.find(' ');
    const std::string key = line.substr(0, space);
    LineCursor cursor{line, space == std::string::npos ? line.size() : space,
                      line_no, kWhat};
    if (key == "checkpoint") {
      manifest.checkpoint_id = cursor.U64("checkpoint id");
    } else if (key == "kind") {
      // Optional: absent (meaning "full") on manifests from before
      // incremental checkpoints.
      const std::string kind(Trim(line.substr(cursor.pos)));
      cursor.pos = line.size();
      if (kind == "delta") {
        manifest.delta = true;
      } else if (kind != "full") {
        FailLine(kWhat, line_no, "unknown checkpoint kind '" + kind + "'");
      }
    } else if (key == "base") {
      manifest.base_id = cursor.U64("base checkpoint id");
    } else if (key == "op-seq") {
      manifest.op_seq = cursor.U64("op-seq");
    } else if (key == "ops-offset") {
      manifest.ops_offset = cursor.U64("ops-offset");
    } else if (key == "clock") {
      manifest.clock_seconds = cursor.I64("clock");
    } else if (key == "epoch-next") {
      manifest.epoch_next = cursor.U64("epoch-next");
    } else if (key == "epoch-waves") {
      manifest.epoch_waves = cursor.U64("epoch-waves");
    } else if (key == "shards") {
      manifest.num_shards = static_cast<uint32_t>(cursor.U64("shards"));
    } else if (key == "db") {
      manifest.db_file = cursor.Quoted("file name");
      manifest.db_bytes = cursor.U64("byte count");
      saw_db = true;
    } else if (key == "blueprint") {
      manifest.blueprint_file = cursor.Quoted("file name");
      manifest.blueprint_bytes = cursor.U64("byte count");
    } else if (key == "workspace") {
      manifest.workspace_file = cursor.Quoted("file name");
      manifest.workspace_bytes = cursor.U64("byte count");
      saw_workspace = true;
    } else if (key == "policy") {
      // Optional: absent on manifests from before policy versioning.
      manifest.policy_file = cursor.Quoted("file name");
      manifest.policy_bytes = cursor.U64("byte count");
    } else if (key == "stream") {
      const std::string name = cursor.Quoted("stream name");
      const uint64_t offset = cursor.U64("offset");
      manifest.streams.emplace_back(name, offset);
    } else {
      FailLine(kWhat, line_no, "unknown key '" + key + "'");
    }
    cursor.ExpectEnd();
  }
  if (!saw_end) FailLine(kWhat, lines.size(), "missing 'end'");
  if (!saw_db) FailLine(kWhat, lines.size(), "missing 'db' entry");
  if (!saw_workspace) {
    FailLine(kWhat, lines.size(), "missing 'workspace' entry");
  }
  if (manifest.delta && manifest.base_id == 0) {
    FailLine(kWhat, lines.size(), "delta manifest missing 'base'");
  }
  if (!manifest.delta && manifest.base_id != 0) {
    FailLine(kWhat, lines.size(), "'base' entry on a full manifest");
  }
  if (manifest.delta && manifest.base_id >= manifest.checkpoint_id) {
    FailLine(kWhat, lines.size(),
             "delta base must precede the checkpoint id (chain must descend)");
  }
  return manifest;
}

std::string ManifestFileName(uint64_t checkpoint_id) {
  return "manifest-" + PadIndex(checkpoint_id) + ".txt";
}

std::string CheckpointFileName(uint64_t checkpoint_id,
                               const std::string& ext) {
  return "checkpoint-" + PadIndex(checkpoint_id) + "." + ext;
}

uint64_t LatestManifestId(const std::string& dir) {
  const auto manifests = ListManifests(dir);
  return manifests.empty() ? 0 : manifests.back().first;
}

// --- Workspace checkpoint text ---------------------------------------------

std::string SaveWorkspaceText(const Workspace& workspace) {
  std::string out = kWorkspaceMagic;
  out += "\n";
  workspace.ForEachFile([&out](const Oid& oid, const DesignFile& file) {
    out += "file " + QuoteString(oid.block) + " " + QuoteString(oid.view) +
           " " + std::to_string(oid.version) + " " +
           std::to_string(file.modified_at) + " " +
           QuoteString(file.content) + "\n";
  });
  workspace.ForEachLatest(
      [&out](std::string_view block, std::string_view view, int version) {
        out += "latest " + QuoteString(block) + " " + QuoteString(view) + " " +
               std::to_string(version) + "\n";
      });
  out += "end\n";
  return out;
}

void LoadWorkspaceText(const std::string& text, Workspace& workspace) {
  constexpr const char* kWhat = "workspace dump";
  const std::vector<std::string> lines = Split(text, '\n');
  if (lines.empty() || lines[0] != kWorkspaceMagic) {
    FailLine(kWhat, 1, std::string("expected magic '") + kWorkspaceMagic + "'");
  }
  bool saw_end = false;
  for (size_t i = 1; i < lines.size(); ++i) {
    const size_t line_no = i + 1;
    const std::string& line = lines[i];
    if (line.empty()) {
      if (!saw_end) FailLine(kWhat, line_no, "unexpected blank line");
      continue;
    }
    if (saw_end) FailLine(kWhat, line_no, "content after 'end'");
    if (line == "end") {
      saw_end = true;
      continue;
    }
    const size_t space = line.find(' ');
    const std::string key = line.substr(0, space);
    LineCursor cursor{line, space == std::string::npos ? line.size() : space,
                      line_no, kWhat};
    if (key == "file") {
      Oid oid;
      oid.block = cursor.Quoted("block");
      oid.view = cursor.Quoted("view");
      oid.version = static_cast<int>(cursor.U64("version"));
      const int64_t modified_at = cursor.I64("modified_at");
      std::string content = cursor.Quoted("content");
      cursor.ExpectEnd();
      workspace.RestoreFile(oid, std::move(content), modified_at);
    } else if (key == "latest") {
      const std::string block = cursor.Quoted("block");
      const std::string view = cursor.Quoted("view");
      const int version = static_cast<int>(cursor.U64("version"));
      cursor.ExpectEnd();
      workspace.RestoreLatestVersion(block, view, version);
    } else {
      FailLine(kWhat, line_no, "unknown key '" + key + "'");
    }
  }
  if (!saw_end) FailLine(kWhat, lines.size(), "missing 'end'");
}

// --- Recovery --------------------------------------------------------------

RecoveryPlan BuildRecoveryPlan(const std::string& wal_dir) {
  RecoveryPlan plan;
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(wal_dir, ec)) return plan;

  events::WalStreamData ops = events::ReadWalStream(wal_dir, "ops");
  plan.replay_ops_end = ops.valid_end;

  std::map<std::string, events::WalStreamData> row_streams;
  for (const std::string& name : events::ListWalStreams(wal_dir)) {
    if (name == "ops") continue;
    row_streams.emplace(name, events::ReadWalStream(wal_dir, name));
  }

  // Newest manifest whose checkpoint fully validates wins; torn or
  // incomplete checkpoint writes fall back to their predecessor. A
  // delta manifest validates only if its whole base→delta chain does:
  // every member's manifest and db/dbd file must load, and the deltas
  // must apply cleanly onto the base in order. A delta tip with a
  // broken chain is skipped exactly like a torn full checkpoint (its
  // own base, one step shorter, is tried next).
  auto manifests = ListManifests(wal_dir);
  const std::map<uint64_t, std::string> manifest_paths(manifests.begin(),
                                                       manifests.end());
  const auto load_part = [&](const std::string& file, uint64_t bytes,
                             std::string& out) {
    if (file.empty()) return bytes == 0;
    if (!ReadFileToString(wal_dir + "/" + file, out)) return false;
    return out.size() == bytes;
  };
  for (auto it = manifests.rbegin(); it != manifests.rend(); ++it) {
    const uint64_t tip_id = it->first;
    // (manifest, db text), tip first while following base pointers.
    std::vector<std::pair<WalManifest, std::string>> members;
    std::string blueprint_text;
    std::string workspace_text;
    std::string policy_text;
    bool valid = true;
    uint64_t next_id = tip_id;
    while (valid) {
      const auto path_it = manifest_paths.find(next_id);
      if (path_it == manifest_paths.end()) {
        valid = false;
        break;
      }
      std::string text;
      WalManifest manifest;
      valid = ReadFileToString(path_it->second, text);
      if (valid) {
        try {
          manifest = ParseWalManifest(text);
        } catch (const WireFormatError&) {
          valid = false;
        }
      }
      if (valid && manifest.checkpoint_id != next_id) valid = false;
      std::string db_text;
      if (valid) {
        valid = load_part(manifest.db_file, manifest.db_bytes, db_text);
      }
      if (!valid) break;
      const bool is_delta = manifest.delta;
      const uint64_t base_id = manifest.base_id;
      members.emplace_back(std::move(manifest), std::move(db_text));
      if (!is_delta) break;  // Reached the chain's full base.
      // ParseWalManifest enforces base < id, so the walk strictly
      // descends and cannot cycle.
      next_id = base_id;
    }
    if (valid) {
      const WalManifest& tip = members.front().first;
      valid = load_part(tip.blueprint_file, tip.blueprint_bytes,
                        blueprint_text) &&
              load_part(tip.workspace_file, tip.workspace_bytes,
                        workspace_text) &&
              // Trusted at the size level like the blueprint text; the
              // server parses it (and fails recovery loudly) when
              // rebuilding the store.
              load_part(tip.policy_file, tip.policy_bytes, policy_text);
    }
    if (valid) {
      // Parse proof over the whole chain: load the base, apply every
      // delta in order. A delta written against a different base (or
      // torn mid-write) fails here and the chain is passed over.
      try {
        MetaDatabase proof = LoadDatabaseString(members.back().second);
        for (size_t i = members.size() - 1; i-- > 0;) {
          ApplyDatabaseDeltaString(members[i].second, proof);
        }
        Workspace scratch("recovery-scratch");
        LoadWorkspaceText(workspace_text, scratch);
      } catch (const Error&) {
        valid = false;
      }
    }
    if (valid) {
      // Every checkpointed row offset must lie inside the stream's
      // intact prefix, or the pre-checkpoint journal is unrecoverable
      // from this manifest.
      for (const auto& [name, offset] : members.front().first.streams) {
        const auto stream_it = row_streams.find(name);
        const uint64_t valid_end =
            stream_it == row_streams.end() ? 0 : stream_it->second.valid_end;
        if (offset > valid_end) {
          valid = false;
          break;
        }
      }
    }
    if (!valid) {
      ++plan.manifests_skipped;
      continue;
    }
    plan.have_checkpoint = true;
    plan.manifest = members.front().first;
    plan.db_text = std::move(members.back().second);
    for (size_t i = members.size() - 1; i-- > 0;) {
      plan.db_deltas.push_back(std::move(members[i].second));
    }
    for (auto member = members.rbegin(); member != members.rend(); ++member) {
      plan.chain_ids.push_back(member->first.checkpoint_id);
    }
    plan.blueprint_text = std::move(blueprint_text);
    plan.workspace_text = std::move(workspace_text);
    plan.policy_text = std::move(policy_text);
    break;
  }

  if (plan.have_checkpoint) {
    for (const auto& [name, offset] : plan.manifest.streams) {
      RecoveredStream recovered;
      recovered.name = name;
      const auto stream_it = row_streams.find(name);
      if (stream_it != row_streams.end()) {
        // A journal clear drops everything before it: only rows after
        // the last reset at-or-before the cutoff are restored.
        uint64_t reset_floor = 0;
        for (const uint64_t reset : stream_it->second.resets) {
          if (reset <= offset) reset_floor = std::max(reset_floor, reset);
        }
        for (const events::WalRestoredRow& row : stream_it->second.rows) {
          if (row.end_offset > reset_floor && row.end_offset <= offset) {
            recovered.rows.push_back(row);
          }
        }
      }
      plan.restored_rows += recovered.rows.size();
      plan.streams.push_back(std::move(recovered));
    }
  }

  const uint64_t cutoff = plan.have_checkpoint ? plan.manifest.op_seq : 0;
  plan.last_op_seq = cutoff;
  for (events::WalOpEntry& entry : ops.ops) {
    plan.last_op_seq = std::max(plan.last_op_seq, entry.op.op_seq);
    if (entry.op.op_seq > cutoff) plan.replay_ops.push_back(std::move(entry));
  }
  return plan;
}

std::string FormatWalCheckpointChains(const std::string& wal_dir) {
  namespace fs = std::filesystem;
  std::string out = "checkpoints:\n";
  const auto manifests = ListManifests(wal_dir);
  if (manifests.empty()) {
    return "checkpoints: none\n";
  }
  for (const auto& [id, path] : manifests) {
    out += "  manifest " + std::to_string(id) + ": ";
    WalManifest manifest;
    std::string text;
    if (!ReadFileToString(path, text)) {
      out += "UNREADABLE (cannot read " + path + ")\n";
      continue;
    }
    try {
      manifest = ParseWalManifest(text);
    } catch (const Error& error) {
      out += std::string("UNREADABLE (") + error.what() + ")\n";
      continue;
    }
    out += manifest.delta
               ? "delta base " + std::to_string(manifest.base_id)
               : "full";
    out += ", op-seq " + std::to_string(manifest.op_seq) + ", ops-offset " +
           std::to_string(manifest.ops_offset);
    std::error_code ec;
    const uint64_t db_bytes = fs::file_size(wal_dir + "/" + manifest.db_file, ec);
    out += ", db " + manifest.db_file +
           (ec ? " (MISSING)" : " (" + std::to_string(db_bytes) + " bytes)");
    out += "\n";
  }
  const RecoveryPlan plan = BuildRecoveryPlan(wal_dir);
  if (!plan.have_checkpoint) {
    out += "recovery chain: none (no valid checkpoint)\n";
    return out;
  }
  out += "recovery chain:";
  for (const uint64_t id : plan.chain_ids) {
    out += (id == plan.chain_ids.front() ? " " : " -> ") + std::to_string(id);
  }
  out += " (tip " + std::to_string(plan.manifest.checkpoint_id) +
         ", replays " + std::to_string(plan.replay_ops.size()) +
         " op(s) past offset " + std::to_string(plan.manifest.ops_offset) +
         ")\n";
  return out;
}

namespace {

constexpr const char* kCheckpointExts[] = {"db", "dbd", "bp", "ws", "ps"};

/// Removes `path` counting the outcome: removed vs failed (a missing
/// file is neither). fs::remove errors were previously discarded here,
/// silently leaking disk.
void RemoveCounted(const std::string& path, WalGcStats& stats) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (fs::remove(path, ec)) {
    ++stats.artifacts_removed;
  } else if (ec) {
    ++stats.failed_removals;
  }
}

}  // namespace

WalGcStats PrepareWalDirectory(const std::string& wal_dir,
                               const RecoveryPlan& plan) {
  namespace fs = std::filesystem;
  std::error_code ec;
  WalGcStats stats;

  // Drop manifests newer than the chosen chain tip (torn or invalid)
  // together with their checkpoint files, plus temp leftovers from
  // killed manifest renames. Chain members all have ids <= the tip, so
  // a delta chain's base and intermediates are never touched.
  const uint64_t keep_id =
      plan.have_checkpoint ? plan.manifest.checkpoint_id : 0;
  for (const auto& [id, path] : ListManifests(wal_dir)) {
    if (id <= keep_id) continue;
    RemoveCounted(path, stats);
    for (const char* ext : kCheckpointExts) {
      RemoveCounted(wal_dir + "/" + CheckpointFileName(id, ext), stats);
    }
  }
  for (const auto& entry : fs::directory_iterator(wal_dir, ec)) {
    if (EndsWith(entry.path().filename().string(), ".tmp")) {
      RemoveCounted(entry.path().string(), stats);
    }
  }

  // Orphaned checkpoint files — written but never covered by a manifest
  // (a crash between the file writes and the manifest rename). Without
  // a manifest nothing can ever reference them; remove them by name.
  std::vector<std::string> orphans;
  {
    std::map<uint64_t, bool> manifest_ids;
    for (const auto& [id, path] : ListManifests(wal_dir)) {
      manifest_ids[id] = true;
    }
    std::error_code iter_ec;
    for (const auto& entry : fs::directory_iterator(wal_dir, iter_ec)) {
      const std::string name = entry.path().filename().string();
      if (!StartsWith(name, "checkpoint-")) continue;
      const size_t dot = name.rfind('.');
      if (dot == std::string::npos || dot <= 11) continue;
      const std::string digits = name.substr(11, dot - 11);
      if (digits.empty() ||
          digits.find_first_not_of("0123456789") != std::string::npos) {
        continue;
      }
      if (manifest_ids.find(std::stoull(digits)) == manifest_ids.end()) {
        orphans.push_back(entry.path().string());
      }
    }
  }
  for (const std::string& orphan : orphans) RemoveCounted(orphan, stats);

  // Cut the torn ops tail; cut every row stream back to its checkpoint
  // offset (replayed ops regenerate the rows past it). Streams the
  // manifest does not know restart from zero. Segments stranded below a
  // pruned gap (an interrupted retention pass) are swept first.
  for (const std::string& name : events::ListWalStreams(wal_dir)) {
    const events::WalPruneStats orphan_stats =
        events::RemoveOrphanedWalPrefix(wal_dir, name);
    stats.artifacts_removed += orphan_stats.segments_removed;
    stats.failed_removals += orphan_stats.failed_removals;
  }
  events::TruncateWalStream(wal_dir, "ops", plan.replay_ops_end,
                            &stats.failed_removals);
  for (const std::string& name : events::ListWalStreams(wal_dir)) {
    if (name == "ops") continue;
    uint64_t offset = 0;
    if (plan.have_checkpoint) {
      for (const auto& [stream_name, stream_offset] : plan.manifest.streams) {
        if (stream_name == name) {
          offset = stream_offset;
          break;
        }
      }
    }
    events::TruncateWalStream(wal_dir, name, offset, &stats.failed_removals);
  }
  return stats;
}

WalGcStats PruneWalCheckpoints(const std::string& wal_dir,
                               uint64_t keep_from_id) {
  WalGcStats stats;
  for (const auto& [id, path] : ListManifests(wal_dir)) {
    if (id >= keep_from_id) continue;
    RemoveCounted(path, stats);
    for (const char* ext : kCheckpointExts) {
      RemoveCounted(wal_dir + "/" + CheckpointFileName(id, ext), stats);
    }
  }
  return stats;
}

// --- Checkpointing ---------------------------------------------------------

uint64_t WriteWalCheckpoint(const std::string& wal_dir,
                            const CheckpointRequest& request) {
  namespace fs = std::filesystem;
  const uint64_t id = LatestManifestId(wal_dir) + 1;

  WalManifest manifest;
  manifest.checkpoint_id = id;
  manifest.delta = request.delta;
  manifest.base_id = request.delta ? request.base_id : 0;
  manifest.op_seq = request.op_seq;
  manifest.ops_offset = request.ops_offset;
  manifest.clock_seconds = request.clock_seconds;
  manifest.epoch_next = request.epoch_next;
  manifest.epoch_waves = request.epoch_waves;
  manifest.num_shards = request.num_shards;
  // Delta checkpoints store the dirty-slot delta under the "dbd"
  // extension so a delta file can never be mistaken for a full dump.
  manifest.db_file = CheckpointFileName(id, request.delta ? "dbd" : "db");
  manifest.db_bytes = request.db_text.size();
  manifest.blueprint_file = CheckpointFileName(id, "bp");
  manifest.blueprint_bytes = request.blueprint_text.size();
  manifest.workspace_file = CheckpointFileName(id, "ws");
  manifest.workspace_bytes = request.workspace_text.size();
  if (!request.policy_text.empty()) {
    manifest.policy_file = CheckpointFileName(id, "ps");
    manifest.policy_bytes = request.policy_text.size();
  }
  manifest.streams = request.streams;

  WriteFileDurable(wal_dir + "/" + manifest.db_file, request.db_text,
                   request.observer);
  WriteFileDurable(wal_dir + "/" + manifest.blueprint_file,
                   request.blueprint_text, request.observer);
  WriteFileDurable(wal_dir + "/" + manifest.workspace_file,
                   request.workspace_text, request.observer);
  if (!manifest.policy_file.empty()) {
    WriteFileDurable(wal_dir + "/" + manifest.policy_file,
                     request.policy_text, request.observer);
  }

  // Manifest last, via temp + rename: a crash mid-checkpoint leaves the
  // previous manifest chain intact and this one invisible.
  const std::string manifest_text = FormatWalManifest(manifest);
  const std::string final_path = wal_dir + "/" + ManifestFileName(id);
  const std::string tmp_path = final_path + ".tmp";
  WriteFileDurable(tmp_path, manifest_text, nullptr);
  common::FailpointHit hit;
  if (DAMOCLES_FAILPOINT("checkpoint.manifest.rename", &hit)) {
    // The tmp file stays behind, exactly like a crash between write and
    // rename; PrepareWalDirectory sweeps *.tmp on the next recovery.
    throw Error("checkpoint: cannot rename " + tmp_path +
                ": injected failure (failpoint checkpoint.manifest.rename)");
  }
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    throw Error("checkpoint: cannot rename " + tmp_path + ": " + ec.message());
  }
  SyncDirectory(wal_dir);
  if (request.observer != nullptr) {
    request.observer->OnDurableExtent(final_path, manifest_text.size());
  }
  return id;
}

}  // namespace damocles::metadb
