#include "metadb/dirty_tracker.hpp"

#include <algorithm>

namespace damocles::metadb {

void DirtyTracker::Mark(StampArray& array, size_t slot) noexcept {
  if (slot >= array.size) {
    // Only slot appends reach here, and appends are single-writer and
    // never concurrent with marking workers (the same contract that
    // makes the database's own vector push_backs safe).
    Grow(array, slot + 1);
  }
  array.stamps[slot].store(generation_.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
}

void DirtyTracker::Grow(StampArray& array, size_t needed) {
  if (needed > array.capacity) {
    size_t capacity = std::max<size_t>(array.capacity * 2, 64);
    capacity = std::max(capacity, needed);
    auto stamps = std::make_unique<std::atomic<uint64_t>[]>(capacity);
    for (size_t i = 0; i < array.size; ++i) {
      stamps[i].store(array.stamps[i].load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    }
    for (size_t i = array.size; i < capacity; ++i) {
      stamps[i].store(0, std::memory_order_relaxed);
    }
    array.stamps = std::move(stamps);
    array.capacity = capacity;
  }
  array.size = needed;
}

void DirtyTracker::Collect(const StampArray& array, uint64_t generation,
                           std::vector<uint32_t>& out) {
  for (size_t i = 0; i < array.size; ++i) {
    if (array.stamps[i].load(std::memory_order_relaxed) == generation) {
      out.push_back(static_cast<uint32_t>(i));
    }
  }
}

void DirtyTracker::Restamp(StampArray& array,
                           const std::vector<uint32_t>& slots,
                           uint64_t generation) noexcept {
  for (const uint32_t slot : slots) {
    if (slot < array.size) {
      array.stamps[slot].store(generation, std::memory_order_relaxed);
    }
  }
}

DirtySet DirtyTracker::Cut() {
  const uint64_t generation = generation_.load(std::memory_order_relaxed);
  DirtySet set;
  Collect(objects_, generation, set.objects);
  Collect(links_, generation, set.links);
  Collect(configs_, generation, set.configs);
  generation_.store(generation + 1, std::memory_order_relaxed);
  return set;
}

void DirtyTracker::MergeBack(const DirtySet& set) noexcept {
  const uint64_t generation = generation_.load(std::memory_order_relaxed);
  Restamp(objects_, set.objects, generation);
  Restamp(links_, set.links, generation);
  Restamp(configs_, set.configs, generation);
}

}  // namespace damocles::metadb
