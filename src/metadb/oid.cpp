#include "metadb/oid.hpp"

#include <charconv>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace damocles::metadb {

std::string FormatOid(const Oid& oid) {
  return "<" + oid.block + "." + oid.view + "." + std::to_string(oid.version) +
         ">";
}

std::string FormatOidWire(const Oid& oid) {
  return oid.block + "," + oid.view + "," + std::to_string(oid.version);
}

Oid ParseOidWire(std::string_view text) {
  const auto pieces = Split(text, ',');
  if (pieces.size() != 3) {
    throw WireFormatError("OID must be 'block,view,version': '" +
                          std::string(text) + "'");
  }
  if (pieces[0].empty() || pieces[1].empty()) {
    throw WireFormatError("OID has empty block or view: '" +
                          std::string(text) + "'");
  }
  int version = 0;
  const auto& piece = pieces[2];
  const auto [ptr, ec] =
      std::from_chars(piece.data(), piece.data() + piece.size(), version);
  if (ec != std::errc{} || ptr != piece.data() + piece.size() || version < 1) {
    throw WireFormatError("OID has malformed version: '" + std::string(text) +
                          "'");
  }
  return Oid{pieces[0], pieces[1], version};
}

size_t OidHash::operator()(const Oid& oid) const noexcept {
  const size_t h1 = std::hash<std::string>{}(oid.block);
  const size_t h2 = std::hash<std::string>{}(oid.view);
  const size_t h3 = std::hash<int>{}(oid.version);
  size_t seed = h1;
  seed ^= h2 + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
  seed ^= h3 + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
  return seed;
}

}  // namespace damocles::metadb
