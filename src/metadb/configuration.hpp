// Configuration objects: light-weight snapshots of database addresses.
//
// Paper §2: "The third type of meta-data objects are Configurations,
// which consist of a set of database addresses, referencing OIDs and
// Links. This implementation results in light weight configuration
// objects, which can be used to store results of volume queries."
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "metadb/ids.hpp"

namespace damocles::metadb {

/// A named set of database addresses. A configuration does not own the
/// objects it references — it is a handle set, so building one never
/// copies meta-data (contrast with the deep-copy baseline measured in
/// bench_claim_configuration).
struct Configuration {
  std::string name;        ///< Snapshot name, e.g. "tapeout_candidate_3".
  std::string built_from;  ///< Free-form provenance ("hierarchy of cpu", ...).
  int64_t created_at = 0;  ///< SimClock seconds at creation.

  std::vector<OidId> oids;    ///< Referenced meta-objects.
  std::vector<LinkId> links;  ///< Referenced links.

  bool Empty() const noexcept { return oids.empty() && links.empty(); }
  size_t AddressCount() const noexcept { return oids.size() + links.size(); }
};

}  // namespace damocles::metadb
