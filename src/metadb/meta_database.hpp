// The DAMOCLES meta-database.
//
// Stores meta-objects (OIDs), Links and Configurations; maintains the
// version history per (block, view) pair and link adjacency per object.
// This is the substrate the project BluePrint's run-time engine operates
// on (paper §2).
//
// Storage model: dense vectors with tombstoning. Handles (OidId, LinkId,
// ConfigId) are indices into those vectors and stay valid for the life
// of the database, which is what makes Configuration objects — sets of
// handles — light-weight snapshots.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "metadb/configuration.hpp"
#include "metadb/dirty_tracker.hpp"
#include "metadb/ids.hpp"
#include "metadb/link.hpp"
#include "metadb/meta_object.hpp"
#include "metadb/oid.hpp"
#include "metadb/snapshot.hpp"

namespace damocles::metadb {

/// Aggregate statistics, used by benches and the query layer.
struct DatabaseStats {
  size_t live_objects = 0;
  size_t dead_objects = 0;
  size_t live_links = 0;
  size_t dead_links = 0;
  size_t configurations = 0;
  size_t property_values = 0;
};

/// Receives structural notifications. The run-time engine registers
/// one of these to keep its propagation index consistent with the link
/// graph without rescanning adjacency on every wave; the shard map uses
/// the same protocol to track block-subtree membership.
///
/// Callback contract:
///  * OnObjectCreated fires after the object is indexed (default no-op
///    so link-only observers need not care);
///  * OnLinkAdded fires after the link is wired into adjacency;
///  * OnLinkRemoved fires before the link is detached, with its
///    endpoints and PROPAGATE list still intact;
///  * OnLinkEndpointMoved fires after the move, passing the previous
///    value of the endpoint that changed;
///  * OnLinkPropagatesChanged fires after the change, passing the
///    previous PROPAGATE list.
/// Mutating the PROPAGATE list through GetLinkMutable() bypasses these
/// notifications — use SetLinkPropagates() instead.
class LinkObserver {
 public:
  virtual ~LinkObserver() = default;
  virtual void OnObjectCreated(OidId id, const MetaObject& object) {
    (void)id;
    (void)object;
  }
  virtual void OnLinkAdded(LinkId id, const Link& link) = 0;
  virtual void OnLinkRemoved(LinkId id, const Link& link) = 0;
  virtual void OnLinkEndpointMoved(LinkId id, bool endpoint_from,
                                   OidId old_endpoint, const Link& link) = 0;
  virtual void OnLinkPropagatesChanged(
      LinkId id, const std::vector<std::string>& old_propagates,
      const Link& link) = 0;
};

/// The meta-database. Mutations are not thread-safe; the run-time
/// engine serializes them through its FIFO event queue, matching the
/// paper's "events are processed sequentially, first-in first-out".
/// Concurrent READS go through the epoch-versioned snapshot API below
/// (PublishSnapshot / Latest / AtEpoch): readers pin an immutable
/// published version with one atomic load and never contend with
/// committing waves. See metadb/snapshot.hpp.
class MetaDatabase {
 public:
  MetaDatabase() : snapshots_(std::make_unique<SnapshotStore>()) {}

  // MetaDatabase owns large index structures; copying is almost always
  // a bug (use Configuration snapshots instead), so copies are disabled
  // while moves remain available.
  MetaDatabase(const MetaDatabase&) = delete;
  MetaDatabase& operator=(const MetaDatabase&) = delete;
  MetaDatabase(MetaDatabase&&) = default;
  MetaDatabase& operator=(MetaDatabase&&) = default;

  // --- Meta-object lifecycle -------------------------------------------

  /// Creates the meta-object for `oid`. Throws IntegrityError if the
  /// triplet already exists or if the version is not exactly one past
  /// the latest existing version of (block, view) (1 for the first).
  OidId CreateObject(const Oid& oid, std::string_view user,
                     int64_t timestamp);

  /// Creates the next version of (block, view): version 1 if none
  /// exists, latest+1 otherwise. Returns the new handle.
  OidId CreateNextVersion(std::string_view block, std::string_view view,
                          std::string_view user, int64_t timestamp);

  /// Marks the object dead and removes all of its links.
  void DeleteObject(OidId id);

  // --- Lookup ------------------------------------------------------------

  /// Handle for an exact triplet, or nullopt.
  std::optional<OidId> FindObject(const Oid& oid) const;

  /// Handle for the latest live version of (block, view), or nullopt.
  std::optional<OidId> FindLatest(std::string_view block,
                                  std::string_view view) const;

  /// All versions (live and dead) of (block, view), oldest first.
  std::vector<OidId> VersionChain(std::string_view block,
                                  std::string_view view) const;

  /// Handle of the version preceding `id` in its chain, or nullopt.
  std::optional<OidId> PreviousVersion(OidId id) const;

  /// The object behind a handle. Throws NotFoundError on a stale or
  /// invalid handle.
  const MetaObject& GetObject(OidId id) const;
  MetaObject& GetObjectMutable(OidId id);

  /// True when `id` names a live (not deleted, in-range) object. Cheap
  /// probe for slot-walking callers (the shard map skips dead slots).
  bool IsLiveObject(OidId id) const noexcept {
    return id.value() < objects_.size() && objects_[id.value()].alive;
  }

  // --- Properties ---------------------------------------------------------

  void SetProperty(OidId id, const std::string& name,
                   const std::string& value);
  /// Returns nullptr when the property is absent.
  const std::string* GetProperty(OidId id, const std::string& name) const;
  bool RemoveProperty(OidId id, const std::string& name);

  // --- Links ---------------------------------------------------------------

  /// Creates a link `from -> to`. Both endpoints must be live objects of
  /// this database. Use links additionally require both endpoints to
  /// share a view type (paper §3.2: "the parent and child views of the
  /// use link are of the same view type").
  LinkId CreateLink(LinkKind kind, OidId from, OidId to,
                    std::vector<std::string> propagates, std::string type,
                    CarryPolicy carry);

  void DeleteLink(LinkId id);

  const Link& GetLink(LinkId id) const;
  Link& GetLinkMutable(LinkId id);

  /// Re-points an endpoint of a live link (the version-shift of paper
  /// Fig. 3). `endpoint_from == true` moves the source, else the target.
  void MoveLinkEndpoint(LinkId id, bool endpoint_from, OidId new_endpoint);

  /// Replaces a live link's PROPAGATE list, notifying observers. The
  /// engine's RetemplateLinks goes through here so propagation indexes
  /// track blueprint changes.
  void SetLinkPropagates(LinkId id, std::vector<std::string> propagates);

  // --- Link observers ------------------------------------------------------
  // Observers are not owned; register/unregister is the caller's job
  // (the run-time engine does both in its constructor/destructor).

  void AddLinkObserver(LinkObserver* observer);
  void RemoveLinkObserver(LinkObserver* observer);

  /// Live links whose source / target is `id`.
  const std::vector<LinkId>& OutLinks(OidId id) const;
  const std::vector<LinkId>& InLinks(OidId id) const;

  // --- Configurations ------------------------------------------------------

  /// Stores a configuration under its name; replaces any previous
  /// configuration of the same name.
  ConfigId SaveConfiguration(Configuration config);

  /// Looks a configuration up by name, or nullopt.
  std::optional<ConfigId> FindConfiguration(std::string_view name) const;

  const Configuration& GetConfiguration(ConfigId id) const;

  /// Names of all stored configurations, sorted.
  std::vector<std::string> ConfigurationNames() const;

  // --- Enumeration -----------------------------------------------------------

  /// Calls `fn` for every live object.
  void ForEachObject(const std::function<void(OidId, const MetaObject&)>& fn)
      const;

  /// Calls `fn` for every live link.
  void ForEachLink(const std::function<void(LinkId, const Link&)>& fn) const;

  DatabaseStats Stats() const;

  size_t ObjectSlotCount() const noexcept { return objects_.size(); }
  size_t LinkSlotCount() const noexcept { return links_.size(); }
  size_t ConfigurationSlotCount() const noexcept {
    return configurations_.size();
  }

  // --- Snapshot reads -----------------------------------------------------
  // The engine-wide versioned read API (metadb/snapshot.hpp): readers
  // pin published immutable versions and never lock against committing
  // waves. Publish is writer-side and quiescent-only; everything else
  // is safe from any thread.

  /// Freezes the current state under the next epoch and publishes it.
  /// No-op (returns the existing head) when nothing mutated since the
  /// last publish. Call only while the engine is drain-quiescent.
  Snapshot PublishSnapshot() { return snapshots_->Publish(*this); }

  /// The newest published snapshot — one atomic load, lock-free — or an
  /// unpinned live view when nothing was published yet.
  Snapshot Latest() const { return snapshots_->Latest(*this); }

  /// The newest published snapshot with epoch <= `epoch`. Throws
  /// NotFoundError below the purge floor or before the first publish.
  Snapshot AtEpoch(uint64_t epoch) const { return snapshots_->AtEpoch(epoch); }

  /// Epoch of the newest published snapshot (0 before the first).
  uint64_t snapshot_epoch() const noexcept {
    return snapshots_->head_epoch();
  }

  /// Epoch at/below which published versions were merged out (0 until
  /// the retention cap first trims). Atomic; any thread.
  uint64_t snapshot_purge_floor() const noexcept {
    return snapshots_->purge_floor();
  }

  /// Count of mutations recorded so far (relaxed-atomic; exact at
  /// quiescent points). PublishSnapshot uses it to skip no-op publishes.
  uint64_t mutation_generation() const noexcept {
    return snapshots_->generation();
  }

  /// Published versions retained for AtEpoch before merge-out.
  void SetSnapshotRetention(size_t retention) {
    snapshots_->SetRetention(retention);
  }

  /// Handle-identical deep copy of the slot state (objects, links,
  /// configurations, indexes — observers and the snapshot store are NOT
  /// copied). The snapshot store freezes versions through this; it is
  /// public for tests and future cross-process bootstrap.
  std::shared_ptr<const MetaDatabase> CloneForSnapshot() const;

  // --- Persistence support ---------------------------------------------
  // Raw slot appends used by LoadDatabaseText to reconstruct a database
  // with handle-identical layout (tombstones included). They validate
  // version ordering and endpoint ranges but intentionally bypass the
  // creation-time sequencing checks; do not use them outside the
  // persistence layer.

  /// Appends an object slot verbatim and rebuilds the indexes for it.
  OidId RestoreObjectSlot(MetaObject object);

  /// Appends a link slot verbatim; live links are wired into adjacency.
  LinkId RestoreLinkSlot(Link link);

  /// Appends a configuration slot verbatim.
  ConfigId RestoreConfigurationSlot(Configuration config);

  // --- Delta-checkpoint support ----------------------------------------
  // Slot-addressed writes used by ApplyDatabaseDeltaString to replay a
  // base→delta checkpoint chain, plus the dirty tracking that decides
  // what a delta contains. Apply* deliberately skips adjacency
  // maintenance — call RebuildLinkAdjacency() once after the whole
  // chain is applied.

  /// Overwrites object `slot` (same Oid, new alive/properties state) or
  /// appends it when `slot` == ObjectSlotCount(). Keeps by_oid_ and the
  /// version chains consistent. Throws IntegrityError past the end.
  void ApplyObjectSlot(size_t slot, MetaObject object);

  /// Overwrites link `slot` or appends it when `slot` == LinkSlotCount().
  /// Adjacency is NOT updated; RebuildLinkAdjacency() must follow.
  void ApplyLinkSlot(size_t slot, Link link);

  /// Overwrites configuration `slot` or appends it at the end, keeping
  /// the by-name index consistent.
  void ApplyConfigurationSlot(size_t slot, Configuration config);

  /// Clears and rebuilds out/in link adjacency in link-slot order — the
  /// same order a full-checkpoint load produces, so recovery through a
  /// delta chain is indistinguishable from a full load.
  void RebuildLinkAdjacency();

  /// Starts recording mutated slots for delta checkpoints. Existing
  /// slots become the clean baseline; only later mutations are dirty.
  void EnableDirtyTracking() {
    if (dirty_ == nullptr) dirty_ = std::make_unique<DirtyTracker>();
  }

  bool dirty_tracking_enabled() const noexcept { return dirty_ != nullptr; }

  /// Collects every slot mutated since the previous cut and starts the
  /// next tracking generation. Quiescent callers only (the
  /// PublishSnapshot contract). Empty when tracking is disabled.
  DirtySet CutDirtySet() {
    return dirty_ == nullptr ? DirtySet{} : dirty_->Cut();
  }

  /// Returns a failed checkpoint's cut to the dirty set so the next
  /// delta still covers those slots. Quiescent callers only.
  void MergeBackDirtySet(const DirtySet& set) noexcept {
    if (dirty_ != nullptr) dirty_->MergeBack(set);
  }

 private:
  void CheckObjectHandle(OidId id) const;
  void CheckLinkHandle(LinkId id) const;
  void DetachLinkFromAdjacency(LinkId id);

  /// Bumps the mutation generation (null after a move-out; relaxed —
  /// workers of disjoint shards may record concurrently).
  void Touch() noexcept {
    if (snapshots_ != nullptr) snapshots_->Touch();
  }

  // Dirty-slot marks mirror Touch(): same call sites, same thread
  // contract (concurrent relaxed marks from disjoint-shard workers;
  // array growth only on single-writer structural paths).
  void MarkObjectDirty(size_t slot) noexcept {
    if (dirty_ != nullptr) dirty_->MarkObject(slot);
  }
  void MarkLinkDirty(size_t slot) noexcept {
    if (dirty_ != nullptr) dirty_->MarkLink(slot);
  }
  void MarkConfigDirty(size_t slot) noexcept {
    if (dirty_ != nullptr) dirty_->MarkConfig(slot);
  }

  std::vector<MetaObject> objects_;
  std::vector<Link> links_;
  std::vector<Configuration> configurations_;
  std::vector<LinkObserver*> link_observers_;

  std::unordered_map<Oid, OidId, OidHash> by_oid_;
  // (block + '\0' + view) -> version chain, oldest first.
  std::unordered_map<std::string, std::vector<OidId>> chains_;
  std::unordered_map<std::string, ConfigId> config_by_name_;

  std::vector<std::vector<LinkId>> out_links_;
  std::vector<std::vector<LinkId>> in_links_;

  /// The epoch-versioned snapshot machinery. Behind a unique_ptr so the
  /// database stays movable (the store holds atomics and a mutex).
  std::unique_ptr<SnapshotStore> snapshots_;

  /// Dirty-slot tracking for delta checkpoints; null until
  /// EnableDirtyTracking() (non-durable databases never pay for marks).
  std::unique_ptr<DirtyTracker> dirty_;
};

}  // namespace damocles::metadb
