// The OID triplet: <block-name, view-type, version-number>.
//
// Paper §2: "To each design object corresponds a meta-data object
// (referenced by an OID ...) which is defined by a triplet of
// block-name, view-type and version number."
#pragma once

#include <string>
#include <string_view>

namespace damocles::metadb {

/// Identity of a design object as seen by the tracking system.
struct Oid {
  std::string block;  ///< Block name, e.g. "cpu" or "alu".
  std::string view;   ///< View type, e.g. "schematic" or "GDSII".
  int version = 1;    ///< Version number, starting at 1.

  friend bool operator==(const Oid& a, const Oid& b) {
    return a.version == b.version && a.block == b.block && a.view == b.view;
  }
  friend bool operator!=(const Oid& a, const Oid& b) { return !(a == b); }

  /// Orders by block, then view, then version — the order version
  /// chains are reported in.
  friend bool operator<(const Oid& a, const Oid& b) {
    if (a.block != b.block) return a.block < b.block;
    if (a.view != b.view) return a.view < b.view;
    return a.version < b.version;
  }
};

/// Formats an OID in the paper's display style: "<cpu.schematic.4>".
std::string FormatOid(const Oid& oid);

/// Formats an OID in the wire style used by postEvent: "cpu,schematic,4".
std::string FormatOidWire(const Oid& oid);

/// Parses the wire style ("cpu,schematic,4"). Throws WireFormatError on
/// malformed input (wrong arity, empty fields, non-numeric version).
Oid ParseOidWire(std::string_view text);

/// Hash functor so Oid can key unordered containers.
struct OidHash {
  size_t operator()(const Oid& oid) const noexcept;
};

}  // namespace damocles::metadb
