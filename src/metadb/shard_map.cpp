#include "metadb/shard_map.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

namespace damocles::metadb {

ShardMap::ShardMap(MetaDatabase& db, uint32_t num_shards)
    : db_(db), num_shards_(num_shards == 0 ? 1 : num_shards) {
  // Seed the forest from the existing meta-data, then let the observer
  // protocol keep it current.
  block_of_slot_.assign(db_.ObjectSlotCount(), kUnassigned);
  db_.ForEachObject([this](OidId id, const MetaObject& object) {
    block_of_slot_[id.value()] = InternBlock(object.oid.block);
  });
  Rebalance();
  db_.AddLinkObserver(this);
}

ShardMap::~ShardMap() { db_.RemoveLinkObserver(this); }

// --- Read path (no writes: concurrent readers are safe) --------------------

uint32_t ShardMap::FindRoot(uint32_t block) const noexcept {
  while (parent_[block] != block) block = parent_[block];
  return block;
}

uint32_t ShardMap::ShardOf(OidId id) const noexcept {
  const uint32_t slot = id.value();
  if (slot >= block_of_slot_.size() || block_of_slot_[slot] == kUnassigned) {
    return Mix(slot) % num_shards_;  // Untracked slot (e.g. restored dead).
  }
  const uint32_t root = FindRoot(block_of_slot_[slot]);
  const uint32_t shard = shard_of_root_[root];
  return shard != kUnassigned ? shard : Mix(root) % num_shards_;
}

const std::string& ShardMap::RootBlockOf(OidId id) const {
  const uint32_t slot = id.value();
  if (slot >= block_of_slot_.size() || block_of_slot_[slot] == kUnassigned) {
    return db_.GetObject(id).oid.block;  // Untracked: its own root.
  }
  return blocks_.Text(FindRoot(block_of_slot_[slot]));
}

// --- Mutation path (quiescent engine only) ----------------------------------

uint32_t ShardMap::FindCompress(uint32_t block) {
  const uint32_t root = FindRoot(block);
  while (parent_[block] != root) {
    const uint32_t next = parent_[block];
    parent_[block] = root;
    block = next;
  }
  return root;
}

uint32_t ShardMap::InternBlock(std::string_view block) {
  const uint32_t sym = blocks_.Intern(block);
  if (sym >= parent_.size()) {
    const size_t old = parent_.size();
    parent_.resize(sym + 1);
    std::iota(parent_.begin() + static_cast<ptrdiff_t>(old), parent_.end(),
              static_cast<uint32_t>(old));
    // A fresh block starts as its own subtree root, unassigned: it
    // serves the deterministic hash fallback until the next Rebalance
    // deals roots round-robin. (Assigning a cursor value here instead
    // would silently alias every root onto one shard whenever the
    // per-subtree block count divides num_shards.)
    shard_of_root_.resize(sym + 1, kUnassigned);
  }
  return sym;
}

void ShardMap::Union(uint32_t a, uint32_t b) {
  uint32_t ra = FindCompress(a);
  uint32_t rb = FindCompress(b);
  if (ra == rb) return;
  // The earlier-created block survives as root (the hierarchy root is
  // created before its components) and keeps its shard.
  if (rb < ra) std::swap(ra, rb);
  parent_[rb] = ra;
  ++stats_.incremental_unions;
}

void ShardMap::Rebalance() {
  std::iota(parent_.begin(), parent_.end(), 0u);
  db_.ForEachLink([this](LinkId, const Link& link) {
    if (link.kind != LinkKind::kUse) return;
    const uint32_t a = FindCompress(block_of_slot_[link.from.value()]);
    const uint32_t b = FindCompress(block_of_slot_[link.to.value()]);
    if (a != b) parent_[std::max(a, b)] = std::min(a, b);
  });
  // Deal roots out round-robin in block-creation order: deterministic
  // and balanced. Id 0 is the interner's reserved empty string.
  shard_of_root_.assign(parent_.size(), kUnassigned);
  next_shard_ = 0;
  for (uint32_t block = 1; block < parent_.size(); ++block) {
    if (FindCompress(block) == block) {
      shard_of_root_[block] = next_shard_++ % num_shards_;
    }
  }
  dirty_ = false;
  ++stats_.rebalances;
}

// --- Observer callbacks ------------------------------------------------------

void ShardMap::OnObjectCreated(OidId id, const MetaObject& object) {
  if (id.value() >= block_of_slot_.size()) {
    block_of_slot_.resize(id.value() + 1, kUnassigned);
  }
  block_of_slot_[id.value()] = InternBlock(object.oid.block);
}

void ShardMap::OnLinkAdded(LinkId, const Link& link) {
  if (link.kind != LinkKind::kUse) return;  // Derive links never regroup.
  Union(block_of_slot_[link.from.value()], block_of_slot_[link.to.value()]);
}

void ShardMap::OnLinkRemoved(LinkId, const Link& link) {
  if (link.kind != LinkKind::kUse) return;
  // A union-find cannot split; the next rebalance recomputes the forest.
  dirty_ = true;
  ++stats_.structural_splits;
}

void ShardMap::OnLinkEndpointMoved(LinkId, bool endpoint_from,
                                   OidId old_endpoint, const Link& link) {
  if (link.kind != LinkKind::kUse) return;
  const OidId moved = endpoint_from ? link.from : link.to;
  const uint32_t old_block = block_of_slot_[old_endpoint.value()];
  const uint32_t new_block = block_of_slot_[moved.value()];
  if (old_block == new_block) return;  // Version carry within one block.
  Union(block_of_slot_[link.from.value()], block_of_slot_[link.to.value()]);
  dirty_ = true;  // The old side may have split off.
  ++stats_.structural_splits;
}

void ShardMap::OnLinkPropagatesChanged(LinkId, const std::vector<std::string>&,
                                       const Link&) {
  // PROPAGATE rewrites do not change connectivity.
}

}  // namespace damocles::metadb
