#include "metadb/shard_map.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

namespace damocles::metadb {

ShardMap::ShardMap(MetaDatabase& db, uint32_t num_shards)
    : db_(db), num_shards_(num_shards == 0 ? 1 : num_shards) {
  // Seed the forest from the existing meta-data, then let the observer
  // protocol keep it current.
  block_of_slot_.assign(db_.ObjectSlotCount(), kUnassigned);
  db_.ForEachObject([this](OidId id, const MetaObject& object) {
    const uint32_t block = InternBlock(object.oid.block);
    block_of_slot_[id.value()] = block;
    slots_of_block_[block].push_back(id.value());
  });
  Rebalance();
  db_.AddLinkObserver(this);
}

ShardMap::~ShardMap() { db_.RemoveLinkObserver(this); }

// --- Read path (no writes: concurrent readers are safe) --------------------

uint32_t ShardMap::FindRoot(uint32_t block) const noexcept {
  while (parent_[block] != block) block = parent_[block];
  return block;
}

uint32_t ShardMap::ShardOf(OidId id) const noexcept {
  const uint32_t slot = id.value();
  if (slot >= block_of_slot_.size() || block_of_slot_[slot] == kUnassigned) {
    return Mix(slot) % num_shards_;  // Untracked slot (e.g. restored dead).
  }
  const uint32_t root = FindRoot(block_of_slot_[slot]);
  const uint32_t shard = shard_of_root_[root];
  return shard != kUnassigned ? shard : Mix(root) % num_shards_;
}

const std::string& ShardMap::RootBlockOf(OidId id) const {
  const uint32_t slot = id.value();
  if (slot >= block_of_slot_.size() || block_of_slot_[slot] == kUnassigned) {
    return db_.GetObject(id).oid.block;  // Untracked: its own root.
  }
  return blocks_.Text(FindRoot(block_of_slot_[slot]));
}

// --- Mutation path (quiescent engine only) ----------------------------------

uint32_t ShardMap::FindCompress(uint32_t block) {
  const uint32_t root = FindRoot(block);
  while (parent_[block] != root) {
    const uint32_t next = parent_[block];
    parent_[block] = root;
    block = next;
  }
  return root;
}

uint32_t ShardMap::InternBlock(std::string_view block) {
  const uint32_t sym = blocks_.Intern(block);
  if (sym >= parent_.size()) {
    const size_t old = parent_.size();
    parent_.resize(sym + 1);
    std::iota(parent_.begin() + static_cast<ptrdiff_t>(old), parent_.end(),
              static_cast<uint32_t>(old));
    // A fresh block starts as its own subtree root, unassigned: it
    // serves the deterministic hash fallback until the next Rebalance
    // deals roots round-robin. (Assigning a cursor value here instead
    // would silently alias every root onto one shard whenever the
    // per-subtree block count divides num_shards.)
    shard_of_root_.resize(sym + 1, kUnassigned);
    group_next_.resize(sym + 1);
    std::iota(group_next_.begin() + static_cast<ptrdiff_t>(old),
              group_next_.end(), static_cast<uint32_t>(old));
    slots_of_block_.resize(sym + 1);
  }
  return sym;
}

void ShardMap::ForEachGroupMember(OidId id,
                                  const std::function<void(OidId)>& fn) const {
  const uint32_t slot = id.value();
  if (slot >= block_of_slot_.size() || block_of_slot_[slot] == kUnassigned) {
    fn(id);  // Untracked slot: a group of one.
    return;
  }
  ForEachGroupBlock(block_of_slot_[slot], [&](uint32_t block) {
    for (const uint32_t member : slots_of_block_[block]) fn(OidId(member));
  });
}

void ShardMap::Union(uint32_t a, uint32_t b) {
  uint32_t ra = FindCompress(a);
  uint32_t rb = FindCompress(b);
  if (ra == rb) return;
  // The earlier-created block survives as root (the hierarchy root is
  // created before its components) and keeps its shard.
  if (rb < ra) std::swap(ra, rb);
  // The losing group follows the surviving root's shard. Collect the
  // moved OIDs first (the circles merge below), apply the union, then
  // notify — listeners observe the post-change assignment, matching
  // Rebalance's diff order. Often nothing moves: both roots may resolve
  // to the same shard.
  const uint32_t new_shard = shard_of_root_[ra] != kUnassigned
                                 ? shard_of_root_[ra]
                                 : Mix(ra) % num_shards_;
  const uint32_t old_shard = shard_of_root_[rb] != kUnassigned
                                 ? shard_of_root_[rb]
                                 : Mix(rb) % num_shards_;
  std::vector<uint32_t> moved;
  if (listener_ != nullptr && new_shard != old_shard) {
    ForEachGroupBlock(rb, [&](uint32_t block) {
      for (const uint32_t slot : slots_of_block_[block]) {
        // Dead versions keep their slot entry (there is no deletion
        // hook) but have no index buckets to migrate — skip them.
        if (db_.IsLiveObject(OidId(slot))) moved.push_back(slot);
      }
    });
  }
  parent_[rb] = ra;
  SpliceGroups(ra, rb);
  ++stats_.incremental_unions;
  for (const uint32_t slot : moved) {
    ++stats_.reassignments;
    listener_->OnShardChanged(OidId(slot), old_shard, new_shard);
  }
}

void ShardMap::Rebalance() {
  // With a listener installed, snapshot effective assignments so the
  // re-deal can be reported as a per-OID diff (bucket migration beats
  // rebuilding N indexes).
  std::vector<uint32_t> before;
  if (listener_ != nullptr) {
    before.resize(block_of_slot_.size());
    for (uint32_t slot = 0; slot < before.size(); ++slot) {
      before[slot] = ShardOf(OidId(slot));
    }
  }

  std::iota(parent_.begin(), parent_.end(), 0u);
  std::iota(group_next_.begin(), group_next_.end(), 0u);
  db_.ForEachLink([this](LinkId, const Link& link) {
    if (link.kind != LinkKind::kUse) return;
    const uint32_t a = FindCompress(block_of_slot_[link.from.value()]);
    const uint32_t b = FindCompress(block_of_slot_[link.to.value()]);
    if (a == b) return;
    parent_[std::max(a, b)] = std::min(a, b);
    SpliceGroups(a, b);
  });
  // Deal roots out round-robin in block-creation order: deterministic
  // and balanced. Id 0 is the interner's reserved empty string.
  shard_of_root_.assign(parent_.size(), kUnassigned);
  next_shard_ = 0;
  for (uint32_t block = 1; block < parent_.size(); ++block) {
    if (FindCompress(block) == block) {
      shard_of_root_[block] = next_shard_++ % num_shards_;
    }
  }
  dirty_ = false;
  ++stats_.rebalances;

  if (listener_ != nullptr) {
    for (uint32_t slot = 0; slot < before.size(); ++slot) {
      if (block_of_slot_[slot] == kUnassigned) continue;
      if (!db_.IsLiveObject(OidId(slot))) continue;  // Nothing to migrate.
      const uint32_t now = ShardOf(OidId(slot));
      if (now != before[slot]) {
        ++stats_.reassignments;
        listener_->OnShardChanged(OidId(slot), before[slot], now);
      }
    }
  }
}

// --- Observer callbacks ------------------------------------------------------

void ShardMap::OnObjectCreated(OidId id, const MetaObject& object) {
  if (id.value() >= block_of_slot_.size()) {
    block_of_slot_.resize(id.value() + 1, kUnassigned);
  }
  const uint32_t block = InternBlock(object.oid.block);
  block_of_slot_[id.value()] = block;
  slots_of_block_[block].push_back(id.value());
}

void ShardMap::OnLinkAdded(LinkId, const Link& link) {
  if (link.kind != LinkKind::kUse) return;  // Derive links never regroup.
  Union(block_of_slot_[link.from.value()], block_of_slot_[link.to.value()]);
}

void ShardMap::OnLinkRemoved(LinkId, const Link& link) {
  if (link.kind != LinkKind::kUse) return;
  // A union-find cannot split; the next rebalance recomputes the forest.
  dirty_ = true;
  ++stats_.structural_splits;
}

void ShardMap::OnLinkEndpointMoved(LinkId, bool endpoint_from,
                                   OidId old_endpoint, const Link& link) {
  if (link.kind != LinkKind::kUse) return;
  const OidId moved = endpoint_from ? link.from : link.to;
  const uint32_t old_block = block_of_slot_[old_endpoint.value()];
  const uint32_t new_block = block_of_slot_[moved.value()];
  if (old_block == new_block) return;  // Version carry within one block.
  Union(block_of_slot_[link.from.value()], block_of_slot_[link.to.value()]);
  dirty_ = true;  // The old side may have split off.
  ++stats_.structural_splits;
}

void ShardMap::OnLinkPropagatesChanged(LinkId, const std::vector<std::string>&,
                                       const Link&) {
  // PROPAGATE rewrites do not change connectivity.
}

}  // namespace damocles::metadb
