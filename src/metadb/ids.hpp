// Strongly typed handles into the meta-database.
//
// The meta-database stores meta-objects and links in dense arrays;
// handles are array indices wrapped in distinct types so an OID handle
// can never be passed where a link handle is expected. Configurations
// (paper §2) are "sets of database addresses" — exactly these handles —
// which is what makes them light-weight.
#pragma once

#include <cstdint>
#include <functional>

namespace damocles::metadb {

namespace internal {

/// A dense, type-tagged index. The tag type is never instantiated; it
/// only differentiates handle types at compile time.
template <typename Tag>
class Id {
 public:
  constexpr Id() = default;
  constexpr explicit Id(uint32_t value) : value_(value) {}

  constexpr uint32_t value() const noexcept { return value_; }
  constexpr bool valid() const noexcept { return value_ != kInvalidValue; }

  friend constexpr bool operator==(Id a, Id b) noexcept {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(Id a, Id b) noexcept {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(Id a, Id b) noexcept {
    return a.value_ < b.value_;
  }

  static constexpr uint32_t kInvalidValue = ~uint32_t{0};

 private:
  uint32_t value_ = kInvalidValue;
};

}  // namespace internal

struct OidTag;
struct LinkTag;
struct ConfigTag;

/// Handle to a meta-object (the paper's "OID" database address).
using OidId = internal::Id<OidTag>;

/// Handle to a Link object.
using LinkId = internal::Id<LinkTag>;

/// Handle to a Configuration object.
using ConfigId = internal::Id<ConfigTag>;

}  // namespace damocles::metadb

namespace std {

template <typename Tag>
struct hash<damocles::metadb::internal::Id<Tag>> {
  size_t operator()(damocles::metadb::internal::Id<Tag> id) const noexcept {
    return std::hash<uint32_t>{}(id.value());
  }
};

}  // namespace std
