// Workspaces: the design-data repositories DAMOCLES observes.
//
// Paper §2: "DAMOCLES manages data repositories, called workspaces by
// associating them to a meta-database."  The workspace stores the
// actual design data (here: simulated file contents keyed by OID) and
// emits observer notifications on every transaction — the hook through
// which the non-obstructive tracking system watches design activity
// without sitting in the designer's way.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "metadb/oid.hpp"

namespace damocles::metadb {

/// Kinds of workspace transactions observers are told about.
enum class WorkspaceAction {
  kCheckOut,  ///< A designer acquired a working copy.
  kCheckIn,   ///< A new version was promoted to the workspace.
  kDelete,    ///< A design object was removed.
};

const char* WorkspaceActionName(WorkspaceAction action) noexcept;

/// Notification describing one workspace transaction.
struct WorkspaceNotification {
  WorkspaceAction action = WorkspaceAction::kCheckIn;
  Oid oid;           ///< The design object affected (version after the action).
  std::string user;  ///< Acting designer.
  int64_t timestamp = 0;
};

/// One stored design file.
struct DesignFile {
  std::string content;
  std::string checked_out_by;  ///< Empty when not checked out.
  int64_t modified_at = 0;
};

/// A design-data repository. Versions are immutable once checked in;
/// a check-in of (block, view) always creates the next version.
class Workspace {
 public:
  using Observer = std::function<void(const WorkspaceNotification&)>;

  explicit Workspace(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }

  /// Registers an observer; every subsequent transaction is reported.
  void AddObserver(Observer observer);

  /// Checks out the latest version of (block, view) for `user`.
  /// Throws PermissionError if another user holds a checkout, and
  /// NotFoundError if the object does not exist.
  Oid CheckOut(std::string_view block, std::string_view view,
               std::string_view user, int64_t timestamp);

  /// Promotes `content` as the next version of (block, view). Releases
  /// any checkout held by `user`. Returns the new OID.
  Oid CheckIn(std::string_view block, std::string_view view,
              std::string_view content, std::string_view user,
              int64_t timestamp);

  /// Removes a specific version. Throws NotFoundError if absent.
  void Delete(const Oid& oid, std::string_view user, int64_t timestamp);

  /// Reads a stored design file, or nullopt.
  std::optional<DesignFile> Read(const Oid& oid) const;

  /// Latest version number of (block, view); 0 when none exists.
  int LatestVersion(std::string_view block, std::string_view view) const;

  /// Who currently holds the checkout of (block, view); empty if nobody.
  std::string CheckedOutBy(std::string_view block, std::string_view view)
      const;

  size_t FileCount() const noexcept { return files_.size(); }

  /// Calls `fn` for every stored design file, in OID order (polling
  /// trackers scan the repository this way).
  void ForEachFile(
      const std::function<void(const Oid&, const DesignFile&)>& fn) const;

  // --- Restore paths (crash recovery; see metadb/recovery.hpp) ----------

  /// Reinstates a stored file at its exact OID without emitting observer
  /// notifications, and raises the latest-version floor of its
  /// (block, view) to at least `oid.version`.
  void RestoreFile(const Oid& oid, std::string content, int64_t modified_at);

  /// Raises the latest-version floor of (block, view) to at least
  /// `version` (checkpointed floors can exceed the newest surviving
  /// file after deletes; check-ins must not re-mint old versions).
  void RestoreLatestVersion(std::string_view block, std::string_view view,
                            int version);

  /// Calls `fn` for every (block, view, latest version) entry, in key
  /// order (the checkpoint writer scans the floors this way).
  void ForEachLatest(const std::function<void(
                         std::string_view, std::string_view, int)>& fn) const;

 private:
  void Notify(const WorkspaceNotification& notification) const;

  std::string name_;
  std::map<Oid, DesignFile> files_;
  // (block '\0' view) -> latest version / holder of the checkout.
  std::map<std::string, int> latest_;
  std::map<std::string, std::string> checkouts_;
  std::vector<Observer> observers_;
};

}  // namespace damocles::metadb
