#include "metadb/config_builder.hpp"

#include <algorithm>
#include <unordered_set>

namespace damocles::metadb {

namespace {

struct TraversalState {
  const MetaDatabase& db;
  const TraversalRules& rules;
  Configuration& config;
  std::unordered_set<uint32_t> visited_objects;
  std::unordered_set<uint32_t> visited_links;
};

bool ShouldFollow(const Link& link, const TraversalRules& rules) {
  if (link.kind == LinkKind::kUse) return rules.follow_use_links;
  if (!rules.follow_derive_links) return false;
  if (rules.derive_types.empty()) return true;
  return std::find(rules.derive_types.begin(), rules.derive_types.end(),
                   link.type) != rules.derive_types.end();
}

void Visit(TraversalState& state, OidId id, int depth) {
  if (!state.visited_objects.insert(id.value()).second) return;
  state.config.oids.push_back(id);
  if (state.rules.max_depth >= 0 && depth >= state.rules.max_depth) return;
  for (const LinkId link_id : state.db.OutLinks(id)) {
    const Link& link = state.db.GetLink(link_id);
    if (!ShouldFollow(link, state.rules)) continue;
    if (state.rules.include_links &&
        state.visited_links.insert(link_id.value()).second) {
      state.config.links.push_back(link_id);
    }
    Visit(state, link.to, depth + 1);
  }
}

}  // namespace

Configuration BuildHierarchyConfiguration(const MetaDatabase& db, OidId root,
                                          std::string name,
                                          const TraversalRules& rules,
                                          int64_t timestamp) {
  Configuration config;
  config.name = std::move(name);
  config.built_from = "hierarchy of " + FormatOid(db.GetObject(root).oid);
  config.created_at = timestamp;
  TraversalState state{db, rules, config, {}, {}};
  Visit(state, root, 0);
  return config;
}

Configuration BuildQueryConfiguration(
    const MetaDatabase& db, std::string name,
    const std::function<bool(OidId, const MetaObject&)>& predicate,
    int64_t timestamp) {
  Configuration config;
  config.name = std::move(name);
  config.built_from = "query";
  config.created_at = timestamp;
  db.ForEachObject([&](OidId id, const MetaObject& object) {
    if (predicate(id, object)) config.oids.push_back(id);
  });
  return config;
}

Configuration BuildFullCheckpoint(const MetaDatabase& db, std::string name,
                                int64_t timestamp) {
  Configuration config;
  config.name = std::move(name);
  config.built_from = "full snapshot";
  config.created_at = timestamp;
  db.ForEachObject(
      [&](OidId id, const MetaObject&) { config.oids.push_back(id); });
  db.ForEachLink(
      [&](LinkId id, const Link&) { config.links.push_back(id); });
  return config;
}

std::vector<OidId> ConfigurationDiff(const Configuration& older,
                                     const Configuration& newer) {
  std::unordered_set<uint32_t> old_set;
  old_set.reserve(older.oids.size());
  for (const OidId id : older.oids) old_set.insert(id.value());
  std::unordered_set<uint32_t> new_set;
  new_set.reserve(newer.oids.size());
  for (const OidId id : newer.oids) new_set.insert(id.value());

  std::vector<OidId> diff;
  for (const OidId id : newer.oids) {
    if (old_set.find(id.value()) == old_set.end()) diff.push_back(id);
  }
  for (const OidId id : older.oids) {
    if (new_set.find(id.value()) == new_set.end()) diff.push_back(id);
  }
  return diff;
}

}  // namespace damocles::metadb
