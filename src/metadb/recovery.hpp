// Checkpoint manifests and crash recovery over the write-ahead log.
//
// A durable server periodically checkpoints: the full meta-database
// (metadb/persistence text format), the active blueprint text and the
// workspace contents are written to checkpoint files, and a manifest
// records them together with the logical WAL offset each stream had
// reached. Recovery picks the newest manifest whose files all validate
// (a torn checkpoint write falls back to the previous one), loads the
// checkpoint, re-records the pre-checkpoint journal rows from the row
// streams, and replays the operation-stream tail past the checkpoint to
// regenerate everything newer — property state, journal contents and
// per-shard epoch bookkeeping alike.
//
// The invariant the crash-point fuzz enforces: for any crash point,
// recover + resume produces the same journal record multiset, property
// state and claim/epoch state as the uninterrupted run.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "events/wal.hpp"
#include "metadb/workspace.hpp"

namespace damocles::metadb {

/// One checkpoint's metadata: what was saved, and how far each WAL
/// stream reached when the checkpoint was taken.
struct WalManifest {
  uint64_t checkpoint_id = 0;
  /// Delta checkpoints record only the dirty slots since `base_id` and
  /// chain onto it (base → delta → delta …). Full checkpoints stand
  /// alone. The manifest text carries `kind delta` + `base <id>` lines
  /// only for deltas, so full manifests stay byte-stable for servers
  /// predating incremental checkpoints.
  bool delta = false;
  uint64_t base_id = 0;
  /// Last operation sequence number covered by the checkpoint; recovery
  /// replays ops with op_seq greater than this.
  uint64_t op_seq = 0;
  /// Logical end offset of the "ops" stream at checkpoint time.
  uint64_t ops_offset = 0;
  int64_t clock_seconds = 0;
  /// Sharded-epoch bookkeeping (ShardedEngine counters): last minted
  /// wave epoch and the cumulative wave count. Zero when unsharded.
  uint64_t epoch_next = 0;
  uint64_t epoch_waves = 0;
  uint32_t num_shards = 1;
  std::string db_file;
  uint64_t db_bytes = 0;
  std::string blueprint_file;
  uint64_t blueprint_bytes = 0;
  std::string workspace_file;
  uint64_t workspace_bytes = 0;
  /// Serialized PolicyStore (commit chain + promotion stack). Empty
  /// file name on manifests written before policy versioning existed;
  /// such checkpoints load with an empty store and the blueprint is
  /// re-adopted as version 1.
  std::string policy_file;
  uint64_t policy_bytes = 0;
  /// (row stream name, logical offset at checkpoint time).
  std::vector<std::pair<std::string, uint64_t>> streams;
};

/// Renders the manifest in its line-oriented text format.
std::string FormatWalManifest(const WalManifest& manifest);

/// Inverse of FormatWalManifest. Throws WireFormatError (with the
/// offending line number) on malformed input.
WalManifest ParseWalManifest(const std::string& text);

/// Manifest / checkpoint file names within the WAL directory:
/// "manifest-000003.txt", "checkpoint-000003.db".
std::string ManifestFileName(uint64_t checkpoint_id);
std::string CheckpointFileName(uint64_t checkpoint_id, const std::string& ext);

/// Highest manifest id present in `dir`; 0 when none.
uint64_t LatestManifestId(const std::string& dir);

// --- Workspace checkpoint text ---------------------------------------------

/// Serializes workspace contents (files and latest-version floors) in a
/// line-oriented text format. Deterministic.
std::string SaveWorkspaceText(const Workspace& workspace);

/// Restores a SaveWorkspaceText dump into `workspace` via the restore
/// APIs (no observer notifications). Throws WireFormatError with the
/// offending line number on malformed input.
void LoadWorkspaceText(const std::string& text, Workspace& workspace);

// --- Recovery --------------------------------------------------------------

/// Journal rows to re-record into one row stream's journal.
struct RecoveredStream {
  std::string name;
  std::vector<events::WalRestoredRow> rows;
};

/// Everything a server needs to rebuild its state from a WAL directory.
struct RecoveryPlan {
  bool have_checkpoint = false;
  WalManifest manifest;       ///< The chain TIP when have_checkpoint.
  std::string db_text;        ///< Base (full) checkpoint database dump.
  /// Delta texts to apply on top of db_text, base-to-tip order. Empty
  /// when the tip is itself a full checkpoint.
  std::vector<std::string> db_deltas;
  /// Manifest ids of the loaded chain, base first, tip last. One entry
  /// (the tip) for full checkpoints; empty without a checkpoint.
  std::vector<uint64_t> chain_ids;
  std::string blueprint_text; ///< Checkpoint blueprint (may be empty).
  std::string workspace_text; ///< Checkpoint workspace dump.
  std::string policy_text;    ///< Checkpoint PolicyStore dump (may be empty).
  /// Pre-checkpoint journal rows per row stream (already cut to the
  /// manifest offsets, with resets applied).
  std::vector<RecoveredStream> streams;
  /// Intact operations past the checkpoint, in logged order.
  std::vector<events::WalOpEntry> replay_ops;
  /// Logical end of the intact "ops" prefix (the torn tail starts here).
  uint64_t replay_ops_end = 0;
  /// Highest op_seq on record (checkpoint or ops stream); the server
  /// continues numbering from here.
  uint64_t last_op_seq = 0;
  /// Newer-but-invalid manifests that were passed over.
  size_t manifests_skipped = 0;
  /// Total journal rows restored across streams.
  size_t restored_rows = 0;
};

/// Scans `wal_dir` and builds the plan: newest valid checkpoint (every
/// referenced file must exist, match its recorded size and parse),
/// pre-checkpoint rows per stream, and the ops tail to replay. Read-only;
/// a missing or empty directory yields an empty plan.
RecoveryPlan BuildRecoveryPlan(const std::string& wal_dir);

/// Human-readable report over the checkpoint manifests in `wal_dir`:
/// one line per manifest (kind, base, op-seq, ops offset, db payload
/// size) plus the base→tip chain recovery would load. Read-only; the
/// wal_inspect CLI appends this to the stream report.
std::string FormatWalCheckpointChains(const std::string& wal_dir);

/// Garbage-collection outcome of PrepareWalDirectory /
/// PruneWalCheckpoints. `failed_removals` counts fs::remove calls whose
/// error code reported failure — previously ignored, silently leaking
/// disk; the server surfaces the count through wal-status and trips a
/// pruning-behind warning (not degraded mode).
struct WalGcStats {
  size_t artifacts_removed = 0;
  size_t failed_removals = 0;
};

/// Makes the directory consistent with `plan` before writers re-attach:
/// truncates the ops stream at its torn tail, cuts every row stream back
/// to its manifest offset (streams unknown to the manifest are removed),
/// deletes manifests newer than the chosen chain tip together with
/// their checkpoint files, sweeps `*.tmp` leftovers from killed
/// manifest renames, and removes orphaned checkpoint files that no
/// manifest on disk references. Returns what was (and could not be)
/// garbage-collected.
WalGcStats PrepareWalDirectory(const std::string& wal_dir,
                               const RecoveryPlan& plan);

/// Removes every manifest (and its checkpoint files) with id strictly
/// below `keep_from_id` — the retention path after a committed
/// checkpoint supersedes older chains. Never touches ids >=
/// `keep_from_id`. Returns removal/failure counts like
/// PrepareWalDirectory.
WalGcStats PruneWalCheckpoints(const std::string& wal_dir,
                               uint64_t keep_from_id);

// --- Checkpointing ---------------------------------------------------------

/// Input to WriteWalCheckpoint; the server fills it after draining and
/// syncing every stream.
struct CheckpointRequest {
  /// Delta checkpoints carry the dirty-slot delta in db_text (the
  /// "dbd" checkpoint file) and chain onto manifest `base_id`; full
  /// checkpoints carry the complete database dump ("db" file).
  bool delta = false;
  uint64_t base_id = 0;
  uint64_t op_seq = 0;
  uint64_t ops_offset = 0;
  int64_t clock_seconds = 0;
  uint64_t epoch_next = 0;
  uint64_t epoch_waves = 0;
  uint32_t num_shards = 1;
  std::string db_text;
  std::string blueprint_text;
  std::string workspace_text;
  std::string policy_text;
  std::vector<std::pair<std::string, uint64_t>> streams;
  /// Observed (like WAL appends) so the crash harness can cut inside a
  /// checkpoint write; production leaves it unset.
  events::WalAppendObserver* observer = nullptr;
};

/// Writes the checkpoint files (fsynced) and then the manifest via
/// write-to-temp + rename, so a crash mid-checkpoint leaves either the
/// old manifest chain or a complete new one. Returns the checkpoint id.
uint64_t WriteWalCheckpoint(const std::string& wal_dir,
                            const CheckpointRequest& request);

}  // namespace damocles::metadb
