// Link objects: the typed, annotated relations between meta-objects.
//
// Paper §2: "The relationship between the design objects are represented
// in the meta-database by Links. ... DAMOCLES distinguishes between two
// classes of Links: use links which represent hierarchy and derive links
// which represent other relationships."  Each Link carries a PROPAGATE
// property enumerating the events allowed through it.
#pragma once

#include <algorithm>
#include <string>
#include <string_view>
#include <vector>

#include "metadb/ids.hpp"
#include "metadb/meta_object.hpp"

namespace damocles::metadb {

/// The two classes of links the paper distinguishes.
enum class LinkKind {
  kUse,     ///< Hierarchy within one view type (parent -> component).
  kDerive,  ///< Any other relation (derivation, equivalence, ...).
};

/// What happens to a link instance when a new version of an endpoint
/// OID is created (paper Fig. 3: the "move" keyword shifts the link from
/// the old version to the new version).
enum class CarryPolicy {
  kNone,  ///< The link stays on the old version.
  kCopy,  ///< A duplicate link is attached to the new version.
  kMove,  ///< The link is shifted to the new version.
};

const char* LinkKindName(LinkKind kind) noexcept;
const char* CarryPolicyName(CarryPolicy policy) noexcept;

/// A directed, annotated relation `from -> to`.
///
/// Orientation follows the blueprint declaration: `link_from X ... `
/// inside `view Y` creates links X -> Y, and a use link points from the
/// hierarchical parent to the component. Event direction `down` travels
/// along the orientation, `up` against it.
struct Link {
  LinkKind kind = LinkKind::kDerive;
  OidId from;  ///< Source endpoint (parent / origin view).
  OidId to;    ///< Target endpoint (child / derived view).

  /// The PROPAGATE property: event names allowed through this link.
  std::vector<std::string> propagates;

  /// The TYPE property of derive links ("composition", "equivalence",
  /// "depend_on", "derive_from", ...). Informational only — "link types
  /// are, in a way, like comments" (paper §3.2).
  std::string type;

  /// Version-carry behaviour of this link instance.
  CarryPolicy carry = CarryPolicy::kNone;

  /// Free-form property/value annotations beyond PROPAGATE and TYPE.
  PropertyMap properties;

  bool alive = true;

  /// True if `event` is allowed to propagate through this link.
  bool Propagates(std::string_view event) const {
    return std::find(propagates.begin(), propagates.end(), event) !=
           propagates.end();
  }
};

}  // namespace damocles::metadb
