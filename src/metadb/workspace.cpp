#include "metadb/workspace.hpp"

#include "common/error.hpp"

namespace damocles::metadb {

namespace {

std::string PairKey(std::string_view block, std::string_view view) {
  std::string key;
  key.reserve(block.size() + 1 + view.size());
  key.append(block);
  key.push_back('\0');
  key.append(view);
  return key;
}

}  // namespace

const char* WorkspaceActionName(WorkspaceAction action) noexcept {
  switch (action) {
    case WorkspaceAction::kCheckOut:
      return "checkout";
    case WorkspaceAction::kCheckIn:
      return "checkin";
    case WorkspaceAction::kDelete:
      return "delete";
  }
  return "unknown";
}

void Workspace::AddObserver(Observer observer) {
  observers_.push_back(std::move(observer));
}

Oid Workspace::CheckOut(std::string_view block, std::string_view view,
                        std::string_view user, int64_t timestamp) {
  const std::string key = PairKey(block, view);
  const auto latest_it = latest_.find(key);
  if (latest_it == latest_.end()) {
    throw NotFoundError("CheckOut: no versions of " + std::string(block) +
                        "." + std::string(view));
  }
  auto& holder = checkouts_[key];
  if (!holder.empty() && holder != user) {
    throw PermissionError("CheckOut: " + std::string(block) + "." +
                          std::string(view) + " is checked out by " + holder);
  }
  holder = std::string(user);

  const Oid oid{std::string(block), std::string(view), latest_it->second};
  files_.at(oid).checked_out_by = holder;
  Notify({WorkspaceAction::kCheckOut, oid, holder, timestamp});
  return oid;
}

Oid Workspace::CheckIn(std::string_view block, std::string_view view,
                       std::string_view content, std::string_view user,
                       int64_t timestamp) {
  const std::string key = PairKey(block, view);
  const auto holder_it = checkouts_.find(key);
  if (holder_it != checkouts_.end() && !holder_it->second.empty() &&
      holder_it->second != user) {
    throw PermissionError("CheckIn: " + std::string(block) + "." +
                          std::string(view) + " is checked out by " +
                          holder_it->second);
  }

  int& latest = latest_[key];
  const Oid previous{std::string(block), std::string(view), latest};
  if (latest > 0) files_.at(previous).checked_out_by.clear();
  ++latest;
  const Oid oid{std::string(block), std::string(view), latest};

  DesignFile file;
  file.content = std::string(content);
  file.modified_at = timestamp;
  files_.emplace(oid, std::move(file));
  if (holder_it != checkouts_.end()) holder_it->second.clear();

  Notify({WorkspaceAction::kCheckIn, oid, std::string(user), timestamp});
  return oid;
}

void Workspace::Delete(const Oid& oid, std::string_view user,
                       int64_t timestamp) {
  const auto it = files_.find(oid);
  if (it == files_.end()) {
    throw NotFoundError("Delete: no such design file " + FormatOid(oid));
  }
  files_.erase(it);
  const std::string key = PairKey(oid.block, oid.view);
  const auto latest_it = latest_.find(key);
  if (latest_it != latest_.end() && latest_it->second == oid.version) {
    // Roll the latest pointer back to the newest remaining version.
    int newest = 0;
    for (const auto& [stored_oid, file] : files_) {
      if (stored_oid.block == oid.block && stored_oid.view == oid.view) {
        newest = std::max(newest, stored_oid.version);
      }
    }
    if (newest == 0) {
      latest_.erase(latest_it);
      checkouts_.erase(key);
    } else {
      latest_it->second = newest;
    }
  }
  Notify({WorkspaceAction::kDelete, oid, std::string(user), timestamp});
}

std::optional<DesignFile> Workspace::Read(const Oid& oid) const {
  const auto it = files_.find(oid);
  if (it == files_.end()) return std::nullopt;
  return it->second;
}

int Workspace::LatestVersion(std::string_view block,
                             std::string_view view) const {
  const auto it = latest_.find(PairKey(block, view));
  return it == latest_.end() ? 0 : it->second;
}

std::string Workspace::CheckedOutBy(std::string_view block,
                                    std::string_view view) const {
  const auto it = checkouts_.find(PairKey(block, view));
  return it == checkouts_.end() ? std::string() : it->second;
}

void Workspace::ForEachFile(
    const std::function<void(const Oid&, const DesignFile&)>& fn) const {
  for (const auto& [oid, file] : files_) fn(oid, file);
}

void Workspace::RestoreFile(const Oid& oid, std::string content,
                            int64_t modified_at) {
  DesignFile file;
  file.content = std::move(content);
  file.modified_at = modified_at;
  files_[oid] = std::move(file);
  int& latest = latest_[PairKey(oid.block, oid.view)];
  latest = std::max(latest, oid.version);
}

void Workspace::RestoreLatestVersion(std::string_view block,
                                     std::string_view view, int version) {
  int& latest = latest_[PairKey(block, view)];
  latest = std::max(latest, version);
}

void Workspace::ForEachLatest(
    const std::function<void(std::string_view, std::string_view, int)>& fn)
    const {
  for (const auto& [key, version] : latest_) {
    const size_t sep = key.find('\0');
    fn(std::string_view(key).substr(0, sep),
       std::string_view(key).substr(sep + 1), version);
  }
}

void Workspace::Notify(const WorkspaceNotification& notification) const {
  for (const Observer& observer : observers_) observer(notification);
}

}  // namespace damocles::metadb
