#include "metadb/snapshot.hpp"

#include <thread>

#include "common/error.hpp"
#include "metadb/meta_database.hpp"

namespace damocles::metadb {

std::shared_ptr<const SnapshotStore::Version> SnapshotStore::LatestVersion()
    const noexcept {
  // Left-right reader: arrive on the indicator named by version_index_,
  // copy the slot named by left_right_, depart. The writer never
  // assigns a slot while a reader that could be copying it is present,
  // so the copy is race-free without taking any lock. Wait-free: no
  // loops, three atomic ops around one shared_ptr copy.
  const int vi = version_index_.load(std::memory_order_seq_cst);
  read_count_[static_cast<size_t>(vi)].fetch_add(1, std::memory_order_seq_cst);
  const int lr = left_right_.load(std::memory_order_seq_cst);
  std::shared_ptr<const Version> head = slot_[static_cast<size_t>(lr)];
  read_count_[static_cast<size_t>(vi)].fetch_sub(1, std::memory_order_release);
  return head;
}

void SnapshotStore::InstallHead(std::shared_ptr<const Version> version) {
  // Left-right writer (serialized by mutex_): install into the side no
  // reader can be on, flip the read side, then drain both indicators in
  // toggle order before rewriting the retired side. Readers arriving at
  // any point only ever copy a slot this writer is done assigning.
  const int which = left_right_.load(std::memory_order_relaxed) ^ 1;
  slot_[static_cast<size_t>(which)] = version;
  left_right_.store(which, std::memory_order_seq_cst);
  const int prev_vi = version_index_.load(std::memory_order_relaxed);
  const int next_vi = prev_vi ^ 1;
  while (read_count_[static_cast<size_t>(next_vi)].load(
             std::memory_order_seq_cst) != 0) {
    std::this_thread::yield();
  }
  version_index_.store(next_vi, std::memory_order_seq_cst);
  while (read_count_[static_cast<size_t>(prev_vi)].load(
             std::memory_order_seq_cst) != 0) {
    std::this_thread::yield();
  }
  slot_[static_cast<size_t>(which ^ 1)] = std::move(version);
}

Snapshot SnapshotStore::Publish(const MetaDatabase& db) {
  std::lock_guard<std::mutex> lock(mutex_);
  // The writer is quiescent, so the generation cannot move under us.
  const uint64_t generation = generation_.load(std::memory_order_acquire);
  if (!history_.empty() && history_.back()->generation == generation) {
    const std::shared_ptr<const Version>& head = history_.back();
    return Snapshot(head->frozen, head->frozen.get(), head->epoch);
  }

  auto version = std::make_shared<Version>();
  version->epoch = history_.empty() ? 1 : history_.back()->epoch + 1;
  version->generation = generation;
  version->frozen = db.CloneForSnapshot();
  history_.push_back(version);
  while (history_.size() > retention_) {
    purge_floor_.store(history_.front()->epoch, std::memory_order_release);
    history_.pop_front();
  }
  InstallHead(version);
  return Snapshot(version->frozen, version->frozen.get(), version->epoch);
}

Snapshot SnapshotStore::Latest(const MetaDatabase& live) const {
  const std::shared_ptr<const Version> head = LatestVersion();
  if (head == nullptr) return Snapshot::Live(live);
  return Snapshot(head->frozen, head->frozen.get(), head->epoch);
}

Snapshot SnapshotStore::AtEpoch(uint64_t epoch) const {
  if (epoch == Snapshot::kLiveEpoch) {
    throw NotFoundError("AtEpoch: epoch 0 names the live view, not a version");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (history_.empty() || epoch < history_.front()->epoch) {
    throw NotFoundError(
        "AtEpoch: epoch " + std::to_string(epoch) +
        " has been merged out (purge floor " +
        std::to_string(purge_floor_.load(std::memory_order_acquire)) + ")");
  }
  // Newest version with epoch <= the request; epochs ascend by 1 per
  // effective publish, so this is a short backwards walk.
  for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
    if ((*it)->epoch <= epoch) {
      return Snapshot((*it)->frozen, (*it)->frozen.get(), (*it)->epoch);
    }
  }
  throw NotFoundError("AtEpoch: epoch " + std::to_string(epoch) +
                      " predates the first published snapshot");
}

uint64_t SnapshotStore::head_epoch() const noexcept {
  const std::shared_ptr<const Version> head = LatestVersion();
  return head == nullptr ? 0 : head->epoch;
}

}  // namespace damocles::metadb
