#include "metadb/persistence.hpp"

#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace damocles::metadb {

namespace {

constexpr std::string_view kMagic = "damocles-metadb v1";

void WriteProperties(std::ostream& out, const char* keyword,
                     const PropertyMap& properties) {
  for (const auto& [name, value] : properties) {
    out << "  " << keyword << " " << QuoteString(name) << " "
        << QuoteString(value) << "\n";
  }
}

class LineReader {
 public:
  explicit LineReader(std::istream& in) : in_(in) {}

  /// Next non-empty line, trimmed. Returns false at end of stream.
  bool Next(std::string& line) {
    while (std::getline(in_, raw_)) {
      ++line_number_;
      const std::string_view trimmed = Trim(raw_);
      if (trimmed.empty()) continue;
      line.assign(trimmed);
      return true;
    }
    return false;
  }

  /// Names the file section subsequent failures report ("objects",
  /// "links", "configs"), so a truncated or corrupt checkpoint says
  /// where in the file it went wrong, not just the line number.
  void SetSection(const char* section) noexcept { section_ = section; }

  [[noreturn]] void Fail(const std::string& message) const {
    throw WireFormatError("metadb load, line " + std::to_string(line_number_) +
                          " (" + section_ + "): " + message);
  }

 private:
  std::istream& in_;
  std::string raw_;
  int line_number_ = 0;
  const char* section_ = "header";
};

int64_t ParseInt(LineReader& reader, std::string_view token) {
  int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    reader.Fail("expected integer, got '" + std::string(token) + "'");
  }
  return value;
}

std::string ParseQuoted(LineReader& reader, const std::string& line,
                        size_t& pos) {
  while (pos < line.size() && line[pos] == ' ') ++pos;
  std::string out;
  if (!UnquoteString(line, pos, out)) {
    reader.Fail("expected quoted string in '" + line + "'");
  }
  return out;
}

std::vector<std::string> ParseQuotedList(LineReader& reader,
                                         const std::string& line, size_t pos) {
  std::vector<std::string> values;
  while (true) {
    while (pos < line.size() && line[pos] == ' ') ++pos;
    if (pos >= line.size()) return values;
    std::string value;
    if (!UnquoteString(line, pos, value)) {
      reader.Fail("expected quoted string in '" + line + "'");
    }
    values.push_back(std::move(value));
  }
}

}  // namespace

void SaveDatabaseText(const MetaDatabase& db, std::ostream& out) {
  out << kMagic << "\n";

  out << "objects " << db.ObjectSlotCount() << "\n";
  for (size_t i = 0; i < db.ObjectSlotCount(); ++i) {
    const MetaObject& object = db.GetObject(OidId(static_cast<uint32_t>(i)));
    out << "object " << i << " alive=" << (object.alive ? 1 : 0) << "\n";
    out << "  oid " << QuoteString(object.oid.block) << " "
        << QuoteString(object.oid.view) << " " << object.oid.version << "\n";
    out << "  created " << object.created_at << " "
        << QuoteString(object.created_by) << "\n";
    WriteProperties(out, "prop", object.properties);
    out << "end\n";
  }

  out << "links " << db.LinkSlotCount() << "\n";
  for (size_t i = 0; i < db.LinkSlotCount(); ++i) {
    const Link& link = db.GetLink(LinkId(static_cast<uint32_t>(i)));
    out << "link " << i << " alive=" << (link.alive ? 1 : 0) << " kind="
        << LinkKindName(link.kind) << " carry=" << CarryPolicyName(link.carry)
        << " from=" << link.from.value() << " to=" << link.to.value() << "\n";
    out << "  type " << QuoteString(link.type) << "\n";
    out << "  propagates";
    for (const std::string& event : link.propagates) {
      out << " " << QuoteString(event);
    }
    out << "\n";
    WriteProperties(out, "lprop", link.properties);
    out << "end\n";
  }

  out << "configs " << db.ConfigurationSlotCount() << "\n";
  for (size_t i = 0; i < db.ConfigurationSlotCount(); ++i) {
    const Configuration& config =
        db.GetConfiguration(ConfigId(static_cast<uint32_t>(i)));
    out << "config " << QuoteString(config.name) << " " << config.created_at
        << "\n";
    out << "  from " << QuoteString(config.built_from) << "\n";
    out << "  coids";
    for (const OidId id : config.oids) out << " " << id.value();
    out << "\n";
    out << "  clinks";
    for (const LinkId id : config.links) out << " " << id.value();
    out << "\n";
    out << "end\n";
  }
}

MetaDatabase LoadDatabaseText(std::istream& in) {
  LineReader reader(in);
  std::string line;

  if (!reader.Next(line) || line != kMagic) {
    reader.Fail("missing magic header '" + std::string(kMagic) + "'");
  }

  MetaDatabase db;

  if (!reader.Next(line) || !StartsWith(line, "objects ")) {
    reader.Fail("expected 'objects <count>'");
  }
  reader.SetSection("objects");
  const int64_t object_count = ParseInt(reader, Trim(line.substr(8)));
  for (int64_t i = 0; i < object_count; ++i) {
    if (!reader.Next(line) || !StartsWith(line, "object ")) {
      reader.Fail("expected 'object <slot> alive=<0|1>'");
    }
    const auto header = SplitWhitespace(line);
    if (header.size() != 3 || !StartsWith(header[2], "alive=")) {
      reader.Fail("malformed object header '" + line + "'");
    }
    MetaObject object;
    object.alive = header[2] == "alive=1";

    while (true) {
      if (!reader.Next(line)) {
        reader.Fail("truncated: object body missing 'end'");
      }
      if (line == "end") break;
      if (StartsWith(line, "oid ")) {
        size_t pos = 4;
        object.oid.block = ParseQuoted(reader, line, pos);
        object.oid.view = ParseQuoted(reader, line, pos);
        object.oid.version =
            static_cast<int>(ParseInt(reader, Trim(line.substr(pos))));
      } else if (StartsWith(line, "created ")) {
        const auto pieces = SplitWhitespace(line);
        if (pieces.size() < 2) reader.Fail("malformed created line");
        object.created_at = ParseInt(reader, pieces[1]);
        size_t pos = line.find('"');
        if (pos != std::string::npos) {
          object.created_by = ParseQuoted(reader, line, pos);
        }
      } else if (StartsWith(line, "prop ")) {
        size_t pos = 5;
        std::string name = ParseQuoted(reader, line, pos);
        std::string value = ParseQuoted(reader, line, pos);
        object.properties.emplace(std::move(name), std::move(value));
      } else {
        reader.Fail("unexpected object line '" + line + "'");
      }
    }
    db.RestoreObjectSlot(std::move(object));
  }

  if (!reader.Next(line) || !StartsWith(line, "links ")) {
    reader.Fail("expected 'links <count>'");
  }
  reader.SetSection("links");
  const int64_t link_count = ParseInt(reader, Trim(line.substr(6)));
  for (int64_t i = 0; i < link_count; ++i) {
    if (!reader.Next(line) || !StartsWith(line, "link ")) {
      reader.Fail("expected link header");
    }
    const auto header = SplitWhitespace(line);
    if (header.size() != 7) reader.Fail("malformed link header '" + line + "'");
    Link link;
    link.alive = header[2] == "alive=1";
    if (header[3] == "kind=use") {
      link.kind = LinkKind::kUse;
    } else if (header[3] == "kind=derive") {
      link.kind = LinkKind::kDerive;
    } else {
      reader.Fail("unknown link kind '" + header[3] + "'");
    }
    if (header[4] == "carry=none") {
      link.carry = CarryPolicy::kNone;
    } else if (header[4] == "carry=copy") {
      link.carry = CarryPolicy::kCopy;
    } else if (header[4] == "carry=move") {
      link.carry = CarryPolicy::kMove;
    } else {
      reader.Fail("unknown carry policy '" + header[4] + "'");
    }
    if (!StartsWith(header[5], "from=") || !StartsWith(header[6], "to=")) {
      reader.Fail("malformed link endpoints '" + line + "'");
    }
    link.from =
        OidId(static_cast<uint32_t>(ParseInt(reader, header[5].substr(5))));
    link.to =
        OidId(static_cast<uint32_t>(ParseInt(reader, header[6].substr(3))));

    while (true) {
      if (!reader.Next(line)) {
        reader.Fail("truncated: link body missing 'end'");
      }
      if (line == "end") break;
      if (StartsWith(line, "type ")) {
        size_t pos = 5;
        link.type = ParseQuoted(reader, line, pos);
      } else if (StartsWith(line, "propagates")) {
        link.propagates = ParseQuotedList(reader, line, 10);
      } else if (StartsWith(line, "lprop ")) {
        size_t pos = 6;
        std::string name = ParseQuoted(reader, line, pos);
        std::string value = ParseQuoted(reader, line, pos);
        link.properties.emplace(std::move(name), std::move(value));
      } else {
        reader.Fail("unexpected link line '" + line + "'");
      }
    }
    db.RestoreLinkSlot(std::move(link));
  }

  if (!reader.Next(line) || !StartsWith(line, "configs ")) {
    reader.Fail("expected 'configs <count>'");
  }
  reader.SetSection("configs");
  const int64_t config_count = ParseInt(reader, Trim(line.substr(8)));
  for (int64_t i = 0; i < config_count; ++i) {
    if (!reader.Next(line) || !StartsWith(line, "config ")) {
      reader.Fail("expected config header");
    }
    Configuration config;
    size_t pos = 7;
    config.name = ParseQuoted(reader, line, pos);
    config.created_at = ParseInt(reader, Trim(line.substr(pos)));

    while (true) {
      if (!reader.Next(line)) {
        reader.Fail("truncated: config body missing 'end'");
      }
      if (line == "end") break;
      if (StartsWith(line, "from ")) {
        size_t from_pos = 5;
        config.built_from = ParseQuoted(reader, line, from_pos);
      } else if (StartsWith(line, "coids")) {
        for (const std::string& token :
             SplitWhitespace(line.substr(5))) {
          config.oids.push_back(
              OidId(static_cast<uint32_t>(ParseInt(reader, token))));
        }
      } else if (StartsWith(line, "clinks")) {
        for (const std::string& token :
             SplitWhitespace(line.substr(6))) {
          config.links.push_back(
              LinkId(static_cast<uint32_t>(ParseInt(reader, token))));
        }
      } else {
        reader.Fail("unexpected config line '" + line + "'");
      }
    }
    db.RestoreConfigurationSlot(std::move(config));
  }

  // A checkpoint is exactly three sections; anything after the last
  // config is corruption (e.g. a torn write appending a second copy).
  if (reader.Next(line)) {
    reader.Fail("trailing content after configs: '" + line + "'");
  }

  return db;
}

std::string SaveDatabaseString(const MetaDatabase& db) {
  std::ostringstream out;
  SaveDatabaseText(db, out);
  return out.str();
}

MetaDatabase LoadDatabaseString(const std::string& text) {
  std::istringstream in(text);
  return LoadDatabaseText(in);
}

}  // namespace damocles::metadb
