#include "metadb/persistence.hpp"

#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace damocles::metadb {

namespace {

constexpr std::string_view kMagic = "damocles-metadb v1";
constexpr std::string_view kDeltaMagic = "damocles-metadb-delta v1";

void WriteProperties(std::ostream& out, const char* keyword,
                     const PropertyMap& properties) {
  for (const auto& [name, value] : properties) {
    out << "  " << keyword << " " << QuoteString(name) << " "
        << QuoteString(value) << "\n";
  }
}

class LineReader {
 public:
  explicit LineReader(std::istream& in) : in_(in) {}

  /// Next non-empty line, trimmed. Returns false at end of stream.
  bool Next(std::string& line) {
    while (std::getline(in_, raw_)) {
      ++line_number_;
      const std::string_view trimmed = Trim(raw_);
      if (trimmed.empty()) continue;
      line.assign(trimmed);
      return true;
    }
    return false;
  }

  /// Names the file section subsequent failures report ("objects",
  /// "links", "configs"), so a truncated or corrupt checkpoint says
  /// where in the file it went wrong, not just the line number.
  void SetSection(const char* section) noexcept { section_ = section; }

  [[noreturn]] void Fail(const std::string& message) const {
    throw WireFormatError("metadb load, line " + std::to_string(line_number_) +
                          " (" + section_ + "): " + message);
  }

 private:
  std::istream& in_;
  std::string raw_;
  int line_number_ = 0;
  const char* section_ = "header";
};

int64_t ParseInt(LineReader& reader, std::string_view token) {
  int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    reader.Fail("expected integer, got '" + std::string(token) + "'");
  }
  return value;
}

std::string ParseQuoted(LineReader& reader, const std::string& line,
                        size_t& pos) {
  while (pos < line.size() && line[pos] == ' ') ++pos;
  std::string out;
  if (!UnquoteString(line, pos, out)) {
    reader.Fail("expected quoted string in '" + line + "'");
  }
  return out;
}

std::vector<std::string> ParseQuotedList(LineReader& reader,
                                         const std::string& line, size_t pos) {
  std::vector<std::string> values;
  while (true) {
    while (pos < line.size() && line[pos] == ' ') ++pos;
    if (pos >= line.size()) return values;
    std::string value;
    if (!UnquoteString(line, pos, value)) {
      reader.Fail("expected quoted string in '" + line + "'");
    }
    values.push_back(std::move(value));
  }
}

// --- Shared per-slot records -------------------------------------------------
// Full and delta checkpoints use identical object/link/config records;
// only which slots appear (and the config header's explicit slot in
// deltas) differs.

void WriteObjectSlot(std::ostream& out, size_t slot, const MetaObject& object) {
  out << "object " << slot << " alive=" << (object.alive ? 1 : 0) << "\n";
  out << "  oid " << QuoteString(object.oid.block) << " "
      << QuoteString(object.oid.view) << " " << object.oid.version << "\n";
  out << "  created " << object.created_at << " "
      << QuoteString(object.created_by) << "\n";
  WriteProperties(out, "prop", object.properties);
  out << "end\n";
}

void WriteLinkSlot(std::ostream& out, size_t slot, const Link& link) {
  out << "link " << slot << " alive=" << (link.alive ? 1 : 0) << " kind="
      << LinkKindName(link.kind) << " carry=" << CarryPolicyName(link.carry)
      << " from=" << link.from.value() << " to=" << link.to.value() << "\n";
  out << "  type " << QuoteString(link.type) << "\n";
  out << "  propagates";
  for (const std::string& event : link.propagates) {
    out << " " << QuoteString(event);
  }
  out << "\n";
  WriteProperties(out, "lprop", link.properties);
  out << "end\n";
}

/// Parses "object <slot> alive=<0|1>" + body through "end". Returns the
/// slot index from the header.
size_t ParseObjectRecord(LineReader& reader, const std::string& header_line,
                         MetaObject& object) {
  const auto header = SplitWhitespace(header_line);
  if (header.size() != 3 || !StartsWith(header[2], "alive=")) {
    reader.Fail("malformed object header '" + header_line + "'");
  }
  const size_t slot = static_cast<size_t>(ParseInt(reader, header[1]));
  object.alive = header[2] == "alive=1";

  std::string line;
  while (true) {
    if (!reader.Next(line)) {
      reader.Fail("truncated: object body missing 'end'");
    }
    if (line == "end") break;
    if (StartsWith(line, "oid ")) {
      size_t pos = 4;
      object.oid.block = ParseQuoted(reader, line, pos);
      object.oid.view = ParseQuoted(reader, line, pos);
      object.oid.version =
          static_cast<int>(ParseInt(reader, Trim(line.substr(pos))));
    } else if (StartsWith(line, "created ")) {
      const auto pieces = SplitWhitespace(line);
      if (pieces.size() < 2) reader.Fail("malformed created line");
      object.created_at = ParseInt(reader, pieces[1]);
      size_t pos = line.find('"');
      if (pos != std::string::npos) {
        object.created_by = ParseQuoted(reader, line, pos);
      }
    } else if (StartsWith(line, "prop ")) {
      size_t pos = 5;
      std::string name = ParseQuoted(reader, line, pos);
      std::string value = ParseQuoted(reader, line, pos);
      object.properties.emplace(std::move(name), std::move(value));
    } else {
      reader.Fail("unexpected object line '" + line + "'");
    }
  }
  return slot;
}

/// Parses "link <slot> alive= kind= carry= from= to=" + body through
/// "end". Returns the slot index from the header.
size_t ParseLinkRecord(LineReader& reader, const std::string& header_line,
                       Link& link) {
  const auto header = SplitWhitespace(header_line);
  if (header.size() != 7) {
    reader.Fail("malformed link header '" + header_line + "'");
  }
  const size_t slot = static_cast<size_t>(ParseInt(reader, header[1]));
  link.alive = header[2] == "alive=1";
  if (header[3] == "kind=use") {
    link.kind = LinkKind::kUse;
  } else if (header[3] == "kind=derive") {
    link.kind = LinkKind::kDerive;
  } else {
    reader.Fail("unknown link kind '" + header[3] + "'");
  }
  if (header[4] == "carry=none") {
    link.carry = CarryPolicy::kNone;
  } else if (header[4] == "carry=copy") {
    link.carry = CarryPolicy::kCopy;
  } else if (header[4] == "carry=move") {
    link.carry = CarryPolicy::kMove;
  } else {
    reader.Fail("unknown carry policy '" + header[4] + "'");
  }
  if (!StartsWith(header[5], "from=") || !StartsWith(header[6], "to=")) {
    reader.Fail("malformed link endpoints '" + header_line + "'");
  }
  link.from =
      OidId(static_cast<uint32_t>(ParseInt(reader, header[5].substr(5))));
  link.to = OidId(static_cast<uint32_t>(ParseInt(reader, header[6].substr(3))));

  std::string line;
  while (true) {
    if (!reader.Next(line)) {
      reader.Fail("truncated: link body missing 'end'");
    }
    if (line == "end") break;
    if (StartsWith(line, "type ")) {
      size_t pos = 5;
      link.type = ParseQuoted(reader, line, pos);
    } else if (StartsWith(line, "propagates")) {
      link.propagates = ParseQuotedList(reader, line, 10);
    } else if (StartsWith(line, "lprop ")) {
      size_t pos = 6;
      std::string name = ParseQuoted(reader, line, pos);
      std::string value = ParseQuoted(reader, line, pos);
      link.properties.emplace(std::move(name), std::move(value));
    } else {
      reader.Fail("unexpected link line '" + line + "'");
    }
  }
  return slot;
}

/// Parses a config body (from/coids/clinks) through "end"; the header
/// differs between full and delta formats and is parsed by the caller.
void ParseConfigBody(LineReader& reader, Configuration& config) {
  std::string line;
  while (true) {
    if (!reader.Next(line)) {
      reader.Fail("truncated: config body missing 'end'");
    }
    if (line == "end") break;
    if (StartsWith(line, "from ")) {
      size_t from_pos = 5;
      config.built_from = ParseQuoted(reader, line, from_pos);
    } else if (StartsWith(line, "coids")) {
      for (const std::string& token : SplitWhitespace(line.substr(5))) {
        config.oids.push_back(
            OidId(static_cast<uint32_t>(ParseInt(reader, token))));
      }
    } else if (StartsWith(line, "clinks")) {
      for (const std::string& token : SplitWhitespace(line.substr(6))) {
        config.links.push_back(
            LinkId(static_cast<uint32_t>(ParseInt(reader, token))));
      }
    } else {
      reader.Fail("unexpected config line '" + line + "'");
    }
  }
}

}  // namespace

void SaveDatabaseText(const MetaDatabase& db, std::ostream& out) {
  out << kMagic << "\n";

  out << "objects " << db.ObjectSlotCount() << "\n";
  for (size_t i = 0; i < db.ObjectSlotCount(); ++i) {
    WriteObjectSlot(out, i, db.GetObject(OidId(static_cast<uint32_t>(i))));
  }

  out << "links " << db.LinkSlotCount() << "\n";
  for (size_t i = 0; i < db.LinkSlotCount(); ++i) {
    WriteLinkSlot(out, i, db.GetLink(LinkId(static_cast<uint32_t>(i))));
  }

  out << "configs " << db.ConfigurationSlotCount() << "\n";
  for (size_t i = 0; i < db.ConfigurationSlotCount(); ++i) {
    const Configuration& config =
        db.GetConfiguration(ConfigId(static_cast<uint32_t>(i)));
    out << "config " << QuoteString(config.name) << " " << config.created_at
        << "\n";
    out << "  from " << QuoteString(config.built_from) << "\n";
    out << "  coids";
    for (const OidId id : config.oids) out << " " << id.value();
    out << "\n";
    out << "  clinks";
    for (const LinkId id : config.links) out << " " << id.value();
    out << "\n";
    out << "end\n";
  }
}

MetaDatabase LoadDatabaseText(std::istream& in) {
  LineReader reader(in);
  std::string line;

  if (!reader.Next(line) || line != kMagic) {
    reader.Fail("missing magic header '" + std::string(kMagic) + "'");
  }

  MetaDatabase db;

  if (!reader.Next(line) || !StartsWith(line, "objects ")) {
    reader.Fail("expected 'objects <count>'");
  }
  reader.SetSection("objects");
  const int64_t object_count = ParseInt(reader, Trim(line.substr(8)));
  for (int64_t i = 0; i < object_count; ++i) {
    if (!reader.Next(line) || !StartsWith(line, "object ")) {
      reader.Fail("expected 'object <slot> alive=<0|1>'");
    }
    MetaObject object;
    ParseObjectRecord(reader, line, object);
    db.RestoreObjectSlot(std::move(object));
  }

  if (!reader.Next(line) || !StartsWith(line, "links ")) {
    reader.Fail("expected 'links <count>'");
  }
  reader.SetSection("links");
  const int64_t link_count = ParseInt(reader, Trim(line.substr(6)));
  for (int64_t i = 0; i < link_count; ++i) {
    if (!reader.Next(line) || !StartsWith(line, "link ")) {
      reader.Fail("expected link header");
    }
    Link link;
    ParseLinkRecord(reader, line, link);
    db.RestoreLinkSlot(std::move(link));
  }

  if (!reader.Next(line) || !StartsWith(line, "configs ")) {
    reader.Fail("expected 'configs <count>'");
  }
  reader.SetSection("configs");
  const int64_t config_count = ParseInt(reader, Trim(line.substr(8)));
  for (int64_t i = 0; i < config_count; ++i) {
    if (!reader.Next(line) || !StartsWith(line, "config ")) {
      reader.Fail("expected config header");
    }
    Configuration config;
    size_t pos = 7;
    config.name = ParseQuoted(reader, line, pos);
    config.created_at = ParseInt(reader, Trim(line.substr(pos)));
    ParseConfigBody(reader, config);
    db.RestoreConfigurationSlot(std::move(config));
  }

  // A checkpoint is exactly three sections; anything after the last
  // config is corruption (e.g. a torn write appending a second copy).
  if (reader.Next(line)) {
    reader.Fail("trailing content after configs: '" + line + "'");
  }

  return db;
}

std::string SaveDatabaseString(const MetaDatabase& db) {
  std::ostringstream out;
  SaveDatabaseText(db, out);
  return out.str();
}

MetaDatabase LoadDatabaseString(const std::string& text) {
  std::istringstream in(text);
  return LoadDatabaseText(in);
}

// --- Delta checkpoints -------------------------------------------------------

void SaveDatabaseDeltaText(const MetaDatabase& db, const DirtySet& dirty,
                           std::ostream& out) {
  out << kDeltaMagic << "\n";
  // Slot totals after application: a delta chained onto the wrong base
  // fails the count check instead of silently corrupting handles.
  out << "totals " << db.ObjectSlotCount() << " " << db.LinkSlotCount() << " "
      << db.ConfigurationSlotCount() << "\n";

  out << "objects " << dirty.objects.size() << "\n";
  for (const uint32_t slot : dirty.objects) {
    WriteObjectSlot(out, slot, db.GetObject(OidId(slot)));
  }

  out << "links " << dirty.links.size() << "\n";
  for (const uint32_t slot : dirty.links) {
    WriteLinkSlot(out, slot, db.GetLink(LinkId(slot)));
  }

  out << "configs " << dirty.configs.size() << "\n";
  for (const uint32_t slot : dirty.configs) {
    const Configuration& config = db.GetConfiguration(ConfigId(slot));
    // Unlike the full format, the delta header carries the slot index:
    // deltas address existing slots, they do not enumerate from zero.
    out << "config " << slot << " " << QuoteString(config.name) << " "
        << config.created_at << "\n";
    out << "  from " << QuoteString(config.built_from) << "\n";
    out << "  coids";
    for (const OidId id : config.oids) out << " " << id.value();
    out << "\n";
    out << "  clinks";
    for (const LinkId id : config.links) out << " " << id.value();
    out << "\n";
    out << "end\n";
  }
}

void ApplyDatabaseDeltaText(std::istream& in, MetaDatabase& db) {
  LineReader reader(in);
  std::string line;

  if (!reader.Next(line) || line != kDeltaMagic) {
    reader.Fail("missing delta magic header '" + std::string(kDeltaMagic) +
                "'");
  }
  if (!reader.Next(line) || !StartsWith(line, "totals ")) {
    reader.Fail("expected 'totals <objects> <links> <configs>'");
  }
  const auto totals = SplitWhitespace(line.substr(7));
  if (totals.size() != 3) {
    reader.Fail("malformed totals line '" + line + "'");
  }
  const auto expected_objects =
      static_cast<size_t>(ParseInt(reader, totals[0]));
  const auto expected_links = static_cast<size_t>(ParseInt(reader, totals[1]));
  const auto expected_configs =
      static_cast<size_t>(ParseInt(reader, totals[2]));

  if (!reader.Next(line) || !StartsWith(line, "objects ")) {
    reader.Fail("expected 'objects <count>'");
  }
  reader.SetSection("objects");
  const int64_t object_count = ParseInt(reader, Trim(line.substr(8)));
  for (int64_t i = 0; i < object_count; ++i) {
    if (!reader.Next(line) || !StartsWith(line, "object ")) {
      reader.Fail("expected 'object <slot> alive=<0|1>'");
    }
    MetaObject object;
    const size_t slot = ParseObjectRecord(reader, line, object);
    try {
      db.ApplyObjectSlot(slot, std::move(object));
    } catch (const Error& error) {
      reader.Fail(error.what());
    }
  }

  if (!reader.Next(line) || !StartsWith(line, "links ")) {
    reader.Fail("expected 'links <count>'");
  }
  reader.SetSection("links");
  const int64_t link_count = ParseInt(reader, Trim(line.substr(6)));
  for (int64_t i = 0; i < link_count; ++i) {
    if (!reader.Next(line) || !StartsWith(line, "link ")) {
      reader.Fail("expected link header");
    }
    Link link;
    const size_t slot = ParseLinkRecord(reader, line, link);
    try {
      db.ApplyLinkSlot(slot, std::move(link));
    } catch (const Error& error) {
      reader.Fail(error.what());
    }
  }

  if (!reader.Next(line) || !StartsWith(line, "configs ")) {
    reader.Fail("expected 'configs <count>'");
  }
  reader.SetSection("configs");
  const int64_t config_count = ParseInt(reader, Trim(line.substr(8)));
  for (int64_t i = 0; i < config_count; ++i) {
    if (!reader.Next(line) || !StartsWith(line, "config ")) {
      reader.Fail("expected config header");
    }
    const auto header = SplitWhitespace(line);
    if (header.size() < 2) reader.Fail("malformed config header '" + line + "'");
    const size_t slot = static_cast<size_t>(ParseInt(reader, header[1]));
    Configuration config;
    size_t pos = 7 + header[1].size();
    config.name = ParseQuoted(reader, line, pos);
    config.created_at = ParseInt(reader, Trim(line.substr(pos)));
    ParseConfigBody(reader, config);
    try {
      db.ApplyConfigurationSlot(slot, std::move(config));
    } catch (const Error& error) {
      reader.Fail(error.what());
    }
  }

  if (reader.Next(line)) {
    reader.Fail("trailing content after configs: '" + line + "'");
  }

  reader.SetSection("totals");
  if (db.ObjectSlotCount() != expected_objects ||
      db.LinkSlotCount() != expected_links ||
      db.ConfigurationSlotCount() != expected_configs) {
    reader.Fail(
        "slot totals mismatch after application (delta applied to the "
        "wrong base): have " +
        std::to_string(db.ObjectSlotCount()) + "/" +
        std::to_string(db.LinkSlotCount()) + "/" +
        std::to_string(db.ConfigurationSlotCount()) + ", delta expects " +
        std::to_string(expected_objects) + "/" +
        std::to_string(expected_links) + "/" +
        std::to_string(expected_configs));
  }

  // Replaced link slots bypass adjacency maintenance; rebuild once so
  // the applied state is indistinguishable from a full-checkpoint load.
  db.RebuildLinkAdjacency();
}

std::string SaveDatabaseDeltaString(const MetaDatabase& db,
                                    const DirtySet& dirty) {
  std::ostringstream out;
  SaveDatabaseDeltaText(db, dirty, out);
  return out.str();
}

void ApplyDatabaseDeltaString(const std::string& text, MetaDatabase& db) {
  std::istringstream in(text);
  ApplyDatabaseDeltaText(in, db);
}

}  // namespace damocles::metadb
