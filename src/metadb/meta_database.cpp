#include "metadb/meta_database.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace damocles::metadb {

namespace {

std::string ChainKey(std::string_view block, std::string_view view) {
  std::string key;
  key.reserve(block.size() + 1 + view.size());
  key.append(block);
  key.push_back('\0');
  key.append(view);
  return key;
}

}  // namespace

// --- Meta-object lifecycle ---------------------------------------------------

OidId MetaDatabase::CreateObject(const Oid& oid, std::string_view user,
                                 int64_t timestamp) {
  if (oid.block.empty() || oid.view.empty()) {
    throw IntegrityError("CreateObject: empty block or view name");
  }
  if (by_oid_.find(oid) != by_oid_.end()) {
    throw IntegrityError("CreateObject: duplicate OID " + FormatOid(oid));
  }
  auto& chain = chains_[ChainKey(oid.block, oid.view)];
  const int expected =
      chain.empty() ? 1 : objects_[chain.back().value()].oid.version + 1;
  if (oid.version != expected) {
    throw IntegrityError("CreateObject: version " +
                         std::to_string(oid.version) + " of " +
                         FormatOid(oid) + " out of sequence (expected " +
                         std::to_string(expected) + ")");
  }

  const OidId id(static_cast<uint32_t>(objects_.size()));
  MetaObject object;
  object.oid = oid;
  object.created_at = timestamp;
  object.created_by = std::string(user);
  objects_.push_back(std::move(object));
  out_links_.emplace_back();
  in_links_.emplace_back();

  by_oid_.emplace(oid, id);
  chain.push_back(id);
  Touch();
  MarkObjectDirty(id.value());
  for (LinkObserver* observer : link_observers_) {
    observer->OnObjectCreated(id, objects_[id.value()]);
  }
  return id;
}

OidId MetaDatabase::CreateNextVersion(std::string_view block,
                                      std::string_view view,
                                      std::string_view user,
                                      int64_t timestamp) {
  const auto it = chains_.find(ChainKey(block, view));
  int next = 1;
  if (it != chains_.end() && !it->second.empty()) {
    next = objects_[it->second.back().value()].oid.version + 1;
  }
  return CreateObject(Oid{std::string(block), std::string(view), next}, user,
                      timestamp);
}

void MetaDatabase::DeleteObject(OidId id) {
  CheckObjectHandle(id);
  MetaObject& object = objects_[id.value()];
  object.alive = false;
  // Copy: DeleteLink mutates the adjacency vectors we are iterating.
  const std::vector<LinkId> out = out_links_[id.value()];
  for (const LinkId link : out) DeleteLink(link);
  const std::vector<LinkId> in = in_links_[id.value()];
  for (const LinkId link : in) DeleteLink(link);
  by_oid_.erase(object.oid);
  Touch();
  MarkObjectDirty(id.value());
}

// --- Lookup --------------------------------------------------------------------

std::optional<OidId> MetaDatabase::FindObject(const Oid& oid) const {
  const auto it = by_oid_.find(oid);
  if (it == by_oid_.end()) return std::nullopt;
  return it->second;
}

std::optional<OidId> MetaDatabase::FindLatest(std::string_view block,
                                              std::string_view view) const {
  const auto it = chains_.find(ChainKey(block, view));
  if (it == chains_.end()) return std::nullopt;
  // Walk backwards past deleted versions.
  for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
    if (objects_[rit->value()].alive) return *rit;
  }
  return std::nullopt;
}

std::vector<OidId> MetaDatabase::VersionChain(std::string_view block,
                                              std::string_view view) const {
  const auto it = chains_.find(ChainKey(block, view));
  if (it == chains_.end()) return {};
  return it->second;
}

std::optional<OidId> MetaDatabase::PreviousVersion(OidId id) const {
  CheckObjectHandle(id);
  const MetaObject& object = objects_[id.value()];
  const auto it = chains_.find(ChainKey(object.oid.block, object.oid.view));
  if (it == chains_.end()) return std::nullopt;
  const auto& chain = it->second;
  // Chains are ordered by strictly increasing version: binary search.
  const auto pos = std::lower_bound(
      chain.begin(), chain.end(), object.oid.version,
      [this](OidId entry, int version) {
        return objects_[entry.value()].oid.version < version;
      });
  if (pos == chain.end() || *pos != id || pos == chain.begin()) {
    return std::nullopt;
  }
  return *(pos - 1);
}

const MetaObject& MetaDatabase::GetObject(OidId id) const {
  CheckObjectHandle(id);
  return objects_[id.value()];
}

MetaObject& MetaDatabase::GetObjectMutable(OidId id) {
  CheckObjectHandle(id);
  Touch();  // Conservative: the caller holds a mutable reference.
  MarkObjectDirty(id.value());
  return objects_[id.value()];
}

// --- Properties -------------------------------------------------------------------

void MetaDatabase::SetProperty(OidId id, const std::string& name,
                               const std::string& value) {
  CheckObjectHandle(id);
  objects_[id.value()].properties[name] = value;
  Touch();
  MarkObjectDirty(id.value());
}

const std::string* MetaDatabase::GetProperty(OidId id,
                                             const std::string& name) const {
  CheckObjectHandle(id);
  const auto& properties = objects_[id.value()].properties;
  const auto it = properties.find(name);
  return it == properties.end() ? nullptr : &it->second;
}

bool MetaDatabase::RemoveProperty(OidId id, const std::string& name) {
  CheckObjectHandle(id);
  const bool removed = objects_[id.value()].properties.erase(name) > 0;
  if (removed) {
    Touch();
    MarkObjectDirty(id.value());
  }
  return removed;
}

// --- Links -----------------------------------------------------------------------

LinkId MetaDatabase::CreateLink(LinkKind kind, OidId from, OidId to,
                                std::vector<std::string> propagates,
                                std::string type, CarryPolicy carry) {
  CheckObjectHandle(from);
  CheckObjectHandle(to);
  if (from == to) {
    throw IntegrityError("CreateLink: self-link on " +
                         FormatOid(objects_[from.value()].oid));
  }
  if (!objects_[from.value()].alive || !objects_[to.value()].alive) {
    throw IntegrityError("CreateLink: endpoint is deleted");
  }
  if (kind == LinkKind::kUse &&
      objects_[from.value()].oid.view != objects_[to.value()].oid.view) {
    throw IntegrityError(
        "CreateLink: use link endpoints must share a view type (" +
        FormatOid(objects_[from.value()].oid) + " vs " +
        FormatOid(objects_[to.value()].oid) + ")");
  }

  const LinkId id(static_cast<uint32_t>(links_.size()));
  Link link;
  link.kind = kind;
  link.from = from;
  link.to = to;
  link.propagates = std::move(propagates);
  link.type = std::move(type);
  link.carry = carry;
  links_.push_back(std::move(link));

  out_links_[from.value()].push_back(id);
  in_links_[to.value()].push_back(id);
  Touch();
  MarkLinkDirty(id.value());
  for (LinkObserver* observer : link_observers_) {
    observer->OnLinkAdded(id, links_[id.value()]);
  }
  return id;
}

void MetaDatabase::DeleteLink(LinkId id) {
  CheckLinkHandle(id);
  Link& link = links_[id.value()];
  if (!link.alive) return;
  for (LinkObserver* observer : link_observers_) {
    observer->OnLinkRemoved(id, link);
  }
  DetachLinkFromAdjacency(id);
  link.alive = false;
  Touch();
  MarkLinkDirty(id.value());
}

const Link& MetaDatabase::GetLink(LinkId id) const {
  CheckLinkHandle(id);
  return links_[id.value()];
}

Link& MetaDatabase::GetLinkMutable(LinkId id) {
  CheckLinkHandle(id);
  Touch();  // Conservative: the caller holds a mutable reference.
  MarkLinkDirty(id.value());
  return links_[id.value()];
}

void MetaDatabase::MoveLinkEndpoint(LinkId id, bool endpoint_from,
                                    OidId new_endpoint) {
  CheckLinkHandle(id);
  CheckObjectHandle(new_endpoint);
  Link& link = links_[id.value()];
  if (!link.alive) {
    throw IntegrityError("MoveLinkEndpoint: link is deleted");
  }
  if (!objects_[new_endpoint.value()].alive) {
    throw IntegrityError("MoveLinkEndpoint: new endpoint is deleted");
  }
  OidId& endpoint = endpoint_from ? link.from : link.to;
  const OidId other = endpoint_from ? link.to : link.from;
  if (new_endpoint == other) {
    throw IntegrityError("MoveLinkEndpoint: would create a self-link");
  }
  if (endpoint == new_endpoint) return;
  if (link.kind == LinkKind::kUse &&
      objects_[new_endpoint.value()].oid.view !=
          objects_[other.value()].oid.view) {
    throw IntegrityError(
        "MoveLinkEndpoint: use link endpoints must share a view type");
  }

  auto& old_list =
      endpoint_from ? out_links_[endpoint.value()] : in_links_[endpoint.value()];
  old_list.erase(std::remove(old_list.begin(), old_list.end(), id),
                 old_list.end());
  const OidId old_endpoint = endpoint;
  endpoint = new_endpoint;
  auto& new_list = endpoint_from ? out_links_[new_endpoint.value()]
                                 : in_links_[new_endpoint.value()];
  new_list.push_back(id);
  Touch();
  MarkLinkDirty(id.value());
  for (LinkObserver* observer : link_observers_) {
    observer->OnLinkEndpointMoved(id, endpoint_from, old_endpoint, link);
  }
}

void MetaDatabase::SetLinkPropagates(LinkId id,
                                     std::vector<std::string> propagates) {
  CheckLinkHandle(id);
  Link& link = links_[id.value()];
  if (!link.alive) {
    throw IntegrityError("SetLinkPropagates: link is deleted");
  }
  if (link.propagates == propagates) return;
  std::vector<std::string> old_propagates = std::move(link.propagates);
  link.propagates = std::move(propagates);
  Touch();
  MarkLinkDirty(id.value());
  for (LinkObserver* observer : link_observers_) {
    observer->OnLinkPropagatesChanged(id, old_propagates, link);
  }
}

void MetaDatabase::AddLinkObserver(LinkObserver* observer) {
  if (observer == nullptr) return;
  if (std::find(link_observers_.begin(), link_observers_.end(), observer) ==
      link_observers_.end()) {
    link_observers_.push_back(observer);
  }
}

void MetaDatabase::RemoveLinkObserver(LinkObserver* observer) {
  link_observers_.erase(
      std::remove(link_observers_.begin(), link_observers_.end(), observer),
      link_observers_.end());
}

const std::vector<LinkId>& MetaDatabase::OutLinks(OidId id) const {
  CheckObjectHandle(id);
  return out_links_[id.value()];
}

const std::vector<LinkId>& MetaDatabase::InLinks(OidId id) const {
  CheckObjectHandle(id);
  return in_links_[id.value()];
}

// --- Configurations ------------------------------------------------------------

ConfigId MetaDatabase::SaveConfiguration(Configuration config) {
  if (config.name.empty()) {
    throw IntegrityError("SaveConfiguration: configuration needs a name");
  }
  for (const OidId oid : config.oids) CheckObjectHandle(oid);
  for (const LinkId link : config.links) CheckLinkHandle(link);

  Touch();
  const auto it = config_by_name_.find(config.name);
  if (it != config_by_name_.end()) {
    configurations_[it->second.value()] = std::move(config);
    MarkConfigDirty(it->second.value());
    return it->second;
  }
  const ConfigId id(static_cast<uint32_t>(configurations_.size()));
  config_by_name_.emplace(config.name, id);
  configurations_.push_back(std::move(config));
  MarkConfigDirty(id.value());
  return id;
}

std::optional<ConfigId> MetaDatabase::FindConfiguration(
    std::string_view name) const {
  const auto it = config_by_name_.find(std::string(name));
  if (it == config_by_name_.end()) return std::nullopt;
  return it->second;
}

const Configuration& MetaDatabase::GetConfiguration(ConfigId id) const {
  if (!id.valid() || id.value() >= configurations_.size()) {
    throw NotFoundError("GetConfiguration: invalid configuration handle");
  }
  return configurations_[id.value()];
}

std::vector<std::string> MetaDatabase::ConfigurationNames() const {
  std::vector<std::string> names;
  names.reserve(config_by_name_.size());
  for (const auto& [name, id] : config_by_name_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

// --- Enumeration ---------------------------------------------------------------

void MetaDatabase::ForEachObject(
    const std::function<void(OidId, const MetaObject&)>& fn) const {
  for (size_t i = 0; i < objects_.size(); ++i) {
    if (objects_[i].alive) fn(OidId(static_cast<uint32_t>(i)), objects_[i]);
  }
}

void MetaDatabase::ForEachLink(
    const std::function<void(LinkId, const Link&)>& fn) const {
  for (size_t i = 0; i < links_.size(); ++i) {
    if (links_[i].alive) fn(LinkId(static_cast<uint32_t>(i)), links_[i]);
  }
}

DatabaseStats MetaDatabase::Stats() const {
  DatabaseStats stats;
  for (const MetaObject& object : objects_) {
    if (object.alive) {
      ++stats.live_objects;
      stats.property_values += object.properties.size();
    } else {
      ++stats.dead_objects;
    }
  }
  for (const Link& link : links_) {
    if (link.alive) {
      ++stats.live_links;
    } else {
      ++stats.dead_links;
    }
  }
  stats.configurations = configurations_.size();
  return stats;
}

// --- Persistence support -----------------------------------------------------

OidId MetaDatabase::RestoreObjectSlot(MetaObject object) {
  const OidId id(static_cast<uint32_t>(objects_.size()));
  auto& chain = chains_[ChainKey(object.oid.block, object.oid.view)];
  if (!chain.empty()) {
    const int previous = objects_[chain.back().value()].oid.version;
    if (object.oid.version <= previous) {
      throw IntegrityError("RestoreObjectSlot: version order violated for " +
                           FormatOid(object.oid));
    }
  }
  if (object.alive && by_oid_.find(object.oid) != by_oid_.end()) {
    throw IntegrityError("RestoreObjectSlot: duplicate live OID " +
                         FormatOid(object.oid));
  }
  if (object.alive) by_oid_.emplace(object.oid, id);
  chain.push_back(id);
  objects_.push_back(std::move(object));
  out_links_.emplace_back();
  in_links_.emplace_back();
  Touch();
  MarkObjectDirty(id.value());
  for (LinkObserver* observer : link_observers_) {
    observer->OnObjectCreated(id, objects_[id.value()]);
  }
  return id;
}

LinkId MetaDatabase::RestoreLinkSlot(Link link) {
  const LinkId id(static_cast<uint32_t>(links_.size()));
  const bool alive = link.alive;
  if (alive) {
    CheckObjectHandle(link.from);
    CheckObjectHandle(link.to);
    out_links_[link.from.value()].push_back(id);
    in_links_[link.to.value()].push_back(id);
  }
  links_.push_back(std::move(link));
  Touch();
  MarkLinkDirty(id.value());
  if (alive) {
    for (LinkObserver* observer : link_observers_) {
      observer->OnLinkAdded(id, links_[id.value()]);
    }
  }
  return id;
}

ConfigId MetaDatabase::RestoreConfigurationSlot(Configuration config) {
  const ConfigId id(static_cast<uint32_t>(configurations_.size()));
  if (!config.name.empty()) config_by_name_.emplace(config.name, id);
  configurations_.push_back(std::move(config));
  Touch();
  MarkConfigDirty(id.value());
  return id;
}

// --- Delta-checkpoint support ------------------------------------------------

void MetaDatabase::ApplyObjectSlot(size_t slot, MetaObject object) {
  if (slot > objects_.size()) {
    throw IntegrityError("ApplyObjectSlot: slot " + std::to_string(slot) +
                         " past the end (" + std::to_string(objects_.size()) +
                         " slots)");
  }
  if (slot == objects_.size()) {
    RestoreObjectSlot(std::move(object));
    return;
  }
  MetaObject& existing = objects_[slot];
  if (!(existing.oid == object.oid)) {
    throw IntegrityError("ApplyObjectSlot: delta rewrites slot " +
                         std::to_string(slot) + " from " +
                         FormatOid(existing.oid) + " to " +
                         FormatOid(object.oid) + " (OIDs are immutable)");
  }
  if (existing.alive && !object.alive) {
    by_oid_.erase(existing.oid);
  } else if (!existing.alive && object.alive) {
    by_oid_.emplace(object.oid, OidId(static_cast<uint32_t>(slot)));
  }
  existing = std::move(object);
  Touch();
  MarkObjectDirty(slot);
}

void MetaDatabase::ApplyLinkSlot(size_t slot, Link link) {
  if (slot > links_.size()) {
    throw IntegrityError("ApplyLinkSlot: slot " + std::to_string(slot) +
                         " past the end (" + std::to_string(links_.size()) +
                         " slots)");
  }
  if (link.alive) {
    CheckObjectHandle(link.from);
    CheckObjectHandle(link.to);
  }
  if (slot == links_.size()) {
    links_.push_back(std::move(link));
  } else {
    links_[slot] = std::move(link);
  }
  Touch();
  MarkLinkDirty(slot);
}

void MetaDatabase::ApplyConfigurationSlot(size_t slot, Configuration config) {
  if (slot > configurations_.size()) {
    throw IntegrityError("ApplyConfigurationSlot: slot " +
                         std::to_string(slot) + " past the end (" +
                         std::to_string(configurations_.size()) + " slots)");
  }
  for (const OidId oid : config.oids) CheckObjectHandle(oid);
  for (const LinkId link : config.links) CheckLinkHandle(link);
  const ConfigId id(static_cast<uint32_t>(slot));
  if (slot == configurations_.size()) {
    configurations_.push_back(std::move(config));
  } else {
    Configuration& existing = configurations_[slot];
    if (existing.name != config.name && !existing.name.empty()) {
      config_by_name_.erase(existing.name);
    }
    existing = std::move(config);
  }
  if (!configurations_[slot].name.empty()) {
    config_by_name_[configurations_[slot].name] = id;
  }
  Touch();
  MarkConfigDirty(slot);
}

void MetaDatabase::RebuildLinkAdjacency() {
  out_links_.assign(objects_.size(), {});
  in_links_.assign(objects_.size(), {});
  for (size_t i = 0; i < links_.size(); ++i) {
    const Link& link = links_[i];
    if (!link.alive) continue;
    const LinkId id(static_cast<uint32_t>(i));
    out_links_[link.from.value()].push_back(id);
    in_links_[link.to.value()].push_back(id);
  }
}

// --- Snapshot reads ----------------------------------------------------------

std::shared_ptr<const MetaDatabase> MetaDatabase::CloneForSnapshot() const {
  auto copy = std::make_shared<MetaDatabase>();
  // Straight member copies: the clone shares no structure with the live
  // database, so readers of the frozen version can never observe a
  // wave's in-place writes. Observers are deliberately not carried over
  // (a frozen version has nothing to observe), and the clone's own
  // snapshot store starts empty.
  copy->objects_ = objects_;
  copy->links_ = links_;
  copy->configurations_ = configurations_;
  copy->by_oid_ = by_oid_;
  copy->chains_ = chains_;
  copy->config_by_name_ = config_by_name_;
  copy->out_links_ = out_links_;
  copy->in_links_ = in_links_;
  return copy;
}

// --- Internal -------------------------------------------------------------------

void MetaDatabase::CheckObjectHandle(OidId id) const {
  if (!id.valid() || id.value() >= objects_.size()) {
    throw NotFoundError("invalid OID handle");
  }
}

void MetaDatabase::CheckLinkHandle(LinkId id) const {
  if (!id.valid() || id.value() >= links_.size()) {
    throw NotFoundError("invalid link handle");
  }
}

void MetaDatabase::DetachLinkFromAdjacency(LinkId id) {
  const Link& link = links_[id.value()];
  auto& out = out_links_[link.from.value()];
  out.erase(std::remove(out.begin(), out.end(), id), out.end());
  auto& in = in_links_[link.to.value()];
  in.erase(std::remove(in.begin(), in.end(), id), in.end());
}

}  // namespace damocles::metadb
