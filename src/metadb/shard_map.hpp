// The shard map: block-subtree partitioning of the meta-database.
//
// The sharded wave engine runs one run-time engine per shard, so every
// OID needs a stable shard assignment that keeps a propagation wave's
// working set on one shard. The paper's change-propagation model is
// naturally partitionable along the design hierarchy: use links form
// block subtrees (paper §2: "use links which represent hierarchy"), and
// the derive links of a design flow chain the views of one block — so
// grouping OIDs by the *root block of their use-link subtree* confines
// the overwhelming majority of waves to a single shard. Only derive
// links between blocks of different subtrees (library dependencies,
// cross-subsystem equivalences) can carry a wave across shards; the
// sharded engine detects those receivers and hands them off as seeded
// sub-waves.
//
// Mechanics: block names are interned to dense ids and grouped with a
// union-find forest. Membership is maintained incrementally through the
// MetaDatabase observer protocol —
//  * OnObjectCreated caches the object's block id per OID slot (new
//    blocks start as their own subtree root);
//  * OnLinkAdded unions the endpoint blocks of use links (derive links
//    never affect grouping);
//  * use-link removal / endpoint moves can split a subtree, which a
//    union-find cannot track incrementally: the map goes dirty and the
//    next Rebalance() pass recomputes the forest from the live links
//    (the "subtree re-parenting" pass).
// Shards are assigned per root: Rebalance() deals roots out round-robin
// in block-creation order (deterministic and balanced). Roots that
// appear between rebalances serve a deterministic hash of the root id
// until the next rebalance (balanced in expectation, and immune to the
// aliasing a creation-order cursor would suffer when subtree sizes
// divide the shard count); merged subtrees always follow the surviving
// root. After bulk-building a design, call Rebalance() once for the
// exact round-robin deal.
//
// Thread-safety contract: all mutations (the observer callbacks and
// Rebalance) happen while the sharded engine is quiescent — structural
// meta-data changes are not allowed mid-drain. The read path (ShardOf /
// RootBlockOf) never writes, so intake threads and shard workers may
// query the map concurrently with each other.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/symbol.hpp"
#include "metadb/meta_database.hpp"

namespace damocles::metadb {

/// Counters describing shard-map maintenance since construction.
struct ShardMapStats {
  size_t incremental_unions = 0;  ///< Use-link merges applied in place.
  size_t rebalances = 0;          ///< Full recompute passes.
  size_t structural_splits = 0;   ///< Use-link removals/moves (dirtying).
  size_t reassignments = 0;       ///< Live OIDs whose shard assignment
                                  ///< changed, as reported to the
                                  ///< listener (0 while none installed —
                                  ///< nobody pays the enumeration then).
};

/// Receives shard re-assignment notifications. The sharded engine's
/// index router registers one so an OID's propagation-index buckets
/// follow it to the new shard's index (migration, not rebuild). Fired
/// from mutation paths only — the quiescent-engine contract of the
/// observer protocol applies.
class ShardMapListener {
 public:
  virtual ~ShardMapListener() = default;

  /// `id`'s assignment moved from `old_shard` to `new_shard` — either
  /// an incremental union pulled its group under a root on another
  /// shard, or a Rebalance re-dealt its root.
  virtual void OnShardChanged(OidId id, uint32_t old_shard,
                              uint32_t new_shard) = 0;
};

/// Assigns every OID to a shard by the root block of its use-link
/// subtree. Registers itself as a MetaDatabase observer; unregisters on
/// destruction. The database must outlive the map.
class ShardMap final : public LinkObserver {
 public:
  ShardMap(MetaDatabase& db, uint32_t num_shards);
  ~ShardMap() override;

  ShardMap(const ShardMap&) = delete;
  ShardMap& operator=(const ShardMap&) = delete;

  uint32_t num_shards() const noexcept { return num_shards_; }

  /// The shard owning `id`. Total: unknown slots fall back to a hash of
  /// the slot so the router always has an answer. Read-only (safe to
  /// call concurrently with other readers).
  uint32_t ShardOf(OidId id) const noexcept;

  /// The root block of `id`'s use-link subtree (the block itself when
  /// unlinked). Read-only.
  const std::string& RootBlockOf(OidId id) const;

  /// True when a use-link removal or endpoint move may have split a
  /// subtree since the last rebalance; assignments are still total and
  /// stable, but subtree roots may be stale until Rebalance().
  bool dirty() const noexcept { return dirty_; }

  /// Recomputes the union-find forest from the live use links and deals
  /// every root a shard round-robin in block-creation order. Call only
  /// while the sharded engine is quiescent. With a listener installed,
  /// every OID whose effective shard changed is reported (old vs. new
  /// assignment diff), so index buckets migrate instead of rebuilding.
  void Rebalance();

  /// Installs (or clears) the re-assignment listener. The listener must
  /// outlive the map or be cleared first.
  void SetListener(ShardMapListener* listener) noexcept {
    listener_ = listener;
  }

  /// Calls `fn` with every OID slot currently grouped under the same
  /// use-link subtree as `id` (including `id`'s own block's slots).
  void ForEachGroupMember(OidId id,
                          const std::function<void(OidId)>& fn) const;

  const ShardMapStats& stats() const noexcept { return stats_; }

  // --- LinkObserver ------------------------------------------------------
  void OnObjectCreated(OidId id, const MetaObject& object) override;
  void OnLinkAdded(LinkId id, const Link& link) override;
  void OnLinkRemoved(LinkId id, const Link& link) override;
  void OnLinkEndpointMoved(LinkId id, bool endpoint_from, OidId old_endpoint,
                           const Link& link) override;
  void OnLinkPropagatesChanged(LinkId id,
                               const std::vector<std::string>& old_propagates,
                               const Link& link) override;

 private:
  static constexpr uint32_t kUnassigned = ~uint32_t{0};

  /// splitmix64-style mix for the total fallback (mirrors the
  /// propagation index's key hash rationale: spread dense ids).
  static uint32_t Mix(uint32_t value) noexcept {
    uint64_t key = value + 0x9e3779b97f4a7c15ull;
    key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ull;
    key = (key ^ (key >> 27)) * 0x94d049bb133111ebull;
    return static_cast<uint32_t>(key ^ (key >> 31));
  }

  /// Root of a block id: plain parent walk, no path compression — the
  /// read path must not write (concurrent readers).
  uint32_t FindRoot(uint32_t block) const noexcept;

  /// Compressing find, used only from (quiescent) mutation paths.
  uint32_t FindCompress(uint32_t block);

  /// Unions two block groups; the smaller (earlier-created) block id
  /// survives as root and keeps its shard assignment. The losing
  /// group's OIDs are reported to the listener when their effective
  /// shard changes.
  void Union(uint32_t a, uint32_t b);

  /// Splices two disjoint group circles into one (classic circular
  /// linked-list merge: one pointer swap).
  void SpliceGroups(uint32_t a, uint32_t b) {
    std::swap(group_next_[a], group_next_[b]);
  }

  /// Calls `fn` for every block id in `block`'s group circle.
  template <typename Fn>
  void ForEachGroupBlock(uint32_t block, Fn&& fn) const {
    uint32_t current = block;
    do {
      fn(current);
      current = group_next_[current];
    } while (current != block);
  }

  /// Interns `block` and grows the forest; new blocks are their own
  /// root, unassigned until the next Rebalance (hash fallback applies).
  uint32_t InternBlock(std::string_view block);

  MetaDatabase& db_;
  uint32_t num_shards_;
  ShardMapListener* listener_ = nullptr;

  SymbolTable blocks_;                 ///< Block name -> dense block id.
  std::vector<uint32_t> parent_;       ///< Union-find forest over block ids.
  std::vector<uint32_t> shard_of_root_;  ///< Shard per root block id.
  std::vector<uint32_t> block_of_slot_;  ///< OID slot -> block id.
  /// Circular linked list of block ids per group (self when singleton):
  /// lets a union enumerate the losing group in O(its size) so index
  /// migration touches only the OIDs that actually moved.
  std::vector<uint32_t> group_next_;
  /// OID slots per block id (an OID's block never changes).
  std::vector<std::vector<uint32_t>> slots_of_block_;
  uint32_t next_shard_ = 0;            ///< Round-robin cursor.
  bool dirty_ = false;
  ShardMapStats stats_;
};

}  // namespace damocles::metadb
