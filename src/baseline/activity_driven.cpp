#include "baseline/activity_driven.hpp"

#include <deque>

#include "common/error.hpp"

namespace damocles::baseline {

namespace {

std::string Key(const std::string& block, const std::string& view) {
  std::string key = block;
  key.push_back('\0');
  key += view;
  return key;
}

}  // namespace

const char* DataStateName(DataState state) noexcept {
  switch (state) {
    case DataState::kMissing:
      return "missing";
    case DataState::kStale:
      return "stale";
    case DataState::kValid:
      return "valid";
  }
  return "unknown";
}

ActivityDrivenManager::ActivityDrivenManager(std::vector<ActivityDef> flow)
    : flow_(std::move(flow)) {}

const ActivityDef* ActivityDrivenManager::FindActivity(
    const std::string& name) const {
  for (const ActivityDef& activity : flow_) {
    if (activity.name == name) return &activity;
  }
  return nullptr;
}

std::optional<ActivityTicket> ActivityDrivenManager::BeginActivity(
    const std::string& activity_name, const std::string& block) {
  ++stats_.begin_requests;
  const ActivityDef* activity = FindActivity(activity_name);
  if (activity == nullptr) {
    throw NotFoundError("BeginActivity: unknown activity '" + activity_name +
                        "'");
  }

  // Verify every input view; any miss blocks the designer.
  for (const std::string& view : activity->input_views) {
    ++stats_.state_checks;
    if (StateOf(block, view) != DataState::kValid) {
      ++stats_.denials;
      return std::nullopt;
    }
  }
  // Inputs and outputs are locked for the activity's duration.
  for (const std::string& view : activity->input_views) {
    const std::string key = Key(block, view);
    if (locks_[key]) {
      ++stats_.denials;
      return std::nullopt;
    }
  }
  for (const std::string& view : activity->input_views) {
    locks_[Key(block, view)] = true;
    ++stats_.locks_taken;
  }
  for (const std::string& view : activity->output_views) {
    locks_[Key(block, view)] = true;
    ++stats_.locks_taken;
  }

  ActivityTicket ticket;
  ticket.activity = activity_name;
  ticket.block = block;
  ticket.id = next_ticket_++;
  return ticket;
}

void ActivityDrivenManager::EndActivity(const ActivityTicket& ticket,
                                        bool success) {
  const ActivityDef* activity = FindActivity(ticket.activity);
  if (activity == nullptr) {
    throw NotFoundError("EndActivity: unknown activity '" + ticket.activity +
                        "'");
  }
  for (const std::string& view : activity->input_views) {
    locks_[Key(ticket.block, view)] = false;
  }
  for (const std::string& view : activity->output_views) {
    locks_[Key(ticket.block, view)] = false;
    if (success) {
      states_[Key(ticket.block, view)] = DataState::kValid;
      ++stats_.state_updates;
      InvalidateDownstream(ticket.block, view);
    }
  }
}

DataState ActivityDrivenManager::StateOf(const std::string& block,
                                         const std::string& view) const {
  const auto it = states_.find(Key(block, view));
  return it == states_.end() ? DataState::kMissing : it->second;
}

void ActivityDrivenManager::SeedData(const std::string& block,
                                     const std::string& view) {
  states_[Key(block, view)] = DataState::kValid;
  ++stats_.state_updates;
}

void ActivityDrivenManager::InvalidateDownstream(const std::string& block,
                                                 const std::string& view) {
  // The manager owns the methodology: the flow definition tells it which
  // views are derived from which, so a change fans out along activity
  // input->output edges.
  std::deque<std::string> frontier{view};
  while (!frontier.empty()) {
    const std::string current = frontier.front();
    frontier.pop_front();
    for (const ActivityDef& activity : flow_) {
      bool consumes = false;
      for (const std::string& input : activity.input_views) {
        if (input == current) {
          consumes = true;
          break;
        }
      }
      if (!consumes) continue;
      for (const std::string& output : activity.output_views) {
        auto& state = states_[Key(block, output)];
        if (state == DataState::kValid) {
          state = DataState::kStale;
          ++stats_.invalidations;
          ++stats_.state_updates;
          frontier.push_back(output);
        }
      }
    }
  }
}

}  // namespace damocles::baseline
