#include "baseline/full_recompute.hpp"

#include <algorithm>
#include <vector>

namespace damocles::baseline {

using metadb::Link;
using metadb::LinkId;
using metadb::MetaObject;
using metadb::OidId;

void FullRecomputeTracker::RecomputeAll() {
  ++stats_.sweeps;

  // newest_upstream[slot] = newest creation timestamp among all
  // transitive in-link sources of the object in that slot (or a
  // sentinel when none). Computed with an iterative relaxation over the
  // link set: O(V + E) per pass, passes bounded by graph depth; cyclic
  // graphs (legal but unusual) settle because timestamps only grow.
  constexpr int64_t kNone = INT64_MIN;
  const size_t slots = db_.ObjectSlotCount();
  std::vector<int64_t> newest_upstream(slots, kNone);

  // Collect live links once per sweep.
  std::vector<const Link*> links;
  db_.ForEachLink([&](LinkId, const Link& link) {
    links.push_back(&link);
    ++stats_.links_visited;
  });

  bool changed = true;
  while (changed) {
    changed = false;
    for (const Link* link : links) {
      const MetaObject& source = db_.GetObject(link->from);
      const int64_t through =
          std::max(source.created_at, newest_upstream[link->from.value()]);
      int64_t& slot = newest_upstream[link->to.value()];
      if (through > slot) {
        slot = through;
        changed = true;
      }
    }
  }

  db_.ForEachObject([&](OidId id, const MetaObject& object) {
    ++stats_.objects_visited;
    const bool stale = newest_upstream[id.value()] > object.created_at;
    const char* value = stale ? "false" : "true";
    const std::string* existing = db_.GetProperty(id, "uptodate");
    if (existing == nullptr || *existing != value) {
      db_.SetProperty(id, "uptodate", value);
      ++stats_.property_writes;
    }
  });
}

}  // namespace damocles::baseline
