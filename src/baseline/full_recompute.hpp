// Full-recompute invalidation baseline.
//
// The paper's run-time engine propagates a change *selectively*: only
// OIDs reachable from the change across qualifying links are touched.
// The classic alternative (make-style) rederives everything: after any
// change, sweep the whole meta-database and recompute every object's
// up-to-date flag from version timestamps. bench_claim_propagation
// compares the two; the test suite checks they agree on final states.
#pragma once

#include <cstddef>

#include "metadb/meta_database.hpp"

namespace damocles::baseline {

/// Statistics of a full-recompute tracker.
struct RecomputeStats {
  size_t sweeps = 0;           ///< Full recomputations performed.
  size_t objects_visited = 0;  ///< Sum of objects touched over all sweeps.
  size_t links_visited = 0;    ///< Sum of links examined over all sweeps.
  size_t property_writes = 0;  ///< uptodate values actually changed.
};

/// Make-style staleness tracker. An object is out of date iff some
/// transitive upstream source (via in-links: the objects it is derived
/// from, its hierarchy parents' sources, ...) has a strictly newer
/// creation timestamp.
class FullRecomputeTracker {
 public:
  explicit FullRecomputeTracker(metadb::MetaDatabase& db) : db_(db) {}

  /// Recomputes the `uptodate` property of every live object. Called
  /// after every change event — that is the point of the baseline.
  void RecomputeAll();

  const RecomputeStats& stats() const noexcept { return stats_; }
  void ResetStats() noexcept { stats_ = RecomputeStats{}; }

 private:
  metadb::MetaDatabase& db_;
  RecomputeStats stats_;
};

}  // namespace damocles::baseline
