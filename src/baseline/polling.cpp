#include "baseline/polling.hpp"

namespace damocles::baseline {

namespace {

std::string Key(const std::string& block, const std::string& view) {
  std::string key = block;
  key.push_back('\0');
  key += view;
  return key;
}

}  // namespace

std::vector<DetectedChange> PollingTracker::Poll(int64_t now) {
  ++stats_.polls;
  std::vector<DetectedChange> changes;

  workspace_.ForEachFile([&](const metadb::Oid& oid,
                             const metadb::DesignFile& file) {
    ++stats_.files_scanned;
    // Only the latest version of each pair is of interest; older
    // versions are immutable.
    if (oid.version != workspace_.LatestVersion(oid.block, oid.view)) return;
    int64_t& seen = snapshot_[Key(oid.block, oid.view)];
    if (file.modified_at > seen) {
      DetectedChange change;
      change.oid = oid;
      change.modified_at = file.modified_at;
      change.detected_at = now;
      changes.push_back(change);
      ++stats_.changes_detected;
      stats_.total_detection_lag += now - file.modified_at;
      seen = file.modified_at;
    }
  });
  return changes;
}

}  // namespace damocles::baseline
