// Activity-driven flow manager: the NELSIS-style baseline.
//
// Paper §4: "In the NELSIS framework the data flow management is driven
// by design activities, whereas DAMOCLES has an observer approach ...
// which is perceived as non obstructive to the designers since it does
// not impose a methodology."
//
// In an activity-driven framework every design action must be announced
// up front: the designer begins an activity, the manager checks the
// flow graph, verifies input states, takes locks, and only then may the
// tool run; afterwards the manager updates states synchronously. The
// obstruction cost — checks, locks, denials — is exactly what
// bench_claim_overhead measures against the observer engine.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace damocles::baseline {

/// Data state as the activity-driven manager tracks it.
enum class DataState {
  kMissing,  ///< Never produced.
  kStale,    ///< Produced, then an upstream input changed.
  kValid,    ///< Produced and current.
};

const char* DataStateName(DataState state) noexcept;

/// One activity (tool) in the flow definition.
struct ActivityDef {
  std::string name;                      ///< e.g. "netlister".
  std::vector<std::string> input_views;  ///< Views that must be kValid.
  std::vector<std::string> output_views; ///< Views this activity produces.
};

/// Statistics the baseline accumulates; tracking operations are the
/// currency compared against the observer engine.
struct ActivityStats {
  size_t begin_requests = 0;
  size_t denials = 0;          ///< Begin refused (missing/stale inputs, lock).
  size_t state_checks = 0;     ///< Individual input-state verifications.
  size_t locks_taken = 0;
  size_t state_updates = 0;    ///< Synchronous post-activity updates.
  size_t invalidations = 0;    ///< Downstream views marked stale.
};

/// A running activity handle.
struct ActivityTicket {
  std::string activity;
  std::string block;
  uint64_t id = 0;
};

/// The activity-driven (obstructive) flow manager.
class ActivityDrivenManager {
 public:
  /// The flow definition is fixed up front — the methodology is imposed,
  /// which is precisely what DAMOCLES avoids.
  explicit ActivityDrivenManager(std::vector<ActivityDef> flow);

  /// Requests permission to run `activity` on `block`. Checks every
  /// input view's state and takes locks. Returns a ticket when granted.
  std::optional<ActivityTicket> BeginActivity(const std::string& activity,
                                              const std::string& block);

  /// Commits the activity: outputs become kValid, locks are released,
  /// and every transitively downstream view of the outputs is marked
  /// kStale (the manager knows the whole flow statically).
  void EndActivity(const ActivityTicket& ticket, bool success);

  /// State of (block, view) as tracked by the manager.
  DataState StateOf(const std::string& block, const std::string& view) const;

  /// Marks a view valid without an activity (seeding initial data).
  void SeedData(const std::string& block, const std::string& view);

  const ActivityStats& stats() const noexcept { return stats_; }
  void ResetStats() noexcept { stats_ = ActivityStats{}; }

 private:
  const ActivityDef* FindActivity(const std::string& name) const;
  void InvalidateDownstream(const std::string& block,
                            const std::string& view);

  std::vector<ActivityDef> flow_;
  // (block '\0' view) -> state.
  std::map<std::string, DataState> states_;
  std::map<std::string, bool> locks_;
  ActivityStats stats_;
  uint64_t next_ticket_ = 1;
};

}  // namespace damocles::baseline
