// Polling tracker baseline.
//
// Before event-driven tracking, design managers rediscovered changes by
// scanning the repository on a timer (cron-style). The polling tracker
// snapshots workspace modification times and diffs them on every poll;
// its cost is O(files) per poll whether or not anything changed, and its
// detection latency is up to one full poll interval — the two numbers
// bench_fig1_architecture and bench_claim_overhead contrast with the
// event queue.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "metadb/workspace.hpp"

namespace damocles::baseline {

/// A change discovered by a poll.
struct DetectedChange {
  metadb::Oid oid;
  int64_t modified_at = 0;  ///< When the data actually changed.
  int64_t detected_at = 0;  ///< When the poll saw it.
};

struct PollingStats {
  size_t polls = 0;
  size_t files_scanned = 0;
  size_t changes_detected = 0;
  int64_t total_detection_lag = 0;  ///< Sum of (detected - modified).

  double AverageLagSeconds() const {
    return changes_detected == 0
               ? 0.0
               : static_cast<double>(total_detection_lag) /
                     static_cast<double>(changes_detected);
  }
};

/// Scans a workspace for new/modified design files.
class PollingTracker {
 public:
  explicit PollingTracker(const metadb::Workspace& workspace)
      : workspace_(workspace) {}

  /// One poll at simulated time `now`: scans every (block, view) pair's
  /// latest version and reports those newer than the last snapshot.
  std::vector<DetectedChange> Poll(int64_t now);

  const PollingStats& stats() const noexcept { return stats_; }
  void ResetStats() noexcept { stats_ = PollingStats{}; }

 private:
  const metadb::Workspace& workspace_;
  // (block '\0' view) -> last seen modification time.
  std::map<std::string, int64_t> snapshot_;
  PollingStats stats_;
};

}  // namespace damocles::baseline
