// Deterministic pseudo-random number generation for workload synthesis.
//
// All synthetic workloads in this reproduction are seeded so that tests
// and benchmarks are reproducible run-to-run. We use xoshiro256** which
// is small, fast and of high statistical quality.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace damocles {

/// A deterministic, seedable random number generator.
///
/// Satisfies the basic UniformRandomBitGenerator requirements so it can
/// be used with <random> distributions, but also provides the handful of
/// helpers the workload generators need directly.
class Rng {
 public:
  using result_type = uint64_t;

  /// Constructs a generator from a 64-bit seed. Two generators built
  /// from the same seed produce identical streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  /// Next raw 64-bit value.
  uint64_t operator()();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Bernoulli draw with probability `p` of returning true.
  bool Chance(double p);

  /// Picks an index in [0, weights.size()) with probability proportional
  /// to weights[i]. Requires a non-empty vector with a positive sum.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Returns a random identifier like "blk_4f2a" with the given prefix;
  /// useful for generating block names.
  std::string Identifier(const std::string& prefix);

  /// Fisher-Yates shuffle of indices [0, n).
  std::vector<size_t> Permutation(size_t n);

 private:
  uint64_t state_[4];
};

}  // namespace damocles
