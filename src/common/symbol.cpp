#include "common/symbol.hpp"

#include "common/error.hpp"

namespace damocles {

SymbolTable::SymbolTable() {
  const auto [it, inserted] = ids_.emplace(std::string(), SymbolId{0});
  (void)inserted;
  texts_.push_back(&it->first);
}

SymbolId SymbolTable::Intern(std::string_view text) {
  const auto it = ids_.find(text);
  if (it != ids_.end()) return it->second;
  const SymbolId id = static_cast<SymbolId>(texts_.size());
  const auto [inserted, ok] = ids_.emplace(std::string(text), id);
  (void)ok;
  texts_.push_back(&inserted->first);
  return id;
}

SymbolId SymbolTable::Find(std::string_view text) const {
  const auto it = ids_.find(text);
  return it == ids_.end() ? kNoSymbol : it->second;
}

const std::string& SymbolTable::Text(SymbolId id) const {
  if (id >= texts_.size()) {
    throw NotFoundError("SymbolTable::Text: unknown symbol id " +
                        std::to_string(id));
  }
  return *texts_[id];
}

}  // namespace damocles
