#include "common/symbol.hpp"

#include "common/error.hpp"

namespace damocles {

SymbolTable::SymbolTable() {
  texts_.emplace_back();
  ids_.emplace("", 0);
}

SymbolId SymbolTable::Intern(std::string_view text) {
  const auto it = ids_.find(std::string(text));
  if (it != ids_.end()) return it->second;
  const SymbolId id = static_cast<SymbolId>(texts_.size());
  texts_.emplace_back(text);
  ids_.emplace(texts_.back(), id);
  return id;
}

SymbolId SymbolTable::Find(std::string_view text) const {
  const auto it = ids_.find(std::string(text));
  return it == ids_.end() ? kNoSymbol : it->second;
}

const std::string& SymbolTable::Text(SymbolId id) const {
  if (id >= texts_.size()) {
    throw NotFoundError("SymbolTable::Text: unknown symbol id " +
                        std::to_string(id));
  }
  return texts_[id];
}

}  // namespace damocles
