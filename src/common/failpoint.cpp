#include "common/failpoint.hpp"

#if defined(DAMOCLES_FAILPOINTS_ENABLED)

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace damocles::common {

namespace {

struct Entry {
  FailpointAction action = FailpointAction::kError;
  int error_number = 0;
  uint64_t param = 0;
  double prob = 1.0;
  uint64_t skip = 0;
  // Remaining hits before the failpoint disarms; negative = unlimited.
  int64_t count = -1;
  Rng rng{0x9e3779b97f4a7c15ULL};
  uint64_t evaluations = 0;
  uint64_t hits = 0;
  std::string config;
};

int ParseErrnoName(const std::string& text) {
  if (text == "ENOSPC") return ENOSPC;
  if (text == "EIO") return EIO;
  if (text == "EINTR") return EINTR;
  if (text == "EAGAIN") return EAGAIN;
  if (text == "EDQUOT") return EDQUOT;
  try {
    size_t used = 0;
    const int value = std::stoi(text, &used);
    if (used == text.size() && value > 0) return value;
  } catch (const std::exception&) {
  }
  throw Error("failpoint: unknown errno '" + text + "'");
}

uint64_t ParseU64(const std::string& text, const std::string& what) {
  try {
    size_t used = 0;
    const uint64_t value = std::stoull(text, &used);
    if (used == text.size()) return value;
  } catch (const std::exception&) {
  }
  throw Error("failpoint: bad " + what + " '" + text + "'");
}

Entry ParseConfig(const std::string& config) {
  Entry entry;
  entry.config = config;
  size_t pos = 0;
  bool first = true;
  uint64_t seed = 0x9e3779b97f4a7c15ULL;
  while (pos <= config.size()) {
    const size_t comma = config.find(',', pos);
    const std::string term = config.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? config.size() + 1 : comma + 1;
    if (term.empty()) {
      if (first) throw Error("failpoint: empty action in '" + config + "'");
      continue;
    }
    if (first) {
      first = false;
      const size_t colon = term.find(':');
      const std::string action = term.substr(0, colon);
      const std::string arg =
          colon == std::string::npos ? "" : term.substr(colon + 1);
      if (action == "error") {
        entry.action = FailpointAction::kError;
      } else if (action == "errno") {
        entry.action = FailpointAction::kErrno;
        entry.error_number = ParseErrnoName(arg);
      } else if (action == "short") {
        entry.action = FailpointAction::kShortWrite;
        entry.param = ParseU64(arg, "short-write length");
      } else if (action == "delay") {
        entry.action = FailpointAction::kDelay;
        entry.param = ParseU64(arg, "delay");
      } else if (action == "abort") {
        entry.action = FailpointAction::kAbort;
      } else {
        throw Error("failpoint: unknown action '" + action + "'");
      }
      continue;
    }
    const size_t eq = term.find('=');
    if (eq == std::string::npos) {
      throw Error("failpoint: expected key=value, got '" + term + "'");
    }
    const std::string key = term.substr(0, eq);
    const std::string value = term.substr(eq + 1);
    if (key == "prob") {
      try {
        size_t used = 0;
        entry.prob = std::stod(value, &used);
        if (used != value.size() || entry.prob < 0.0 || entry.prob > 1.0) {
          throw Error("");
        }
      } catch (const std::exception&) {
        throw Error("failpoint: bad prob '" + value + "'");
      }
    } else if (key == "skip") {
      entry.skip = ParseU64(value, "skip");
    } else if (key == "count") {
      entry.count = static_cast<int64_t>(ParseU64(value, "count"));
    } else if (key == "seed") {
      seed = ParseU64(value, "seed");
    } else {
      throw Error("failpoint: unknown key '" + key + "'");
    }
  }
  entry.rng = Rng(seed);
  return entry;
}

}  // namespace

struct Failpoints::Impl {
  mutable std::mutex mutex;
  std::map<std::string, Entry> entries;
  std::atomic<int> armed{0};
};

Failpoints& Failpoints::Instance() {
  static Failpoints instance;
  return instance;
}

Failpoints::Failpoints() : impl_(new Impl) {
  // Env activation: DAMOCLES_FAILPOINTS_CONFIG="name=config;..."
  // Malformed entries are reported and skipped rather than thrown —
  // this runs lazily from arbitrary call sites.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* env = std::getenv("DAMOCLES_FAILPOINTS_CONFIG");
  if (env == nullptr) return;
  const std::string text(env);
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t semi = text.find(';', pos);
    const std::string item = text.substr(
        pos, semi == std::string::npos ? std::string::npos : semi - pos);
    pos = semi == std::string::npos ? text.size() : semi + 1;
    if (item.empty()) continue;
    const size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      std::fprintf(stderr, "failpoint: ignoring malformed env entry '%s'\n",
                   item.c_str());
      continue;
    }
    try {
      Configure(item.substr(0, eq), item.substr(eq + 1));
    } catch (const Error& error) {
      std::fprintf(stderr, "failpoint: ignoring env entry '%s': %s\n",
                   item.c_str(), error.what());
    }
  }
}

void Failpoints::Configure(const std::string& name,
                           const std::string& config) {
  if (name.empty()) throw Error("failpoint: empty name");
  Entry entry = ParseConfig(config);
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->entries[name] = std::move(entry);
  impl_->armed.store(static_cast<int>(impl_->entries.size()),
                     std::memory_order_release);
}

void Failpoints::Clear(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->entries.erase(name);
  impl_->armed.store(static_cast<int>(impl_->entries.size()),
                     std::memory_order_release);
}

void Failpoints::ClearAll() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->entries.clear();
  impl_->armed.store(0, std::memory_order_release);
}

std::vector<FailpointStatus> Failpoints::List() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<FailpointStatus> out;
  out.reserve(impl_->entries.size());
  for (const auto& [name, entry] : impl_->entries) {
    FailpointStatus status;
    status.name = name;
    status.config = entry.config;
    status.evaluations = entry.evaluations;
    status.hits = entry.hits;
    out.push_back(std::move(status));
  }
  // Name order is part of the contract (the wire "failpoint list"
  // output must be deterministic for scripted clients), not an
  // accident of the storage container.
  std::sort(out.begin(), out.end(),
            [](const FailpointStatus& a, const FailpointStatus& b) {
              return a.name < b.name;
            });
  return out;
}

bool Failpoints::AnyActive() const {
  return impl_->armed.load(std::memory_order_acquire) > 0;
}

bool Failpoints::Evaluate(const char* name, FailpointHit* out_hit) {
  FailpointAction action;
  int error_number;
  uint64_t param;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto it = impl_->entries.find(name);
    if (it == impl_->entries.end()) return false;
    Entry& entry = it->second;
    ++entry.evaluations;
    if (entry.skip > 0) {
      --entry.skip;
      return false;
    }
    if (entry.count == 0) return false;
    if (entry.prob < 1.0 && !entry.rng.Chance(entry.prob)) return false;
    ++entry.hits;
    if (entry.count > 0) --entry.count;
    action = entry.action;
    error_number = entry.error_number;
    param = entry.param;
  }
  switch (action) {
    case FailpointAction::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(param));
      return false;
    case FailpointAction::kAbort:
      std::fprintf(stderr, "failpoint: aborting at '%s'\n", name);
      std::abort();
    default:
      break;
  }
  if (out_hit != nullptr) {
    out_hit->action = action;
    out_hit->error_number = error_number;
    out_hit->param = param;
  }
  return true;
}

}  // namespace damocles::common

#else  // !DAMOCLES_FAILPOINTS_ENABLED

// With failpoints compiled out the macro never touches the registry,
// but the class still links so tooling code can reference it.
#include "common/error.hpp"

namespace damocles::common {

struct Failpoints::Impl {};

Failpoints& Failpoints::Instance() {
  static Failpoints instance;
  return instance;
}

Failpoints::Failpoints() : impl_(nullptr) {}

void Failpoints::Configure(const std::string&, const std::string&) {
  throw Error("failpoint: compiled out in this build");
}

void Failpoints::Clear(const std::string&) {}

void Failpoints::ClearAll() {}

std::vector<FailpointStatus> Failpoints::List() const { return {}; }

bool Failpoints::AnyActive() const { return false; }

bool Failpoints::Evaluate(const char*, FailpointHit*) { return false; }

}  // namespace damocles::common

#endif  // DAMOCLES_FAILPOINTS_ENABLED
