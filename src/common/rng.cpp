#include "common/rng.hpp"

#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace damocles {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotateLeft(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(uint64_t seed) {
  // xoshiro's state must not be all-zero; SplitMix64 seeding guarantees
  // a well-mixed non-degenerate state from any 64-bit seed.
  uint64_t mix = seed;
  for (auto& word : state_) word = SplitMix64(mix);
}

uint64_t Rng::operator()() {
  const uint64_t result = RotateLeft(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotateLeft(state_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  if (lo > hi) throw Error("Rng::UniformInt: lo > hi");
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>((*this)());
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = max() - max() % span;
  uint64_t draw = (*this)();
  while (draw >= limit) draw = (*this)();
  return lo + static_cast<int64_t>(draw % span);
}

double Rng::UniformDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::Chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  if (weights.empty()) throw Error("Rng::WeightedIndex: empty weights");
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) throw Error("Rng::WeightedIndex: non-positive sum");
  double draw = UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw < 0.0) return i;
  }
  return weights.size() - 1;
}

std::string Rng::Identifier(const std::string& prefix) {
  static constexpr char kHex[] = "0123456789abcdef";
  uint64_t bits = (*this)();
  std::string suffix(4, '0');
  for (char& c : suffix) {
    c = kHex[bits & 0xf];
    bits >>= 4;
  }
  return prefix + "_" + suffix;
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> indices(n);
  std::iota(indices.begin(), indices.end(), size_t{0});
  for (size_t i = n; i > 1; --i) {
    const size_t j =
        static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
    std::swap(indices[i - 1], indices[j]);
  }
  return indices;
}

}  // namespace damocles
