#include "common/clock.hpp"

#include <cstdio>

#include "common/error.hpp"

namespace damocles {

void SimClock::Advance(int64_t delta_seconds) {
  if (delta_seconds < 0) {
    throw Error("SimClock::Advance: simulated time cannot move backwards");
  }
  now_seconds_ += delta_seconds;
}

std::string SimClock::FormatDate() const { return FormatDate(now_seconds_); }

std::string SimClock::FormatDate(int64_t seconds) {
  const int64_t day = seconds / 86400;
  const int64_t within = seconds % 86400;
  const int hours = static_cast<int>(within / 3600);
  const int minutes = static_cast<int>((within % 3600) / 60);
  const int secs = static_cast<int>(within % 60);
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "day %lld %02d:%02d:%02d",
                static_cast<long long>(day), hours, minutes, secs);
  return buffer;
}

}  // namespace damocles
