#include "common/error.hpp"

namespace damocles {

namespace {

std::string FormatParseMessage(const std::string& message, int line,
                               int column) {
  return "parse error at line " + std::to_string(line) + ", column " +
         std::to_string(column) + ": " + message;
}

}  // namespace

ParseError::ParseError(const std::string& message, int line, int column)
    : Error(FormatParseMessage(message, line, column)),
      line_(line),
      column_(column) {}

}  // namespace damocles
