// Failpoint fault injection: named trigger points compiled into the
// I/O and concurrency chokepoints (WAL flush/fsync/roll, checkpoint
// write, mux apply loop, sharded ring spill).
//
// A failpoint is evaluated with the DAMOCLES_FAILPOINT(name, &hit)
// macro. When the build has failpoints disabled the macro is a
// constant-false no-op and the registry is never consulted; when
// enabled, an unconfigured failpoint costs one relaxed atomic load.
//
// Configuration grammar (programmatic, env var, or `failpoint` wire
// command):
//
//   <action>[,prob=<p>][,skip=<n>][,count=<n>][,seed=<s>]
//
//   actions:  error            generic injected failure
//             errno:<E>        injected errno (ENOSPC, EIO, EINTR, or
//                              a number); surfaces as the failing
//                              syscall's errno
//             short:<bytes>    torn write — only <bytes> of the
//                              request reach the file
//             delay:<ms>       stall the calling thread <ms> ms (the
//                              hit does not fail the operation)
//             abort            std::abort() the process at the hit
//
//   prob   trigger probability per eligible evaluation (default 1.0),
//          drawn from a seeded Rng so schedules are reproducible
//   skip   ignore the first <n> eligible evaluations
//   count  disarm after <n> hits (default unlimited)
//   seed   seed for the probability draw
//
// Env var activation: DAMOCLES_FAILPOINTS_CONFIG="name=config;..."
// parsed once at first registry use.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace damocles::common {

enum class FailpointAction : uint8_t {
  kError,
  kErrno,
  kShortWrite,
  kDelay,
  kAbort,
};

/// What a triggered failpoint asks the call site to do.
struct FailpointHit {
  FailpointAction action = FailpointAction::kError;
  /// Errno to surface for kErrno (e.g. ENOSPC).
  int error_number = 0;
  /// Bytes to actually write for kShortWrite.
  uint64_t param = 0;
};

/// One row of `failpoint list`: configuration plus trigger counters.
struct FailpointStatus {
  std::string name;
  std::string config;
  uint64_t evaluations = 0;
  uint64_t hits = 0;
};

/// Process-wide registry of named failpoints.
class Failpoints {
 public:
  static Failpoints& Instance();

  /// Arms `name` with a config string (grammar above). Throws Error on
  /// a malformed config.
  void Configure(const std::string& name, const std::string& config);

  /// Disarms one failpoint. Unknown names are a no-op.
  void Clear(const std::string& name);

  /// Disarms everything.
  void ClearAll();

  /// Snapshot of every armed failpoint (sorted by name).
  std::vector<FailpointStatus> List() const;

  /// Evaluates `name`. Returns true with `*out_hit` filled when the
  /// call site must inject a failure (error / errno / short write);
  /// delay sleeps internally and returns false, abort never returns.
  /// Prefer the DAMOCLES_FAILPOINT macro, which short-circuits on the
  /// armed-count fast path and compiles out entirely in Release.
  bool Evaluate(const char* name, FailpointHit* out_hit);

  /// True when at least one failpoint is armed (relaxed load).
  bool AnyActive() const;

 private:
  Failpoints();
  struct Impl;
  Impl* impl_;
};

}  // namespace damocles::common

#if defined(DAMOCLES_FAILPOINTS_ENABLED)
#define DAMOCLES_FAILPOINT(name, out_hit)                     \
  (::damocles::common::Failpoints::Instance().AnyActive() &&  \
   ::damocles::common::Failpoints::Instance().Evaluate((name), (out_hit)))
#else
#define DAMOCLES_FAILPOINT(name, out_hit) (static_cast<void>(out_hit), false)
#endif
