#include "common/log.hpp"

#include <cstdio>
#include <mutex>

namespace damocles {

namespace {

LogLevel g_level = LogLevel::kOff;
Log::Sink g_sink;
std::mutex g_mutex;

void DefaultSink(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[damocles %s] %s\n", LogLevelName(level),
               message.c_str());
}

}  // namespace

void Log::SetLevel(LogLevel level) noexcept { g_level = level; }

LogLevel Log::Level() noexcept { return g_level; }

void Log::SetSink(Sink sink) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = std::move(sink);
}

void Log::Write(LogLevel level, const std::string& message) {
  if (level < g_level || g_level == LogLevel::kOff) return;
  const std::lock_guard<std::mutex> lock(g_mutex);
  if (g_sink) {
    g_sink(level, message);
  } else {
    DefaultSink(level, message);
  }
}

const char* LogLevelName(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarning:
      return "warning";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "unknown";
}

}  // namespace damocles
