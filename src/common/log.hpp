// Minimal leveled logger.
//
// DAMOCLES is "non-obstructive": tracking must never get in the way of
// design activity. The logger follows suit — it is off by default, costs
// a single branch when disabled, and writes to a caller-supplied sink so
// tests can capture output.
#pragma once

#include <functional>
#include <string>

namespace damocles {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Process-wide logger configuration.
class Log {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  /// Minimum level that is emitted; defaults to kOff (silent).
  static void SetLevel(LogLevel level) noexcept;
  static LogLevel Level() noexcept;

  /// Replaces the output sink. Passing nullptr restores the default
  /// stderr sink.
  static void SetSink(Sink sink);

  static void Write(LogLevel level, const std::string& message);

  static void Debug(const std::string& message) {
    Write(LogLevel::kDebug, message);
  }
  static void Info(const std::string& message) {
    Write(LogLevel::kInfo, message);
  }
  static void Warning(const std::string& message) {
    Write(LogLevel::kWarning, message);
  }
  static void Error(const std::string& message) {
    Write(LogLevel::kError, message);
  }
};

/// Human-readable name of a level ("debug", "info", ...).
const char* LogLevelName(LogLevel level) noexcept;

}  // namespace damocles
