// Small string utilities used throughout the library.
//
// Everything here is allocation-conscious: functions accept
// std::string_view and only materialize std::string where the caller
// needs ownership.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace damocles {

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// Splits `text` on `separator`, trimming each piece. Empty pieces are
/// preserved ("a,,b" -> {"a", "", "b"}) so positional formats stay intact.
std::vector<std::string> Split(std::string_view text, char separator);

/// Splits on runs of ASCII whitespace; never yields empty pieces.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Joins `pieces` with `separator`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator);

/// True if `text` starts with / ends with the given prefix or suffix.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// ASCII lower-casing (the blueprint language is case-sensitive, but
/// event names are conventionally lower case; tools use this to
/// normalize user input).
std::string ToLower(std::string_view text);

/// Wraps `text` in double quotes, escaping embedded quotes and
/// backslashes; inverse of UnquoteString.
std::string QuoteString(std::string_view text);

/// Parses a double-quoted string starting at `pos` in `text`. On success
/// stores the unescaped contents in `out`, advances `pos` past the
/// closing quote and returns true.
bool UnquoteString(std::string_view text, size_t& pos, std::string& out);

/// True if `name` is a valid identifier for blocks, views, properties and
/// events: [A-Za-z_][A-Za-z0-9_.-]*.
bool IsIdentifier(std::string_view name);

/// Replaces every occurrence of `from` in `text` with `to`.
std::string ReplaceAll(std::string_view text, std::string_view from,
                       std::string_view to);

}  // namespace damocles
