// Virtual clock for deterministic timestamps.
//
// The paper's run-time rules reference a $date variable and the
// tool-scheduling evaluation reasons about design-cycle time. A virtual
// clock makes both reproducible: design activities advance simulated
// time explicitly, so two runs of the same event trace produce identical
// meta-data (including $date-derived property values).
#pragma once

#include <cstdint>
#include <string>

namespace damocles {

/// Simulated wall clock. Time is measured in integer seconds since a
/// nominal project epoch; helpers format it as a human-readable date.
class SimClock {
 public:
  /// Starts at the project epoch (day 0, 00:00:00).
  SimClock() = default;

  /// Starts at an explicit offset in seconds.
  explicit SimClock(int64_t start_seconds) : now_seconds_(start_seconds) {}

  /// Current simulated time in seconds since the epoch.
  int64_t NowSeconds() const noexcept { return now_seconds_; }

  /// Advances the clock; negative deltas are rejected (time is monotone).
  void Advance(int64_t delta_seconds);

  /// Formats the current time as "day D HH:MM:SS" — the format wrapper
  /// programs see in the $date substitution variable.
  std::string FormatDate() const;

  /// Formats an arbitrary timestamp with the same format.
  static std::string FormatDate(int64_t seconds);

 private:
  int64_t now_seconds_ = 0;
};

}  // namespace damocles
