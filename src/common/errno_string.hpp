// Thread-safe errno formatting.
//
// std::strerror returns a pointer into internal (possibly shared)
// storage and is flagged concurrency-mt-unsafe by clang-tidy; the WAL
// writer and the background checkpoint thread both format errno on
// failure paths that can race. ErrnoString wraps strerror_r and always
// returns an owned std::string.
#pragma once

#include <string>

namespace damocles::common {

/// The message for `errno_value` ("No space left on device"), owned by
/// the caller. Safe from any thread. Unknown values format as
/// "errno <n>".
std::string ErrnoString(int errno_value);

}  // namespace damocles::common
