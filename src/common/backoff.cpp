#include "common/backoff.hpp"

#include <algorithm>
#include <cmath>

namespace damocles::common {

BackoffState::BackoffState(const BackoffPolicy& policy)
    : policy_(policy), rng_(policy.seed) {
  policy_.attempts = std::max(policy_.attempts, 0);
  policy_.initial = std::max(policy_.initial, std::chrono::milliseconds(0));
  policy_.max = std::max(policy_.max, policy_.initial);
  policy_.multiplier = std::max(policy_.multiplier, 1.0);
  policy_.jitter = std::clamp(policy_.jitter, 0.0, 1.0);
}

std::chrono::milliseconds BackoffState::NextDelay() {
  const double base = static_cast<double>(policy_.initial.count()) *
                      std::pow(policy_.multiplier, attempt_);
  const double capped =
      std::min(base, static_cast<double>(policy_.max.count()));
  // Uniform factor in [1 - jitter, 1 + jitter]; the draw happens even
  // when jitter == 0 so the schedule of delays never depends on whether
  // jitter is enabled.
  const double factor =
      1.0 + policy_.jitter * (2.0 * rng_.UniformDouble() - 1.0);
  ++attempt_;
  const double jittered = std::min(capped * factor,
                                   static_cast<double>(policy_.max.count()));
  return std::chrono::milliseconds(
      static_cast<int64_t>(std::llround(std::max(jittered, 0.0))));
}

}  // namespace damocles::common
