// Error types shared across the DAMOCLES/BluePrint reproduction.
//
// The library reports unrecoverable misuse (unknown OID, malformed rule
// file, permission violation) with exceptions, per the error-handling
// guidance of the C++ Core Guidelines (E.2): throw to signal that a
// function cannot perform its assigned task.
#pragma once

#include <stdexcept>
#include <string>

namespace damocles {

/// Base class for all errors raised by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a lookup names an object that does not exist
/// (unknown OID, unknown view, unknown link, unknown configuration).
class NotFoundError : public Error {
 public:
  explicit NotFoundError(const std::string& what) : Error(what) {}
};

/// Raised by the BluePrint parser on a malformed rule file. Carries the
/// 1-based line and column of the offending token.
class ParseError : public Error {
 public:
  ParseError(const std::string& message, int line, int column);

  int line() const noexcept { return line_; }
  int column() const noexcept { return column_; }

 private:
  int line_;
  int column_;
};

/// Raised when a design activity is denied by a project policy
/// (e.g. a wrapper program asking to run a tool on out-of-date input).
class PermissionError : public Error {
 public:
  explicit PermissionError(const std::string& what) : Error(what) {}
};

/// Raised on malformed event messages received over the wire protocol.
class WireFormatError : public Error {
 public:
  explicit WireFormatError(const std::string& what) : Error(what) {}
};

/// Raised when an operation would corrupt meta-database invariants
/// (duplicate OID creation, link endpoints in different databases, ...).
class IntegrityError : public Error {
 public:
  explicit IntegrityError(const std::string& what) : Error(what) {}
};

/// Raised when a write-ahead-log I/O operation fails (write, fsync,
/// segment roll). Distinguished from Error so the durable server can
/// retry / degrade instead of treating it as caller misuse.
class WalIoError : public Error {
 public:
  explicit WalIoError(const std::string& what) : Error(what) {}
};

/// Raised when a mutation is rejected because the server is in
/// degraded read-only mode (its WAL is failing); reads still serve.
class DegradedError : public Error {
 public:
  explicit DegradedError(const std::string& what) : Error(what) {}
};

}  // namespace damocles
