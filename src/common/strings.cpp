#include "common/strings.hpp"

#include <cctype>

namespace damocles {

namespace {

bool IsSpace(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && IsSpace(text[begin])) ++begin;
  while (end > begin && IsSpace(text[end - 1])) --end;
  return text.substr(begin, end - begin);
}

std::vector<std::string> Split(std::string_view text, char separator) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(separator, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(Trim(text.substr(start)));
      return pieces;
    }
    pieces.emplace_back(Trim(text.substr(start, pos - start)));
    start = pos + 1;
  }
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> pieces;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && IsSpace(text[i])) ++i;
    const size_t start = i;
    while (i < text.size() && !IsSpace(text[i])) ++i;
    if (i > start) pieces.emplace_back(text.substr(start, i - start));
  }
  return pieces;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator) {
  std::string result;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) result.append(separator);
    result.append(pieces[i]);
  }
  return result;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view text) {
  std::string result(text);
  for (char& c : result) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return result;
}

std::string QuoteString(std::string_view text) {
  std::string result;
  result.reserve(text.size() + 2);
  result.push_back('"');
  for (const char c : text) {
    if (c == '"' || c == '\\') result.push_back('\\');
    result.push_back(c);
  }
  result.push_back('"');
  return result;
}

bool UnquoteString(std::string_view text, size_t& pos, std::string& out) {
  if (pos >= text.size() || text[pos] != '"') return false;
  std::string result;
  size_t i = pos + 1;
  while (i < text.size()) {
    const char c = text[i];
    if (c == '\\' && i + 1 < text.size()) {
      result.push_back(text[i + 1]);
      i += 2;
      continue;
    }
    if (c == '"') {
      pos = i + 1;
      out = std::move(result);
      return true;
    }
    result.push_back(c);
    ++i;
  }
  return false;
}

bool IsIdentifier(std::string_view name) {
  if (name.empty()) return false;
  const char first = name.front();
  if (!(std::isalpha(static_cast<unsigned char>(first)) || first == '_')) {
    return false;
  }
  for (const char c : name.substr(1)) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '.' || c == '-')) {
      return false;
    }
  }
  return true;
}

std::string ReplaceAll(std::string_view text, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string result;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(from, start);
    if (pos == std::string_view::npos) {
      result.append(text.substr(start));
      return result;
    }
    result.append(text.substr(start, pos - start));
    result.append(to);
    start = pos + from.size();
  }
}

}  // namespace damocles
