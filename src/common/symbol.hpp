// Interned symbols for hot-path name comparisons.
//
// Event names, view names and property names are compared constantly in
// the propagation inner loop. Interning maps each distinct string to a
// dense integer id so the engine compares integers instead of strings
// and can index side tables by symbol id.
//
// Lookups are heterogeneous (C++20 transparent hashing): Intern and
// Find accept a string_view and never allocate on the hit path, which
// is what lets the run-time engine call them from per-event code.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace damocles {

/// Dense id for an interned string. Id 0 is reserved for the empty string.
using SymbolId = uint32_t;

/// A string interner. Not thread-safe; each engine owns one.
class SymbolTable {
 public:
  SymbolTable();

  // texts_ points into ids_'s nodes; a memberwise copy would alias the
  // source table's storage. Moves are safe (map nodes are stable).
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;
  SymbolTable(SymbolTable&&) = default;
  SymbolTable& operator=(SymbolTable&&) = default;

  /// Returns the id for `text`, interning it on first use. Allocates
  /// only when `text` is new.
  SymbolId Intern(std::string_view text);

  /// Returns the id for `text` if already interned, or kNoSymbol.
  /// Never allocates.
  SymbolId Find(std::string_view text) const;

  /// The text for an id. Throws NotFoundError on an unknown id.
  const std::string& Text(SymbolId id) const;

  /// Number of interned symbols (including the reserved empty string).
  size_t size() const noexcept { return texts_.size(); }

  static constexpr SymbolId kNoSymbol = ~SymbolId{0};

 private:
  struct TransparentHash {
    using is_transparent = void;
    size_t operator()(std::string_view text) const noexcept {
      return std::hash<std::string_view>{}(text);
    }
  };

  // The map owns the interned strings; texts_ points into its nodes
  // (stable across rehashing — unordered_map never moves its nodes), so
  // each symbol's text is stored exactly once.
  std::unordered_map<std::string, SymbolId, TransparentHash, std::equal_to<>>
      ids_;
  std::vector<const std::string*> texts_;
};

}  // namespace damocles
