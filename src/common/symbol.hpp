// Interned symbols for hot-path name comparisons.
//
// Event names, view names and property names are compared constantly in
// the propagation inner loop. Interning maps each distinct string to a
// dense integer id so the engine compares integers instead of strings
// and can index side tables by symbol id.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace damocles {

/// Dense id for an interned string. Id 0 is reserved for the empty string.
using SymbolId = uint32_t;

/// A string interner. Not thread-safe; each engine owns one.
class SymbolTable {
 public:
  SymbolTable();

  /// Returns the id for `text`, interning it on first use.
  SymbolId Intern(std::string_view text);

  /// Returns the id for `text` if already interned, or kNoSymbol.
  SymbolId Find(std::string_view text) const;

  /// The text for an id. Throws NotFoundError on an unknown id.
  const std::string& Text(SymbolId id) const;

  /// Number of interned symbols (including the reserved empty string).
  size_t size() const noexcept { return texts_.size(); }

  static constexpr SymbolId kNoSymbol = ~SymbolId{0};

 private:
  std::unordered_map<std::string, SymbolId> ids_;
  std::vector<std::string> texts_;
};

}  // namespace damocles
