// Jittered exponential backoff, shared by every bounded retry loop in
// the tree (SessionMux mutation admission, ProjectServer WAL retry).
//
// A BackoffPolicy is a plain value describing the schedule; a
// BackoffState walks it. Jitter is seeded so tests can reproduce an
// exact delay sequence, and the whole schedule is bounded: `attempts`
// retries, each delay capped at `max`.
#pragma once

#include <chrono>
#include <cstdint>

#include "common/rng.hpp"

namespace damocles::common {

/// Describes a bounded jittered-exponential retry schedule.
///
/// Delay for retry k (0-based) before jitter is
/// `min(initial * multiplier^k, max)`; jitter then scales it by a
/// uniform factor in [1 - jitter, 1 + jitter]. `attempts == 0` means
/// "never retry" — the first failure is final.
struct BackoffPolicy {
  int attempts = 0;
  std::chrono::milliseconds initial{1};
  std::chrono::milliseconds max{100};
  double multiplier = 2.0;
  double jitter = 0.5;
  uint64_t seed = 0x9e3779b97f4a7c15ULL;
};

/// Walks one retry sequence under a BackoffPolicy.
class BackoffState {
 public:
  explicit BackoffState(const BackoffPolicy& policy);

  /// True while the schedule has retries left.
  bool ShouldRetry() const { return attempt_ < policy_.attempts; }

  /// Consumes one retry and returns the jittered delay to sleep before
  /// it. Call only when ShouldRetry() is true.
  std::chrono::milliseconds NextDelay();

  /// Retries consumed so far.
  int attempt() const { return attempt_; }

  /// Rewinds to the start of the schedule (jitter stream continues).
  void Reset() { attempt_ = 0; }

 private:
  BackoffPolicy policy_;
  Rng rng_;
  int attempt_ = 0;
};

}  // namespace damocles::common
