#include "common/errno_string.hpp"

#include <cstring>

namespace damocles::common {
namespace {

// Dispatch on the two strerror_r flavors without guessing the macro
// soup: glibc's GNU variant returns char* (possibly a static string,
// possibly `buf`), the XSI/POSIX variant returns int and always fills
// `buf`. Overload resolution picks the right adapter for whichever one
// <cstring> declared.
[[maybe_unused]] const char* AdaptStrerror(char* result, const char* /*buf*/) {
  return result;  // GNU variant: the returned pointer is the message.
}

[[maybe_unused]] const char* AdaptStrerror(int result, const char* buf) {
  return result == 0 ? buf : nullptr;  // XSI variant: message is in buf.
}

}  // namespace

std::string ErrnoString(int errno_value) {
  char buf[256];
  buf[0] = '\0';
  const char* message = AdaptStrerror(strerror_r(errno_value, buf, sizeof buf), buf);
  if (message == nullptr || message[0] == '\0') {
    return "errno " + std::to_string(errno_value);
  }
  return message;
}

}  // namespace damocles::common
