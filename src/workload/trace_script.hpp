// Replayable trace scripts.
//
// The audit journal's external trace can be saved as a plain-text
// script of postEvent lines (the exact wire format wrapper programs
// use), versioned alongside the design data, and replayed against a
// fresh server — reproducing a project history for post-mortem analysis
// or regression testing of a new blueprint against old traffic.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "engine/project_server.hpp"
#include "events/event.hpp"

namespace damocles::workload {

/// Serializes events as a script: one `postEvent` line each, with
/// `# user=<u> t=<seconds>` annotations so replay preserves identity
/// and simulated timing.
std::string SaveTraceScript(const std::vector<events::EventMessage>& trace);

/// Parses a script back into events. Lines starting with '#' that are
/// not annotations, and blank lines, are ignored. Throws WireFormatError
/// on malformed postEvent lines.
std::vector<events::EventMessage> LoadTraceScript(std::string_view text);

/// Replays a trace against a server: advances the simulated clock to
/// each event's timestamp and submits it. Returns events submitted.
/// Events whose targets do not exist in the server are counted by the
/// engine as dangling (exactly like live traffic).
size_t ReplayTrace(engine::ProjectServer& server,
                   const std::vector<events::EventMessage>& trace);

}  // namespace damocles::workload
