#include "workload/edtc.hpp"

#include "events/wire.hpp"
#include "query/query.hpp"

namespace damocles::workload {

using metadb::Oid;

std::string EdtcBlueprintText() {
  // Paper §3.4, with one fix the narrative itself requires: the final
  // listing drops the `move` keyword from the cross-view derive links,
  // but §3.4's prose ("Both links are tagged with the move keyword ...
  // these links are automatically shifted from the old version to the
  // new version") and Fig. 3 make clear they carry across versions —
  // without `move`, checking in <CPU.HDL_model.3> could never invalidate
  // the schematic. README "Paper deviations" records this deviation.
  return R"(# EDTC_example — the complete BluePrint of paper section 3.4
blueprint EDTC_example

view default
  property uptodate default true
  when ckin do uptodate = true; post outofdate down done
  when outofdate do uptodate = false done
endview

view HDL_model
  property sim_result default bad
  when hdl_sim do sim_result = $arg done
endview

view synth_lib
endview

view schematic
  property nl_sim_res default bad
  property lvs_res default not_equiv
  let state = ($nl_sim_res == good) and ($lvs_res == is_equiv) and ($uptodate == true)
  link_from HDL_model move propagates outofdate type derived
  link_from synth_lib move propagates outofdate type depend_on
  use_link move propagates outofdate
  when nl_sim do nl_sim_res = $arg done
  when ckin do lvs_res = "$oid changed by $user"; post lvs down "$lvs_res" done
  when ckin do exec netlister "$oid" done
endview

view netlist
  property sim_result default bad
  link_from schematic move propagates nl_sim, outofdate type derived
  when nl_sim do sim_result = $arg done
endview

view layout
  property drc_result default bad
  property lvs_result default not_equiv
  let state = ($drc_result == good) and ($lvs_result == is_equiv) and ($uptodate == true)
  link_from schematic move propagates lvs, outofdate type equivalence
  when drc do drc_result = $arg done
  when lvs do lvs_result = $arg done
  when ckin do lvs_result = "$oid changed by $user"; post lvs up "$lvs_result" done
endview

endblueprint
)";
}

std::string EdtcLoosenedBlueprintText() {
  // Early-phase variant: same views and properties, but no link carries
  // the outofdate event, so a check-in never invalidates derived data.
  // The netlister exec-rule is also dropped — no automatic tool runs
  // while the design is churning.
  return R"(# EDTC_example, loosened for the early design phase
blueprint EDTC_example_loose

view default
  property uptodate default true
  when ckin do uptodate = true done
  when outofdate do uptodate = false done
endview

view HDL_model
  property sim_result default bad
  when hdl_sim do sim_result = $arg done
endview

view synth_lib
endview

view schematic
  property nl_sim_res default bad
  property lvs_res default not_equiv
  let state = ($nl_sim_res == good) and ($lvs_res == is_equiv) and ($uptodate == true)
  link_from HDL_model move propagates nothing type derived
  link_from synth_lib move propagates nothing type depend_on
  use_link move propagates nothing
  when nl_sim do nl_sim_res = $arg done
endview

view netlist
  property sim_result default bad
  link_from schematic move propagates nl_sim type derived
  when nl_sim do sim_result = $arg done
endview

view layout
  property drc_result default bad
  property lvs_result default not_equiv
  let state = ($drc_result == good) and ($lvs_result == is_equiv) and ($uptodate == true)
  link_from schematic move propagates lvs type equivalence
  when drc do drc_result = $arg done
  when lvs do lvs_result = $arg done
endview

endblueprint
)";
}

namespace {

std::string DescribeUpToDate(const engine::ProjectServer& server) {
  query::ProjectQuery q(server.database());
  const auto stale = q.OutOfDate();
  if (stale.empty()) return "everything up to date";
  std::string text = "out of date:";
  for (const query::Match& match : stale) {
    text += " " + metadb::FormatOid(match.oid);
  }
  return text;
}

}  // namespace

std::vector<ScenarioStep> RunEdtcScenario(engine::ProjectServer& server,
                                          tools::ToolScheduler& scheduler) {
  std::vector<ScenarioStep> steps;
  const auto log = [&](std::string what, std::string detail) {
    steps.push_back(ScenarioStep{std::move(what), std::move(detail)});
  };

  tools::HdlEditor editor(server);
  tools::SynthesisTool synthesis(server);

  // 1. "A group of designers starts out by writing an HDL model for
  //    their new design. The top block name is CPU."
  const Oid hdl1 = editor.Edit("CPU", "cpu model draft (race in decoder)",
                               "alice");
  log("create " + metadb::FormatOid(hdl1), DescribeUpToDate(server));

  // 2. "They then simulate the model and get a negative result."
  server.AdvanceClock(3600);
  server.SubmitWireLine("postEvent hdl_sim up CPU,HDL_model,1 \"4 errors\"",
                        "alice");
  log("hdl_sim on v1: \"4 errors\"",
      "sim_result = " +
          *server.database().GetProperty(
              *server.database().FindObject(hdl1), "sim_result"));

  // 3. "The designers then modify their model and save it as a new
  //    version <CPU.HDL_model.2> ... and this time get a good result."
  server.AdvanceClock(7200);
  const Oid hdl2 = editor.Edit("CPU", "cpu model, decoder fixed", "alice");
  server.SubmitWireLine("postEvent hdl_sim up CPU,HDL_model,2 \"good\"",
                        "alice");
  log("create " + metadb::FormatOid(hdl2) + ", hdl_sim: good",
      "sim_result = " +
          *server.database().GetProperty(
              *server.database().FindObject(hdl2), "sim_result"));

  // 4. "They then synthesize the design from their model. This creates
  //    OIDs <CPU.schematic.1> and <REG.schematic.1>." The netlister
  //    exec-rule fires on the schematic check-ins automatically.
  server.AdvanceClock(1800);
  const auto top = synthesis.Synthesize("CPU", {"REG"}, "bob");
  log("synthesize CPU -> schematic hierarchy",
      top.has_value()
          ? metadb::FormatOid(*top) + " created; netlister ran " +
                std::to_string(scheduler.automatic_runs()) + " time(s)"
          : "synthesis denied");

  // 5. "Now the designers ... modify their HDL model thereby creating a
  //    new OID <CPU.HDL_model.3>." The ckin event posts outofdate down;
  //    the schematic, its hierarchy and the netlist become out of date.
  server.AdvanceClock(3600);
  const Oid hdl3 = editor.Edit("CPU", "cpu model, wider ALU", "alice");
  log("create " + metadb::FormatOid(hdl3) + " (ckin posts outofdate down)",
      DescribeUpToDate(server));

  return steps;
}

}  // namespace damocles::workload
