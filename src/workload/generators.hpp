// Synthetic design-object workload generators.
//
// The paper evaluates on real Motorola projects we cannot have; per the
// reproduction plan (DESIGN.md §2) every bench runs on synthesized
// workloads: block hierarchies, multi-view flow graphs and stochastic
// design-session traces, all seeded and deterministic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "engine/project_server.hpp"

namespace damocles::workload {

// --- Hierarchies -------------------------------------------------------------

/// Shape of a generated block hierarchy (a full `fanout`-ary tree of
/// the given depth; depth 0 = a single block).
struct HierarchySpec {
  int depth = 3;
  int fanout = 4;
  std::string view = "schematic";
  std::string root_block = "top";
};

/// A generated hierarchy, root first, in breadth-first order.
struct GeneratedHierarchy {
  std::vector<std::string> blocks;
  metadb::Oid root;
  size_t use_links = 0;
};

/// Number of blocks a spec will generate: (f^(d+1)-1)/(f-1).
size_t HierarchyBlockCount(const HierarchySpec& spec);

/// Creates one OID per block (via check-in, so templates apply) and a
/// use link from each parent to each child. The server must have a
/// blueprint whose `view` declares a use_link template if the links are
/// to propagate anything.
GeneratedHierarchy BuildHierarchy(engine::ProjectServer& server,
                                  const HierarchySpec& spec);

// --- Flow graphs ---------------------------------------------------------------

/// Shape of a generated linear design flow: view_0 -> view_1 -> ... ->
/// view_{n-1}, each derived from its predecessor.
struct FlowSpec {
  int n_views = 5;
  /// Links up to this index propagate `outofdate`; -1 = all of them.
  /// A small cutoff models the paper's "loosened" blueprint.
  int propagation_cutoff = -1;
  /// Each view gets this many scalar result properties.
  int properties_per_view = 2;
  /// Whether the default-view ckin rule posts outofdate down — the
  /// rule-level half of loosening (the cutoff is the link-level half).
  bool post_outofdate_on_ckin = true;
};

/// Names of the generated views ("view_0" ... "view_{n-1}").
std::vector<std::string> FlowViewNames(const FlowSpec& spec);

/// Emits blueprint text for the flow (with default-view uptodate rules
/// mirroring the EDTC example).
std::string MakeFlowBlueprint(const FlowSpec& spec, const std::string& name);

/// Creates one OID per view for `block` plus the chain of derive links.
/// Returns the OID of view_0 (the golden view).
metadb::Oid InstantiateFlow(engine::ProjectServer& server,
                            const FlowSpec& spec, const std::string& block);

// --- Design-session traces -----------------------------------------------------

/// Mix of a stochastic multi-designer editing session.
struct TraceSpec {
  size_t n_actions = 1000;
  uint64_t seed = 42;
  int n_designers = 4;
  double p_checkin = 0.55;   ///< Re-edit + check in a golden view.
  double p_sim_result = 0.35; ///< Post a result event on a random view.
  double p_lib_install = 0.10; ///< Install a library / source update.
  /// Seconds of simulated time between actions.
  int64_t think_time_seconds = 600;
};

/// What a generated session did (for reporting and invariants).
struct TraceStats {
  size_t checkins = 0;
  size_t result_events = 0;
  size_t installs = 0;
};

/// Runs a stochastic design session against flow instances previously
/// created with InstantiateFlow for each block in `blocks`.
TraceStats RunDesignSession(engine::ProjectServer& server,
                            const FlowSpec& flow,
                            const std::vector<std::string>& blocks,
                            const TraceSpec& trace);

}  // namespace damocles::workload
