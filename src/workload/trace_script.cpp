#include "workload/trace_script.hpp"

#include <charconv>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "events/wire.hpp"

namespace damocles::workload {

namespace {

constexpr std::string_view kAnnotation = "#@ ";

}  // namespace

std::string SaveTraceScript(const std::vector<events::EventMessage>& trace) {
  std::string text = "# damocles trace script, " +
                     std::to_string(trace.size()) + " event(s)\n";
  for (const events::EventMessage& event : trace) {
    text += std::string(kAnnotation) + "user=" + event.user +
            " t=" + std::to_string(event.timestamp) + "\n";
    text += events::FormatWireEvent(event) + "\n";
  }
  return text;
}

std::vector<events::EventMessage> LoadTraceScript(std::string_view text) {
  std::vector<events::EventMessage> trace;
  std::string pending_user;
  int64_t pending_timestamp = 0;

  size_t start = 0;
  while (start <= text.size()) {
    const size_t end = text.find('\n', start);
    const std::string_view raw = end == std::string_view::npos
                                     ? text.substr(start)
                                     : text.substr(start, end - start);
    start = end == std::string_view::npos ? text.size() + 1 : end + 1;

    const std::string_view line = Trim(raw);
    if (line.empty()) continue;

    if (StartsWith(line, kAnnotation)) {
      pending_user.clear();
      pending_timestamp = 0;
      for (const std::string& piece :
           SplitWhitespace(line.substr(kAnnotation.size()))) {
        if (StartsWith(piece, "user=")) {
          pending_user = piece.substr(5);
        } else if (StartsWith(piece, "t=")) {
          const std::string value = piece.substr(2);
          const auto [ptr, ec] = std::from_chars(
              value.data(), value.data() + value.size(), pending_timestamp);
          if (ec != std::errc{}) {
            throw WireFormatError("trace script: malformed timestamp '" +
                                  value + "'");
          }
        }
      }
      continue;
    }
    if (line.front() == '#') continue;  // Plain comment.

    events::EventMessage event = events::ParseWireEvent(line);
    event.user = pending_user;
    event.timestamp = pending_timestamp;
    trace.push_back(std::move(event));
    pending_user.clear();
    pending_timestamp = 0;
  }
  return trace;
}

size_t ReplayTrace(engine::ProjectServer& server,
                   const std::vector<events::EventMessage>& trace) {
  size_t submitted = 0;
  for (const events::EventMessage& event : trace) {
    if (event.timestamp > server.clock().NowSeconds()) {
      server.AdvanceClock(event.timestamp - server.clock().NowSeconds());
    }
    events::EventMessage copy = event;
    copy.timestamp = server.clock().NowSeconds();
    server.Submit(std::move(copy));
    ++submitted;
  }
  return submitted;
}

}  // namespace damocles::workload
