#include "workload/generators.hpp"

#include "common/error.hpp"
#include "metadb/link.hpp"

namespace damocles::workload {

using metadb::LinkKind;
using metadb::Oid;

// --- Hierarchies ---------------------------------------------------------------

size_t HierarchyBlockCount(const HierarchySpec& spec) {
  if (spec.fanout <= 0 || spec.depth < 0) return spec.depth >= 0 ? 1 : 0;
  if (spec.fanout == 1) return static_cast<size_t>(spec.depth) + 1;
  size_t count = 0;
  size_t level = 1;
  for (int d = 0; d <= spec.depth; ++d) {
    count += level;
    level *= static_cast<size_t>(spec.fanout);
  }
  return count;
}

GeneratedHierarchy BuildHierarchy(engine::ProjectServer& server,
                                  const HierarchySpec& spec) {
  if (spec.depth < 0 || spec.fanout < 1) {
    throw Error("BuildHierarchy: depth must be >= 0 and fanout >= 1");
  }
  GeneratedHierarchy result;

  // Breadth-first creation: parents exist before their children, so
  // use links can be registered as soon as a child is checked in.
  struct Pending {
    std::string block;
    int depth;
  };
  std::vector<Pending> frontier{{spec.root_block, 0}};
  result.root =
      server.CheckIn(spec.root_block, spec.view, "generated root", "workload");
  result.blocks.push_back(spec.root_block);

  size_t cursor = 0;
  while (cursor < frontier.size()) {
    const Pending current = frontier[cursor++];
    if (current.depth >= spec.depth) continue;
    const Oid parent{current.block, spec.view,
                     server.workspace().LatestVersion(current.block,
                                                      spec.view)};
    for (int child = 0; child < spec.fanout; ++child) {
      const std::string child_block =
          current.block + "_" + std::to_string(child);
      const Oid child_oid = server.CheckIn(child_block, spec.view,
                                           "generated block", "workload");
      server.RegisterLink(LinkKind::kUse, parent, child_oid);
      ++result.use_links;
      result.blocks.push_back(child_block);
      frontier.push_back({child_block, current.depth + 1});
    }
  }
  return result;
}

// --- Flow graphs ------------------------------------------------------------------

std::vector<std::string> FlowViewNames(const FlowSpec& spec) {
  std::vector<std::string> names;
  names.reserve(static_cast<size_t>(spec.n_views));
  for (int i = 0; i < spec.n_views; ++i) {
    names.push_back("view_" + std::to_string(i));
  }
  return names;
}

std::string MakeFlowBlueprint(const FlowSpec& spec, const std::string& name) {
  if (spec.n_views < 1) throw Error("MakeFlowBlueprint: need >= 1 view");
  const std::vector<std::string> views = FlowViewNames(spec);

  std::string text = "blueprint " + name + "\n";
  text += "view default\n";
  text += "  property uptodate default true\n";
  if (spec.post_outofdate_on_ckin) {
    text += "  when ckin do uptodate = true; post outofdate down done\n";
  } else {
    text += "  when ckin do uptodate = true done\n";
  }
  text += "  when outofdate do uptodate = false done\n";
  text += "endview\n";

  for (int i = 0; i < spec.n_views; ++i) {
    text += "view " + views[static_cast<size_t>(i)] + "\n";
    for (int p = 0; p < spec.properties_per_view; ++p) {
      text += "  property result_" + std::to_string(p) + " default bad\n";
      text += "  when res" + std::to_string(p) + " do result_" +
              std::to_string(p) + " = $arg done\n";
    }
    if (spec.properties_per_view > 0) {
      text += "  let state = ";
      for (int p = 0; p < spec.properties_per_view; ++p) {
        if (p != 0) text += " and ";
        text += "($result_" + std::to_string(p) + " == good)";
      }
      text += " and ($uptodate == true)\n";
    }
    if (i > 0) {
      const bool propagates = spec.propagation_cutoff < 0 ||
                              i <= spec.propagation_cutoff;
      text += "  link_from " + views[static_cast<size_t>(i - 1)] +
              " move propagates " + (propagates ? "outofdate" : "nothing") +
              " type derive_from\n";
    }
    // Hierarchy is supported in every view of the flow.
    text += "  use_link move propagates outofdate\n";
    text += "endview\n";
  }
  text += "endblueprint\n";
  return text;
}

Oid InstantiateFlow(engine::ProjectServer& server, const FlowSpec& spec,
                    const std::string& block) {
  const std::vector<std::string> views = FlowViewNames(spec);
  Oid previous;
  Oid golden;
  for (int i = 0; i < spec.n_views; ++i) {
    const Oid oid = server.CheckIn(block, views[static_cast<size_t>(i)],
                                   "seed data for " + block, "workload");
    if (i == 0) {
      golden = oid;
    } else {
      server.RegisterLink(LinkKind::kDerive, previous, oid);
    }
    previous = oid;
  }
  return golden;
}

// --- Traces ------------------------------------------------------------------------

TraceStats RunDesignSession(engine::ProjectServer& server,
                            const FlowSpec& flow,
                            const std::vector<std::string>& blocks,
                            const TraceSpec& trace) {
  if (blocks.empty()) throw Error("RunDesignSession: no blocks");
  Rng rng(trace.seed);
  const std::vector<std::string> views = FlowViewNames(flow);
  TraceStats stats;

  for (size_t action = 0; action < trace.n_actions; ++action) {
    server.AdvanceClock(trace.think_time_seconds);
    const std::string user =
        "designer_" + std::to_string(rng.UniformInt(0, trace.n_designers - 1));
    const std::string& block =
        blocks[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(blocks.size()) - 1))];

    const size_t kind = rng.WeightedIndex(
        {trace.p_checkin, trace.p_sim_result, trace.p_lib_install});
    switch (kind) {
      case 0: {
        // Re-edit the golden view; ckin invalidates downstream data.
        server.CheckIn(block, views.front(),
                       "edit #" + std::to_string(action), user);
        ++stats.checkins;
        break;
      }
      case 1: {
        // Post a result event on a random non-golden view.
        const size_t view_index = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(views.size()) - 1));
        const int version =
            server.workspace().LatestVersion(block, views[view_index]);
        if (version == 0) break;
        events::EventMessage event;
        event.name = "res" + std::to_string(rng.UniformInt(
                                 0, flow.properties_per_view > 0
                                        ? flow.properties_per_view - 1
                                        : 0));
        event.direction = events::Direction::kUp;
        event.target = Oid{block, views[view_index], version};
        event.arg = rng.Chance(0.8) ? "good" : "3 errors";
        event.user = user;
        server.Submit(std::move(event));
        ++stats.result_events;
        break;
      }
      default: {
        // A mid-flow view is regenerated (models a library update or a
        // tool re-run): checking it in re-validates it and invalidates
        // further-derived views.
        const size_t view_index = static_cast<size_t>(rng.UniformInt(
            1, std::max<int64_t>(1, static_cast<int64_t>(views.size()) - 1)));
        server.CheckIn(block, views[view_index],
                       "regenerated #" + std::to_string(action), user);
        ++stats.installs;
        break;
      }
    }
  }
  return stats;
}

}  // namespace damocles::workload
