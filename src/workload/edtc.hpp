// The EDTC example (paper §3.4): blueprint text and scenario driver.
//
// This is the paper's complete worked example, kept verbatim-equivalent
// in our syntax. Tests, examples and the Fig. 4/5 benches all run the
// same scenario through this module so they agree on every detail.
#pragma once

#include <string>
#include <vector>

#include "engine/project_server.hpp"
#include "tools/scheduler.hpp"
#include "tools/simulated_tools.hpp"

namespace damocles::workload {

/// The complete EDTC_example blueprint of paper §3.4.
std::string EdtcBlueprintText();

/// A "loosened" variant for the early design phase (paper §3.2: "early
/// in the design cycle ... the BluePrint can be 'loosened' thereby
/// limiting change propagation"): identical views, but derive links do
/// not propagate outofdate.
std::string EdtcLoosenedBlueprintText();

/// One step of the recorded scenario, for reporting.
struct ScenarioStep {
  std::string description;
  std::string detail;
};

/// Drives the full §3.4 designer scenario against `server`:
///  1. create <CPU.HDL_model.1>, simulate (bad result),
///  2. fix the model -> v2, simulate (good),
///  3. synthesize -> <CPU.schematic.1> + <REG.schematic.1> hierarchy,
///     netlist is created automatically by the exec rule,
///  4. modify the HDL model -> v3; ckin posts outofdate down, the
///     schematic hierarchy and netlist become out of date.
/// Returns the step log. The caller provides the server with the EDTC
/// blueprint already initialized and a scheduler with the netlister
/// script installed.
std::vector<ScenarioStep> RunEdtcScenario(engine::ProjectServer& server,
                                          tools::ToolScheduler& scheduler);

}  // namespace damocles::workload
