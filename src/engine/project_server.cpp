#include "engine/project_server.hpp"

#include <chrono>
#include <filesystem>
#include <thread>

#include "blueprint/parser.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "metadb/persistence.hpp"

namespace damocles::engine {
namespace {

/// steady_clock now, in milliseconds — the currency of the checkpoint
/// retry deadline atomic.
int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ProjectServer::ProjectServer(std::string project_name, ServerOptions options)
    : project_name_(std::move(project_name)),
      options_(options),
      workspace_(project_name_ + ".workspace"),
      checkpoint_backoff_(options_.wal_retry) {
  const bool durable = !options_.wal_dir.empty();
  metadb::RecoveryPlan plan;
  if (durable) {
    std::filesystem::create_directories(options_.wal_dir);
    if (options_.auto_recover) {
      plan = metadb::BuildRecoveryPlan(options_.wal_dir);
      const metadb::WalGcStats gc =
          metadb::PrepareWalDirectory(options_.wal_dir, plan);
      gc_artifacts_removed_.store(gc.artifacts_removed,
                                  std::memory_order_relaxed);
      failed_removals_.store(gc.failed_removals, std::memory_order_relaxed);
    }
    if (plan.have_checkpoint) {
      // Load the checkpoint before any engine exists: move-assigning
      // the database is only safe while its observer list is empty.
      // The plan's db text is the chain's full base; deltas layer the
      // dirty slots of each chained checkpoint on top, in order.
      db_ = metadb::LoadDatabaseString(plan.db_text);
      for (const std::string& delta : plan.db_deltas) {
        metadb::ApplyDatabaseDeltaString(delta, db_);
      }
      metadb::LoadWorkspaceText(plan.workspace_text, workspace_);
      clock_.Advance(plan.manifest.clock_seconds - clock_.NowSeconds());
      blueprint_text_ = plan.blueprint_text;
      committed_checkpoint_id_.store(plan.manifest.checkpoint_id,
                                     std::memory_order_relaxed);
      committed_checkpoint_delta_.store(plan.manifest.delta,
                                        std::memory_order_relaxed);
      committed_chain_base_.store(plan.chain_ids.front(),
                                  std::memory_order_relaxed);
      committed_chain_length_.store(plan.chain_ids.size(),
                                    std::memory_order_relaxed);
    }
    // Track dirty slots from here on: every mutation below (blueprint
    // retemplating, replayed ops, live traffic) lands in the delta of
    // the next chained checkpoint, whose base is exactly the state
    // loaded above.
    db_.EnableDirtyTracking();
  }

  if (options_.num_shards > 1) {
    ShardedEngineOptions sharded;
    sharded.num_shards = options_.num_shards;
    sharded.deterministic = options_.deterministic_shards;
    sharded.engine = options_.engine;
    sharded_ = std::make_unique<ShardedEngine>(db_, clock_, sharded);
  } else {
    engine_ = std::make_unique<RunTimeEngine>(db_, clock_, options_.engine);
  }
  // The observer hook: DAMOCLES watches the repository, designers never
  // talk to the tracking system directly.
  workspace_.AddObserver([this](const metadb::WorkspaceNotification& note) {
    if (note.action != metadb::WorkspaceAction::kCheckIn) return;
    if (sharded_ != nullptr) {
      sharded_->OnCreateObject(note.oid.block, note.oid.view, note.user);
    } else {
      engine_->OnCreateObject(note.oid.block, note.oid.view, note.user);
    }
    events::EventMessage event;
    event.name = "ckin";
    event.direction = options_.checkin_direction;
    event.target = note.oid;
    event.user = note.user;
    event.timestamp = note.timestamp;
    event.origin = events::EventOrigin::kExternal;
    PostToEngine(std::move(event));
  });

  if (plan.have_checkpoint) {
    // Restore the policy commit chain, then re-install the checkpointed
    // rules (suppressing op logging), then the pre-checkpoint journal
    // rows and the epoch bookkeeping — sinks are not attached yet, so
    // none of this re-enters the WAL. The restored store is
    // authoritative: the rule text is re-installed directly (no Adopt),
    // stamped with the recovered active version id. Pre-versioning
    // checkpoints carry no policy text; their blueprint goes through
    // InitializeBlueprint and is adopted as version 1.
    if (!plan.policy_text.empty()) {
      policy_store_.RestoreFromText(plan.policy_text);
    }
    if (!blueprint_text_.empty()) {
      replaying_ = true;
      if (policy_store_.active_id() != 0) {
        InstallBlueprintRules(blueprint_text_, policy_store_.active_id());
      } else {
        InitializeBlueprint(blueprint_text_);
      }
      replaying_ = false;
    }
    for (const metadb::RecoveredStream& stream : plan.streams) {
      events::EventJournal* journal = JournalForStream(stream.name);
      if (journal == nullptr) continue;
      for (const events::WalRestoredRow& row : stream.rows) {
        journal->Record(row.event);
      }
    }
    if (sharded_ != nullptr) {
      sharded_->RestoreEpochCeiling(
          plan.manifest.epoch_next,
          static_cast<size_t>(plan.manifest.epoch_waves));
    }
    recovered_checkpoint_ = true;
    recovered_checkpoint_id_ = plan.manifest.checkpoint_id;
    recovered_op_seq_ = plan.manifest.op_seq;
    restored_rows_ = plan.restored_rows;
  }

  if (durable) {
    manifests_skipped_ = plan.manifests_skipped;
    AttachWal();
    op_seq_ = plan.last_op_seq;
    replayed_ops_offset_ = plan.replay_ops_end;
    if (!plan.replay_ops.empty()) ReplayOps(plan.replay_ops);
    if (options_.background_checkpoints) {
      checkpoint_thread_ =
          std::thread([this] { CheckpointWorkerLoop(); });
    }
  }
}

ProjectServer::~ProjectServer() {
  StopCheckpointWorker();
  // Detach sinks before the writers die; the journals (inside the
  // engines) outlive the writers by declaration order.
  for (events::EventJournal* journal : sink_journals_) {
    journal->SetSink(nullptr);
  }
}

void ProjectServer::StopCheckpointWorker() {
  if (!checkpoint_thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(checkpoint_mutex_);
    checkpoint_shutdown_ = true;
    // A cut still pending is dropped: the process is exiting and the
    // WAL tail past the previous checkpoint covers the same state.
    checkpoint_cv_.notify_all();
  }
  checkpoint_thread_.join();
}

events::EventJournal* ProjectServer::JournalForStream(
    const std::string& name) {
  if (sharded_ == nullptr) {
    return &engine_->mutable_journal();
  }
  const auto parse_index = [&name](const char* prefix,
                                   size_t& out) -> bool {
    if (!StartsWith(name, prefix)) return false;
    const std::string digits = name.substr(std::string(prefix).size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      return false;
    }
    out = static_cast<size_t>(std::stoull(digits));
    return true;
  };
  size_t index = 0;
  if (parse_index("shard", index) && index < sharded_->num_shards()) {
    return &sharded_->shard(static_cast<uint32_t>(index)).mutable_journal();
  }
  if (parse_index("steal", index) &&
      index < sharded_->steal_journal_count()) {
    return &sharded_->steal_journal(index);
  }
  // Config drift (fewer shards / steal contexts than the checkpointing
  // process had): fold leftovers into shard 0 — the journal multiset
  // across all streams is what recovery preserves.
  return &sharded_->shard(0).mutable_journal();
}

void ProjectServer::AttachWal() {
  const auto make_writer = [this](const std::string& stream,
                                  uint32_t shard_id) {
    events::WalWriterOptions wal;
    wal.dir = options_.wal_dir;
    wal.stream = stream;
    wal.shard_id = shard_id;
    wal.segment_bytes = options_.wal_segment_bytes;
    wal.fsync = options_.wal_fsync;
    wal.observer = options_.wal_observer;
    if (sharded_ != nullptr) {
      wal.epoch_floor = [this] { return sharded_->stats().claim_purge_floor; };
    }
    return std::make_unique<events::WalWriter>(std::move(wal));
  };

  ops_writer_ = make_writer("ops", 0);

  const auto attach = [this](events::EventJournal& journal,
                             std::unique_ptr<events::WalWriter> writer) {
    journal.SetSink(writer.get());
    sink_journals_.push_back(&journal);
    row_writers_.push_back(std::move(writer));
  };
  if (sharded_ != nullptr) {
    for (uint32_t i = 0; i < sharded_->num_shards(); ++i) {
      attach(sharded_->shard(i).mutable_journal(),
             make_writer("shard" + std::to_string(i), i));
    }
    for (size_t i = 0; i < sharded_->steal_journal_count(); ++i) {
      attach(sharded_->steal_journal(i),
             make_writer("steal" + std::to_string(i), 0));
    }
  } else {
    attach(engine_->mutable_journal(), make_writer("shard0", 0));
  }
}

void ProjectServer::ApplyOp(const events::WalOpRecord& op) {
  switch (op.type) {
    case events::WalRecordType::kOpEvent:
      Submit(op.event);
      break;
    case events::WalRecordType::kOpCheckIn:
      CheckIn(op.block, op.view, op.content, op.user);
      break;
    case events::WalRecordType::kOpLink:
      RegisterLink(static_cast<metadb::LinkKind>(op.link_kind), op.link_from,
                   op.link_to);
      break;
    case events::WalRecordType::kOpBlueprint:
      InitializeBlueprint(op.text);
      break;
    case events::WalRecordType::kOpClock:
      // Clock ops carry absolute simulated time; never step backwards.
      if (op.clock_seconds > clock_.NowSeconds()) {
        clock_.Advance(op.clock_seconds - clock_.NowSeconds());
      }
      break;
    case events::WalRecordType::kOpPolicyPropose:
      // The id is re-derived from store state: replay re-executes every
      // propose in logged order, so the dense id sequence matches.
      PolicyPropose(op.text, op.user, op.content);
      break;
    case events::WalRecordType::kOpPolicyValidate:
      PolicyValidate(op.policy_version);
      break;
    case events::WalRecordType::kOpPolicyPromote:
      PolicyPromote(op.policy_version);
      break;
    case events::WalRecordType::kOpPolicyRollback:
      PolicyRollback();
      break;
    default:
      throw Error("ApplyOp: record type " +
                  std::to_string(static_cast<int>(op.type)) +
                  " is not an operation");
  }
}

void ProjectServer::ReplayOps(const std::vector<events::WalOpEntry>& ops) {
  replaying_ = true;
  for (const events::WalOpEntry& entry : ops) {
    try {
      ApplyOp(entry.op);
    } catch (const Error&) {
      // The op failed identically when it ran the first time, or the
      // environment it needed (an installed policy, say) is gone;
      // either way the surviving timeline continues without it.
    }
    ++replayed_ops_;
  }
  Drain();
  replaying_ = false;
  FlushWal();
}

void ProjectServer::FlushWal() {
  if (!durable()) return;
  // While degraded the writers are known-failing; buffered tails are
  // discarded by the WalReopen() heal, so re-driving them here would
  // only burn the retry budget on every drain.
  if (degraded_.load(std::memory_order_acquire)) return;
  const auto flush_all = [this] {
    switch (options_.wal_fsync) {
      case events::FsyncPolicy::kBatch:
        ops_writer_->Sync();
        for (auto& writer : row_writers_) writer->Sync();
        break;
      case events::FsyncPolicy::kEveryRecord:
        // Each append group already fsynced itself.
        ops_writer_->Flush();
        for (auto& writer : row_writers_) writer->Flush();
        break;
      case events::FsyncPolicy::kNone:
        // Best-effort tier: records stay in the writers' buffers until
        // a buffer fills, a checkpoint syncs, or the server shuts down
        // cleanly. Draining costs no syscalls; a kill -9 can lose the
        // buffered tail (recovery then resumes from the durable prefix
        // — the crash fuzz exercises exactly this).
        break;
    }
  };
  // Drains run after their mutations applied and were (or will be)
  // acked, so a flush failure must not throw back through the caller:
  // retry on the shared schedule, then degrade and keep serving reads.
  common::BackoffState backoff(options_.wal_retry);
  for (;;) {
    try {
      flush_all();
      break;
    } catch (const WalIoError& error) {
      wal_failures_.fetch_add(1, std::memory_order_relaxed);
      if (!backoff.ShouldRetry()) {
        TripDegraded(error.what());
        return;
      }
      wal_retries_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(backoff.NextDelay());
    }
  }
  // The fail-soft sinks run inside engine worker threads and cannot
  // throw; a row they dropped is only visible in the writer's failure
  // record. Surface it here so the next mutation is rejected instead of
  // acked against a mirror that would lose its row at the next
  // checkpoint.
  for (const auto& writer : row_writers_) {
    if (!writer->ok()) {
      wal_failures_.fetch_add(1, std::memory_order_relaxed);
      TripDegraded("row mirror '" + writer->stream() +
                   "' failed: " + writer->failure());
      return;
    }
  }
}

void ProjectServer::MaybeAutoCheckpoint() {
  if (!durable() || replaying_) return;
  if (degraded_.load(std::memory_order_acquire)) return;
  if (options_.checkpoint_every_ops == 0) return;
  if (ops_since_checkpoint_.load(std::memory_order_relaxed) <
      options_.checkpoint_every_ops) {
    return;
  }
  // Failed attempts re-arm on the shared backoff schedule instead of
  // re-attempting on every subsequent op (the checkpoint-failure
  // storm); a disk that stays broken costs one attempt per backoff
  // interval, not one per mutation.
  if (SteadyNowMs() < checkpoint_retry_at_ms_.load(std::memory_order_acquire)) {
    return;
  }
  try {
    if (options_.background_checkpoints && checkpoint_thread_.joinable()) {
      // Fire and forget: skip when the worker is already on a cut.
      {
        std::lock_guard<std::mutex> lock(checkpoint_mutex_);
        if (checkpoint_busy_ || checkpoint_shutdown_) return;
      }
      CheckpointCut cut = BuildCheckpointCut(options_.auto_checkpoint_mode);
      std::lock_guard<std::mutex> lock(checkpoint_mutex_);
      pending_cut_.emplace(std::move(cut));
      checkpoint_busy_ = true;
      ++checkpoint_ticket_;
      checkpoint_cv_.notify_all();
    } else {
      WalCheckpoint(options_.auto_checkpoint_mode);
    }
  } catch (const Error&) {
    // A failed checkpoint (disk full mid-write, torn manifest) leaves
    // the previous manifest chain valid — recovery falls back to it.
    // The triggering mutation already applied and logged, so swallow;
    // HandleCheckpointFailure already armed the backoff deadline.
  }
}

void ProjectServer::TripDegraded(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(degraded_reason_mutex_);
    if (degraded_reason_.empty()) degraded_reason_ = reason;
  }
  degraded_.store(true, std::memory_order_release);
}

void ProjectServer::RequireWritable() const {
  if (replaying_) return;
  if (!degraded_.load(std::memory_order_acquire)) return;
  std::string reason;
  {
    std::lock_guard<std::mutex> lock(degraded_reason_mutex_);
    reason = degraded_reason_;
  }
  throw DegradedError("server is read-only (" + reason +
                      "); heal with wal-reopen");
}

void ProjectServer::RetryFailedAppend(
    const std::function<void(uint64_t)>& append, uint64_t seq,
    std::string last_error, bool frame_buffered, bool pre_apply) {
  wal_failures_.fetch_add(1, std::memory_order_relaxed);
  common::BackoffState backoff(options_.wal_retry);
  while (backoff.ShouldRetry()) {
    wal_retries_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(backoff.NextDelay());
    const uint64_t mark = ops_writer_->frames_appended();
    try {
      if (frame_buffered) {
        // The record is already framed in the writer's buffer (the
        // flush behind it failed); re-drive the I/O. Re-appending would
        // write the op twice.
        if (options_.wal_fsync == events::FsyncPolicy::kEveryRecord) {
          ops_writer_->Sync();
        } else {
          ops_writer_->Flush();
        }
      } else {
        append(seq);
      }
      return;  // Transient fault: healed within the retry budget.
    } catch (const WalIoError& error) {
      wal_failures_.fetch_add(1, std::memory_order_relaxed);
      last_error = error.what();
      frame_buffered =
          frame_buffered || ops_writer_->frames_appended() != mark;
    }
  }
  TripDegraded(last_error);
  if (pre_apply) {
    // The mutation has not executed; rejecting it is truthful. (Its
    // frame may still have reached disk — such a "ghost" op carries
    // op_seq <= the heal checkpoint's and is never replayed.)
    throw DegradedError("mutation rejected, WAL unavailable (" + last_error +
                        "); heal with wal-reopen");
  }
  // Post-apply ops: the mutation is live in memory and the client gets
  // its ack; the WalReopen() heal checkpoint makes it durable again.
}

ServerHealth ProjectServer::GetHealth() const {
  ServerHealth health;
  health.durable = durable();
  health.degraded = degraded_.load(std::memory_order_acquire);
  {
    std::lock_guard<std::mutex> lock(degraded_reason_mutex_);
    health.reason = degraded_reason_;
  }
  health.wal_failures = wal_failures_.load(std::memory_order_relaxed);
  health.wal_retries = wal_retries_.load(std::memory_order_relaxed);
  health.checkpoint_failures =
      checkpoint_failures_.load(std::memory_order_relaxed);
  health.checkpoint_retries =
      checkpoint_retries_.load(std::memory_order_relaxed);
  health.heals = heals_.load(std::memory_order_relaxed);
  health.failed_removals = failed_removals_.load(std::memory_order_relaxed);
  health.prune_behind = health.failed_removals > 0;
  return health;
}

uint64_t ProjectServer::WalReopen() {
  if (!durable()) {
    throw Error("wal-reopen: durability is off (no wal_dir configured)");
  }
  // Quiesce the engine without touching the wedged writers (FlushWal
  // no-ops while degraded; the sinks are fail-soft).
  if (sharded_ != nullptr) {
    sharded_->Drain();
  } else {
    engine_->ProcessAll();
  }
  // Discard the writers and their buffered tails. Anything buffered but
  // not durable is unrecoverable through a failing fd anyway; the
  // checkpoint below re-captures it from memory.
  for (events::EventJournal* journal : sink_journals_) {
    journal->SetSink(nullptr);
  }
  sink_journals_.clear();
  row_writers_.clear();
  ops_writer_.reset();
  // Re-verify the tail: drop any torn suffix a partial flush left, so
  // the reopened writers continue from a CRC-valid prefix.
  for (const std::string& stream : events::ListWalStreams(options_.wal_dir)) {
    const events::WalStreamData data =
        events::ReadWalStream(options_.wal_dir, stream);
    events::TruncateWalStream(options_.wal_dir, stream, data.valid_end);
  }
  try {
    AttachWal();
    // The fail-soft sinks may have dropped rows while the WAL was
    // failing, so the truncated mirrors can be short of the in-memory
    // journals. Re-mirror each journal in full (reset + every row);
    // the checkpoint below then records stream offsets that cover it.
    for (size_t i = 0; i < sink_journals_.size(); ++i) {
      row_writers_[i]->MirrorJournal(*sink_journals_[i]);
    }
    // Re-baseline durability at the live state. This closes the fsync
    // ambiguity window: ghost ops (durable but rejected) sit below the
    // new manifest's op_seq and are never replayed; applied ops whose
    // frames were lost are inside the checkpointed state.
    degraded_.store(false, std::memory_order_release);
    const uint64_t id = WalCheckpoint();
    {
      std::lock_guard<std::mutex> lock(degraded_reason_mutex_);
      degraded_reason_.clear();
    }
    heals_.fetch_add(1, std::memory_order_relaxed);
    return id;
  } catch (const Error& error) {
    // Still failing: back to degraded, writers in whatever state the
    // failure left them (a later wal-reopen starts over cleanly).
    TripDegraded(error.what());
    throw;
  }
}

uint64_t ProjectServer::WalCheckpoint(CheckpointMode mode) {
  if (!durable()) {
    throw Error("wal-checkpoint: durability is off (no wal_dir configured)");
  }
  const bool background =
      options_.background_checkpoints && checkpoint_thread_.joinable();
  if (background) {
    // One cut pending or in flight at a time; synchronous callers queue
    // behind whatever the worker is writing.
    std::unique_lock<std::mutex> lock(checkpoint_mutex_);
    checkpoint_cv_.wait(lock, [this] { return !checkpoint_busy_; });
  }
  CheckpointCut cut;
  try {
    cut = BuildCheckpointCut(mode);
  } catch (const Error&) {
    // The cut never froze (a drain/sync failure): no dirty marks were
    // consumed, but arm the retry deadline so auto-attempts don't storm.
    HandleCheckpointFailure(CheckpointCut{});
    throw;
  }
  return background ? CheckpointThroughWorker(std::move(cut))
                    : CheckpointInline(std::move(cut));
}

ProjectServer::CheckpointCut ProjectServer::BuildCheckpointCut(
    CheckpointMode mode) {
  {
    // Failed cuts parked their dirty sets; restamp them before cutting
    // so the next delta re-covers those slots. Apply thread only — the
    // tracker's stamp arrays may grow under structural appends, which
    // only this thread performs.
    std::lock_guard<std::mutex> lock(checkpoint_mutex_);
    MergeBackFailedDirtyLocked();
  }
  Drain();
  // Self-heal stale mirrors before freezing offsets: a fail-soft sink
  // that dropped rows leaves its stream short of the in-memory journal,
  // and a checkpoint taken over the short mirror would lose those rows
  // forever on recovery. Re-mirroring throws if the stream still fails,
  // which fails the checkpoint — the previous manifest stays in charge.
  for (size_t i = 0; i < row_writers_.size(); ++i) {
    if (!row_writers_[i]->ok()) {
      row_writers_[i]->MirrorJournal(*sink_journals_[i]);
    }
  }
  ops_writer_->Sync();
  for (auto& writer : row_writers_) writer->Sync();

  CheckpointCut cut;
  const uint64_t base =
      committed_checkpoint_id_.load(std::memory_order_relaxed);
  cut.delta = mode == CheckpointMode::kDelta && base != 0 &&
              db_.dirty_tracking_enabled() &&
              committed_chain_length_.load(std::memory_order_relaxed) <
                  options_.checkpoint_chain_limit;
  cut.base_id = cut.delta ? base : 0;
  cut.op_seq = op_seq_;
  cut.ops_offset = ops_writer_->logical_end();
  cut.clock_seconds = clock_.NowSeconds();
  if (sharded_ != nullptr) {
    cut.epoch_next = sharded_->epoch_ceiling();
    cut.epoch_waves = sharded_->stats().wave_epochs;
  }
  cut.blueprint_text = blueprint_text_;
  cut.workspace_text = metadb::SaveWorkspaceText(workspace_);
  // Only serialized once versions exist, so pre-versioning WAL
  // directories keep producing byte-identical manifests.
  if (policy_store_.size() > 0) {
    cut.policy_text = policy_store_.SerializeText();
  }
  for (const auto& writer : row_writers_) {
    cut.streams.emplace_back(writer->stream(), writer->logical_end());
  }
  // Retention floors: everything below the checkpointed ops offset is
  // covered by the chain; row-stream rows below the writer's last
  // journal reset are invisible to recovery (0 = no reset yet, keep
  // the stream whole).
  cut.prune_floors.emplace_back("ops", cut.ops_offset);
  for (const auto& writer : row_writers_) {
    cut.prune_floors.emplace_back(writer->stream(), writer->last_reset_end());
  }
  // The dirty cut and the snapshot pin come last, after everything that
  // can throw: a failed build must never consume marks.
  if (db_.dirty_tracking_enabled()) cut.dirty = db_.CutDirtySet();
  // Background writes serialize off-thread from a pinned immutable
  // version; inline writes serialize right here and can use the live
  // database without paying the publish copy.
  cut.snap = options_.background_checkpoints ? db_.PublishSnapshot()
                                             : metadb::Snapshot::Live(db_);
  return cut;
}

uint64_t ProjectServer::RunCheckpointWrite(const CheckpointCut& cut) {
  metadb::CheckpointRequest request;
  request.delta = cut.delta;
  request.base_id = cut.base_id;
  request.op_seq = cut.op_seq;
  request.ops_offset = cut.ops_offset;
  request.clock_seconds = cut.clock_seconds;
  request.epoch_next = cut.epoch_next;
  request.epoch_waves = cut.epoch_waves;
  request.num_shards = options_.num_shards;
  request.db_text =
      cut.delta ? metadb::SaveDatabaseDeltaString(cut.snap.db(), cut.dirty)
                : metadb::SaveDatabaseString(cut.snap.db());
  request.blueprint_text = cut.blueprint_text;
  request.workspace_text = cut.workspace_text;
  request.policy_text = cut.policy_text;
  request.streams = cut.streams;
  request.observer = options_.wal_observer;
  return metadb::WriteWalCheckpoint(options_.wal_dir, request);
}

void ProjectServer::CommitCheckpoint(const CheckpointCut& cut, uint64_t id) {
  committed_checkpoint_id_.store(id, std::memory_order_relaxed);
  committed_checkpoint_delta_.store(cut.delta, std::memory_order_relaxed);
  if (cut.delta) {
    committed_chain_length_.fetch_add(1, std::memory_order_relaxed);
  } else {
    committed_chain_base_.store(id, std::memory_order_relaxed);
    committed_chain_length_.store(1, std::memory_order_relaxed);
  }
  ops_since_checkpoint_.store(0, std::memory_order_relaxed);
  checkpoints_taken_.fetch_add(1, std::memory_order_relaxed);
  checkpoint_retry_at_ms_.store(0, std::memory_order_release);
  std::lock_guard<std::mutex> lock(checkpoint_mutex_);
  checkpoint_backoff_.Reset();
}

void ProjectServer::PruneAfterCommit(const CheckpointCut& cut) {
  if (options_.wal_retain_segments < 0) return;
  for (const auto& [stream, floor] : cut.prune_floors) {
    if (floor == 0) continue;
    try {
      const events::WalPruneStats stats = events::PruneWalSegments(
          options_.wal_dir, stream, floor, options_.wal_retain_segments);
      segments_pruned_.fetch_add(stats.segments_removed,
                                 std::memory_order_relaxed);
      bytes_pruned_.fetch_add(stats.bytes_removed, std::memory_order_relaxed);
      failed_removals_.fetch_add(stats.failed_removals,
                                 std::memory_order_relaxed);
    } catch (const Error&) {
      // A prune interrupted mid-loop leaves removed-prefix + intact
      // suffix; recovery's orphaned-prefix sweep finishes the job.
      // Count it and move on — the checkpoint already committed.
      failed_removals_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  const uint64_t keep_from =
      committed_chain_base_.load(std::memory_order_relaxed);
  if (keep_from > 0) {
    const metadb::WalGcStats gc =
        metadb::PruneWalCheckpoints(options_.wal_dir, keep_from);
    checkpoints_pruned_.fetch_add(gc.artifacts_removed,
                                  std::memory_order_relaxed);
    failed_removals_.fetch_add(gc.failed_removals, std::memory_order_relaxed);
  }
}

uint64_t ProjectServer::CheckpointInline(CheckpointCut&& cut) {
  try {
    const uint64_t id = RunCheckpointWrite(cut);
    CommitCheckpoint(cut, id);
    PruneAfterCommit(cut);
    return id;
  } catch (const Error&) {
    HandleCheckpointFailure(std::move(cut));
    throw;
  }
}

uint64_t ProjectServer::CheckpointThroughWorker(CheckpointCut&& cut) {
  std::unique_lock<std::mutex> lock(checkpoint_mutex_);
  if (checkpoint_shutdown_) {
    throw Error("wal-checkpoint: checkpoint worker is shut down");
  }
  pending_cut_.emplace(std::move(cut));
  checkpoint_busy_ = true;
  const uint64_t ticket = ++checkpoint_ticket_;
  checkpoint_cv_.notify_all();
  checkpoint_cv_.wait(lock,
                      [this, ticket] { return checkpoint_done_ >= ticket; });
  // Single producer: our ticket completed last, so the slots are ours.
  if (last_worker_error_ != nullptr) {
    std::rethrow_exception(last_worker_error_);
  }
  return last_worker_id_;
}

void ProjectServer::CheckpointWorkerLoop() {
  std::unique_lock<std::mutex> lock(checkpoint_mutex_);
  for (;;) {
    checkpoint_cv_.wait(lock, [this] {
      return checkpoint_shutdown_ || pending_cut_.has_value();
    });
    if (checkpoint_shutdown_) return;
    CheckpointCut cut = std::move(*pending_cut_);
    pending_cut_.reset();
    lock.unlock();
    uint64_t id = 0;
    std::exception_ptr error;
    try {
      id = RunCheckpointWrite(cut);
      CommitCheckpoint(cut, id);
      PruneAfterCommit(cut);
    } catch (...) {
      error = std::current_exception();
    }
    if (error != nullptr) HandleCheckpointFailure(std::move(cut));
    lock.lock();
    ++checkpoint_done_;
    last_worker_id_ = id;
    last_worker_error_ = error;
    checkpoint_busy_ = false;
    checkpoint_cv_.notify_all();
  }
}

void ProjectServer::HandleCheckpointFailure(CheckpointCut&& cut) {
  checkpoint_failures_.fetch_add(1, std::memory_order_relaxed);
  checkpoint_retries_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(checkpoint_mutex_);
  if (!cut.dirty.empty()) failed_dirty_.push_back(std::move(cut.dirty));
  // Walk the shared schedule; once exhausted, keep re-arming at the cap
  // instead of giving up — the next success resets the walk.
  std::chrono::milliseconds delay = options_.wal_retry.max;
  if (checkpoint_backoff_.ShouldRetry()) {
    delay = checkpoint_backoff_.NextDelay();
  }
  checkpoint_retry_at_ms_.store(SteadyNowMs() + delay.count(),
                                std::memory_order_release);
}

void ProjectServer::MergeBackFailedDirtyLocked() {
  for (const metadb::DirtySet& dirty : failed_dirty_) {
    db_.MergeBackDirtySet(dirty);
  }
  failed_dirty_.clear();
}

WalStatus ProjectServer::GetWalStatus() const {
  WalStatus status;
  status.enabled = durable();
  status.dir = options_.wal_dir;
  status.fsync = options_.wal_fsync;
  status.recovered = recovered_checkpoint_;
  status.checkpoint_id = recovered_checkpoint_id_;
  status.recovered_op_seq = recovered_op_seq_;
  status.replayed_ops = replayed_ops_;
  status.replayed_ops_offset = replayed_ops_offset_;
  status.restored_rows = restored_rows_;
  status.manifests_skipped = manifests_skipped_;
  status.ops_logged = op_seq_;
  status.ops_end_offset =
      ops_writer_ != nullptr ? ops_writer_->logical_end() : 0;
  status.checkpoints_taken =
      checkpoints_taken_.load(std::memory_order_relaxed);
  status.last_checkpoint_id =
      committed_checkpoint_id_.load(std::memory_order_relaxed);
  status.last_checkpoint_delta =
      committed_checkpoint_delta_.load(std::memory_order_relaxed);
  status.chain_base_id = committed_chain_base_.load(std::memory_order_relaxed);
  status.chain_length = static_cast<size_t>(
      committed_chain_length_.load(std::memory_order_relaxed));
  status.background = options_.background_checkpoints;
  status.retain_segments = options_.wal_retain_segments;
  status.segments_pruned = segments_pruned_.load(std::memory_order_relaxed);
  status.bytes_pruned = bytes_pruned_.load(std::memory_order_relaxed);
  status.checkpoints_pruned =
      checkpoints_pruned_.load(std::memory_order_relaxed);
  status.gc_artifacts_removed =
      gc_artifacts_removed_.load(std::memory_order_relaxed);
  status.failed_removals = failed_removals_.load(std::memory_order_relaxed);
  return status;
}

size_t ProjectServer::RecoverFrom(const std::string& dir) {
  if (durable() && dir == options_.wal_dir) {
    throw Error("recover: refusing to replay this server's own WAL "
                "directory into itself");
  }
  const events::WalStreamData ops = events::ReadWalStream(dir, "ops");
  size_t applied = 0;
  for (const events::WalOpEntry& entry : ops.ops) {
    try {
      ApplyOp(entry.op);
      ++applied;
    } catch (const Error&) {
      // Ops that failed in the original timeline re-fail here.
    }
  }
  Drain();
  return applied;
}

void ProjectServer::PostToEngine(events::EventMessage event) {
  if (sharded_ != nullptr) {
    sharded_->PostEvent(std::move(event));
  } else {
    engine_->PostEvent(std::move(event));
  }
}

void ProjectServer::InstallBlueprintRules(std::string_view rule_file_text,
                                          uint64_t version_id) {
  blueprint::Blueprint parsed = blueprint::ParseBlueprint(rule_file_text);
  if (sharded_ != nullptr) {
    sharded_->LoadBlueprint(parsed, version_id);
  } else {
    engine_->LoadBlueprint(std::move(parsed), version_id);
  }
  // Retemplating only mutates the shared meta-database (observers keep
  // every shard index in step), so shard 0's engine covers both modes.
  if (options_.retemplate_on_init) engine().RetemplateLinks();
  blueprint_text_ = std::string(rule_file_text);
}

void ProjectServer::InitializeBlueprint(std::string_view rule_file_text) {
  RequireWritable();
  EnforcePolicy(policy::Operation::kReinitBlueprint, "", "", "");
  // Adopt parses first and throws ParseError before any state moves.
  const uint64_t version_id = policy_store_.Adopt(
      std::string(rule_file_text), "", "initializeBlueprint");
  InstallBlueprintRules(rule_file_text, version_id);
  if (logging()) {
    LogOp(/*pre_apply=*/false, [this](uint64_t seq) {
      ops_writer_->AppendBlueprintOp(seq, blueprint_text_);
    });
  }
  MaybeAutoCheckpoint();
}

uint64_t ProjectServer::PolicyPropose(std::string_view blueprint_text,
                                      std::string_view author,
                                      std::string_view message) {
  RequireWritable();
  EnforcePolicy(policy::Operation::kReinitBlueprint, author, "", "");
  const uint64_t id =
      policy_store_.Propose(std::string(blueprint_text), std::string(author),
                            std::string(message));
  if (logging()) {
    LogOp(/*pre_apply=*/false, [&](uint64_t seq) {
      ops_writer_->AppendPolicyProposeOp(seq, blueprint_text, author, message);
    });
  }
  MaybeAutoCheckpoint();
  return id;
}

blueprint::ValidationReport ProjectServer::PolicyValidate(uint64_t id) {
  RequireWritable();
  blueprint::ValidationReport report = policy_store_.Validate(id);
  if (logging()) {
    LogOp(/*pre_apply=*/false, [&](uint64_t seq) {
      ops_writer_->AppendPolicyVersionOp(
          events::WalRecordType::kOpPolicyValidate, seq, id);
    });
  }
  MaybeAutoCheckpoint();
  return report;
}

policy::PolicyVersion ProjectServer::PolicyPromote(uint64_t id) {
  RequireWritable();
  EnforcePolicy(policy::Operation::kReinitBlueprint, "", "", "");
  const policy::PolicyVersion version = policy_store_.Promote(id);
  // The text parsed at propose time, so the install cannot throw and
  // the store transition above stays consistent with the live rules.
  InstallBlueprintRules(version.blueprint_text, version.id);
  if (logging()) {
    LogOp(/*pre_apply=*/false, [&](uint64_t seq) {
      ops_writer_->AppendPolicyVersionOp(
          events::WalRecordType::kOpPolicyPromote, seq, id);
    });
  }
  MaybeAutoCheckpoint();
  return version;
}

policy::PolicyVersion ProjectServer::PolicyRollback() {
  RequireWritable();
  EnforcePolicy(policy::Operation::kReinitBlueprint, "", "", "");
  const policy::PolicyVersion version = policy_store_.Rollback();
  InstallBlueprintRules(version.blueprint_text, version.id);
  if (logging()) {
    LogOp(/*pre_apply=*/false, [this](uint64_t seq) {
      ops_writer_->AppendPolicyRollbackOp(seq);
    });
  }
  MaybeAutoCheckpoint();
  return version;
}

void ProjectServer::SetProjectPhase(std::string phase) {
  phase_ = std::move(phase);
  if (policy_ != nullptr) policy_->SetPhase(phase_);
}

void ProjectServer::EnforcePolicy(policy::Operation operation,
                                  std::string_view user,
                                  std::string_view view,
                                  std::string_view block) const {
  if (policy_ == nullptr) return;
  policy::PolicyRequest request;
  request.operation = operation;
  request.user = std::string(user);
  request.view = std::string(view);
  request.block = std::string(block);
  const policy::PolicyDecision decision = policy_->Evaluate(request);
  if (!decision.allowed) {
    throw PermissionError("project policy: " + decision.reason);
  }
}

metadb::Oid ProjectServer::CheckIn(std::string_view block,
                                   std::string_view view,
                                   std::string_view content,
                                   std::string_view user) {
  RequireWritable();
  EnforcePolicy(policy::Operation::kCheckIn, user, view, block);
  const metadb::Oid oid =
      workspace_.CheckIn(block, view, content, user, clock_.NowSeconds());
  if (logging()) {
    LogOp(/*pre_apply=*/false, [&](uint64_t seq) {
      ops_writer_->AppendCheckInOp(seq, block, view, content, user);
    });
  }
  if (options_.auto_drain) Drain();
  MaybeAutoCheckpoint();
  return oid;
}

metadb::Oid ProjectServer::CheckOut(std::string_view block,
                                    std::string_view view,
                                    std::string_view user) {
  EnforcePolicy(policy::Operation::kCheckOut, user, view, block);
  return workspace_.CheckOut(block, view, user, clock_.NowSeconds());
}

metadb::LinkId ProjectServer::RegisterLink(metadb::LinkKind kind,
                                           const metadb::Oid& from,
                                           const metadb::Oid& to) {
  RequireWritable();
  EnforcePolicy(policy::Operation::kRegisterLink, "", to.view, to.block);
  const auto from_id = db_.FindObject(from);
  const auto to_id = db_.FindObject(to);
  if (!from_id.has_value() || !to_id.has_value()) {
    throw NotFoundError("RegisterLink: unknown endpoint " +
                        FormatOid(!from_id.has_value() ? from : to));
  }
  const metadb::LinkId link =
      sharded_ != nullptr ? sharded_->OnCreateLink(kind, *from_id, *to_id)
                          : engine_->OnCreateLink(kind, *from_id, *to_id);
  if (logging()) {
    LogOp(/*pre_apply=*/false, [&](uint64_t seq) {
      ops_writer_->AppendLinkOp(seq, static_cast<uint8_t>(kind), from, to);
    });
  }
  MaybeAutoCheckpoint();
  return link;
}

void ProjectServer::SubmitWireLine(std::string_view line,
                                   std::string_view user) {
  events::EventMessage event = events::ParseWireEvent(line);
  event.user = std::string(user);
  Submit(std::move(event));
}

void ProjectServer::Submit(events::EventMessage event) {
  RequireWritable();
  // Policies gate designer-originated traffic; events the engine's own
  // rules post internally are not re-checked.
  EnforcePolicy(policy::Operation::kPostEvent, event.user, event.name,
                event.target.block);
  // Logged before the move hands the fields to the engine; intake is a
  // queue push that cannot fail once the policy gate passed, and replay
  // tolerates ops that re-fail. pre_apply: nothing executed yet, so an
  // exhausted retry budget rejects the event outright.
  if (logging()) {
    LogOp(/*pre_apply=*/true,
          [&](uint64_t seq) { ops_writer_->AppendEventOp(seq, event); });
  }
  PostToEngine(std::move(event));
  if (options_.auto_drain) Drain();
  MaybeAutoCheckpoint();
}

size_t ProjectServer::Drain() {
  const size_t processed =
      sharded_ != nullptr ? sharded_->Drain() : engine_->ProcessAll();
  FlushWal();
  return processed;
}

void ProjectServer::AdvanceClock(int64_t seconds) {
  RequireWritable();
  clock_.Advance(seconds);
  if (logging()) {
    LogOp(/*pre_apply=*/false, [this](uint64_t seq) {
      ops_writer_->AppendClockOp(seq, clock_.NowSeconds());
    });
  }
  MaybeAutoCheckpoint();
}

}  // namespace damocles::engine
