#include "engine/project_server.hpp"

#include "blueprint/parser.hpp"
#include "common/error.hpp"

namespace damocles::engine {

ProjectServer::ProjectServer(std::string project_name, ServerOptions options)
    : project_name_(std::move(project_name)),
      options_(options),
      workspace_(project_name_ + ".workspace") {
  if (options_.num_shards > 1) {
    ShardedEngineOptions sharded;
    sharded.num_shards = options_.num_shards;
    sharded.deterministic = options_.deterministic_shards;
    sharded.engine = options_.engine;
    sharded_ = std::make_unique<ShardedEngine>(db_, clock_, sharded);
  } else {
    engine_ = std::make_unique<RunTimeEngine>(db_, clock_, options_.engine);
  }
  // The observer hook: DAMOCLES watches the repository, designers never
  // talk to the tracking system directly.
  workspace_.AddObserver([this](const metadb::WorkspaceNotification& note) {
    if (note.action != metadb::WorkspaceAction::kCheckIn) return;
    if (sharded_ != nullptr) {
      sharded_->OnCreateObject(note.oid.block, note.oid.view, note.user);
    } else {
      engine_->OnCreateObject(note.oid.block, note.oid.view, note.user);
    }
    events::EventMessage event;
    event.name = "ckin";
    event.direction = options_.checkin_direction;
    event.target = note.oid;
    event.user = note.user;
    event.timestamp = note.timestamp;
    event.origin = events::EventOrigin::kExternal;
    PostToEngine(std::move(event));
  });
}

ProjectServer::~ProjectServer() = default;

void ProjectServer::PostToEngine(events::EventMessage event) {
  if (sharded_ != nullptr) {
    sharded_->PostEvent(std::move(event));
  } else {
    engine_->PostEvent(std::move(event));
  }
}

void ProjectServer::InitializeBlueprint(std::string_view rule_file_text) {
  EnforcePolicy(policy::Operation::kReinitBlueprint, "", "", "");
  blueprint::Blueprint parsed = blueprint::ParseBlueprint(rule_file_text);
  if (sharded_ != nullptr) {
    sharded_->LoadBlueprint(parsed);
  } else {
    engine_->LoadBlueprint(std::move(parsed));
  }
  // Retemplating only mutates the shared meta-database (observers keep
  // every shard index in step), so shard 0's engine covers both modes.
  if (options_.retemplate_on_init) engine().RetemplateLinks();
}

void ProjectServer::SetProjectPhase(std::string phase) {
  phase_ = std::move(phase);
  if (policy_ != nullptr) policy_->SetPhase(phase_);
}

void ProjectServer::EnforcePolicy(policy::Operation operation,
                                  std::string_view user,
                                  std::string_view view,
                                  std::string_view block) const {
  if (policy_ == nullptr) return;
  policy::PolicyRequest request;
  request.operation = operation;
  request.user = std::string(user);
  request.view = std::string(view);
  request.block = std::string(block);
  const policy::PolicyDecision decision = policy_->Evaluate(request);
  if (!decision.allowed) {
    throw PermissionError("project policy: " + decision.reason);
  }
}

metadb::Oid ProjectServer::CheckIn(std::string_view block,
                                   std::string_view view,
                                   std::string_view content,
                                   std::string_view user) {
  EnforcePolicy(policy::Operation::kCheckIn, user, view, block);
  const metadb::Oid oid =
      workspace_.CheckIn(block, view, content, user, clock_.NowSeconds());
  if (options_.auto_drain) Drain();
  return oid;
}

metadb::Oid ProjectServer::CheckOut(std::string_view block,
                                    std::string_view view,
                                    std::string_view user) {
  EnforcePolicy(policy::Operation::kCheckOut, user, view, block);
  return workspace_.CheckOut(block, view, user, clock_.NowSeconds());
}

metadb::LinkId ProjectServer::RegisterLink(metadb::LinkKind kind,
                                           const metadb::Oid& from,
                                           const metadb::Oid& to) {
  EnforcePolicy(policy::Operation::kRegisterLink, "", to.view, to.block);
  const auto from_id = db_.FindObject(from);
  const auto to_id = db_.FindObject(to);
  if (!from_id.has_value() || !to_id.has_value()) {
    throw NotFoundError("RegisterLink: unknown endpoint " +
                        FormatOid(!from_id.has_value() ? from : to));
  }
  if (sharded_ != nullptr) return sharded_->OnCreateLink(kind, *from_id, *to_id);
  return engine_->OnCreateLink(kind, *from_id, *to_id);
}

void ProjectServer::SubmitWireLine(std::string_view line,
                                   std::string_view user) {
  events::EventMessage event = events::ParseWireEvent(line);
  event.user = std::string(user);
  Submit(std::move(event));
}

void ProjectServer::Submit(events::EventMessage event) {
  // Policies gate designer-originated traffic; events the engine's own
  // rules post internally are not re-checked.
  EnforcePolicy(policy::Operation::kPostEvent, event.user, event.name,
                event.target.block);
  PostToEngine(std::move(event));
  if (options_.auto_drain) Drain();
}

size_t ProjectServer::Drain() {
  if (sharded_ != nullptr) return sharded_->Drain();
  return engine_->ProcessAll();
}

}  // namespace damocles::engine
