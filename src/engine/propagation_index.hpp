// The propagation index: the run-time engine's fast path for wave
// expansion.
//
// Phase 5 of event processing asks, for every OID a wave reaches, "which
// neighbours receive this event?" — a question the naive implementation
// answers by scanning the OID's full adjacency list and, per link,
// scanning the PROPAGATE string list. On hub-heavy meta-data (a netlist
// deriving dozens of views, few of which propagate any given event) that
// is O(degree × |PROPAGATE|) string work per delivery.
//
// This index precomputes the answer per (source OID, direction, event):
// each bucket holds exactly the links that qualify, in the same order an
// adjacency scan would visit them, so the indexed engine delivers in the
// identical order as the scanning engine. It is built in one pass at
// blueprint-install time and maintained incrementally through
// MetaDatabase link-observer notifications (add / remove / endpoint move
// / PROPAGATE change).
//
// Buckets are keyed by one packed 64-bit integer combining the source
// OID, the direction and the event's interned SymbolId, so a receiver
// lookup on the hot path is a single integer-hash probe with zero
// string hashing. Event names are interned through a SymbolTable —
// normally the engine's (shared so rule tables and the index agree on
// ids), or a private one when the index is used standalone. A
// string_view Receivers overload remains as a thin shim for tests and
// tools; it pays one string hash to resolve the SymbolId.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/symbol.hpp"
#include "events/event.hpp"
#include "metadb/ids.hpp"
#include "metadb/snapshot.hpp"
#include "metadb/link.hpp"

namespace damocles::metadb {
class MetaDatabase;
}  // namespace damocles::metadb

namespace damocles::engine {

/// Per-(source, direction, event) receiver index over the link graph.
class PropagationIndex {
 public:
  /// Standalone index with a private symbol table.
  PropagationIndex();

  /// Index sharing the caller's symbol table (the engine passes its
  /// own, so SymbolIds agree across the index and the rule tables).
  /// `symbols` must outlive the index.
  explicit PropagationIndex(SymbolTable& symbols);

  /// One qualifying link, as seen from the indexed source OID.
  struct Entry {
    metadb::LinkId link;
    metadb::OidId neighbor;

    friend bool operator==(const Entry& a, const Entry& b) noexcept {
      return a.link == b.link && a.neighbor == b.neighbor;
    }
  };
  using Bucket = std::vector<Entry>;

  /// Drops every bucket (interned symbols are kept — SymbolIds stay
  /// stable for the life of the table) and re-indexes every live link
  /// of `db`, walking each object's adjacency lists so bucket order
  /// matches scan order even after endpoint moves reordered adjacency.
  /// O(links × |PROPAGATE|); called at blueprint install.
  void Rebuild(const metadb::MetaDatabase& db);

  void Clear();

  /// The receivers of the event interned as `event` leaving `source` in
  /// `direction`, or nullptr when no link qualifies: one integer-hash
  /// lookup. The bucket order matches the order a full adjacency scan
  /// would produce.
  const Bucket* Receivers(metadb::OidId source, events::Direction direction,
                          SymbolId event) const;

  /// String shim over the SymbolId lookup (tests / tools / the
  /// non-interned engine path): resolves the id first, paying one
  /// string hash.
  const Bucket* Receivers(metadb::OidId source, events::Direction direction,
                          std::string_view event) const;

  /// The table this index interns event names through.
  const SymbolTable& symbols() const noexcept { return *symbols_; }

  // --- Scope (shard-local indexes) --------------------------------------

  /// Restricts the index to sources for which `owns` returns true: a
  /// sharded engine gives each shard's index the shard's own subtree,
  /// so N shards together hold ~1× the link graph instead of N×.
  /// Entries for foreign sources are skipped on every maintenance path;
  /// Rebuild and ConsistentWith apply the filter too. nullptr (the
  /// default) indexes everything.
  void SetSourceFilter(std::function<bool(metadb::OidId)> owns) {
    filter_ = std::move(owns);
  }

  // --- Incremental maintenance (link-observer notifications) -----------

  void AddLink(metadb::LinkId id, const metadb::Link& link);

  /// `link` must still carry the endpoints/PROPAGATE list being removed.
  void RemoveLink(metadb::LinkId id, const metadb::Link& link);

  /// `link` is the post-move state; `old_endpoint` the prior value of
  /// the endpoint selected by `endpoint_from`. Entries on the unmoved
  /// side are patched in place (their adjacency position is unchanged);
  /// entries on the moved side are re-appended, mirroring the
  /// push_back the adjacency lists perform.
  void MoveLinkEndpoint(metadb::LinkId id, bool endpoint_from,
                        metadb::OidId old_endpoint, const metadb::Link& link);

  /// `link` carries the new PROPAGATE list, `old_propagates` the prior.
  /// The affected buckets are rebuilt from `db`'s adjacency lists so
  /// their order keeps matching a scan (a remove-and-append would leave
  /// the rewritten link out of adjacency position).
  void SetLinkPropagates(const metadb::MetaDatabase& db, metadb::LinkId id,
                         const std::vector<std::string>& old_propagates,
                         const metadb::Link& link);

  // --- Single-side maintenance (sharded index router) --------------------
  // A link's two bucket sides can live in different shard indexes: the
  // (from, down) side on the source's shard, the (to, up) side on the
  // target's. The sharded engine's index router applies each side to
  // the owning index through these; self-maintained indexes keep using
  // the two-sided observer entry points above.

  /// Adds one side of `link`'s entries: the (from, kDown) buckets when
  /// `down_side`, the (to, kUp) buckets otherwise.
  void AddLinkSide(metadb::LinkId id, const metadb::Link& link,
                   bool down_side);

  /// Removes one side of `link`'s entries (`link` still carries the
  /// endpoints/PROPAGATE list being removed).
  void RemoveLinkSide(metadb::LinkId id, const metadb::Link& link,
                      bool down_side);

  /// Drops entries of `link` keyed under `source` in `direction` for
  /// every event of `events` (the old endpoint's side of a move).
  void EraseEntriesAt(metadb::OidId source, events::Direction direction,
                      const std::vector<std::string>& events,
                      metadb::LinkId link);

  /// Appends entries for `link` keyed under `source` in `direction`
  /// (the new endpoint's side of a move; mirrors the adjacency
  /// push_back, one entry per PROPAGATE occurrence).
  void AppendEntriesAt(metadb::OidId source, events::Direction direction,
                       const std::vector<std::string>& events,
                       metadb::LinkId link, metadb::OidId neighbor);

  /// Rewrites the neighbour field of `link`'s entries under `source` in
  /// `direction` (the unmoved side of a move keeps bucket positions).
  void PatchNeighborAt(metadb::OidId source, events::Direction direction,
                       const std::vector<std::string>& events,
                       metadb::LinkId link, metadb::OidId neighbor);

  /// Rebuilds the (source, direction) buckets named by the union of the
  /// two PROPAGATE lists from `db`'s adjacency (one side of a PROPAGATE
  /// rewrite).
  void RebuildBucketsAt(const metadb::MetaDatabase& db, metadb::OidId source,
                        events::Direction direction,
                        const std::vector<std::string>& old_events,
                        const std::vector<std::string>& new_events);

  // --- Bucket migration (shard rebalance) --------------------------------
  // When an OID's shard assignment changes, its buckets move between
  // shard indexes instead of either index rebuilding: the old index
  // drops the OID's buckets, the new index re-derives them from the
  // adjacency lists (which also re-interns event names — SymbolIds are
  // per-index and never cross an index boundary).

  /// Drops every bucket keyed under `source`, deriving the affected
  /// (direction, event) keys from `source`'s adjacency in `db`.
  void RemoveSourceBuckets(const metadb::MetaDatabase& db,
                           metadb::OidId source);

  /// Indexes every qualifying link of `source` from `db`'s adjacency
  /// (both directions, scan order). The source must not already have
  /// buckets here. Ignores the source filter — the caller (the index
  /// router) has already decided this index owns the source.
  void AddSourceBuckets(const metadb::MetaDatabase& db, metadb::OidId source);

  // --- Introspection ----------------------------------------------------

  /// Live (link, event, direction) entries currently indexed.
  size_t entry_count() const noexcept { return entries_; }

  /// Oracle check: compares against a freshly rebuilt index of `db`
  /// (under the same source filter, if any), bucket contents compared
  /// as sets (incremental maintenance may order a bucket differently
  /// from slot order after endpoint moves). Comparison is by event
  /// *text*, so it holds across indexes with different symbol tables.
  /// On mismatch returns false and, when `diff` is non-null, describes
  /// the first divergence.
  bool ConsistentWith(const metadb::MetaDatabase& db,
                      std::string* diff = nullptr) const;

  /// Snapshot form: checks consistency against a pinned published
  /// version — handles are identical across publish, so the same oracle
  /// applies verbatim.
  bool ConsistentWith(const metadb::Snapshot& snapshot,
                      std::string* diff = nullptr) const {
    return ConsistentWith(snapshot.db(), diff);
  }

 private:
  /// One packed key: event SymbolId in bits 0..31, direction in bit 32,
  /// source OID in bits 33..63. Object slots are dense indices that stay
  /// far below 2^31, so the OID always fits.
  static constexpr uint64_t PackKey(metadb::OidId source,
                                    events::Direction direction,
                                    SymbolId event) noexcept {
    return (static_cast<uint64_t>(source.value()) << 33) |
           (static_cast<uint64_t>(direction == events::Direction::kDown)
            << 32) |
           static_cast<uint64_t>(event);
  }

  /// splitmix64 finalizer: packed keys are dense structured integers,
  /// and libstdc++'s std::hash<uint64_t> is the identity — mix so
  /// nearby (oid, event) pairs spread across buckets.
  struct KeyHash {
    size_t operator()(uint64_t key) const noexcept {
      key += 0x9e3779b97f4a7c15ull;
      key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ull;
      key = (key ^ (key >> 27)) * 0x94d049bb133111ebull;
      return static_cast<size_t>(key ^ (key >> 31));
    }
  };

  using BucketMap = std::unordered_map<uint64_t, Bucket, KeyHash>;

  /// True when this index stores buckets for `source`.
  bool OwnsSource(metadb::OidId source) const {
    return filter_ == nullptr || filter_(source);
  }

  void AddEntries(metadb::LinkId id, const std::vector<std::string>& events,
                  metadb::OidId from, metadb::OidId to);
  void RemoveEntries(metadb::LinkId id, const std::vector<std::string>& events,
                     metadb::OidId from, metadb::OidId to);

  /// Ordered removal of every entry of `link` from one bucket; keeps
  /// entry accounting and drops the bucket when it empties.
  void EraseLinkEntries(metadb::OidId source, events::Direction direction,
                        SymbolId event, metadb::LinkId link);

  /// Recomputes one bucket from `source`'s adjacency list in `db`.
  void RebuildBucket(const metadb::MetaDatabase& db, metadb::OidId source,
                     events::Direction direction, const std::string& event);

  SymbolTable* symbols_;                   ///< Shared or owned_ below.
  std::unique_ptr<SymbolTable> owned_;     ///< Set for standalone indexes.
  BucketMap buckets_;
  size_t entries_ = 0;
  std::function<bool(metadb::OidId)> filter_;  ///< Source scope; see above.
};

}  // namespace damocles::engine
