// The propagation index: the run-time engine's fast path for wave
// expansion.
//
// Phase 5 of event processing asks, for every OID a wave reaches, "which
// neighbours receive this event?" — a question the naive implementation
// answers by scanning the OID's full adjacency list and, per link,
// scanning the PROPAGATE string list. On hub-heavy meta-data (a netlist
// deriving dozens of views, few of which propagate any given event) that
// is O(degree × |PROPAGATE|) string work per delivery.
//
// This index precomputes the answer per (source OID, direction, event
// name): each bucket holds exactly the links that qualify, in the same
// order an adjacency scan would visit them, so the indexed engine
// delivers in the identical order as the scanning engine. It is built
// in one pass at blueprint-install time and maintained incrementally
// through MetaDatabase link-observer notifications (add / remove /
// endpoint move / PROPAGATE change).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "events/event.hpp"
#include "metadb/ids.hpp"
#include "metadb/link.hpp"

namespace damocles::metadb {
class MetaDatabase;
}  // namespace damocles::metadb

namespace damocles::engine {

/// Per-(source, direction, event) receiver index over the link graph.
class PropagationIndex {
 public:
  /// One qualifying link, as seen from the indexed source OID.
  struct Entry {
    metadb::LinkId link;
    metadb::OidId neighbor;

    friend bool operator==(const Entry& a, const Entry& b) noexcept {
      return a.link == b.link && a.neighbor == b.neighbor;
    }
  };
  using Bucket = std::vector<Entry>;

  /// Drops everything and re-indexes every live link of `db`, walking
  /// each object's adjacency lists so bucket order matches scan order
  /// even after endpoint moves reordered adjacency. O(links ×
  /// |PROPAGATE|); called at blueprint install.
  void Rebuild(const metadb::MetaDatabase& db);

  void Clear();

  /// The receivers of `event` leaving `source` in `direction`, or
  /// nullptr when no link qualifies. The bucket order matches the order
  /// a full adjacency scan would produce.
  const Bucket* Receivers(metadb::OidId source, events::Direction direction,
                          std::string_view event) const;

  // --- Incremental maintenance (link-observer notifications) -----------

  void AddLink(metadb::LinkId id, const metadb::Link& link);

  /// `link` must still carry the endpoints/PROPAGATE list being removed.
  void RemoveLink(metadb::LinkId id, const metadb::Link& link);

  /// `link` is the post-move state; `old_endpoint` the prior value of
  /// the endpoint selected by `endpoint_from`. Entries on the unmoved
  /// side are patched in place (their adjacency position is unchanged);
  /// entries on the moved side are re-appended, mirroring the
  /// push_back the adjacency lists perform.
  void MoveLinkEndpoint(metadb::LinkId id, bool endpoint_from,
                        metadb::OidId old_endpoint, const metadb::Link& link);

  /// `link` carries the new PROPAGATE list, `old_propagates` the prior.
  /// The affected buckets are rebuilt from `db`'s adjacency lists so
  /// their order keeps matching a scan (a remove-and-append would leave
  /// the rewritten link out of adjacency position).
  void SetLinkPropagates(const metadb::MetaDatabase& db, metadb::LinkId id,
                         const std::vector<std::string>& old_propagates,
                         const metadb::Link& link);

  // --- Introspection ----------------------------------------------------

  /// Live (link, event, direction) entries currently indexed.
  size_t entry_count() const noexcept { return entries_; }

  /// Oracle check: compares against a freshly rebuilt index of `db`,
  /// bucket contents compared as sets (incremental maintenance may
  /// order a bucket differently from slot order after endpoint moves).
  /// On mismatch returns false and, when `diff` is non-null, describes
  /// the first divergence.
  bool ConsistentWith(const metadb::MetaDatabase& db,
                      std::string* diff = nullptr) const;

 private:
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view text) const noexcept {
      return std::hash<std::string_view>{}(text);
    }
  };
  using EventMap =
      std::unordered_map<std::string, Bucket, StringHash, std::equal_to<>>;

  /// Down-going and up-going buckets of one source OID.
  struct NodeIndex {
    EventMap down;  ///< source == link.from, neighbour == link.to
    EventMap up;    ///< source == link.to,   neighbour == link.from
  };

  NodeIndex& Node(metadb::OidId source);
  EventMap& MapFor(metadb::OidId source, events::Direction direction) {
    NodeIndex& node = Node(source);
    return direction == events::Direction::kDown ? node.down : node.up;
  }

  void AddEntries(metadb::LinkId id, const std::vector<std::string>& events,
                  metadb::OidId from, metadb::OidId to);
  void RemoveEntries(metadb::LinkId id, const std::vector<std::string>& events,
                     metadb::OidId from, metadb::OidId to);

  /// Ordered removal of every entry of `link` from one bucket; keeps
  /// entry accounting and drops the bucket when it empties.
  void EraseLinkEntries(metadb::OidId source, events::Direction direction,
                        const std::string& event, metadb::LinkId link);

  /// Recomputes one bucket from `source`'s adjacency list in `db`.
  void RebuildBucket(const metadb::MetaDatabase& db, metadb::OidId source,
                     events::Direction direction, const std::string& event);

  std::vector<NodeIndex> nodes_;  ///< Indexed by OidId::value().
  size_t entries_ = 0;
};

}  // namespace damocles::engine
