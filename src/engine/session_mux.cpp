#include "engine/session_mux.hpp"

#include <algorithm>

#include "common/failpoint.hpp"

namespace damocles::engine {

SessionMux::SessionMux(ProjectServer& server, SessionMuxOptions options)
    : server_(server), options_(options) {
  if (options_.mutation_queue_capacity == 0) {
    options_.mutation_queue_capacity = 1;
  }
  // Publish the initial epoch so every read — including ones racing
  // the first mutation — answers from a pinned immutable version
  // rather than the live database.
  server_.database().PublishSnapshot();
  apply_thread_ = std::thread([this] { ApplyLoop(); });
}

SessionMux::~SessionMux() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  space_cv_.notify_all();
  if (apply_thread_.joinable()) apply_thread_.join();
}

std::unique_ptr<SessionMux::Session> SessionMux::Connect(std::string user) {
  // Not make_unique: the constructor is private to the friend mux.
  return std::unique_ptr<Session>(new Session(*this, std::move(user)));
}

std::string SessionMux::Session::Execute(std::string_view line) {
  if (ClassifyWireLine(line) == WireCommandKind::kRead) {
    return reader_.HandleLine(line);
  }
  return mux_.SubmitMutation(*this, line);
}

std::string SessionMux::SubmitMutation(Session& session,
                                       std::string_view line) {
  // Degraded fast-path: while the server is read-only, mutations that
  // are not part of the heal surface (wal-reopen, failpoint) are
  // rejected here in-band, without burning a queue slot or apply-thread
  // time. Racing a trip that lands after this check is fine — the
  // server rejects the mutation with the same "degraded:" response
  // when the apply thread reaches it.
  if (server_.degraded() && !WireLineAllowedDegraded(line)) {
    return "degraded: server is read-only (" + server_.GetHealth().reason +
           "); heal with wal-reopen\n";
  }

  // A hit forces this submission down the saturation path (straight
  // to the "busy: ..." rejection) without actually filling the queue.
  common::FailpointHit fault;
  const bool forced_busy = DAMOCLES_FAILPOINT("mux.queue.full", &fault);

  std::promise<std::string> promise;
  std::future<std::string> future = promise.get_future();
  uint64_t ticket = 0;
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    if (stop_) return "error: session mux is shutting down\n";
    if (forced_busy || queue_.size() >= options_.mutation_queue_capacity) {
      // Bounded retry: wait (with jittered exponential backoff) for
      // the apply thread to make space, then re-check. Attempts
      // exhausted or shutdown mid-wait falls through to the busy
      // rejection.
      bool admitted = false;
      if (!forced_busy) {
        common::BackoffState backoff(options_.mutation_retry);
        while (backoff.ShouldRetry()) {
          space_cv_.wait_for(lock, backoff.NextDelay(), [this] {
            return stop_ || queue_.size() < options_.mutation_queue_capacity;
          });
          if (stop_) return "error: session mux is shutting down\n";
          if (queue_.size() < options_.mutation_queue_capacity) {
            mutation_retries_.fetch_add(1, std::memory_order_relaxed);
            admitted = true;
            break;
          }
        }
      }
      if (!admitted) {
        busy_rejections_.fetch_add(1, std::memory_order_relaxed);
        return "busy: mutation queue full (" + std::to_string(queue_.size()) +
               " pending); retry\n";
      }
    }
    PendingMutation pending;
    pending.line = std::string(line);
    pending.session = &session;
    pending.ticket = ticket = ++next_ticket_;
    pending.promise = std::move(promise);
    queue_.push_back(std::move(pending));
  }
  queue_cv_.notify_one();

  const auto deadline = options_.mutation_deadline;
  if (deadline.count() <= 0) return future.get();

  // Deadline wait: if the apply thread has not picked the entry up in
  // time, withdraw it from the queue — it is guaranteed unapplied, so
  // "timeout: ..." is truthful and the client may safely resubmit. An
  // entry already popped is being applied; its real response is the
  // only honest answer, so block for it.
  if (future.wait_for(deadline) == std::future_status::ready) {
    return future.get();
  }
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    const auto it = std::find_if(
        queue_.begin(), queue_.end(),
        [ticket](const PendingMutation& p) { return p.ticket == ticket; });
    if (it != queue_.end()) {
      queue_.erase(it);
      mutation_timeouts_.fetch_add(1, std::memory_order_relaxed);
      return "timeout: mutation waited past deadline (" +
             std::to_string(deadline.count()) + " ms) unapplied; retry\n";
    }
  }
  return future.get();
}

void SessionMux::ApplyLoop() {
  uint64_t seq = 0;
  while (true) {
    PendingMutation pending;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Admitted mutations are applied even during shutdown: their
      // sessions are blocked on the promise.
      if (queue_.empty()) return;
      pending = std::move(queue_.front());
      queue_.pop_front();
    }
    space_cv_.notify_all();

    // Chaos hook: a delay-action hit here stalls the apply thread the
    // way a slow wave or blocked fsync would, so tests can drive the
    // deadline/timeout path deterministically.
    common::FailpointHit stall;
    static_cast<void>(DAMOCLES_FAILPOINT("mux.apply.stall", &stall));

    // The single-writer step: the session's writer-side WireSession
    // applies the mutation (events drain through the plain engine or
    // the sharded intake rings, per the server's configuration)...
    std::string response = pending.session->writer_.HandleLine(pending.line);

    // ...and the next epoch makes it visible to every reader at once.
    const uint64_t epoch = options_.publish_each_mutation
                               ? server_.database().PublishSnapshot().epoch()
                               : server_.database().snapshot_epoch();

    {
      std::lock_guard<std::mutex> lock(log_mutex_);
      MuxLogEntry entry;
      entry.seq = ++seq;
      entry.user = pending.session->user_;
      entry.line = pending.line;
      entry.response = response;
      entry.epoch_after = epoch;
      log_.push_back(std::move(entry));
    }
    mutations_applied_.fetch_add(1, std::memory_order_relaxed);
    pending.promise.set_value(std::move(response));
  }
}

std::vector<MuxLogEntry> SessionMux::MutationLog() const {
  std::lock_guard<std::mutex> lock(log_mutex_);
  return log_;
}

}  // namespace damocles::engine
