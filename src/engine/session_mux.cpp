#include "engine/session_mux.hpp"

namespace damocles::engine {

SessionMux::SessionMux(ProjectServer& server, SessionMuxOptions options)
    : server_(server), options_(options) {
  if (options_.mutation_queue_capacity == 0) {
    options_.mutation_queue_capacity = 1;
  }
  // Publish the initial epoch so every read — including ones racing
  // the first mutation — answers from a pinned immutable version
  // rather than the live database.
  server_.database().PublishSnapshot();
  apply_thread_ = std::thread([this] { ApplyLoop(); });
}

SessionMux::~SessionMux() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  space_cv_.notify_all();
  if (apply_thread_.joinable()) apply_thread_.join();
}

std::unique_ptr<SessionMux::Session> SessionMux::Connect(std::string user) {
  // Not make_unique: the constructor is private to the friend mux.
  return std::unique_ptr<Session>(new Session(*this, std::move(user)));
}

std::string SessionMux::Session::Execute(std::string_view line) {
  if (ClassifyWireLine(line) == WireCommandKind::kRead) {
    return reader_.HandleLine(line);
  }
  return mux_.SubmitMutation(*this, line);
}

std::string SessionMux::SubmitMutation(Session& session,
                                       std::string_view line) {
  std::promise<std::string> promise;
  std::future<std::string> future = promise.get_future();
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    if (stop_) return "error: session mux is shutting down\n";
    if (queue_.size() >= options_.mutation_queue_capacity) {
      // Bounded retry: wait (with growing backoff) for the apply
      // thread to make space, then re-check. Attempts exhausted or
      // shutdown mid-wait falls through to the busy rejection.
      const auto& retry = options_.mutation_retry;
      bool admitted = false;
      for (size_t attempt = 0; attempt < retry.attempts; ++attempt) {
        space_cv_.wait_for(lock, retry.backoff * (attempt + 1), [this] {
          return stop_ || queue_.size() < options_.mutation_queue_capacity;
        });
        if (stop_) return "error: session mux is shutting down\n";
        if (queue_.size() < options_.mutation_queue_capacity) {
          mutation_retries_.fetch_add(1, std::memory_order_relaxed);
          admitted = true;
          break;
        }
      }
      if (!admitted) {
        busy_rejections_.fetch_add(1, std::memory_order_relaxed);
        return "busy: mutation queue full (" + std::to_string(queue_.size()) +
               " pending); retry\n";
      }
    }
    PendingMutation pending;
    pending.line = std::string(line);
    pending.session = &session;
    pending.promise = std::move(promise);
    queue_.push_back(std::move(pending));
  }
  queue_cv_.notify_one();
  return future.get();
}

void SessionMux::ApplyLoop() {
  uint64_t seq = 0;
  while (true) {
    PendingMutation pending;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Admitted mutations are applied even during shutdown: their
      // sessions are blocked on the promise.
      if (queue_.empty()) return;
      pending = std::move(queue_.front());
      queue_.pop_front();
    }
    space_cv_.notify_all();

    // The single-writer step: the session's writer-side WireSession
    // applies the mutation (events drain through the plain engine or
    // the sharded intake rings, per the server's configuration)...
    std::string response = pending.session->writer_.HandleLine(pending.line);

    // ...and the next epoch makes it visible to every reader at once.
    const uint64_t epoch = options_.publish_each_mutation
                               ? server_.database().PublishSnapshot().epoch()
                               : server_.database().snapshot_epoch();

    {
      std::lock_guard<std::mutex> lock(log_mutex_);
      MuxLogEntry entry;
      entry.seq = ++seq;
      entry.user = pending.session->user_;
      entry.line = pending.line;
      entry.response = response;
      entry.epoch_after = epoch;
      log_.push_back(std::move(entry));
    }
    mutations_applied_.fetch_add(1, std::memory_order_relaxed);
    pending.promise.set_value(std::move(response));
  }
}

std::vector<MuxLogEntry> SessionMux::MutationLog() const {
  std::lock_guard<std::mutex> lock(log_mutex_);
  return log_;
}

}  // namespace damocles::engine
