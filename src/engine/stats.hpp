// Counters the run-time engine maintains while processing events.
//
// These feed the benchmark harness: the paper's "non-obstructive /
// light-weight" claim is quantified as per-activity tracking cost, and
// the selective-propagation claim as deliveries per wave.
#pragma once

#include <cstddef>

namespace damocles::engine {

struct EngineStats {
  // Event traffic.
  size_t events_processed = 0;      ///< Queue events fully processed.
  size_t external_events = 0;       ///< Of those, posted by wrappers.
  size_t rule_posted_events = 0;    ///< Events enqueued by post actions.
  size_t propagated_deliveries = 0; ///< OIDs reached by propagation waves.
  size_t dangling_events = 0;       ///< Events whose target OID is unknown.

  // Rule execution.
  size_t assign_actions = 0;
  size_t exec_actions = 0;
  size_t notify_actions = 0;
  size_t post_actions = 0;
  size_t reevaluations = 0;         ///< Continuous-assignment evaluations.
  size_t property_writes = 0;       ///< Property values actually changed.

  // Template application.
  size_t objects_templated = 0;
  size_t links_templated = 0;
  size_t links_untemplated = 0;     ///< Created with no matching template.
  size_t links_carried = 0;         ///< Moved/copied to a new version.
  size_t properties_carried = 0;    ///< Copied/moved from previous version.

  // Propagation health.
  size_t waves_started = 0;
  size_t waves_truncated = 0;       ///< Hit the max-delivery safety cap.
  size_t max_wave_extent = 0;       ///< Largest single wave observed.
  size_t post_to_misses = 0;        ///< 'post ... to <View>' found no OID.

  // Wave expansion fast path.
  size_t wave_deliveries = 0;       ///< All deliveries (origin + propagated).
  size_t wave_batches = 0;          ///< BFS generations processed.
  size_t index_lookups = 0;         ///< Receiver sets served by the index.
  size_t links_scanned = 0;         ///< Links examined by fallback scans.

  // Interned hot path (symbol-keyed rule tables; see compiled_rules.hpp).
  size_t rule_table_hits = 0;       ///< Deliveries served a compiled rule set.
  size_t rule_table_misses = 0;     ///< Deliveries with no rules for the event.
  size_t interner_symbols = 0;      ///< Symbols in the engine's table (gauge).

  // Sharded execution (see sharded_engine.hpp; zero on unsharded engines).
  size_t handoff_receivers = 0;     ///< Receivers routed to another shard.
  size_t seeded_handoff_waves = 0;  ///< Cross-shard sub-waves delivered here.
  size_t dedup_suppressed = 0;      ///< Deliveries dropped by the per-wave
                                    ///< (epoch, OID) exactly-once claim: the
                                    ///< OID was already delivered to by
                                    ///< another sub-wave of the same wave.
  size_t claim_batches = 0;         ///< Batched (epoch, OID) claim calls: one
                                    ///< per BFS generation instead of one per
                                    ///< receiver, amortizing the claim-store
                                    ///< synchronization.

  /// Mean OIDs delivered to per propagation wave.
  double DeliveriesPerWave() const {
    return waves_started == 0
               ? 0.0
               : static_cast<double>(wave_deliveries) /
                     static_cast<double>(waves_started);
  }

  /// Folds another engine's counters into this one (the sharded engine
  /// aggregates its per-shard engines this way). Kept beside the field
  /// list so new counters get added here in the same edit; all counters
  /// sum except max_wave_extent, which takes the max.
  void Accumulate(const EngineStats& other) {
    events_processed += other.events_processed;
    external_events += other.external_events;
    rule_posted_events += other.rule_posted_events;
    propagated_deliveries += other.propagated_deliveries;
    dangling_events += other.dangling_events;
    assign_actions += other.assign_actions;
    exec_actions += other.exec_actions;
    notify_actions += other.notify_actions;
    post_actions += other.post_actions;
    reevaluations += other.reevaluations;
    property_writes += other.property_writes;
    objects_templated += other.objects_templated;
    links_templated += other.links_templated;
    links_untemplated += other.links_untemplated;
    links_carried += other.links_carried;
    properties_carried += other.properties_carried;
    waves_started += other.waves_started;
    waves_truncated += other.waves_truncated;
    if (other.max_wave_extent > max_wave_extent) {
      max_wave_extent = other.max_wave_extent;
    }
    post_to_misses += other.post_to_misses;
    wave_deliveries += other.wave_deliveries;
    wave_batches += other.wave_batches;
    index_lookups += other.index_lookups;
    links_scanned += other.links_scanned;
    rule_table_hits += other.rule_table_hits;
    rule_table_misses += other.rule_table_misses;
    // Gauge, not a counter: per-shard interners hold largely the same
    // strings, so summing would overstate by ~num_shards.
    if (other.interner_symbols > interner_symbols) {
      interner_symbols = other.interner_symbols;
    }
    handoff_receivers += other.handoff_receivers;
    seeded_handoff_waves += other.seeded_handoff_waves;
    dedup_suppressed += other.dedup_suppressed;
    claim_batches += other.claim_batches;
  }
};

}  // namespace damocles::engine
