#include "engine/run_time_engine.hpp"

#include <deque>

#include "common/error.hpp"
#include "common/log.hpp"

namespace damocles::engine {

using blueprint::Blueprint;
using blueprint::CompiledRules;
using blueprint::ViewTemplate;
using events::Direction;
using events::EventMessage;
using metadb::CarryPolicy;
using metadb::Link;
using metadb::LinkId;
using metadb::LinkKind;
using metadb::MetaObject;
using metadb::Oid;
using metadb::OidId;

RunTimeEngine::RunTimeEngine(metadb::MetaDatabase& db, SimClock& clock,
                             EngineOptions options)
    : db_(db), clock_(clock), options_(options), index_(symbols_) {
  if (options_.use_propagation_index && !options_.external_index_maintenance) {
    db_.AddLinkObserver(this);
    index_.Rebuild(db_);
  }
}

RunTimeEngine::~RunTimeEngine() { db_.RemoveLinkObserver(this); }

void RunTimeEngine::LoadBlueprint(Blueprint blueprint,
                                  uint64_t policy_version) {
  blueprint_ = std::make_unique<Blueprint>(std::move(blueprint));
  policy_version_ = policy_version;
  if (options_.interned_fast_path) {
    // Rule-table compile point. Cached OidBindings re-resolve lazily
    // against the bumped generation; SymbolIds themselves stay valid
    // (the interner only grows).
    compiled_.Compile(*blueprint_, symbols_, policy_version);
  }
  // Blueprint install is the index build point (and heals any direct
  // GetLinkMutable edits made outside the observer protocol).
  if (options_.use_propagation_index) index_.Rebuild(db_);
  stats_.interner_symbols = symbols_.size();
}

// --- Propagation index maintenance ----------------------------------------

void RunTimeEngine::OnLinkAdded(LinkId id, const Link& link) {
  index_.AddLink(id, link);
}

void RunTimeEngine::OnLinkRemoved(LinkId id, const Link& link) {
  index_.RemoveLink(id, link);
}

void RunTimeEngine::OnLinkEndpointMoved(LinkId id, bool endpoint_from,
                                        OidId old_endpoint, const Link& link) {
  index_.MoveLinkEndpoint(id, endpoint_from, old_endpoint, link);
}

void RunTimeEngine::OnLinkPropagatesChanged(
    LinkId id, const std::vector<std::string>& old_propagates,
    const Link& link) {
  index_.SetLinkPropagates(db_, id, old_propagates, link);
}

void RunTimeEngine::SetIndexScope(std::function<bool(metadb::OidId)> owns,
                                  bool rebuild) {
  if (!options_.use_propagation_index) return;
  if (owns != nullptr) {
    // External maintenance: the sharded index router applies link ops
    // to the owning shard's index, so this engine stops observing.
    db_.RemoveLinkObserver(this);
  } else {
    db_.AddLinkObserver(this);  // Registration is idempotent.
  }
  index_.SetSourceFilter(std::move(owns));
  if (rebuild) {
    index_.Rebuild(db_);
  } else {
    index_.Clear();  // The caller fills the index (bulk routed pass).
  }
}

const Blueprint& RunTimeEngine::Current() const {
  if (!blueprint_) throw Error("RunTimeEngine: no blueprint loaded");
  return *blueprint_;
}

// --- Interned hot path ----------------------------------------------------

RunTimeEngine::WaveVisited& RunTimeEngine::AcquireVisited() {
  if (visited_depth_ == visited_pool_.size()) {
    visited_pool_.push_back(std::make_unique<WaveVisited>());
  }
  WaveVisited& set = *visited_pool_[visited_depth_++];
  set.Begin(db_.ObjectSlotCount());
  return set;
}

const RunTimeEngine::OidBinding& RunTimeEngine::BindingOf(OidId id) {
  const size_t slot = id.value();
  if (slot >= bindings_.size()) {
    bindings_.resize(std::max(db_.ObjectSlotCount(), slot + 1));
  }
  OidBinding& binding = bindings_[slot];
  if (binding.view_sym == SymbolTable::kNoSymbol) {
    // Slots are never reused for a different object, so the view symbol
    // is interned exactly once per OID.
    binding.view_sym = symbols_.Intern(db_.GetObject(id).oid.view);
  }
  if (binding.generation != compiled_.generation()) {
    binding.rules = compiled_.Resolve(binding.view_sym);
    binding.generation = compiled_.generation();
  }
  return binding;
}

// --- Creation notifications ---------------------------------------------------

OidId RunTimeEngine::OnCreateObject(std::string_view block,
                                    std::string_view view,
                                    std::string_view user) {
  const OidId id =
      db_.CreateNextVersion(block, view, user, clock_.NowSeconds());
  const std::optional<OidId> previous = db_.PreviousVersion(id);
  if (options_.interned_fast_path) {
    BindingOf(id);  // Intern the view and bind rule tables up front.
  }

  if (blueprint_) {
    ++stats_.objects_templated;
    // Default-view templates apply to every view; specific templates
    // follow so they can override a default-view property's value.
    const ViewTemplate* sources[2] = {blueprint_->DefaultView(),
                                      blueprint_->FindView(view)};
    for (const ViewTemplate* source : sources) {
      if (source == nullptr) continue;
      for (const blueprint::PropertyTemplate& property : source->properties) {
        std::string value = property.default_value;
        if (previous.has_value() &&
            property.carry != CarryPolicy::kNone) {
          if (const std::string* carried =
                  db_.GetProperty(*previous, property.name)) {
            value = *carried;
            ++stats_.properties_carried;
            if (property.carry == CarryPolicy::kMove) {
              db_.RemoveProperty(*previous, property.name);
            }
          }
        }
        SetPropertyCounted(id, property.name, value);
      }
    }
  }

  // Carry link instances whose policy asks for it (paper Fig. 3). Both
  // endpoints can shift: a new REG.schematic version pulls the use link
  // from its parent; a new GDSII version pulls the derive link from the
  // netlist.
  if (previous.has_value()) {
    const std::vector<LinkId> ins = db_.InLinks(*previous);
    for (const LinkId link_id : ins) {
      const Link& link = db_.GetLink(link_id);
      if (link.carry == CarryPolicy::kMove) {
        db_.MoveLinkEndpoint(link_id, /*endpoint_from=*/false, id);
        ++stats_.links_carried;
      } else if (link.carry == CarryPolicy::kCopy) {
        db_.CreateLink(link.kind, link.from, id, link.propagates, link.type,
                       link.carry);
        ++stats_.links_carried;
      }
    }
    const std::vector<LinkId> outs = db_.OutLinks(*previous);
    for (const LinkId link_id : outs) {
      const Link& link = db_.GetLink(link_id);
      if (link.carry == CarryPolicy::kMove) {
        db_.MoveLinkEndpoint(link_id, /*endpoint_from=*/true, id);
        ++stats_.links_carried;
      } else if (link.carry == CarryPolicy::kCopy) {
        db_.CreateLink(link.kind, id, link.to, link.propagates, link.type,
                       link.carry);
        ++stats_.links_carried;
      }
    }
  }

  RefreshComputedProperties(id);
  return id;
}

LinkId RunTimeEngine::OnCreateLink(LinkKind kind, OidId from, OidId to) {
  const MetaObject& from_object = db_.GetObject(from);
  const MetaObject& to_object = db_.GetObject(to);

  // Idempotence: tools re-run constantly (the netlister fires on every
  // schematic check-in) and re-announce the same relation; a duplicate
  // link would double propagation work and bloat the meta-data. An
  // existing live link with identical kind and endpoints is the same
  // relation — return it.
  for (const LinkId existing : db_.OutLinks(from)) {
    const Link& link = db_.GetLink(existing);
    if (link.kind == kind && link.to == to) return existing;
  }

  const blueprint::LinkTemplate* match =
      FindLinkTemplate(kind, from_object.oid.view, to_object.oid.view);

  std::vector<std::string> propagates;
  std::string type;
  CarryPolicy carry = CarryPolicy::kNone;
  if (match != nullptr) {
    propagates = match->propagates;
    type = match->type;
    carry = match->carry;
    ++stats_.links_templated;
  } else {
    ++stats_.links_untemplated;
  }

  const LinkId id =
      db_.CreateLink(kind, from, to, std::move(propagates), type, carry);
  // Mirror the template content into queryable link properties, the way
  // DAMOCLES annotates Link objects (paper §2).
  Link& link = db_.GetLinkMutable(id);
  std::string propagate_list;
  for (size_t i = 0; i < link.propagates.size(); ++i) {
    if (i != 0) propagate_list += ",";
    propagate_list += link.propagates[i];
  }
  link.properties["PROPAGATE"] = propagate_list;
  if (!link.type.empty()) link.properties["TYPE"] = link.type;
  return id;
}

size_t RunTimeEngine::RetemplateLinks() {
  if (!blueprint_) return 0;
  size_t touched = 0;
  std::vector<LinkId> live;
  db_.ForEachLink([&](LinkId id, const Link&) { live.push_back(id); });
  for (const LinkId id : live) {
    Link& link = db_.GetLinkMutable(id);
    const blueprint::LinkTemplate* match =
        FindLinkTemplate(link.kind, db_.GetObject(link.from).oid.view,
                         db_.GetObject(link.to).oid.view);
    std::vector<std::string> propagates;
    std::string type;
    CarryPolicy carry = CarryPolicy::kNone;
    if (match != nullptr) {
      propagates = match->propagates;
      type = match->type;
      carry = match->carry;
    }
    if (link.propagates == propagates && link.type == type &&
        link.carry == carry) {
      continue;
    }
    // PROPAGATE goes through the observer-notifying setter so
    // propagation indexes stay consistent; TYPE and carry do not
    // affect wave expansion and are written directly.
    db_.SetLinkPropagates(id, std::move(propagates));
    link.type = std::move(type);
    link.carry = carry;
    std::string propagate_list;
    for (size_t i = 0; i < link.propagates.size(); ++i) {
      if (i != 0) propagate_list += ",";
      propagate_list += link.propagates[i];
    }
    link.properties["PROPAGATE"] = propagate_list;
    if (link.type.empty()) {
      link.properties.erase("TYPE");
    } else {
      link.properties["TYPE"] = link.type;
    }
    ++touched;
  }
  return touched;
}

const blueprint::LinkTemplate* RunTimeEngine::FindLinkTemplate(
    LinkKind kind, std::string_view from_view, std::string_view to_view)
    const {
  if (!blueprint_) return nullptr;
  // link_from templates live in the *target* view; use_link templates in
  // the shared view of both endpoints. Specific view first, then default.
  const ViewTemplate* sources[2] = {blueprint_->FindView(to_view),
                                    blueprint_->DefaultView()};
  for (const ViewTemplate* source : sources) {
    if (source == nullptr) continue;
    for (const blueprint::LinkTemplate& candidate : source->links) {
      if (candidate.kind != kind) continue;
      if (kind == LinkKind::kUse) return &candidate;
      if (candidate.from_view == from_view) return &candidate;
    }
  }
  return nullptr;
}

// --- Event intake ----------------------------------------------------------------

void RunTimeEngine::PostEvent(EventMessage event) {
  if (event.timestamp == 0) event.timestamp = clock_.NowSeconds();
  // Intern at intake so the wave's symbol lookup is a guaranteed hit.
  symbols_.Intern(event.name);
  stats_.interner_symbols = symbols_.size();
  queue_.Push(std::move(event));
}

bool RunTimeEngine::ProcessOne() {
  if (processing_) return false;  // Re-entrant call from a script.
  std::optional<EventMessage> event = queue_.Pop();
  if (!event.has_value()) return false;

  ++stats_.events_processed;
  if (event->origin == events::EventOrigin::kExternal) {
    ++stats_.external_events;
  }
  journal_.Record(*event);

  const std::optional<OidId> target = db_.FindObject(event->target);
  if (!target.has_value()) {
    if (options_.strict_targets) {
      throw NotFoundError("event '" + event->name + "' targets unknown OID " +
                          FormatOid(event->target));
    }
    ++stats_.dangling_events;
    Log::Warning("dropping event '" + event->name + "' for unknown OID " +
                 FormatOid(event->target));
    return true;
  }

  // One string hash per queue event; everything past this point works
  // on the SymbolId. (Events can reach the queue without PostEvent —
  // replayed traces, direct queue pushes — so Intern, not Find.)
  const SymbolId event_sym = symbols_.Intern(event->name);
  stats_.interner_symbols = symbols_.size();

  {
    processing_ = true;
    ProcessWave(*target, *event, event_sym);
    processing_ = false;
  }

  DispatchPendingExecs();
  return true;
}

void RunTimeEngine::DispatchPendingExecs() {
  // The wave is complete: dispatch the wrapper scripts it launched.
  // Scripts run outside the processing window so they can create
  // objects, register links and check data in; the events they cause
  // queue up behind this one (strict FIFO is preserved).
  std::vector<ExecRequest> launches;
  launches.swap(pending_execs_);
  for (const ExecRequest& request : launches) {
    if (executor_ == nullptr) break;
    const int status = executor_->Execute(request);
    if (status != 0) {
      Log::Warning("script '" + request.script + "' exited with status " +
                   std::to_string(status));
    }
  }
}

void RunTimeEngine::DeliverSeededWave(std::vector<OidId> seeds,
                                      EventMessage event) {
  if (processing_ || seeds.empty()) return;
  if (event.timestamp == 0) event.timestamp = clock_.NowSeconds();
  const SymbolId event_sym = symbols_.Intern(event.name);
  stats_.interner_symbols = symbols_.size();
  ++stats_.seeded_handoff_waves;
  event.origin = events::EventOrigin::kPropagated;
  {
    processing_ = true;
    ProcessWaveSeeded(std::move(seeds), /*seeds_are_origin=*/false, event,
                      event_sym);
    processing_ = false;
  }
  DispatchPendingExecs();
}

size_t RunTimeEngine::ProcessAll() {
  if (processing_) return 0;  // Re-entrant call from a script.
  size_t processed = 0;
  while (ProcessOne()) ++processed;
  return processed;
}

// --- Wave processing -----------------------------------------------------------

void RunTimeEngine::ProcessWave(OidId start, const EventMessage& event,
                                SymbolId event_sym) {
  ProcessWaveSeeded({start}, /*seeds_are_origin=*/true, event, event_sym);
}

void RunTimeEngine::AdmitReceiver(OidId receiver, const EventMessage& event,
                                  WaveVisited& visited,
                                  std::vector<OidId>& out) {
  if (!visited.Insert(receiver.value())) return;
  if (router_ == nullptr || router_->Owns(receiver)) {
    // Owned receiver: appended unclaimed — ProcessWaveSeeded claims the
    // whole generation in one batched round before its rules run, which
    // makes delivery exactly-once across the wave (another sub-wave of
    // the same epoch may have re-entered this shard through a different
    // boundary link). The local visited probe above is just a cheap
    // pre-filter.
    out.push_back(receiver);
    return;
  }
  // Foreign shard: marked in the local visited set (so this sub-wave
  // hands it off at most once) but delivered — and claimed — remotely.
  ++stats_.handoff_receivers;
  router_->Handoff(receiver, event);
}

void RunTimeEngine::CollectReceivers(OidId source, const EventMessage& event,
                                     SymbolId event_sym, WaveVisited& visited,
                                     std::vector<OidId>& out) {
  if (options_.use_propagation_index) {
    ++stats_.index_lookups;
    // Interned path: one integer-hash probe. String shim otherwise —
    // the PR-1 cost model kept for differential benchmarks.
    const PropagationIndex::Bucket* bucket =
        options_.interned_fast_path
            ? index_.Receivers(source, event.direction, event_sym)
            : index_.Receivers(source, event.direction,
                               std::string_view(event.name));
    if (bucket == nullptr) return;
    for (const PropagationIndex::Entry& entry : *bucket) {
      AdmitReceiver(entry.neighbor, event, visited, out);
    }
    return;
  }
  // Pre-index path: scan the adjacency list, filtering each link's
  // PROPAGATE list.
  if (event.direction == Direction::kDown) {
    for (const LinkId link_id : db_.OutLinks(source)) {
      ++stats_.links_scanned;
      const Link& link = db_.GetLink(link_id);
      if (link.Propagates(event.name)) {
        AdmitReceiver(link.to, event, visited, out);
      }
    }
  } else {
    for (const LinkId link_id : db_.InLinks(source)) {
      ++stats_.links_scanned;
      const Link& link = db_.GetLink(link_id);
      if (link.Propagates(event.name)) {
        AdmitReceiver(link.from, event, visited, out);
      }
    }
  }
}

void RunTimeEngine::ProcessWaveSeeded(std::vector<OidId> seeds,
                                      bool seeds_are_origin,
                                      const EventMessage& event,
                                      SymbolId event_sym) {
  ++stats_.waves_started;
  size_t extent = 0;

  // The wave runs as batched BFS generations: every receiver of the
  // current generation is collected (and de-duplicated against the
  // shared visited set, which makes cyclic link graphs and parallel
  // links terminate) before any receiver's rules run. An OID processes
  // a given wave at most once; delivery order equals the order the
  // naive per-delivery scan would produce.
  VisitedLease visited(*this);
  std::vector<OidId> batch;
  batch.reserve(seeds.size());
  for (const OidId seed : seeds) {
    if (visited.set.Insert(seed.value())) batch.push_back(seed);
  }

  // Every generation — seeds included — passes one batched
  // (epoch, OID) claim round before its rules run: two shards may hand
  // the same receiver off for one wave, and a cross-shard cycle leads a
  // wave back to OIDs it already delivered to. The claim collapses both
  // to a single delivery, exactly like the single visited set of an
  // unsharded wave, at one claim-store round per generation.
  const auto claim_batch = [&](std::vector<OidId>& generation) {
    if (router_ == nullptr || event.wave_epoch == 0 || generation.empty()) {
      return;
    }
    ++stats_.claim_batches;
    stats_.dedup_suppressed +=
        router_->ClaimSeedBatch(event.wave_epoch, generation);
  };
  claim_batch(batch);

  // Shared-payload journal key, built once per wave: per-delivery
  // journaling interns only the target block/view (seed-batch rows).
  events::EventJournal::PayloadKey journal_key;
  bool journal_key_ready = false;

  std::vector<OidId> next_batch;
  std::vector<DirectionPost> direction_posts;
  bool is_origin_batch = seeds_are_origin;
  bool truncated = false;
  while (!batch.empty() && !truncated) {
    ++stats_.wave_batches;

    // Rule phases 1-4 at every member of this generation, in order.
    for (const OidId target : batch) {
      if (extent >= options_.max_wave_deliveries) {
        truncated = true;
        ++stats_.waves_truncated;
        Log::Warning("propagation wave truncated at " + std::to_string(extent) +
                     " deliveries (event '" + event.name + "')");
        break;
      }
      ++extent;
      ++stats_.wave_deliveries;

      // Delivery bracket: under a lane-stealing router, sub-waves of
      // different epochs may execute concurrently and reconverge on one
      // OID — the router serializes same-OID rule execution here.
      if (router_ != nullptr) router_->BeginDelivery(target);

      if (!is_origin_batch) {
        ++stats_.propagated_deliveries;
        if (options_.journal_propagated) {
          // Interned journal row off the shared payload key: no
          // EventMessage is copied or re-interned per delivery.
          if (!journal_key_ready) {
            journal_key = journal_.MakePayloadKey(event);
            journal_key_ready = true;
          }
          journal_.RecordPropagated(journal_key, db_.GetObject(target).oid);
        }
      }

      // Direction-posted events (post without a 'to' clause) start their
      // own sub-waves from this OID immediately after its rules.
      direction_posts.clear();
      if (options_.interned_fast_path) {
        // The payload is shared across the whole wave; RunRulesAt
        // resolves per-delivery fields from `target`.
        RunRulesAt(target, event, event_sym, direction_posts);
      } else {
        // PR-1 delivery: one payload copy per OID reached. Kept as the
        // baseline the interned path is benchmarked against.
        EventMessage local = event;
        local.target = db_.GetObject(target).oid;
        RunRulesAt(target, local, event_sym, direction_posts);
      }

      if (router_ != nullptr) router_->EndDelivery(target);

      // Direction-posted events are "directly propagated from the
      // current OID" (paper §3.2, example 2): the posting OID's rules
      // are *not* re-run; all qualifying neighbours seed ONE sub-wave so
      // shared downstream objects are delivered to once, not once per
      // link.
      for (DirectionPost& posted : direction_posts) {
        // A direction post opens its own wave scope (the unsharded
        // engine gives it a fresh visited set); under a router it gets
        // its own epoch so its deliveries dedup independently of the
        // enclosing wave's. The nested wave claims its own seed batch.
        if (router_ != nullptr) posted.event.wave_epoch = router_->MintEpoch();
        std::vector<OidId> posted_seeds;
        {
          VisitedLease seen(*this);
          CollectReceivers(target, posted.event, posted.name_sym, seen.set,
                           posted_seeds);
        }
        if (!posted_seeds.empty()) {
          posted.event.origin = events::EventOrigin::kPropagated;
          ProcessWaveSeeded(std::move(posted_seeds),
                            /*seeds_are_origin=*/false, posted.event,
                            posted.name_sym);
        }
      }
    }

    // Phase 5, batched: collect the whole next generation before any of
    // its rules run, then claim it in one round.
    next_batch.clear();
    if (!truncated) {
      for (const OidId target : batch) {
        CollectReceivers(target, event, event_sym, visited.set, next_batch);
      }
      claim_batch(next_batch);
    }
    batch.swap(next_batch);
    is_origin_batch = false;
  }

  if (extent > stats_.max_wave_extent) stats_.max_wave_extent = extent;
}

// --- Rule execution ---------------------------------------------------------------

void RunTimeEngine::ForEachMatchingRule(
    std::string_view view, std::string_view event_name,
    const std::function<void(const blueprint::RuntimeRule&)>& fn) const {
  if (!blueprint_) return;
  const ViewTemplate* sources[2] = {blueprint_->DefaultView(),
                                    blueprint_->FindView(view)};
  for (const ViewTemplate* source : sources) {
    if (source == nullptr) continue;
    for (const blueprint::RuntimeRule& rule : source->rules) {
      if (rule.event == event_name) fn(rule);
    }
  }
}

void RunTimeEngine::RunRulesAt(OidId target, const EventMessage& event,
                               SymbolId event_sym,
                               std::vector<DirectionPost>& direction_posts) {
  if (options_.interned_fast_path && blueprint_ != nullptr) {
    // Compiled path: one cached binding + one integer-keyed lookup
    // yields the phase-partitioned actions; no string touches a name.
    const CompiledRules::RuleSet* rules =
        compiled_.Find(BindingOf(target).rules, event_sym);
    if (rules != nullptr) {
      ++stats_.rule_table_hits;
    } else {
      ++stats_.rule_table_misses;
    }

    // Phase 1: assignments.
    if (rules != nullptr) {
      for (const blueprint::ActionAssign* assign : rules->assigns) {
        ExecuteAssign(target, *assign, event);
      }
    }

    // Phase 2: continuous assignments are re-evaluated.
    RefreshComputedProperties(target);

    if (rules == nullptr) return;
    // Phase 3: exec and notify, in declaration order.
    for (const blueprint::Action* action : rules->execs_and_notifies) {
      if (const auto* exec = std::get_if<blueprint::ActionExec>(action)) {
        ExecuteExec(target, *exec, event);
      } else if (const auto* notify =
                     std::get_if<blueprint::ActionNotify>(action)) {
        ExecuteNotify(target, *notify, event);
      }
    }
    // Phase 4: posts (posted-event names pre-interned at compile).
    for (const CompiledRules::CompiledPost& post : rules->posts) {
      ExecutePost(target, *post.action, post.event_sym, event,
                  direction_posts);
    }
    return;
  }

  // Interpreted path (PR-1 baseline): three rule-list scans with string
  // comparisons per delivery. Borrowing the view avoids the historical
  // per-delivery copy; meta-objects are stable while rules run.
  const std::string_view view = db_.GetObject(target).oid.view;

  // Phase 1: assignments.
  ForEachMatchingRule(view, event.name, [&](const blueprint::RuntimeRule& rule) {
    for (const blueprint::Action& action : rule.actions) {
      if (const auto* assign = std::get_if<blueprint::ActionAssign>(&action)) {
        ExecuteAssign(target, *assign, event);
      }
    }
  });

  // Phase 2: continuous assignments are re-evaluated.
  RefreshComputedProperties(target);

  // Phase 3: exec (and notify — "a script can be executed (i.e. to send
  // warnings to users, to invoke tools)").
  ForEachMatchingRule(view, event.name, [&](const blueprint::RuntimeRule& rule) {
    for (const blueprint::Action& action : rule.actions) {
      if (const auto* exec = std::get_if<blueprint::ActionExec>(&action)) {
        ExecuteExec(target, *exec, event);
      } else if (const auto* notify =
                     std::get_if<blueprint::ActionNotify>(&action)) {
        ExecuteNotify(target, *notify, event);
      }
    }
  });

  // Phase 4: posts.
  ForEachMatchingRule(view, event.name, [&](const blueprint::RuntimeRule& rule) {
    for (const blueprint::Action& action : rule.actions) {
      if (const auto* post = std::get_if<blueprint::ActionPost>(&action)) {
        ExecutePost(target, *post, symbols_.Intern(post->event), event,
                    direction_posts);
      }
    }
  });
}

void RunTimeEngine::ExecuteAssign(OidId target,
                                  const blueprint::ActionAssign& act,
                                  const EventMessage& event) {
  ++stats_.assign_actions;
  const std::string value = act.value.Expand(MakeResolver(target, event));
  SetPropertyCounted(target, act.property, value);
}

void RunTimeEngine::ExecuteExec(OidId target, const blueprint::ActionExec& act,
                                const EventMessage& event) {
  ++stats_.exec_actions;
  if (executor_ == nullptr) return;
  const blueprint::VariableResolver resolver = MakeResolver(target, event);
  ExecRequest request;
  request.script = act.script.Expand(resolver);
  request.args.reserve(act.args.size());
  for (const blueprint::StringTemplate& arg : act.args) {
    request.args.push_back(arg.Expand(resolver));
  }
  request.target = db_.GetObject(target).oid;
  request.event = event.name;
  request.user = event.user;
  request.timestamp = clock_.NowSeconds();
  // Launched now, dispatched after the wave (see ProcessOne): a wrapper
  // script's effects must not interleave with the propagation of the
  // event that launched it.
  pending_execs_.push_back(std::move(request));
}

void RunTimeEngine::ExecuteNotify(OidId target,
                                  const blueprint::ActionNotify& act,
                                  const EventMessage& event) {
  ++stats_.notify_actions;
  if (!notification_sink_) return;
  Notification notification;
  notification.message = act.message.Expand(MakeResolver(target, event));
  notification.target = db_.GetObject(target).oid;
  notification.event = event.name;
  notification.timestamp = clock_.NowSeconds();
  notification_sink_(notification);
}

void RunTimeEngine::ExecutePost(OidId target, const blueprint::ActionPost& act,
                                SymbolId posted_sym, const EventMessage& event,
                                std::vector<DirectionPost>& direction_posts) {
  ++stats_.post_actions;
  EventMessage posted;
  posted.name = act.event;
  posted.direction = act.direction;
  posted.arg = act.arg.Expand(MakeResolver(target, event));
  posted.user = event.user;
  posted.timestamp = clock_.NowSeconds();
  posted.origin = events::EventOrigin::kRule;

  if (act.to_view.empty()) {
    // Example 2 form: "post outofdate up" — directly propagated from the
    // current OID within this wave.
    direction_posts.push_back(DirectionPost{std::move(posted), posted_sym});
    return;
  }

  // Example 1 form: "post behavioral_sim_ok down to VerilogNetList" —
  // posted to the nearest OIDs of the named view; they go through the
  // FIFO queue like any other event (and are re-interned at intake).
  const std::vector<OidId> targets =
      FindNearestOfView(target, act.direction, act.to_view);
  if (targets.empty()) {
    ++stats_.post_to_misses;
    Log::Warning("post " + act.event + " to " + act.to_view +
                 ": no reachable OID of that view");
    return;
  }
  for (const OidId to : targets) {
    EventMessage copy = posted;
    copy.target = db_.GetObject(to).oid;
    ++stats_.rule_posted_events;
    queue_.Push(std::move(copy));
  }
}

void RunTimeEngine::RefreshComputedProperties(OidId id) {
  if (!blueprint_) return;
  // Continuous assignments may read each other; two passes let simple
  // one-level chains settle deterministically (document: deeper chains
  // settle on subsequent events, matching an implementation that
  // re-evaluates on every meta-data change).
  EventMessage no_event;  // Continuous assignments see no $arg.
  if (options_.interned_fast_path) {
    const std::vector<const blueprint::ContinuousAssignment*>& assignments =
        *BindingOf(id).rules.assignments;
    for (int pass = 0; pass < 2; ++pass) {
      for (const blueprint::ContinuousAssignment* assignment : assignments) {
        ++stats_.reevaluations;
        const std::string value =
            assignment->expr.EvaluateBool(MakeResolver(id, no_event))
                ? "true"
                : "false";
        SetPropertyCounted(id, assignment->property, value);
      }
    }
    return;
  }
  const std::string_view view = db_.GetObject(id).oid.view;
  const ViewTemplate* sources[2] = {blueprint_->DefaultView(),
                                    blueprint_->FindView(view)};
  for (int pass = 0; pass < 2; ++pass) {
    for (const ViewTemplate* source : sources) {
      if (source == nullptr) continue;
      for (const blueprint::ContinuousAssignment& assignment :
           source->assignments) {
        ++stats_.reevaluations;
        const std::string value =
            assignment.expr.EvaluateBool(MakeResolver(id, no_event))
                ? "true"
                : "false";
        SetPropertyCounted(id, assignment.property, value);
      }
    }
  }
}

blueprint::VariableResolver RunTimeEngine::MakeResolver(
    OidId target, const EventMessage& event) const {
  // The resolver borrows the event (all callers expand synchronously)
  // and reads properties live from the database so assignment chains
  // observe earlier writes. Per-delivery fields ($oid, $block, $view,
  // $version) come from the delivery target's meta-object — the shared
  // wave payload's own target is the wave origin, not this delivery.
  const EventMessage* message = &event;
  return [this, target, message](std::string_view name) -> std::string {
    if (name == "arg") return message->arg;
    if (name == "user") return message->user;
    if (name == "event") return message->name;
    if (name == "dir") return events::DirectionName(message->direction);
    if (name == "date") return SimClock::FormatDate(clock_.NowSeconds());
    const MetaObject& object = db_.GetObject(target);
    if (name == "oid") return metadb::FormatOidWire(object.oid);
    if (name == "OID") return metadb::FormatOid(object.oid);
    if (name == "block") return object.oid.block;
    if (name == "view") return object.oid.view;
    if (name == "version") return std::to_string(object.oid.version);
    if (name == "owner") {
      const auto it = object.properties.find("owner");
      return it != object.properties.end() ? it->second : object.created_by;
    }
    if (const std::string* value =
            db_.GetProperty(target, std::string(name))) {
      return *value;
    }
    return std::string();
  };
}

std::vector<OidId> RunTimeEngine::FindNearestOfView(OidId start,
                                                    Direction direction,
                                                    std::string_view view) {
  // Breadth-first search in the event direction, not gated by PROPAGATE:
  // 'post ... to <View>' names its target explicitly, it does not ask
  // permission of the links in between. The nearest frontier containing
  // OIDs of the requested view wins.
  std::deque<std::pair<OidId, size_t>> frontier;
  VisitedLease visited(*this);
  std::vector<OidId> found;
  size_t found_depth = 0;

  frontier.emplace_back(start, 0);
  visited.set.Insert(start.value());

  while (!frontier.empty()) {
    const auto [current, depth] = frontier.front();
    frontier.pop_front();
    if (!found.empty() && depth > found_depth) break;

    if (current != start && db_.GetObject(current).oid.view == view) {
      if (found.empty()) found_depth = depth;
      found.push_back(current);
      continue;  // Don't search beyond a hit.
    }

    const auto expand = [&](OidId next) {
      if (visited.set.Insert(next.value())) {
        frontier.emplace_back(next, depth + 1);
      }
    };
    if (direction == Direction::kDown) {
      for (const LinkId link_id : db_.OutLinks(current)) {
        expand(db_.GetLink(link_id).to);
      }
    } else {
      for (const LinkId link_id : db_.InLinks(current)) {
        expand(db_.GetLink(link_id).from);
      }
    }
  }
  return found;
}

void RunTimeEngine::SetPropertyCounted(OidId id, const std::string& name,
                                       const std::string& value) {
  const std::string* existing = db_.GetProperty(id, name);
  if (existing != nullptr && *existing == value) return;
  db_.SetProperty(id, name, value);
  ++stats_.property_writes;
}

}  // namespace damocles::engine
