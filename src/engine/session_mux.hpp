// N concurrent wire sessions multiplexed over one project server.
//
// The paper's tracking system serves a whole design team at once. The
// mux gives each connected designer a WireSession-compatible surface
// while keeping the server's single-writer discipline:
//
//  * READ commands (classified by the wire-command registry) run on
//    the caller's thread against a pinned published snapshot
//    (MetaDatabase::Latest()) — one atomic load, no locks, never
//    blocked by a committing wave. Any number of sessions read
//    concurrently.
//  * MUTATE commands are admitted into a bounded queue and applied by
//    one apply thread in arrival order (the paper's "events are
//    processed sequentially, first-in first-out", now across
//    sessions). When the server is sharded, the applied events then
//    flow through the sharded engine's lock-free intake rings and
//    execute on its worker pool — the mux serializes *admission*, not
//    wave execution. After each applied mutation the apply thread
//    publishes the next snapshot epoch, so readers observe mutations
//    as an ordered sequence of consistent versions.
//  * BACKPRESSURE is in-band: when the mutation queue is full the
//    command is rejected immediately with a "busy: ..." response
//    (count in busy_rejections()) instead of blocking the session —
//    a remote client must never be able to wedge the server. A
//    mutation that was admitted but waits in the queue longer than
//    the configured deadline is withdrawn unapplied and answered
//    "timeout: ..." — so a stalled apply thread cannot hold every
//    session hostage either. Degraded-mode rejections from the
//    server ("degraded: ...") flow back the same in-band way.
//
// Every applied mutation is recorded in the mutation log
// {seq, user, line, response, epoch_after}; replaying the log against
// a fresh server reproduces the exact epoch sequence, which is what
// the concurrent differential tests assert.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/backoff.hpp"
#include "engine/wire_session.hpp"

namespace damocles::engine {

/// Mux tuning knobs.
struct SessionMuxOptions {
  /// Mutations admitted but not yet applied. A full queue rejects new
  /// mutations with an in-band "busy: ..." response.
  size_t mutation_queue_capacity = 256;

  /// Publish a snapshot epoch after every applied mutation (the
  /// default; gives the differential tests a deterministic epoch per
  /// mutation). Off, readers keep answering from the last explicit
  /// publish.
  bool publish_each_mutation = true;

  /// Bounded retry when the mutation queue is full. With attempts = 0
  /// (the default) a full queue rejects immediately ("busy: ...");
  /// with attempts = N the submitting session waits for queue space
  /// under jittered exponential backoff (initial, initial*multiplier,
  /// ... capped at max, each scaled by a random jitter factor so
  /// saturated sessions don't wake in lockstep) and only rejects
  /// after all attempts saturate. The wait is bounded so a wedged
  /// apply thread still cannot hold a remote client forever.
  common::BackoffPolicy mutation_retry{/*attempts=*/0,
                                       std::chrono::milliseconds(2),
                                       std::chrono::milliseconds(64)};

  /// Per-mutation queue-wait deadline. Zero (the default) waits
  /// forever. Otherwise a mutation still sitting in the queue when
  /// the deadline expires is withdrawn — guaranteed not applied —
  /// and its session gets an in-band "timeout: ..." response. A
  /// mutation the apply thread has already started is never
  /// abandoned: its real response is returned however long it takes
  /// (abandoning it would leave the client unsure whether it ran).
  std::chrono::milliseconds mutation_deadline{0};
};

/// One applied mutation, in apply order (seq ascends from 1).
struct MuxLogEntry {
  uint64_t seq = 0;
  std::string user;
  std::string line;
  std::string response;
  /// Snapshot epoch readers observe once this mutation is visible.
  uint64_t epoch_after = 0;
};

/// The multiplexer. Sessions obtained from Connect() must not outlive
/// the mux.
class SessionMux {
 public:
  /// One connected designer. Execute() is safe to call from the
  /// session's own thread concurrently with every other session.
  class Session {
   public:
    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    /// Executes one wire line: reads answer immediately from a pinned
    /// snapshot; mutations are queued to the apply thread (this call
    /// waits for the response) or rejected with "busy: ..." when the
    /// queue is full.
    std::string Execute(std::string_view line);

    const std::string& user() const noexcept { return user_; }

    /// Epoch the most recent read answered from.
    uint64_t last_read_epoch() const noexcept {
      return reader_.last_read_epoch();
    }

   private:
    friend class SessionMux;
    Session(SessionMux& mux, std::string user)
        : mux_(mux),
          user_(std::move(user)),
          reader_(mux.server_, user_),
          writer_(mux.server_, user_) {
      reader_.set_snapshot_reads(true);
    }

    SessionMux& mux_;
    std::string user_;
    /// Client-thread side: read commands on pinned snapshots.
    WireSession reader_;
    /// Apply-thread side: mutations, touched only by the apply loop.
    WireSession writer_;
  };

  explicit SessionMux(ProjectServer& server, SessionMuxOptions options = {});
  ~SessionMux();

  SessionMux(const SessionMux&) = delete;
  SessionMux& operator=(const SessionMux&) = delete;

  /// Opens a session for `user`.
  std::unique_ptr<Session> Connect(std::string user);

  /// Snapshot epoch readers currently answer from.
  uint64_t head_epoch() const noexcept {
    return server_.database().snapshot_epoch();
  }

  uint64_t mutations_applied() const noexcept {
    return mutations_applied_.load(std::memory_order_relaxed);
  }
  uint64_t busy_rejections() const noexcept {
    return busy_rejections_.load(std::memory_order_relaxed);
  }
  /// Waits that found queue space before exhausting their attempts.
  uint64_t mutation_retries() const noexcept {
    return mutation_retries_.load(std::memory_order_relaxed);
  }
  /// Mutations withdrawn unapplied after waiting past the deadline.
  uint64_t mutation_timeouts() const noexcept {
    return mutation_timeouts_.load(std::memory_order_relaxed);
  }

  /// Copy of the mutation log (apply order).
  std::vector<MuxLogEntry> MutationLog() const;

  ProjectServer& server() noexcept { return server_; }

 private:
  struct PendingMutation {
    std::string line;
    Session* session = nullptr;
    /// Identifies this entry so a deadline-expired submitter can find
    /// and withdraw it. The submitter stays blocked until its entry is
    /// either withdrawn by itself or popped by the apply thread, so
    /// `session` can never dangle.
    uint64_t ticket = 0;
    std::promise<std::string> promise;
  };

  std::string SubmitMutation(Session& session, std::string_view line);
  void ApplyLoop();

  ProjectServer& server_;
  SessionMuxOptions options_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  /// Signalled when the apply thread pops an entry: submitters in a
  /// retry wait wake to re-check for queue space.
  std::condition_variable space_cv_;
  std::deque<PendingMutation> queue_;
  uint64_t next_ticket_ = 0;  ///< Guarded by queue_mutex_.
  bool stop_ = false;

  mutable std::mutex log_mutex_;
  std::vector<MuxLogEntry> log_;

  std::atomic<uint64_t> mutations_applied_{0};
  std::atomic<uint64_t> busy_rejections_{0};
  std::atomic<uint64_t> mutation_retries_{0};
  std::atomic<uint64_t> mutation_timeouts_{0};

  std::thread apply_thread_;
};

}  // namespace damocles::engine
