// The BluePrint run-time engine (paper §3.2) — the event-driven machine
// that is the paper's primary contribution.
//
// Responsibilities:
//  * template application: when the tracking system is informed of a new
//    OID or Link, attach the properties/links the blueprint prescribes
//    and carry values across versions (copy/move);
//  * event processing, strictly FIFO, with the paper's phase order:
//      1. assign rules           (property updates)
//      2. continuous assignments (re-evaluated)
//      3. exec rules             (wrapper scripts / notify)
//      4. post rules             (new events)
//      5. propagation            (event X plus direction-posted events)
//  * propagation: an event crosses a link iff the link's PROPAGATE list
//    names it and the link orientation matches the event direction; each
//    receiving OID runs its own rules and propagates further.
//
// Propagation fast path: wave expansion is served by a per-OID
// PropagationIndex keyed by (event, direction). The index is built in
// one pass when a blueprint is installed and maintained incrementally
// through MetaDatabase link-observer notifications (link add / delete /
// endpoint move / PROPAGATE change), so phase 5 asks one hash lookup per
// OID instead of scanning its adjacency and every link's PROPAGATE list.
// Waves are processed in batches (BFS generations): all receivers of a
// generation are collected and de-duplicated before any of their rules
// run, which keeps delivery order identical to the naive scan and lets
// stats report deliveries and batches per wave.
//
// Interned hot path: after intake the engine never hashes or compares a
// string. Event and view names are interned through an engine-owned
// SymbolTable (at PostEvent / ProcessOne / object creation / blueprint
// install); the propagation index is keyed by packed
// (OID, direction, SymbolId) integers; rule matching is served by
// per-(view, event) tables compiled at LoadBlueprint
// (blueprint/compiled_rules.hpp); the wave's visited set is an
// epoch-stamped vector pooled across waves; and one immutable event
// payload is shared across every delivery of a wave instead of being
// copied per OID. Two options gate the fast paths for differential
// testing and benchmarking: use_propagation_index = false reproduces
// the pre-index engine (adjacency scans), interned_fast_path = false
// reproduces the string-keyed indexed engine (interpreted rule
// matching, per-delivery payload copies). Delivery order — and thus the
// journal — is byte-identical across all three engines.
#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "blueprint/ast.hpp"
#include "blueprint/compiled_rules.hpp"
#include "common/clock.hpp"
#include "common/symbol.hpp"
#include "engine/propagation_index.hpp"
#include "engine/script_executor.hpp"
#include "engine/stats.hpp"
#include "events/event.hpp"
#include "events/event_queue.hpp"
#include "events/journal.hpp"
#include "metadb/meta_database.hpp"

namespace damocles::engine {

/// Engine tuning knobs.
struct EngineOptions {
  /// Safety cap on deliveries within one propagation wave. A healthy
  /// blueprint never approaches this; a cyclic propagate-everything
  /// blueprint is stopped and counted in stats().waves_truncated.
  size_t max_wave_deliveries = 1u << 20;

  /// Record propagated deliveries in the journal (besides queue events).
  bool journal_propagated = true;

  /// Throw NotFoundError on events targeting unknown OIDs instead of
  /// counting them as dangling and moving on.
  bool strict_targets = false;

  /// Serve wave expansion from the per-OID propagation index instead of
  /// scanning adjacency lists. Off reproduces the pre-index engine
  /// (benchmark baseline / differential testing); delivery order is
  /// identical either way.
  bool use_propagation_index = true;

  /// Run the symbol-interned hot path: SymbolId-keyed receiver lookups,
  /// compiled per-(view, event) rule tables and copy-free wave delivery.
  /// Off reproduces the string-keyed indexed engine (interpreted rule
  /// scans, one payload copy per delivery) for differential tests and
  /// as the benchmark baseline; delivery order is identical either way.
  bool interned_fast_path = true;

  /// Skip the constructor's observer registration and initial full
  /// index build: the owner installs a scoped index via SetIndexScope
  /// right after construction (the sharded engine does this for every
  /// shard engine), so building — and briefly holding — a full-graph
  /// index first would be pure waste on a pre-populated database.
  bool external_index_maintenance = false;
};

/// Routes propagation receivers that live outside this engine's shard
/// and arbitrates exactly-once delivery across shards. The sharded
/// engine installs one per shard engine; unsharded engines run without
/// (every receiver is owned, the wave's own visited set suffices). See
/// sharded_engine.hpp.
class WaveRouter {
 public:
  virtual ~WaveRouter() = default;

  /// True when `receiver` is delivered by this engine.
  virtual bool Owns(metadb::OidId receiver) = 0;

  /// Takes over delivery of `event` to the foreign `receiver`. Called at
  /// most once per (sub-wave, receiver) — the sub-wave's local visited
  /// set already marked it — but sub-waves of one wave running on
  /// different shards may each hand the same receiver off; the target
  /// shard's (epoch, OID) claim collapses those to one delivery.
  /// `event` is only borrowed for the duration of the call.
  virtual void Handoff(metadb::OidId receiver,
                       const events::EventMessage& event) = 0;

  /// Mints a fresh wave-scope epoch. The engine opens a new scope for
  /// every direction-posted sub-wave (its own visited universe, exactly
  /// like the fresh visited set of the unsharded engine).
  virtual uint64_t MintEpoch() = 0;

  /// Claims a whole BFS generation for exactly-once delivery: removes
  /// from `seeds` every receiver another sub-wave of `epoch` already
  /// claimed (preserving order) and returns the number removed. Called
  /// only for receivers this engine owns. The batch is the claim
  /// primitive — the engine claims once per generation, so a router
  /// backed by a shared claim store pays one synchronization round per
  /// generation, not one per receiver.
  virtual size_t ClaimSeedBatch(uint64_t epoch,
                                std::vector<metadb::OidId>& seeds) = 0;

  /// Bracketing hooks around one delivery (journal row + rule phases)
  /// at `receiver`. A router that lets sub-waves of *different* epochs
  /// run on concurrent executors (lane stealing) serializes same-OID
  /// deliveries here; the defaults are no-ops for single-executor
  /// shards. BeginDelivery may block; the engine never holds two
  /// receivers' brackets at once.
  virtual void BeginDelivery(metadb::OidId receiver) { (void)receiver; }
  virtual void EndDelivery(metadb::OidId receiver) { (void)receiver; }
};

/// The run-time engine. Owns the FIFO queue and the journal; operates on
/// an externally owned meta-database (several engines can be pointed at
/// snapshots of the same project in tests).
class RunTimeEngine : private metadb::LinkObserver {
 public:
  using NotificationSink = std::function<void(const Notification&)>;

  RunTimeEngine(metadb::MetaDatabase& db, SimClock& clock,
                EngineOptions options = {});
  ~RunTimeEngine() override;

  RunTimeEngine(const RunTimeEngine&) = delete;
  RunTimeEngine& operator=(const RunTimeEngine&) = delete;

  // --- BluePrint lifecycle -------------------------------------------

  /// Installs (or replaces) the blueprint. Replacing rules mid-project
  /// is how the paper "loosens" tracking between phases; meta-data is
  /// untouched, only future events see the new rules. Call
  /// RetemplateLinks() afterwards to also refresh link annotations.
  /// Rule tables are recompiled and the propagation index rebuilt here.
  /// `policy_version` stamps the PolicyStore commit the blueprint came
  /// from (0 = direct/unversioned install); it travels with the
  /// compiled generation, so cached per-OID bindings rebind lazily to
  /// the new version without a stop-the-world reload.
  void LoadBlueprint(blueprint::Blueprint blueprint,
                     uint64_t policy_version = 0);

  /// Re-applies the current blueprint's link templates to every live
  /// link: PROPAGATE, TYPE and the carry policy are refreshed (links
  /// with no matching template keep their endpoints but propagate
  /// nothing). This is the meta-data half of "re-initializing the
  /// BluePrint mechanism" between project phases (paper §3.2). Returns
  /// the number of links touched.
  size_t RetemplateLinks();

  bool HasBlueprint() const noexcept { return blueprint_ != nullptr; }
  const blueprint::Blueprint& Current() const;

  /// Wires the script executor used by exec rules (may be null: exec
  /// actions are then counted but skipped).
  void SetScriptExecutor(ScriptExecutor* executor) noexcept {
    executor_ = executor;
  }

  /// Receives notify-action output (defaults to discarding).
  void SetNotificationSink(NotificationSink sink) {
    notification_sink_ = std::move(sink);
  }

  // --- Creation notifications (template rules) --------------------------

  /// Informs the engine that a design activity created a new version of
  /// (block, view). Creates the meta-object, applies property templates
  /// (default / copy / move), carries move/copy links over from the
  /// previous version and refreshes continuous assignments.
  metadb::OidId OnCreateObject(std::string_view block, std::string_view view,
                               std::string_view user);

  /// Informs the engine that a design activity created a link. The
  /// matching link template (looked up in the target's view, then the
  /// default view) supplies PROPAGATE / TYPE / carry.
  metadb::LinkId OnCreateLink(metadb::LinkKind kind, metadb::OidId from,
                              metadb::OidId to);

  // --- Event intake -----------------------------------------------------

  /// Queues an event (FIFO). The event name is interned here, so by the
  /// time the wave runs its symbol is a table hit.
  void PostEvent(events::EventMessage event);

  /// Processes the head event; returns false when the queue is empty.
  bool ProcessOne();

  /// Drains the queue; returns the number of queue events processed.
  size_t ProcessAll();

  /// Delivers `event` to `seeds` as a propagated sub-wave (the
  /// cross-shard handoff entry point): the seeds' rules run and the
  /// wave expands onward, but no queue record is written — each
  /// delivery journals as a propagated record, exactly as it would have
  /// inside the originating wave. No-op on empty seeds.
  void DeliverSeededWave(std::vector<metadb::OidId> seeds,
                         events::EventMessage event);

  /// Installs (or clears, with nullptr) the shard router consulted for
  /// every propagation receiver. The router must outlive the engine or
  /// be cleared before destruction.
  void SetWaveRouter(WaveRouter* router) noexcept { router_ = router; }

  /// Restricts the propagation index to sources for which `owns`
  /// returns true and detaches this engine from MetaDatabase link
  /// notifications — an external maintainer (the sharded engine's index
  /// router) applies each link op to the owning shard's index instead,
  /// so a link op costs O(1) index updates, not one per shard. The
  /// index is rebuilt under the new scope (and again on every
  /// LoadBlueprint) unless `rebuild` is false — the sharded engine
  /// passes false and bulk-fills all shard indexes in one routed pass
  /// instead of N filtered walks. Pass nullptr to restore
  /// self-maintenance over the full link graph. Structural: call only
  /// while quiescent.
  void SetIndexScope(std::function<bool(metadb::OidId)> owns,
                     bool rebuild = true);

  // --- State access ------------------------------------------------------

  /// Re-evaluates all continuous assignments of one OID (exposed for
  /// callers that mutate properties directly, e.g. the query layer's
  /// what-if analysis).
  void RefreshComputedProperties(metadb::OidId id);

  metadb::MetaDatabase& database() noexcept { return db_; }
  const metadb::MetaDatabase& database() const noexcept { return db_; }
  events::EventQueue& queue() noexcept { return queue_; }
  const events::EventJournal& journal() const noexcept { return journal_; }
  /// Mutable journal access for the durability layer (events/wal.hpp):
  /// sink attachment and crash-recovery row restore. Engine code itself
  /// never mutates the journal through this.
  events::EventJournal& mutable_journal() noexcept { return journal_; }
  const EngineStats& stats() const noexcept { return stats_; }
  SimClock& clock() noexcept { return clock_; }
  const PropagationIndex& propagation_index() const noexcept { return index_; }

  /// Oracle check of the propagation index against a snapshot of the
  /// database (primary form — published versions are handle-identical,
  /// so the index's buckets apply verbatim) or against the live
  /// database (compat overload).
  bool ConsistentWith(const metadb::Snapshot& snapshot,
                      std::string* diff = nullptr) const {
    return index_.ConsistentWith(snapshot, diff);
  }
  bool ConsistentWith(const metadb::MetaDatabase& db,
                      std::string* diff = nullptr) const {
    return index_.ConsistentWith(db, diff);
  }

  /// Mutable index access for the external maintainer installed with
  /// SetIndexScope (the sharded engine's index router).
  PropagationIndex& mutable_propagation_index() noexcept { return index_; }

  /// The engine's interner. Symbol ids are stable for the engine's
  /// lifetime (the table only grows, even across blueprint reloads).
  const SymbolTable& symbols() const noexcept { return symbols_; }

  /// The rule tables compiled from the current blueprint.
  const blueprint::CompiledRules& compiled_rules() const noexcept {
    return compiled_;
  }

  /// PolicyStore version id the installed blueprint was compiled from
  /// (0 = unversioned). On the interned fast path this equals
  /// compiled_rules().source_version(); the interpreted baseline tracks
  /// it here so differential engines agree on version identity.
  uint64_t policy_version() const noexcept { return policy_version_; }

  /// Zeroes the statistics (benchmark warm-up support). Gauges
  /// (interner size) are re-seeded from live state.
  void ResetStats() noexcept {
    stats_ = EngineStats{};
    stats_.interner_symbols = symbols_.size();
  }

  /// Drops the audit journal (benchmark support: long measurement loops
  /// would otherwise accumulate unbounded records).
  void ClearJournal() { journal_.Clear(); }

 private:
  /// Epoch-stamped visited set: clearing between waves is one counter
  /// bump, not a hash-set teardown, and membership is one array probe.
  class WaveVisited {
   public:
    /// Starts a fresh wave over `slots` object slots.
    void Begin(size_t slots) {
      if (stamps_.size() < slots) stamps_.resize(slots, 0);
      if (++epoch_ == 0) {  // Epoch wrapped: stale stamps must die.
        std::fill(stamps_.begin(), stamps_.end(), 0u);
        epoch_ = 1;
      }
    }

    /// True when `slot` was not yet visited this wave (and marks it).
    bool Insert(uint32_t slot) {
      if (slot >= stamps_.size()) stamps_.resize(slot + 1, 0);
      if (stamps_[slot] == epoch_) return false;
      stamps_[slot] = epoch_;
      return true;
    }

   private:
    std::vector<uint32_t> stamps_;  ///< Epoch of last visit, by OID slot.
    uint32_t epoch_ = 0;
  };

  /// Direction-posted sub-waves nest (a post rule fires mid-wave), so
  /// visited sets are pooled by nesting depth; a lease hands out the
  /// set for the current depth and returns it on scope exit.
  struct VisitedLease {
    explicit VisitedLease(RunTimeEngine& owner)
        : engine(owner), set(owner.AcquireVisited()) {}
    ~VisitedLease() { --engine.visited_depth_; }
    VisitedLease(const VisitedLease&) = delete;
    VisitedLease& operator=(const VisitedLease&) = delete;

    RunTimeEngine& engine;
    WaveVisited& set;
  };

  /// A direction-posted event plus its pre-interned name, ready to seed
  /// a sub-wave without further string work.
  struct DirectionPost {
    events::EventMessage event;
    SymbolId name_sym = SymbolTable::kNoSymbol;
  };

  /// Per-OID resolution of the interned hot path: the OID's view symbol
  /// (immutable — slots are never reused) and its rule-table binding
  /// for the current compiled generation.
  struct OidBinding {
    uint32_t generation = 0;  ///< compiled_.generation() when resolved.
    SymbolId view_sym = SymbolTable::kNoSymbol;
    blueprint::CompiledRules::Binding rules;
  };

  // --- metadb::LinkObserver (propagation index maintenance) -------------
  void OnLinkAdded(metadb::LinkId id, const metadb::Link& link) override;
  void OnLinkRemoved(metadb::LinkId id, const metadb::Link& link) override;
  void OnLinkEndpointMoved(metadb::LinkId id, bool endpoint_from,
                           metadb::OidId old_endpoint,
                           const metadb::Link& link) override;
  void OnLinkPropagatesChanged(metadb::LinkId id,
                               const std::vector<std::string>& old_propagates,
                               const metadb::Link& link) override;

  WaveVisited& AcquireVisited();

  /// Launches the wrapper scripts collected during the wave that just
  /// completed (ProcessOne / DeliverSeededWave tails).
  void DispatchPendingExecs();

  /// Admits one propagation receiver: deduplicates against `visited`,
  /// then either appends it to `out` or hands it to the shard router
  /// when a router is installed and disowns it.
  void AdmitReceiver(metadb::OidId receiver, const events::EventMessage& event,
                     WaveVisited& visited, std::vector<metadb::OidId>& out);

  /// The interned-view/rule-table binding of one OID, resolved lazily
  /// and cached by slot (re-resolved after blueprint reloads).
  const OidBinding& BindingOf(metadb::OidId id);

  /// Rule phases executed at one OID for one event. `event_sym` is the
  /// interned event name. The event payload is shared — per-delivery
  /// fields ($oid, $block, ...) resolve from `target`, not the message.
  void RunRulesAt(metadb::OidId target, const events::EventMessage& event,
                  SymbolId event_sym,
                  std::vector<DirectionPost>& direction_posts);

  void ExecuteAssign(metadb::OidId target, const blueprint::ActionAssign& act,
                     const events::EventMessage& event);
  void ExecuteExec(metadb::OidId target, const blueprint::ActionExec& act,
                   const events::EventMessage& event);
  void ExecuteNotify(metadb::OidId target, const blueprint::ActionNotify& act,
                     const events::EventMessage& event);
  void ExecutePost(metadb::OidId target, const blueprint::ActionPost& act,
                   SymbolId posted_sym, const events::EventMessage& event,
                   std::vector<DirectionPost>& direction_posts);

  /// Runs one full wave: rules at the target, then link-filtered BFS.
  void ProcessWave(metadb::OidId start, const events::EventMessage& event,
                   SymbolId event_sym);

  /// Wave engine: delivers `event` to every seed (and onward through
  /// qualifying links) with one shared visited set. `seeds_are_origin`
  /// marks seeds as queue-event targets (not propagated deliveries).
  /// Under a router every generation — the seed batch included — is run
  /// through one batched (epoch, OID) claim before any of its rules
  /// execute, so exactly-once holds across sub-waves with one claim
  /// round per generation. Processing is batched: each BFS generation's
  /// receivers are fully collected (and de-duplicated) before any of
  /// their rules run. The payload is borrowed for the whole wave, never
  /// copied per delivery.
  void ProcessWaveSeeded(std::vector<metadb::OidId> seeds,
                         bool seeds_are_origin,
                         const events::EventMessage& event,
                         SymbolId event_sym);

  /// Appends the receivers of `event` leaving `source` to `out`,
  /// skipping OIDs already in `visited` (which is updated). Served by
  /// the propagation index when enabled (keyed by `event_sym` on the
  /// interned path), by an adjacency scan otherwise; all paths produce
  /// the same order.
  void CollectReceivers(metadb::OidId source,
                        const events::EventMessage& event, SymbolId event_sym,
                        WaveVisited& visited, std::vector<metadb::OidId>& out);

  /// Collects the matching rule actions for (view of target, event) —
  /// the interpreted matcher, kept as the interned_fast_path = false
  /// baseline. Default-view rules come first, then the specific view's.
  void ForEachMatchingRule(
      std::string_view view, std::string_view event_name,
      const std::function<void(const blueprint::RuntimeRule&)>& fn) const;

  /// Variable resolver bound to one OID + one event. Borrows `event`
  /// (callers use the resolver synchronously); per-delivery fields
  /// resolve from `target`'s meta-object.
  blueprint::VariableResolver MakeResolver(
      metadb::OidId target, const events::EventMessage& event) const;

  /// Finds the nearest OIDs of `view` reachable from `start` in
  /// `direction` (BFS over links regardless of PROPAGATE).
  std::vector<metadb::OidId> FindNearestOfView(metadb::OidId start,
                                               events::Direction direction,
                                               std::string_view view);

  /// Link-template lookup for OnCreateLink.
  const blueprint::LinkTemplate* FindLinkTemplate(
      metadb::LinkKind kind, std::string_view from_view,
      std::string_view to_view) const;

  void SetPropertyCounted(metadb::OidId id, const std::string& name,
                          const std::string& value);

  metadb::MetaDatabase& db_;
  SimClock& clock_;
  EngineOptions options_;
  std::unique_ptr<blueprint::Blueprint> blueprint_;
  uint64_t policy_version_ = 0;
  ScriptExecutor* executor_ = nullptr;
  WaveRouter* router_ = nullptr;
  NotificationSink notification_sink_;

  events::EventQueue queue_;
  events::EventJournal journal_;
  EngineStats stats_;

  /// The engine's interner: every event and view name crossing the
  /// intake boundary becomes a SymbolId here. Declared before the
  /// members that key off it.
  SymbolTable symbols_;

  /// Rule tables compiled from blueprint_ (interned fast path).
  blueprint::CompiledRules compiled_;

  /// Per-OID-slot binding cache for the interned fast path.
  std::vector<OidBinding> bindings_;

  /// Visited-set pool, indexed by sub-wave nesting depth.
  std::vector<std::unique_ptr<WaveVisited>> visited_pool_;
  size_t visited_depth_ = 0;

  /// Per-OID receiver index for phase-5 wave expansion; maintained via
  /// the LinkObserver callbacks above while options_.use_propagation_index
  /// is set (and rebuilt wholesale on LoadBlueprint). Shares symbols_.
  PropagationIndex index_;

  // Wrapper scripts are *launched* in rule phase 3 but their effects
  // arrive asynchronously (they are shell scripts talking back over the
  // network). We model that by collecting requests during the wave and
  // dispatching them once the wave has fully propagated; anything the
  // scripts post goes through the FIFO queue like any other activity.
  std::vector<ExecRequest> pending_execs_;
  // Re-entrancy guard: scripts invoked by the engine may call back into
  // ProcessAll (e.g. a wrapper checking data in); the nested call is a
  // no-op and the outer loop drains the queue.
  bool processing_ = false;
};

}  // namespace damocles::engine
