#include "engine/wire_session.hpp"

#include "blueprint/validator.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "metadb/config_builder.hpp"
#include "query/report.hpp"

namespace damocles::engine {

namespace {

constexpr const char* kHelp =
    "commands:\n"
    "  postEvent <ev> <up|down> <block,view,version> [\"arg\"]\n"
    "  checkin <block> <view> [\"content\"]\n"
    "  checkout <block> <view>\n"
    "  link <use|derive> <from-oid> <to-oid>\n"
    "  query outofdate | query state <oid> | query block <block>\n"
    "  blockers <prop>=<value> [...]\n"
    "  report | snapshot <name> | validate | advance <seconds> | help\n";

std::string NextWord(std::string_view& rest) {
  size_t i = 0;
  while (i < rest.size() && rest[i] == ' ') ++i;
  const size_t start = i;
  while (i < rest.size() && rest[i] != ' ') ++i;
  std::string word(rest.substr(start, i - start));
  rest.remove_prefix(i);
  return word;
}

/// Remaining text as one argument: quoted or verbatim-trimmed.
std::string RestArgument(std::string_view rest) {
  const std::string_view trimmed = Trim(rest);
  if (!trimmed.empty() && trimmed.front() == '"') {
    size_t pos = 0;
    std::string out;
    if (UnquoteString(trimmed, pos, out)) return out;
  }
  return std::string(trimmed);
}

}  // namespace

std::string WireSession::HandleLine(std::string_view line) {
  ++commands_handled_;
  try {
    return Dispatch(line);
  } catch (const Error& error) {
    return std::string("error: ") + error.what() + "\n";
  }
}

std::string WireSession::Dispatch(std::string_view line) {
  std::string_view rest = line;
  const std::string command = NextWord(rest);
  if (command.empty() || command == "help") return kHelp;

  if (command == "postEvent") {
    server_.SubmitWireLine(line, user_);
    return "ok\n";
  }

  if (command == "checkin") {
    const std::string block = NextWord(rest);
    const std::string view = NextWord(rest);
    if (block.empty() || view.empty()) {
      return "error: usage: checkin <block> <view> [\"content\"]\n";
    }
    const std::string content = RestArgument(rest);
    const metadb::Oid oid = server_.CheckIn(block, view, content, user_);
    return "ok " + metadb::FormatOidWire(oid) + "\n";
  }

  if (command == "checkout") {
    const std::string block = NextWord(rest);
    const std::string view = NextWord(rest);
    if (block.empty() || view.empty()) {
      return "error: usage: checkout <block> <view>\n";
    }
    const metadb::Oid oid = server_.CheckOut(block, view, user_);
    return "ok " + metadb::FormatOidWire(oid) + "\n";
  }

  if (command == "link") {
    const std::string kind_word = NextWord(rest);
    const std::string from_word = NextWord(rest);
    const std::string to_word = NextWord(rest);
    if (to_word.empty()) {
      return "error: usage: link <use|derive> <from-oid> <to-oid>\n";
    }
    metadb::LinkKind kind;
    if (kind_word == "use") {
      kind = metadb::LinkKind::kUse;
    } else if (kind_word == "derive") {
      kind = metadb::LinkKind::kDerive;
    } else {
      return "error: link kind must be 'use' or 'derive'\n";
    }
    server_.RegisterLink(kind, metadb::ParseOidWire(from_word),
                         metadb::ParseOidWire(to_word));
    return "ok\n";
  }

  if (command == "query") {
    query::ProjectQuery q(server_.database());
    const std::string what = NextWord(rest);
    if (what == "outofdate") {
      const auto matches = q.OutOfDate();
      std::string out = std::to_string(matches.size()) + " out of date\n";
      for (const auto& match : matches) {
        out += "  " + metadb::FormatOid(match.oid) + "\n";
      }
      return out;
    }
    if (what == "state") {
      const metadb::Oid oid = metadb::ParseOidWire(NextWord(rest));
      const auto id = server_.database().FindObject(oid);
      if (!id.has_value()) {
        return "error: no such OID " + metadb::FormatOid(oid) + "\n";
      }
      const metadb::MetaObject& object = server_.database().GetObject(*id);
      std::string out = metadb::FormatOid(oid) + "\n";
      for (const auto& [name, value] : object.properties) {
        out += "  " + name + " = '" + value + "'\n";
      }
      return out;
    }
    if (what == "block") {
      const std::string block = NextWord(rest);
      const auto matches = q.FindByBlock(block);
      std::string out = std::to_string(matches.size()) + " object(s)\n";
      for (const auto& match : matches) {
        out += "  " + metadb::FormatOid(match.oid) + "\n";
      }
      return out;
    }
    return "error: usage: query outofdate|state <oid>|block <block>\n";
  }

  if (command == "blockers") {
    std::vector<query::PlannedProperty> plan;
    while (true) {
      const std::string pair = NextWord(rest);
      if (pair.empty()) break;
      const size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        return "error: blockers arguments are <prop>=<value>\n";
      }
      plan.push_back(query::PlannedProperty{pair.substr(0, eq),
                                            pair.substr(eq + 1)});
    }
    if (plan.empty()) {
      return "error: usage: blockers <prop>=<value> [...]\n";
    }
    query::ProjectQuery q(server_.database());
    return query::FormatBlockers(q.DistanceToPlannedState(plan, {}));
  }

  if (command == "report") {
    return query::FormatProjectReport(
        query::BuildProjectReport(server_.database()));
  }

  if (command == "snapshot") {
    const std::string name = NextWord(rest);
    if (name.empty()) return "error: usage: snapshot <name>\n";
    auto config = metadb::BuildFullSnapshot(server_.database(), name,
                                            server_.clock().NowSeconds());
    const size_t addresses = config.AddressCount();
    server_.database().SaveConfiguration(std::move(config));
    return "ok snapshot '" + name + "' with " + std::to_string(addresses) +
           " addresses\n";
  }

  if (command == "validate") {
    if (!server_.engine().HasBlueprint()) {
      return "error: no blueprint installed\n";
    }
    return blueprint::FormatValidationReport(
        blueprint::ValidateBlueprint(server_.engine().Current()));
  }

  if (command == "advance") {
    const std::string seconds = NextWord(rest);
    try {
      server_.AdvanceClock(std::stoll(seconds));
    } catch (const std::exception&) {
      return "error: usage: advance <seconds>\n";
    }
    return "ok " + server_.clock().FormatDate() + "\n";
  }

  return "error: unknown command '" + command + "' (try 'help')\n";
}

}  // namespace damocles::engine
