#include "engine/wire_session.hpp"

#include "blueprint/parser.hpp"
#include "blueprint/validator.hpp"
#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/strings.hpp"
#include "metadb/config_builder.hpp"
#include "query/report.hpp"
#include "viz/flow_viz.hpp"

namespace damocles::engine {

namespace {

std::string NextWord(std::string_view& rest) {
  size_t i = 0;
  while (i < rest.size() && rest[i] == ' ') ++i;
  const size_t start = i;
  while (i < rest.size() && rest[i] != ' ') ++i;
  std::string word(rest.substr(start, i - start));
  rest.remove_prefix(i);
  return word;
}

/// Remaining text as one argument: quoted or verbatim-trimmed.
std::string RestArgument(std::string_view rest) {
  const std::string_view trimmed = Trim(rest);
  if (!trimmed.empty() && trimmed.front() == '"') {
    size_t pos = 0;
    std::string out;
    if (UnquoteString(trimmed, pos, out)) return out;
  }
  return std::string(trimmed);
}

}  // namespace

/// Registry row + the member handler bound to it. The single table
/// below is the source of truth for dispatch, help, the README table
/// and the mux's read/mutate classification.
struct WireSession::Entry {
  WireCommandInfo info;
  Handler handler;
};

const std::vector<WireCommandInfo>& WireCommands() {
  static const std::vector<WireCommandInfo> infos = [] {
    std::vector<WireCommandInfo> out;
    for (const WireSession::Entry& entry : WireSession::Registry()) {
      out.push_back(entry.info);
    }
    return out;
  }();
  return infos;
}

const std::string& WireCommandHelp() {
  static const std::string help = [] {
    std::string out = "commands:\n";
    for (const WireCommandInfo& info : WireCommands()) {
      if (info.deprecated) continue;
      out += "  " + std::string(info.usage) + "\n      " +
             std::string(info.summary) + "\n";
    }
    out += "deprecated:\n";
    for (const WireCommandInfo& info : WireCommands()) {
      if (!info.deprecated) continue;
      out += "  " + std::string(info.usage) + "  (use '" +
             std::string(info.replacement) + "')\n";
    }
    return out;
  }();
  return help;
}

std::string WireCommandMarkdownTable() {
  std::string out =
      "| Command | Kind | Usage | Description |\n"
      "|---------|------|-------|-------------|\n";
  for (const WireCommandInfo& info : WireCommands()) {
    std::string summary(info.summary);
    if (info.deprecated) {
      summary += " Deprecated; use `" + std::string(info.replacement) + "`.";
    }
    out += "| `" + std::string(info.name) + "` | " +
           (info.kind == WireCommandKind::kRead ? "read" : "mutate") +
           " | `" + std::string(info.usage) + "` | " + summary + " |\n";
  }
  return out;
}

WireCommandKind ClassifyWireLine(std::string_view line) {
  std::string_view rest = line;
  const std::string command = NextWord(rest);
  for (const WireCommandInfo& info : WireCommands()) {
    if (info.name == command) return info.kind;
  }
  // Unknown (and empty) lines are reads: they produce an immediate
  // in-band error without occupying the mutation queue.
  return WireCommandKind::kRead;
}

bool WireLineAllowedDegraded(std::string_view line) {
  std::string_view rest = line;
  const std::string command = NextWord(rest);
  for (const WireCommandInfo& info : WireCommands()) {
    if (info.name != command) continue;
    return info.kind == WireCommandKind::kRead || info.allowed_degraded;
  }
  return true;  // Unknown lines answer in-band errors; always allowed.
}

std::string WireSession::HandleLine(std::string_view line) {
  ++commands_handled_;
  try {
    return Dispatch(line);
  } catch (const DegradedError& error) {
    // Read-only mode rejections are a distinct in-band class so
    // clients (and the chaos harness) can tell "retry after heal"
    // apart from "your command was wrong".
    return std::string("degraded: ") + error.what() + "\n";
  } catch (const Error& error) {
    return std::string("error: ") + error.what() + "\n";
  }
}

std::string WireSession::Dispatch(std::string_view line) {
  std::string_view rest = line;
  const std::string command = NextWord(rest);
  if (command.empty()) return WireCommandHelp();

  for (const Entry& entry : Registry()) {
    if (entry.info.name != command) continue;
    Context ctx;
    ctx.rest = rest;
    ctx.line = line;
    if (entry.info.kind == WireCommandKind::kRead) {
      // Reads answer from a snapshot: the latest published version
      // when snapshot reads are on (lock-free against committing
      // waves), the live database otherwise.
      ctx.snap = snapshot_reads_ ? server_.database().Latest()
                                 : metadb::Snapshot::Live(server_.database());
      last_read_epoch_ = ctx.snap.epoch();
    } else {
      // Mutations always see (and change) the live database.
      ctx.snap = metadb::Snapshot::Live(server_.database());
    }
    return (this->*entry.handler)(ctx);
  }
  return "error: unknown command '" + command + "' (try 'help')\n";
}

std::string WireSession::CmdPostEvent(Context& ctx) {
  server_.SubmitWireLine(ctx.line, user_);
  return "ok\n";
}

std::string WireSession::CmdCheckin(Context& ctx) {
  std::string_view rest = ctx.rest;
  const std::string block = NextWord(rest);
  const std::string view = NextWord(rest);
  if (block.empty() || view.empty()) {
    return "error: usage: checkin <block> <view> [\"content\"]\n";
  }
  const std::string content = RestArgument(rest);
  const metadb::Oid oid = server_.CheckIn(block, view, content, user_);
  return "ok " + metadb::FormatOidWire(oid) + "\n";
}

std::string WireSession::CmdCheckout(Context& ctx) {
  std::string_view rest = ctx.rest;
  const std::string block = NextWord(rest);
  const std::string view = NextWord(rest);
  if (block.empty() || view.empty()) {
    return "error: usage: checkout <block> <view>\n";
  }
  const metadb::Oid oid = server_.CheckOut(block, view, user_);
  return "ok " + metadb::FormatOidWire(oid) + "\n";
}

std::string WireSession::CmdLink(Context& ctx) {
  std::string_view rest = ctx.rest;
  const std::string kind_word = NextWord(rest);
  const std::string from_word = NextWord(rest);
  const std::string to_word = NextWord(rest);
  if (to_word.empty()) {
    return "error: usage: link <use|derive> <from-oid> <to-oid>\n";
  }
  metadb::LinkKind kind;
  if (kind_word == "use") {
    kind = metadb::LinkKind::kUse;
  } else if (kind_word == "derive") {
    kind = metadb::LinkKind::kDerive;
  } else {
    return "error: link kind must be 'use' or 'derive'\n";
  }
  server_.RegisterLink(kind, metadb::ParseOidWire(from_word),
                       metadb::ParseOidWire(to_word));
  return "ok\n";
}

std::string WireSession::CmdQuery(Context& ctx) {
  const metadb::MetaDatabase& db = ctx.snap.db();
  query::ProjectQuery q(ctx.snap);
  std::string_view rest = ctx.rest;
  const std::string what = NextWord(rest);
  if (what == "outofdate") {
    const auto matches = q.OutOfDate();
    std::string out = std::to_string(matches.size()) + " out of date\n";
    for (const auto& match : matches) {
      out += "  " + metadb::FormatOid(match.oid) + "\n";
    }
    return out;
  }
  if (what == "state") {
    const metadb::Oid oid = metadb::ParseOidWire(NextWord(rest));
    const auto id = db.FindObject(oid);
    if (!id.has_value()) {
      return "error: no such OID " + metadb::FormatOid(oid) + "\n";
    }
    const metadb::MetaObject& object = db.GetObject(*id);
    std::string out = metadb::FormatOid(oid) + "\n";
    for (const auto& [name, value] : object.properties) {
      out += "  " + name + " = '" + value + "'\n";
    }
    return out;
  }
  if (what == "block") {
    const std::string block = NextWord(rest);
    const auto matches = q.FindByBlock(block);
    std::string out = std::to_string(matches.size()) + " object(s)\n";
    for (const auto& match : matches) {
      out += "  " + metadb::FormatOid(match.oid) + "\n";
    }
    return out;
  }
  return "error: usage: query outofdate|state <oid>|block <block>\n";
}

std::string WireSession::CmdBlockers(Context& ctx) {
  std::string_view rest = ctx.rest;
  std::vector<query::PlannedProperty> plan;
  while (true) {
    const std::string pair = NextWord(rest);
    if (pair.empty()) break;
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      return "error: blockers arguments are <prop>=<value>\n";
    }
    plan.push_back(
        query::PlannedProperty{pair.substr(0, eq), pair.substr(eq + 1)});
  }
  if (plan.empty()) {
    return "error: usage: blockers <prop>=<value> [...]\n";
  }
  query::ProjectQuery q(ctx.snap);
  return query::FormatBlockers(q.DistanceToPlannedState(plan, {}));
}

std::string WireSession::CmdReport(Context& ctx) {
  return query::FormatProjectReport(query::BuildProjectReport(ctx.snap));
}

std::string WireSession::CmdViz(Context& ctx) {
  std::string_view rest = ctx.rest;
  const std::string what = NextWord(rest);
  if (what == "block") {
    const std::string block = NextWord(rest);
    if (block.empty()) return "error: usage: viz block <block>\n";
    return viz::RenderBlockState(ctx.snap, block);
  }
  if (what == "dot") {
    return viz::ExportDot(ctx.snap);
  }
  return "error: usage: viz block <block>|dot\n";
}

std::string WireSession::CmdEpoch(Context& ctx) {
  return "epoch " + std::to_string(ctx.snap.epoch()) + "\n";
}

std::string WireSession::CmdCheckpoint(Context& ctx) {
  std::string_view rest = ctx.rest;
  const std::string name = NextWord(rest);
  if (name.empty()) return "error: usage: checkpoint <name>\n";
  auto config = metadb::BuildFullCheckpoint(server_.database(), name,
                                            server_.clock().NowSeconds());
  const size_t addresses = config.AddressCount();
  server_.database().SaveConfiguration(std::move(config));
  return "ok checkpoint '" + name + "' with " + std::to_string(addresses) +
         " addresses\n";
}

std::string WireSession::CmdSnapshotAlias(Context& ctx) {
  return "notice: 'snapshot' is deprecated; use 'checkpoint <name>'\n" +
         CmdCheckpoint(ctx);
}

std::string WireSession::CmdValidate(Context& ctx) {
  (void)ctx;
  if (!server_.engine().HasBlueprint()) {
    return "error: no blueprint installed\n";
  }
  return blueprint::FormatValidationReport(
      blueprint::ValidateBlueprint(server_.engine().Current()));
}

std::string WireSession::CmdAdvance(Context& ctx) {
  std::string_view rest = ctx.rest;
  const std::string seconds = NextWord(rest);
  try {
    server_.AdvanceClock(std::stoll(seconds));
  } catch (const std::exception&) {
    return "error: usage: advance <seconds>\n";
  }
  return "ok " + server_.clock().FormatDate() + "\n";
}

std::string WireSession::CmdWalStatus(Context& ctx) {
  (void)ctx;
  const WalStatus status = server_.GetWalStatus();
  if (!status.enabled) return "wal off\n";
  std::string out = "wal on dir \"" + status.dir + "\" fsync " +
                    std::string(events::FsyncPolicyName(status.fsync)) + "\n";
  if (status.recovered) {
    out += "  recovered checkpoint " + std::to_string(status.checkpoint_id) +
           " (op-seq " + std::to_string(status.recovered_op_seq) + ")\n";
  } else {
    out += "  recovered no checkpoint\n";
  }
  out += "  replayed " + std::to_string(status.replayed_ops) +
         " op(s) through offset " + std::to_string(status.replayed_ops_offset) +
         "\n";
  out += "  restored " + std::to_string(status.restored_rows) +
         " journal row(s)\n";
  if (status.manifests_skipped > 0) {
    out += "  skipped " + std::to_string(status.manifests_skipped) +
           " torn manifest(s)\n";
  }
  out += "  ops logged " + std::to_string(status.ops_logged) +
         ", stream end " + std::to_string(status.ops_end_offset) +
         ", checkpoints taken " + std::to_string(status.checkpoints_taken) +
         "\n";
  if (status.last_checkpoint_id > 0) {
    out += "  chain tip " + std::to_string(status.last_checkpoint_id) +
           (status.last_checkpoint_delta ? " (delta)" : " (full)") + ", base " +
           std::to_string(status.chain_base_id) + ", length " +
           std::to_string(status.chain_length) + "\n";
  }
  out += std::string("  checkpoints ") +
         (status.background ? "background" : "inline") + ", retention ";
  if (status.retain_segments < 0) {
    out += "off\n";
  } else {
    out += "keep " + std::to_string(status.retain_segments) + ", pruned " +
           std::to_string(status.segments_pruned) + " segment(s) / " +
           std::to_string(status.bytes_pruned) + " byte(s), " +
           std::to_string(status.checkpoints_pruned) +
           " checkpoint file(s)\n";
  }
  if (status.gc_artifacts_removed > 0) {
    out += "  gc removed " + std::to_string(status.gc_artifacts_removed) +
           " orphaned artifact(s)\n";
  }
  if (status.failed_removals > 0) {
    out += "  warning: " + std::to_string(status.failed_removals) +
           " failed removal(s) — pruning is behind, disk may be leaking\n";
  }
  return out;
}

std::string WireSession::CmdWalCheckpoint(Context& ctx) {
  std::string_view rest = ctx.rest;
  const std::string kind = NextWord(rest);
  CheckpointMode mode = CheckpointMode::kFull;
  if (kind == "delta") {
    mode = CheckpointMode::kDelta;
  } else if (!kind.empty() && kind != "full") {
    return "error: usage: wal-checkpoint [full|delta]\n";
  }
  const uint64_t id = server_.WalCheckpoint(mode);
  // Full checkpoints keep the pre-incremental reply byte-stable; a
  // delta (the request may have been silently upgraded to full when no
  // base existed) reports what it chained onto.
  const WalStatus status = server_.GetWalStatus();
  std::string out = "ok checkpoint " + std::to_string(id);
  if (status.last_checkpoint_id == id && status.last_checkpoint_delta) {
    out += " delta base " + std::to_string(status.chain_base_id);
  }
  return out + "\n";
}

std::string WireSession::CmdRecover(Context& ctx) {
  const std::string dir = RestArgument(ctx.rest);
  if (dir.empty()) return "error: usage: recover <wal-dir>\n";
  const size_t applied = server_.RecoverFrom(dir);
  return "ok replayed " + std::to_string(applied) + " op(s)\n";
}

std::string WireSession::CmdHealth(Context& ctx) {
  (void)ctx;
  const ServerHealth health = server_.GetHealth();
  std::string out =
      std::string("health ") + (health.degraded ? "degraded" : "ok") + "\n";
  if (!health.reason.empty()) out += "  reason: " + health.reason + "\n";
  out += std::string("  wal ") + (health.durable ? "on" : "off") +
         ", failures " + std::to_string(health.wal_failures) + ", retries " +
         std::to_string(health.wal_retries) + "\n";
  out += "  checkpoint failures " + std::to_string(health.checkpoint_failures) +
         ", retries " + std::to_string(health.checkpoint_retries) + ", heals " +
         std::to_string(health.heals) + "\n";
  if (health.prune_behind) {
    out += "  warning: pruning behind (" +
           std::to_string(health.failed_removals) +
           " failed removal(s)) — disk may be leaking\n";
  }
  return out;
}

std::string WireSession::CmdWalReopen(Context& ctx) {
  (void)ctx;
  const uint64_t id = server_.WalReopen();
  return "ok healed at checkpoint " + std::to_string(id) + "\n";
}

std::string WireSession::CmdFailpoint(Context& ctx) {
  std::string_view rest = ctx.rest;
  const std::string verb = NextWord(rest);
  common::Failpoints& failpoints = common::Failpoints::Instance();
  if (verb == "set") {
    const std::string name = NextWord(rest);
    const std::string config = NextWord(rest);
    if (name.empty() || config.empty()) {
      return "error: usage: failpoint set <name> <config>\n";
    }
    failpoints.Configure(name, config);
    return "ok failpoint '" + name + "' armed\n";
  }
  if (verb == "clear") {
    const std::string name = NextWord(rest);
    if (name.empty()) return "error: usage: failpoint clear <name>|all\n";
    if (name == "all") {
      failpoints.ClearAll();
    } else {
      failpoints.Clear(name);
    }
    return "ok\n";
  }
  if (verb == "list") {
    const auto statuses = failpoints.List();
    if (statuses.empty()) return "no failpoints armed\n";
    std::string out;
    for (const common::FailpointStatus& status : statuses) {
      out += status.name + " " + status.config + " (evaluated " +
             std::to_string(status.evaluations) + ", hit " +
             std::to_string(status.hits) + ")\n";
    }
    return out;
  }
  return "error: usage: failpoint set <name> <config> | clear <name>|all | "
         "list\n";
}

std::string WireSession::CmdPolicyPropose(Context& ctx) {
  const std::string_view trimmed = Trim(ctx.rest);
  std::string text;
  std::string message;
  if (!trimmed.empty() && trimmed.front() == '"') {
    size_t pos = 0;
    if (!UnquoteString(trimmed, pos, text)) {
      return "error: usage: policy-propose \"<rule-text>\" [\"message\"]\n";
    }
    message = RestArgument(trimmed.substr(pos));
  } else {
    text = std::string(trimmed);
  }
  if (text.empty()) {
    return "error: usage: policy-propose \"<rule-text>\" [\"message\"]\n";
  }
  const uint64_t id = server_.PolicyPropose(text, user_, message);
  return "ok proposed version " + std::to_string(id) + "\n";
}

std::string WireSession::CmdPolicyValidate(Context& ctx) {
  std::string_view rest = ctx.rest;
  const std::string id_word = NextWord(rest);
  uint64_t id = 0;
  try {
    id = std::stoull(id_word);
  } catch (const std::exception&) {
    return "error: usage: policy-validate <version-id>\n";
  }
  const blueprint::ValidationReport report = server_.PolicyValidate(id);
  const policy::PolicyVersion version = server_.policy_store().Get(id);
  return "version " + std::to_string(id) + " " +
         policy::PolicyVersionStatusName(version.status) + "\n" +
         blueprint::FormatValidationReport(report);
}

std::string WireSession::CmdPolicyPromote(Context& ctx) {
  std::string_view rest = ctx.rest;
  const std::string id_word = NextWord(rest);
  uint64_t id = 0;
  try {
    id = std::stoull(id_word);
  } catch (const std::exception&) {
    return "error: usage: policy-promote <version-id>\n";
  }
  const policy::PolicyVersion version = server_.PolicyPromote(id);
  return "ok promoted version " + std::to_string(version.id) +
         " (engine generation " +
         std::to_string(server_.engine().compiled_rules().generation()) + ")\n";
}

std::string WireSession::CmdPolicyRollback(Context& ctx) {
  (void)ctx;
  const policy::PolicyVersion version = server_.PolicyRollback();
  return "ok rolled back to version " + std::to_string(version.id) +
         " (engine generation " +
         std::to_string(server_.engine().compiled_rules().generation()) + ")\n";
}

std::string WireSession::CmdPolicyLog(Context& ctx) {
  (void)ctx;
  const policy::PolicyStore& store = server_.policy_store();
  const std::vector<policy::PolicyVersion> versions = store.Versions();
  if (versions.empty()) return "no policy versions\n";
  std::string out;
  for (const policy::PolicyVersion& version : versions) {
    out += std::to_string(version.id) + " parent " +
           std::to_string(version.parent) + " " +
           policy::PolicyVersionStatusName(version.status);
    if (!version.author.empty()) out += " by " + version.author;
    if (!version.message.empty()) {
      out += " " + QuoteString(version.message);
    }
    out += "\n";
  }
  out += "active " + std::to_string(store.active_id()) + "\n";
  return out;
}

std::string WireSession::CmdShadowWave(Context& ctx) {
  std::string_view rest = ctx.rest;
  const std::string id_word = NextWord(rest);
  const std::string event = NextWord(rest);
  const std::string dir_word = NextWord(rest);
  const std::string oid_word = NextWord(rest);
  const std::string depth_word = NextWord(rest);
  const char* usage =
      "error: usage: shadow-wave <version-id> <event> <up|down> "
      "<block,view,version> [depth]\n";
  uint64_t id = 0;
  try {
    id = std::stoull(id_word);
  } catch (const std::exception&) {
    return usage;
  }
  if (event.empty() || oid_word.empty()) return usage;
  events::Direction direction;
  if (dir_word == "up") {
    direction = events::Direction::kUp;
  } else if (dir_word == "down") {
    direction = events::Direction::kDown;
  } else {
    return usage;
  }
  policy::ShadowWaveOptions options;
  if (!depth_word.empty()) {
    try {
      options.depth_cap = std::stoull(depth_word);
    } catch (const std::exception&) {
      return usage;
    }
  }
  const policy::PolicyVersion version = server_.policy_store().Get(id);
  const blueprint::Blueprint proposed =
      blueprint::ParseBlueprint(version.blueprint_text);
  return query::FormatShadowWaveReport(
      policy::TraceShadowWave(ctx.snap.db(), proposed, version.id, event,
                              direction, metadb::ParseOidWire(oid_word),
                              options));
}

std::string WireSession::CmdHelp(Context& ctx) {
  (void)ctx;
  return WireCommandHelp();
}

const std::vector<WireSession::Entry>& WireSession::Registry() {
  using Kind = WireCommandKind;
  static const std::vector<WireSession::Entry> registry = {
      {{"postEvent", "postEvent <ev> <up|down> <block,view,version> [\"arg\"]",
        "Post a tracking event into the propagation engine.", Kind::kMutate,
        false, ""},
       &WireSession::CmdPostEvent},
      {{"checkin", "checkin <block> <view> [\"content\"]",
        "Check design data in; registers the new version and posts ckin.",
        Kind::kMutate, false, ""},
       &WireSession::CmdCheckin},
      {{"checkout", "checkout <block> <view>",
        "Check the latest version out for editing.", Kind::kMutate, false,
        ""},
       &WireSession::CmdCheckout},
      {{"link", "link <use|derive> <from-oid> <to-oid>",
        "Register a hierarchy or derivation link.", Kind::kMutate, false, ""},
       &WireSession::CmdLink},
      {{"query", "query outofdate|state <oid>|block <block>",
        "Query project state (out-of-date set, one OID, one block).",
        Kind::kRead, false, ""},
       &WireSession::CmdQuery},
      {{"blockers", "blockers <prop>=<value> [...]",
        "Distance to a planned state: what still blocks it.", Kind::kRead,
        false, ""},
       &WireSession::CmdBlockers},
      {{"report", "report", "Per-(block, view) project state report.",
        Kind::kRead, false, ""},
       &WireSession::CmdReport},
      {{"viz", "viz block <block>|dot",
        "Visualize one block's state, or export the graph as DOT.",
        Kind::kRead, false, ""},
       &WireSession::CmdViz},
      {{"epoch", "epoch",
        "Snapshot epoch this session's reads are answering from.",
        Kind::kRead, false, ""},
       &WireSession::CmdEpoch},
      {{"checkpoint", "checkpoint <name>",
        "Save a named configuration capturing every live object and link.",
        Kind::kMutate, false, ""},
       &WireSession::CmdCheckpoint},
      {{"validate", "validate", "Validate the installed blueprint.",
        Kind::kRead, false, ""},
       &WireSession::CmdValidate},
      {{"advance", "advance <seconds>", "Advance the simulated clock.",
        Kind::kMutate, false, ""},
       &WireSession::CmdAdvance},
      {{"wal-status", "wal-status",
        "Durability state: WAL dir, fsync policy, recovery provenance.",
        Kind::kRead, false, ""},
       &WireSession::CmdWalStatus},
      {{"wal-checkpoint", "wal-checkpoint [full|delta]",
        "Sync the WAL and write a durable checkpoint now: the complete "
        "database (full, default), or only the slots dirtied since the "
        "last checkpoint, chained onto it (delta).",
        Kind::kMutate, false, ""},
       &WireSession::CmdWalCheckpoint},
      {{"recover", "recover <wal-dir>",
        "Replay another WAL directory's full operation history here.",
        Kind::kMutate, false, ""},
       &WireSession::CmdRecover},
      {{"health", "health",
        "Fault-tolerance state: degraded flag, WAL failure counters.",
        Kind::kRead, false, ""},
       &WireSession::CmdHealth},
      {{"wal-reopen", "wal-reopen",
        "Heal a degraded server: reopen the WAL and resume writes.",
        Kind::kMutate, false, "", /*allowed_degraded=*/true},
       &WireSession::CmdWalReopen},
      {{"failpoint", "failpoint set <name> <config>|clear <name>|list",
        "Arm, clear or list fault-injection points (failpoint builds only).",
        Kind::kMutate, false, "", /*allowed_degraded=*/true},
       &WireSession::CmdFailpoint},
      {{"policy-propose", "policy-propose \"<rule-text>\" [\"message\"]",
        "Register a candidate blueprint version (parsed, not installed).",
        Kind::kMutate, false, ""},
       &WireSession::CmdPolicyPropose},
      {{"policy-validate", "policy-validate <version-id>",
        "Statically validate a proposed version; records the verdict.",
        Kind::kMutate, false, ""},
       &WireSession::CmdPolicyValidate},
      {{"policy-promote", "policy-promote <version-id>",
        "Make a validated version the live rule set (no restart).",
        Kind::kMutate, false, ""},
       &WireSession::CmdPolicyPromote},
      {{"policy-rollback", "policy-rollback",
        "Restore the previously promoted version's compiled tables.",
        Kind::kMutate, false, ""},
       &WireSession::CmdPolicyRollback},
      {{"policy-log", "policy-log",
        "The policy commit chain: every version, status and the active id.",
        Kind::kRead, false, ""},
       &WireSession::CmdPolicyLog},
      {{"shadow-wave",
        "shadow-wave <version-id> <event> <up|down> <block,view,version> "
        "[depth]",
        "Dry-run impact trace of a proposed version; touches nothing.",
        Kind::kRead, false, ""},
       &WireSession::CmdShadowWave},
      {{"help", "help", "This command list.", Kind::kRead, false, ""},
       &WireSession::CmdHelp},
      {{"snapshot", "snapshot <name>",
        "Save a named configuration capturing every live object and link.",
        Kind::kMutate, true, "checkpoint"},
       &WireSession::CmdSnapshotAlias},
  };
  return registry;
}

}  // namespace damocles::engine
