#include "engine/designer_workspace.hpp"

#include "common/error.hpp"

namespace damocles::engine {

metadb::Oid DesignerWorkspace::SaveDraft(std::string_view block,
                                         std::string_view view,
                                         std::string_view content) {
  return sandbox_.CheckIn(block, view, content, owner_,
                          server_.clock().NowSeconds());
}

std::string DesignerWorkspace::LatestDraft(std::string_view block,
                                           std::string_view view) const {
  const int version = sandbox_.LatestVersion(block, view);
  if (version == 0) return std::string();
  const auto file = sandbox_.Read(
      metadb::Oid{std::string(block), std::string(view), version});
  return file.has_value() ? file->content : std::string();
}

metadb::Oid DesignerWorkspace::Promote(std::string_view block,
                                       std::string_view view) {
  const int version = sandbox_.LatestVersion(block, view);
  if (version == 0) {
    throw NotFoundError("Promote: no draft of " + std::string(block) + "." +
                        std::string(view) + " in " + owner_ + "'s sandbox");
  }
  const auto file = sandbox_.Read(
      metadb::Oid{std::string(block), std::string(view), version});
  ++promotions_;
  return server_.CheckIn(block, view, file->content, owner_);
}

metadb::Oid DesignerWorkspace::Pull(std::string_view block,
                                    std::string_view view) {
  const int version = server_.workspace().LatestVersion(block, view);
  if (version == 0) {
    throw NotFoundError("Pull: the project has no version of " +
                        std::string(block) + "." + std::string(view));
  }
  const auto file = server_.workspace().Read(
      metadb::Oid{std::string(block), std::string(view), version});
  return sandbox_.CheckIn(block, view, file->content, owner_,
                          server_.clock().NowSeconds());
}

}  // namespace damocles::engine
