#include "engine/propagation_index.hpp"

#include <algorithm>

#include "metadb/meta_database.hpp"

namespace damocles::engine {

using events::Direction;
using metadb::Link;
using metadb::LinkId;
using metadb::MetaDatabase;
using metadb::OidId;

namespace {

/// Calls `fn` once per distinct event name, in first-occurrence order.
/// PROPAGATE lists are tiny (a handful of names), so the quadratic
/// distinct scan beats building a set.
template <typename Fn>
void ForEachDistinct(const std::vector<std::string>& events, Fn&& fn) {
  for (size_t i = 0; i < events.size(); ++i) {
    bool seen = false;
    for (size_t j = 0; j < i; ++j) {
      if (events[j] == events[i]) {
        seen = true;
        break;
      }
    }
    if (!seen) fn(events[i]);
  }
}

/// Occurrences of `event` in a PROPAGATE list (duplicates are legal and
/// mirrored one-to-one into bucket entries).
size_t CountOccurrences(const std::vector<std::string>& events,
                        const std::string& event) {
  return static_cast<size_t>(std::count(events.begin(), events.end(), event));
}

}  // namespace

PropagationIndex::NodeIndex& PropagationIndex::Node(OidId source) {
  if (source.value() >= nodes_.size()) {
    nodes_.resize(source.value() + 1);
  }
  return nodes_[source.value()];
}

void PropagationIndex::Clear() {
  nodes_.clear();
  entries_ = 0;
}

void PropagationIndex::Rebuild(const MetaDatabase& db) {
  Clear();
  nodes_.resize(db.ObjectSlotCount());
  // Walk adjacency lists (not link slots): endpoint moves re-append
  // links, so adjacency order — the order a scan delivers in — can
  // differ from slot order.
  db.ForEachObject([&](OidId id, const metadb::MetaObject&) {
    for (const LinkId link_id : db.OutLinks(id)) {
      const Link& link = db.GetLink(link_id);
      for (const std::string& event : link.propagates) {
        MapFor(id, Direction::kDown)[event].push_back(Entry{link_id, link.to});
        ++entries_;
      }
    }
    for (const LinkId link_id : db.InLinks(id)) {
      const Link& link = db.GetLink(link_id);
      for (const std::string& event : link.propagates) {
        MapFor(id, Direction::kUp)[event].push_back(Entry{link_id, link.from});
        ++entries_;
      }
    }
  });
}

const PropagationIndex::Bucket* PropagationIndex::Receivers(
    OidId source, Direction direction, std::string_view event) const {
  if (source.value() >= nodes_.size()) return nullptr;
  const NodeIndex& node = nodes_[source.value()];
  const EventMap& map = direction == Direction::kDown ? node.down : node.up;
  const auto it = map.find(event);
  if (it == map.end() || it->second.empty()) return nullptr;
  return &it->second;
}

void PropagationIndex::AddEntries(LinkId id,
                                  const std::vector<std::string>& events,
                                  OidId from, OidId to) {
  for (const std::string& event : events) {
    MapFor(from, Direction::kDown)[event].push_back(Entry{id, to});
    MapFor(to, Direction::kUp)[event].push_back(Entry{id, from});
    entries_ += 2;
  }
}

void PropagationIndex::EraseLinkEntries(OidId source, Direction direction,
                                        const std::string& event,
                                        LinkId link) {
  if (source.value() >= nodes_.size()) return;
  NodeIndex& node = nodes_[source.value()];
  EventMap& map = direction == Direction::kDown ? node.down : node.up;
  const auto it = map.find(event);
  if (it == map.end()) return;
  Bucket& bucket = it->second;
  // Ordered erase: surviving entries keep their adjacency-scan order.
  const auto new_end =
      std::remove_if(bucket.begin(), bucket.end(),
                     [link](const Entry& entry) { return entry.link == link; });
  entries_ -= static_cast<size_t>(bucket.end() - new_end);
  bucket.erase(new_end, bucket.end());
  if (bucket.empty()) map.erase(it);
}

void PropagationIndex::RemoveEntries(LinkId id,
                                     const std::vector<std::string>& events,
                                     OidId from, OidId to) {
  ForEachDistinct(events, [&](const std::string& event) {
    EraseLinkEntries(from, Direction::kDown, event, id);
    EraseLinkEntries(to, Direction::kUp, event, id);
  });
}

void PropagationIndex::AddLink(LinkId id, const Link& link) {
  AddEntries(id, link.propagates, link.from, link.to);
}

void PropagationIndex::RemoveLink(LinkId id, const Link& link) {
  RemoveEntries(id, link.propagates, link.from, link.to);
}

void PropagationIndex::MoveLinkEndpoint(LinkId id, bool endpoint_from,
                                        OidId old_endpoint, const Link& link) {
  // The moved side loses its buckets on the old endpoint and gains them
  // on the new one (appended, mirroring the adjacency push_back). The
  // unmoved side keeps its bucket positions; only the neighbour field
  // changes.
  const auto patch_neighbor = [this](OidId source, Direction direction,
                                     const std::string& event, LinkId link_id,
                                     OidId neighbor) {
    if (source.value() >= nodes_.size()) return;
    NodeIndex& node = nodes_[source.value()];
    EventMap& map = direction == Direction::kDown ? node.down : node.up;
    const auto it = map.find(event);
    if (it == map.end()) return;
    for (Entry& entry : it->second) {
      if (entry.link == link_id) entry.neighbor = neighbor;
    }
  };

  ForEachDistinct(link.propagates, [&](const std::string& event) {
    const size_t multiplicity = CountOccurrences(link.propagates, event);
    if (endpoint_from) {
      EraseLinkEntries(old_endpoint, Direction::kDown, event, id);
      Bucket& bucket = MapFor(link.from, Direction::kDown)[event];
      for (size_t i = 0; i < multiplicity; ++i) {
        bucket.push_back(Entry{id, link.to});
        ++entries_;
      }
      patch_neighbor(link.to, Direction::kUp, event, id, link.from);
    } else {
      EraseLinkEntries(old_endpoint, Direction::kUp, event, id);
      Bucket& bucket = MapFor(link.to, Direction::kUp)[event];
      for (size_t i = 0; i < multiplicity; ++i) {
        bucket.push_back(Entry{id, link.from});
        ++entries_;
      }
      patch_neighbor(link.from, Direction::kDown, event, id, link.to);
    }
  });
}

void PropagationIndex::RebuildBucket(const MetaDatabase& db, OidId source,
                                     Direction direction,
                                     const std::string& event) {
  EventMap& map = MapFor(source, direction);
  const auto it = map.find(event);
  if (it != map.end()) {
    entries_ -= it->second.size();
    map.erase(it);
  }
  Bucket bucket;
  const std::vector<LinkId>& adjacency = direction == Direction::kDown
                                             ? db.OutLinks(source)
                                             : db.InLinks(source);
  for (const LinkId link_id : adjacency) {
    const Link& link = db.GetLink(link_id);
    const OidId neighbor = direction == Direction::kDown ? link.to : link.from;
    for (size_t i = 0; i < CountOccurrences(link.propagates, event); ++i) {
      bucket.push_back(Entry{link_id, neighbor});
    }
  }
  if (!bucket.empty()) {
    entries_ += bucket.size();
    map.emplace(event, std::move(bucket));
  }
}

void PropagationIndex::SetLinkPropagates(
    const MetaDatabase& db, LinkId /*id*/,
    const std::vector<std::string>& old_propagates, const Link& link) {
  // Rebuild every affected bucket from adjacency rather than
  // remove-and-append: the rewritten link keeps its adjacency position,
  // so its entries must keep their bucket position too.
  ForEachDistinct(old_propagates, [&](const std::string& event) {
    RebuildBucket(db, link.from, Direction::kDown, event);
    RebuildBucket(db, link.to, Direction::kUp, event);
  });
  // Skip events already rebuilt through the old list.
  ForEachDistinct(link.propagates, [&](const std::string& event) {
    if (std::find(old_propagates.begin(), old_propagates.end(), event) !=
        old_propagates.end()) {
      return;
    }
    RebuildBucket(db, link.from, Direction::kDown, event);
    RebuildBucket(db, link.to, Direction::kUp, event);
  });
}

bool PropagationIndex::ConsistentWith(const MetaDatabase& db,
                                      std::string* diff) const {
  PropagationIndex fresh;
  fresh.Rebuild(db);

  const auto describe = [diff](const std::string& what) {
    if (diff != nullptr) *diff = what;
    return false;
  };
  if (entries_ != fresh.entries_) {
    return describe("entry count: index has " + std::to_string(entries_) +
                    ", rescan has " + std::to_string(fresh.entries_));
  }

  const size_t node_count = std::max(nodes_.size(), fresh.nodes_.size());
  static const NodeIndex kEmptyNode;
  const auto sorted = [](const EventMap& map, const std::string& event) {
    Bucket bucket;
    const auto it = map.find(event);
    if (it != map.end()) bucket = it->second;
    std::sort(bucket.begin(), bucket.end(),
              [](const Entry& a, const Entry& b) {
                return a.link.value() != b.link.value()
                           ? a.link.value() < b.link.value()
                           : a.neighbor.value() < b.neighbor.value();
              });
    return bucket;
  };

  for (size_t oid = 0; oid < node_count; ++oid) {
    const NodeIndex& mine = oid < nodes_.size() ? nodes_[oid] : kEmptyNode;
    const NodeIndex& theirs =
        oid < fresh.nodes_.size() ? fresh.nodes_[oid] : kEmptyNode;
    for (const bool down : {true, false}) {
      const EventMap& my_map = down ? mine.down : mine.up;
      const EventMap& their_map = down ? theirs.down : theirs.up;
      // Union of keys; empty buckets count as absent.
      std::vector<std::string> events;
      for (const auto& [event, bucket] : my_map) {
        if (!bucket.empty()) events.push_back(event);
      }
      for (const auto& [event, bucket] : their_map) {
        if (!bucket.empty() && my_map.find(event) == my_map.end()) {
          events.push_back(event);
        }
      }
      for (const std::string& event : events) {
        const Bucket mine_sorted = sorted(my_map, event);
        const Bucket theirs_sorted = sorted(their_map, event);
        if (mine_sorted != theirs_sorted) {
          return describe("oid " + std::to_string(oid) + " " +
                          (down ? "down" : "up") + " '" + event +
                          "': index has " +
                          std::to_string(mine_sorted.size()) +
                          " entries, rescan has " +
                          std::to_string(theirs_sorted.size()));
        }
      }
    }
  }
  return true;
}

}  // namespace damocles::engine
