#include "engine/propagation_index.hpp"

#include <algorithm>

#include "metadb/meta_database.hpp"

namespace damocles::engine {

using events::Direction;
using metadb::Link;
using metadb::LinkId;
using metadb::MetaDatabase;
using metadb::OidId;

namespace {

/// Calls `fn` once per distinct event name, in first-occurrence order.
/// PROPAGATE lists are tiny (a handful of names), so the quadratic
/// distinct scan beats building a set.
template <typename Fn>
void ForEachDistinct(const std::vector<std::string>& events, Fn&& fn) {
  for (size_t i = 0; i < events.size(); ++i) {
    bool seen = false;
    for (size_t j = 0; j < i; ++j) {
      if (events[j] == events[i]) {
        seen = true;
        break;
      }
    }
    if (!seen) fn(events[i]);
  }
}

/// Occurrences of `event` in a PROPAGATE list (duplicates are legal and
/// mirrored one-to-one into bucket entries).
size_t CountOccurrences(const std::vector<std::string>& events,
                        const std::string& event) {
  return static_cast<size_t>(std::count(events.begin(), events.end(), event));
}

OidId UnpackSource(uint64_t key) noexcept {
  return OidId(static_cast<uint32_t>(key >> 33));
}

Direction UnpackDirection(uint64_t key) noexcept {
  return ((key >> 32) & 1u) != 0 ? Direction::kDown : Direction::kUp;
}

SymbolId UnpackEvent(uint64_t key) noexcept {
  return static_cast<SymbolId>(key & 0xffffffffu);
}

}  // namespace

PropagationIndex::PropagationIndex()
    : symbols_(nullptr), owned_(std::make_unique<SymbolTable>()) {
  symbols_ = owned_.get();
}

PropagationIndex::PropagationIndex(SymbolTable& symbols)
    : symbols_(&symbols) {}

void PropagationIndex::Clear() {
  buckets_.clear();
  entries_ = 0;
}

void PropagationIndex::Rebuild(const MetaDatabase& db) {
  Clear();
  // Walk adjacency lists (not link slots): endpoint moves re-append
  // links, so adjacency order — the order a scan delivers in — can
  // differ from slot order. A source filter scopes the walk to this
  // index's own sources (one filter probe per object, not per link).
  db.ForEachObject([&](OidId id, const metadb::MetaObject&) {
    if (!OwnsSource(id)) return;
    for (const LinkId link_id : db.OutLinks(id)) {
      const Link& link = db.GetLink(link_id);
      for (const std::string& event : link.propagates) {
        buckets_[PackKey(id, Direction::kDown, symbols_->Intern(event))]
            .push_back(Entry{link_id, link.to});
        ++entries_;
      }
    }
    for (const LinkId link_id : db.InLinks(id)) {
      const Link& link = db.GetLink(link_id);
      for (const std::string& event : link.propagates) {
        buckets_[PackKey(id, Direction::kUp, symbols_->Intern(event))]
            .push_back(Entry{link_id, link.from});
        ++entries_;
      }
    }
  });
}

const PropagationIndex::Bucket* PropagationIndex::Receivers(
    OidId source, Direction direction, SymbolId event) const {
  const auto it = buckets_.find(PackKey(source, direction, event));
  if (it == buckets_.end() || it->second.empty()) return nullptr;
  return &it->second;
}

const PropagationIndex::Bucket* PropagationIndex::Receivers(
    OidId source, Direction direction, std::string_view event) const {
  const SymbolId id = symbols_->Find(event);
  if (id == SymbolTable::kNoSymbol) return nullptr;
  return Receivers(source, direction, id);
}

void PropagationIndex::AddEntries(LinkId id,
                                  const std::vector<std::string>& events,
                                  OidId from, OidId to) {
  const bool down = OwnsSource(from);
  const bool up = OwnsSource(to);
  if (!down && !up) return;
  for (const std::string& event : events) {
    const SymbolId sym = symbols_->Intern(event);
    if (down) {
      buckets_[PackKey(from, Direction::kDown, sym)].push_back(Entry{id, to});
      ++entries_;
    }
    if (up) {
      buckets_[PackKey(to, Direction::kUp, sym)].push_back(Entry{id, from});
      ++entries_;
    }
  }
}

void PropagationIndex::EraseLinkEntries(OidId source, Direction direction,
                                        SymbolId event, LinkId link) {
  const auto it = buckets_.find(PackKey(source, direction, event));
  if (it == buckets_.end()) return;
  Bucket& bucket = it->second;
  // Ordered erase: surviving entries keep their adjacency-scan order.
  const auto new_end =
      std::remove_if(bucket.begin(), bucket.end(),
                     [link](const Entry& entry) { return entry.link == link; });
  entries_ -= static_cast<size_t>(bucket.end() - new_end);
  bucket.erase(new_end, bucket.end());
  if (bucket.empty()) buckets_.erase(it);
}

void PropagationIndex::RemoveEntries(LinkId id,
                                     const std::vector<std::string>& events,
                                     OidId from, OidId to) {
  ForEachDistinct(events, [&](const std::string& event) {
    // A removed event name was necessarily interned when it was added.
    const SymbolId sym = symbols_->Find(event);
    if (sym == SymbolTable::kNoSymbol) return;
    EraseLinkEntries(from, Direction::kDown, sym, id);
    EraseLinkEntries(to, Direction::kUp, sym, id);
  });
}

// --- Single-side maintenance -------------------------------------------------

void PropagationIndex::AddLinkSide(LinkId id, const Link& link,
                                   bool down_side) {
  const OidId source = down_side ? link.from : link.to;
  const OidId neighbor = down_side ? link.to : link.from;
  if (!OwnsSource(source)) return;
  const Direction direction = down_side ? Direction::kDown : Direction::kUp;
  for (const std::string& event : link.propagates) {
    buckets_[PackKey(source, direction, symbols_->Intern(event))].push_back(
        Entry{id, neighbor});
    ++entries_;
  }
}

void PropagationIndex::RemoveLinkSide(LinkId id, const Link& link,
                                      bool down_side) {
  const OidId source = down_side ? link.from : link.to;
  const Direction direction = down_side ? Direction::kDown : Direction::kUp;
  ForEachDistinct(link.propagates, [&](const std::string& event) {
    const SymbolId sym = symbols_->Find(event);
    if (sym == SymbolTable::kNoSymbol) return;
    EraseLinkEntries(source, direction, sym, id);
  });
}

void PropagationIndex::EraseEntriesAt(OidId source, Direction direction,
                                      const std::vector<std::string>& events,
                                      LinkId link) {
  ForEachDistinct(events, [&](const std::string& event) {
    const SymbolId sym = symbols_->Find(event);
    if (sym == SymbolTable::kNoSymbol) return;
    EraseLinkEntries(source, direction, sym, link);
  });
}

void PropagationIndex::AppendEntriesAt(OidId source, Direction direction,
                                       const std::vector<std::string>& events,
                                       LinkId link, OidId neighbor) {
  if (!OwnsSource(source)) return;
  for (const std::string& event : events) {
    buckets_[PackKey(source, direction, symbols_->Intern(event))].push_back(
        Entry{link, neighbor});
    ++entries_;
  }
}

void PropagationIndex::PatchNeighborAt(OidId source, Direction direction,
                                       const std::vector<std::string>& events,
                                       LinkId link, OidId neighbor) {
  ForEachDistinct(events, [&](const std::string& event) {
    const SymbolId sym = symbols_->Find(event);
    if (sym == SymbolTable::kNoSymbol) return;
    const auto it = buckets_.find(PackKey(source, direction, sym));
    if (it == buckets_.end()) return;
    for (Entry& entry : it->second) {
      if (entry.link == link) entry.neighbor = neighbor;
    }
  });
}

void PropagationIndex::RebuildBucketsAt(
    const MetaDatabase& db, OidId source, Direction direction,
    const std::vector<std::string>& old_events,
    const std::vector<std::string>& new_events) {
  if (!OwnsSource(source)) return;
  ForEachDistinct(old_events, [&](const std::string& event) {
    RebuildBucket(db, source, direction, event);
  });
  ForEachDistinct(new_events, [&](const std::string& event) {
    if (std::find(old_events.begin(), old_events.end(), event) !=
        old_events.end()) {
      return;  // Already rebuilt through the old list.
    }
    RebuildBucket(db, source, direction, event);
  });
}

// --- Bucket migration --------------------------------------------------------

void PropagationIndex::RemoveSourceBuckets(const MetaDatabase& db,
                                           OidId source) {
  // The affected (direction, event) keys are derived from the current
  // adjacency: a bucket under `source` holds only entries of `source`'s
  // own links, so dropping whole buckets is exact.
  const auto drop = [&](Direction direction, const std::string& event) {
    const SymbolId sym = symbols_->Find(event);
    if (sym == SymbolTable::kNoSymbol) return;
    const auto it = buckets_.find(PackKey(source, direction, sym));
    if (it == buckets_.end()) return;
    entries_ -= it->second.size();
    buckets_.erase(it);
  };
  for (const LinkId link_id : db.OutLinks(source)) {
    for (const std::string& event : db.GetLink(link_id).propagates) {
      drop(Direction::kDown, event);
    }
  }
  for (const LinkId link_id : db.InLinks(source)) {
    for (const std::string& event : db.GetLink(link_id).propagates) {
      drop(Direction::kUp, event);
    }
  }
}

void PropagationIndex::AddSourceBuckets(const MetaDatabase& db, OidId source) {
  // No filter probe: the caller routed the source here deliberately
  // (assignment changes land before the migration notification fires).
  for (const LinkId link_id : db.OutLinks(source)) {
    const Link& link = db.GetLink(link_id);
    for (const std::string& event : link.propagates) {
      buckets_[PackKey(source, Direction::kDown, symbols_->Intern(event))]
          .push_back(Entry{link_id, link.to});
      ++entries_;
    }
  }
  for (const LinkId link_id : db.InLinks(source)) {
    const Link& link = db.GetLink(link_id);
    for (const std::string& event : link.propagates) {
      buckets_[PackKey(source, Direction::kUp, symbols_->Intern(event))]
          .push_back(Entry{link_id, link.from});
      ++entries_;
    }
  }
}

void PropagationIndex::AddLink(LinkId id, const Link& link) {
  AddEntries(id, link.propagates, link.from, link.to);
}

void PropagationIndex::RemoveLink(LinkId id, const Link& link) {
  RemoveEntries(id, link.propagates, link.from, link.to);
}

void PropagationIndex::MoveLinkEndpoint(LinkId id, bool endpoint_from,
                                        OidId old_endpoint, const Link& link) {
  // The moved side loses its buckets on the old endpoint and gains them
  // on the new one (appended, mirroring the adjacency push_back). The
  // unmoved side keeps its bucket positions; only the neighbour field
  // changes.
  const auto patch_neighbor = [this](OidId source, Direction direction,
                                     SymbolId event, LinkId link_id,
                                     OidId neighbor) {
    const auto it = buckets_.find(PackKey(source, direction, event));
    if (it == buckets_.end()) return;
    for (Entry& entry : it->second) {
      if (entry.link == link_id) entry.neighbor = neighbor;
    }
  };

  ForEachDistinct(link.propagates, [&](const std::string& event) {
    const SymbolId sym = symbols_->Intern(event);
    const size_t multiplicity = CountOccurrences(link.propagates, event);
    if (endpoint_from) {
      EraseLinkEntries(old_endpoint, Direction::kDown, sym, id);
      if (OwnsSource(link.from)) {
        Bucket& bucket = buckets_[PackKey(link.from, Direction::kDown, sym)];
        for (size_t i = 0; i < multiplicity; ++i) {
          bucket.push_back(Entry{id, link.to});
          ++entries_;
        }
      }
      patch_neighbor(link.to, Direction::kUp, sym, id, link.from);
    } else {
      EraseLinkEntries(old_endpoint, Direction::kUp, sym, id);
      if (OwnsSource(link.to)) {
        Bucket& bucket = buckets_[PackKey(link.to, Direction::kUp, sym)];
        for (size_t i = 0; i < multiplicity; ++i) {
          bucket.push_back(Entry{id, link.from});
          ++entries_;
        }
      }
      patch_neighbor(link.from, Direction::kDown, sym, id, link.to);
    }
  });
}

void PropagationIndex::RebuildBucket(const MetaDatabase& db, OidId source,
                                     Direction direction,
                                     const std::string& event) {
  if (!OwnsSource(source)) return;  // Foreign sources hold no buckets.
  const SymbolId sym = symbols_->Intern(event);
  const uint64_t key = PackKey(source, direction, sym);
  const auto it = buckets_.find(key);
  if (it != buckets_.end()) {
    entries_ -= it->second.size();
    buckets_.erase(it);
  }
  Bucket bucket;
  const std::vector<LinkId>& adjacency = direction == Direction::kDown
                                             ? db.OutLinks(source)
                                             : db.InLinks(source);
  for (const LinkId link_id : adjacency) {
    const Link& link = db.GetLink(link_id);
    const OidId neighbor = direction == Direction::kDown ? link.to : link.from;
    for (size_t i = 0; i < CountOccurrences(link.propagates, event); ++i) {
      bucket.push_back(Entry{link_id, neighbor});
    }
  }
  if (!bucket.empty()) {
    entries_ += bucket.size();
    buckets_.emplace(key, std::move(bucket));
  }
}

void PropagationIndex::SetLinkPropagates(
    const MetaDatabase& db, LinkId /*id*/,
    const std::vector<std::string>& old_propagates, const Link& link) {
  // Rebuild every affected bucket from adjacency rather than
  // remove-and-append: the rewritten link keeps its adjacency position,
  // so its entries must keep their bucket position too.
  ForEachDistinct(old_propagates, [&](const std::string& event) {
    RebuildBucket(db, link.from, Direction::kDown, event);
    RebuildBucket(db, link.to, Direction::kUp, event);
  });
  // Skip events already rebuilt through the old list.
  ForEachDistinct(link.propagates, [&](const std::string& event) {
    if (std::find(old_propagates.begin(), old_propagates.end(), event) !=
        old_propagates.end()) {
      return;
    }
    RebuildBucket(db, link.from, Direction::kDown, event);
    RebuildBucket(db, link.to, Direction::kUp, event);
  });
}

bool PropagationIndex::ConsistentWith(const MetaDatabase& db,
                                      std::string* diff) const {
  PropagationIndex fresh;  // Private symbol table; compared by text.
  fresh.filter_ = filter_;  // Same scope: shard-local indexes compare
                            // against a rescan of their own subtree.
  fresh.Rebuild(db);

  const auto describe = [diff](const std::string& what) {
    if (diff != nullptr) *diff = what;
    return false;
  };
  if (entries_ != fresh.entries_) {
    return describe("entry count: index has " + std::to_string(entries_) +
                    ", rescan has " + std::to_string(fresh.entries_));
  }

  const auto sorted = [](Bucket bucket) {
    std::sort(bucket.begin(), bucket.end(),
              [](const Entry& a, const Entry& b) {
                return a.link.value() != b.link.value()
                           ? a.link.value() < b.link.value()
                           : a.neighbor.value() < b.neighbor.value();
              });
    return bucket;
  };
  const auto mismatch = [&](uint64_t key, const std::string& event,
                            size_t mine, size_t theirs) {
    const OidId source = UnpackSource(key);
    const bool down = UnpackDirection(key) == Direction::kDown;
    return describe("oid " + std::to_string(source.value()) + " " +
                    (down ? "down" : "up") + " '" + event + "': index has " +
                    std::to_string(mine) + " entries, rescan has " +
                    std::to_string(theirs));
  };

  // Every bucket of mine must match the rescan's bucket for the same
  // (source, direction, event text); empty buckets count as absent.
  for (const auto& [key, bucket] : buckets_) {
    if (bucket.empty()) continue;
    const std::string& event = symbols_->Text(UnpackEvent(key));
    const Bucket* theirs = fresh.Receivers(UnpackSource(key),
                                           UnpackDirection(key), event);
    if (theirs == nullptr) return mismatch(key, event, bucket.size(), 0);
    if (sorted(bucket) != sorted(*theirs)) {
      return mismatch(key, event, bucket.size(), theirs->size());
    }
  }
  // And the rescan must hold nothing this index lacks.
  for (const auto& [key, bucket] : fresh.buckets_) {
    if (bucket.empty()) continue;
    const std::string& event = fresh.symbols_->Text(UnpackEvent(key));
    if (Receivers(UnpackSource(key), UnpackDirection(key),
                  std::string_view(event)) == nullptr) {
      return mismatch(key, event, 0, bucket.size());
    }
  }
  return true;
}

}  // namespace damocles::engine
