#include "engine/sharded_engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>

#include "blueprint/parser.hpp"
#include "common/error.hpp"
#include "common/log.hpp"

namespace damocles::engine {

using events::EventMessage;
using metadb::Oid;
using metadb::OidId;

namespace {

/// Smallest power of two >= n (and >= 4).
size_t RingCapacity(size_t n) {
  size_t capacity = 4;
  while (capacity < n) capacity <<= 1;
  return capacity;
}

}  // namespace

// --- Task & ring ------------------------------------------------------------

/// One unit of shard work: a routed queue event, or a cross-shard
/// sub-wave (seeds + shared payload).
struct ShardedEngine::Task {
  enum class Kind : uint8_t { kEvent, kSeededWave };

  Kind kind = Kind::kEvent;
  uint32_t hops = 0;  ///< Cross-shard handoffs behind this task.
  uint64_t ticket = 0;  ///< Global intake order (deterministic mode).
  EventMessage event;
  std::vector<OidId> seeds;  ///< kSeededWave only.
};

/// Bounded multi-producer single-consumer ring (Vyukov's bounded MPMC
/// restricted to one consumer). Producers never lock; a full ring is
/// reported to the caller, which falls back to the lane's overflow
/// deque so intake can never deadlock on a saturated shard.
class ShardedEngine::TaskRing {
 public:
  explicit TaskRing(size_t capacity)
      : cells_(new Cell[capacity]), mask_(capacity - 1) {
    for (size_t i = 0; i < capacity; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  bool TryPush(Task&& task) {
    size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const size_t seq = cell.sequence.load(std::memory_order_acquire);
      const intptr_t dif =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (dif == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          cell.task = std::move(task);
          cell.sequence.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // Full.
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Single consumer at a time (the lane's busy flag serializes
  /// claimants and publishes dequeue_pos_ between them).
  bool TryPop(Task& out) {
    const size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    Cell& cell = cells_[pos & mask_];
    const size_t seq = cell.sequence.load(std::memory_order_acquire);
    if (static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1) < 0) {
      return false;  // Empty.
    }
    out = std::move(cell.task);
    cell.task = Task{};  // Release payloads eagerly.
    cell.sequence.store(pos + mask_ + 1, std::memory_order_release);
    dequeue_pos_.store(pos + 1, std::memory_order_relaxed);
    return true;
  }

  /// Approximate (racy reads are fine: idle wakeup predicate only).
  bool Empty() const {
    const size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    const Cell& cell = cells_[pos & mask_];
    return static_cast<intptr_t>(
               cell.sequence.load(std::memory_order_acquire)) -
               static_cast<intptr_t>(pos + 1) < 0;
  }

 private:
  struct Cell {
    std::atomic<size_t> sequence;
    Task task;
  };

  std::unique_ptr<Cell[]> cells_;
  size_t mask_;
  std::atomic<size_t> enqueue_pos_{0};
  std::atomic<size_t> dequeue_pos_{0};
};

// --- Shared counters --------------------------------------------------------

struct ShardedEngine::Counters {
  std::atomic<uint64_t> next_ticket{0};
  std::atomic<size_t> pending{0};  ///< Enqueued but not yet finished tasks.
  std::atomic<bool> stop{false};

  std::atomic<size_t> events_posted{0};
  std::atomic<size_t> tasks_processed{0};
  std::atomic<size_t> handoff_waves{0};
  std::atomic<size_t> handoff_waves_truncated{0};
  std::atomic<size_t> reposted_events{0};
  std::atomic<size_t> ring_overflows{0};

  std::mutex drain_mutex;
  std::condition_variable drain_cv;

  /// Shared worker parking lot (workers service any lane, so there is
  /// no per-lane consumer to target a wakeup at).
  std::mutex wake_mutex;
  std::condition_variable wake_cv;
};

// --- Cross-shard router ------------------------------------------------------

/// Per-lane WaveRouter: answers ownership from the shard map and
/// accumulates foreign receivers, grouped per (source event, target
/// shard) in first-encounter order, until the lane flushes them as
/// seeded sub-wave tasks after the current task completes.
class ShardedEngine::LaneRouter final : public WaveRouter {
 public:
  LaneRouter(ShardedEngine& owner, uint32_t shard)
      : owner_(owner), shard_(shard) {}

  bool Owns(OidId receiver) override {
    // Cache the lookup: Handoff(receiver) follows immediately when this
    // returns false (AdmitReceiver), so the foreign path walks the
    // shard map once, not twice.
    last_receiver_ = receiver;
    last_shard_ = owner_.shard_map_.ShardOf(receiver);
    return last_shard_ == shard_;
  }

  void Handoff(OidId receiver, const EventMessage& event) override {
    const uint32_t target = receiver == last_receiver_
                                ? last_shard_
                                : owner_.shard_map_.ShardOf(receiver);
    // Group consecutive receivers of the same wave payload headed for
    // the same shard into one seeded sub-wave, so the target delivers
    // them in one batch exactly like the origin shard would have. The
    // source pointer is only an identity hint (direction posts reuse
    // storage), so the payload fields are compared too.
    if (pending_.empty() || pending_.back().target_shard != target ||
        pending_.back().source != &event ||
        !SamePayload(pending_.back().event, event)) {
      pending_.push_back(PendingWave{target, &event, event, {}});
    }
    pending_.back().seeds.push_back(receiver);
  }

  /// Enqueues every accumulated sub-wave on its target shard. Called
  /// by the owning lane between tasks (never mid-wave). `hops` is the
  /// handoff depth of the task that produced these waves; a chain past
  /// the configured cap is dropped — each handoff restarts with a
  /// fresh visited set, so a propagation cycle crossing shards would
  /// otherwise ping-pong forever.
  void Flush(uint32_t hops) {
    const bool truncate = hops >= owner_.options_.max_handoff_hops;
    for (PendingWave& wave : pending_) {
      if (truncate) {
        owner_.counters_->handoff_waves_truncated.fetch_add(
            1, std::memory_order_relaxed);
        Log::Warning("cross-shard wave truncated after " +
                     std::to_string(hops) + " handoffs (event '" +
                     wave.event.name + "')");
        continue;
      }
      Task task;
      task.kind = Task::Kind::kSeededWave;
      task.hops = hops + 1;
      task.ticket =
          owner_.counters_->next_ticket.fetch_add(1, std::memory_order_relaxed);
      task.event = std::move(wave.event);
      task.seeds = std::move(wave.seeds);
      owner_.counters_->handoff_waves.fetch_add(1, std::memory_order_relaxed);
      owner_.Enqueue(wave.target_shard, std::move(task));
    }
    pending_.clear();
  }

 private:
  struct PendingWave {
    uint32_t target_shard = 0;
    const EventMessage* source = nullptr;  ///< Identity hint, never read.
    EventMessage event;                    ///< Snapshot of the payload.
    std::vector<OidId> seeds;
  };

  static bool SamePayload(const EventMessage& a, const EventMessage& b) {
    return a.name == b.name && a.direction == b.direction && a.arg == b.arg &&
           a.user == b.user && a.timestamp == b.timestamp;
  }

  ShardedEngine& owner_;
  uint32_t shard_;
  OidId last_receiver_;  ///< Owns() memo consumed by Handoff().
  uint32_t last_shard_ = 0;
  std::vector<PendingWave> pending_;
};

// --- Lane -------------------------------------------------------------------

struct ShardedEngine::Lane {
  uint32_t shard = 0;
  std::unique_ptr<RunTimeEngine> engine;
  std::unique_ptr<LaneRouter> router;

  /// Lock-free intake (threaded mode); null in deterministic mode.
  std::unique_ptr<TaskRing> ring;

  /// Claim flag: at most one worker occupies a lane at a time, which
  /// keeps the ring single-consumer and the shard's delivery order
  /// FIFO with any worker count.
  std::atomic<bool> busy{false};

  /// Overflow fallback (threaded) / primary storage (deterministic).
  /// Once a push overflows, later pushes follow until the consumer
  /// drains the deque, so FIFO order holds across the spill.
  std::mutex overflow_mutex;
  std::deque<Task> overflow;
  std::atomic<bool> overflowed{false};

  bool HasWork() {
    if (ring != nullptr && !ring->Empty()) return true;
    if (!overflowed.load(std::memory_order_acquire)) return false;
    std::lock_guard<std::mutex> lock(overflow_mutex);
    return !overflow.empty();
  }

  void Push(Task&& task, std::atomic<size_t>& overflow_counter) {
    if (ring != nullptr && !overflowed.load(std::memory_order_acquire) &&
        ring->TryPush(std::move(task))) {
      return;
    }
    {
      std::lock_guard<std::mutex> lock(overflow_mutex);
      overflowed.store(true, std::memory_order_release);
      overflow.push_back(std::move(task));
    }
    if (ring != nullptr) {
      overflow_counter.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Single consumer: ring first (older tasks), then the spill.
  bool Pop(Task& out) {
    if (ring != nullptr && ring->TryPop(out)) return true;
    if (!overflowed.load(std::memory_order_acquire)) return false;
    std::lock_guard<std::mutex> lock(overflow_mutex);
    if (overflow.empty()) {
      overflowed.store(false, std::memory_order_release);
      return false;
    }
    out = std::move(overflow.front());
    overflow.pop_front();
    if (overflow.empty()) overflowed.store(false, std::memory_order_release);
    return true;
  }

  /// Deterministic mode: ticket of the head task, if any.
  bool PeekTicket(uint64_t& ticket) {
    std::lock_guard<std::mutex> lock(overflow_mutex);
    if (overflow.empty()) return false;
    ticket = overflow.front().ticket;
    return true;
  }
};

// --- Construction -----------------------------------------------------------

ShardedEngine::ShardedEngine(metadb::MetaDatabase& db, SimClock& clock,
                             ShardedEngineOptions options)
    : db_(db),
      clock_(clock),
      options_(options),
      num_shards_(options.num_shards == 0 ? 1 : options.num_shards),
      shard_map_(db, num_shards_),
      counters_(std::make_unique<Counters>()) {
  lanes_.reserve(num_shards_);
  for (uint32_t shard = 0; shard < num_shards_; ++shard) {
    auto lane = std::make_unique<Lane>();
    lane->shard = shard;
    lane->engine =
        std::make_unique<RunTimeEngine>(db_, clock_, options_.engine);
    lane->router = std::make_unique<LaneRouter>(*this, shard);
    // With one shard no receiver can be foreign: skip the router so the
    // engine does not even pay the Owns() probe — num_shards = 1 is the
    // PR-2 engine, byte for byte.
    if (num_shards_ > 1) lane->engine->SetWaveRouter(lane->router.get());
    if (!options_.deterministic) {
      lane->ring = std::make_unique<TaskRing>(
          RingCapacity(options_.queue_capacity));
    }
    lanes_.push_back(std::move(lane));
  }
  if (!options_.deterministic) {
    size_t worker_count = options_.worker_threads;
    if (worker_count == 0) {
      const size_t cores = std::max(1u, std::thread::hardware_concurrency());
      worker_count = std::min<size_t>(num_shards_, cores);
    }
    worker_count = std::min<size_t>(worker_count, num_shards_);
    workers_.reserve(worker_count);
    for (size_t i = 0; i < worker_count; ++i) {
      workers_.emplace_back(&ShardedEngine::WorkerLoop, this, i);
    }
  }
}

ShardedEngine::~ShardedEngine() {
  counters_->stop.store(true, std::memory_order_release);
  counters_->wake_cv.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

// --- Structural operations ---------------------------------------------------

void ShardedEngine::LoadBlueprint(const blueprint::Blueprint& blueprint) {
  for (auto& lane : lanes_) {
    lane->engine->LoadBlueprint(blueprint.Clone());
  }
}

void ShardedEngine::LoadBlueprintText(std::string_view text) {
  LoadBlueprint(blueprint::ParseBlueprint(text));
}

OidId ShardedEngine::OnCreateObject(std::string_view block,
                                    std::string_view view,
                                    std::string_view user) {
  return lanes_.front()->engine->OnCreateObject(block, view, user);
}

metadb::LinkId ShardedEngine::OnCreateLink(metadb::LinkKind kind, OidId from,
                                           OidId to) {
  return lanes_.front()->engine->OnCreateLink(kind, from, to);
}

// --- Intake -----------------------------------------------------------------

uint32_t ShardedEngine::ShardOfTarget(const Oid& target) const {
  if (const std::optional<OidId> id = db_.FindObject(target)) {
    return shard_map_.ShardOf(*id);
  }
  // Dangling target: hash the block name so the journal warning lands
  // on a stable shard regardless of sharding degree.
  return static_cast<uint32_t>(std::hash<std::string>{}(target.block) %
                               num_shards_);
}

void ShardedEngine::Route(EventMessage event) {
  if (event.timestamp == 0) event.timestamp = clock_.NowSeconds();
  const uint32_t shard = ShardOfTarget(event.target);
  Task task;
  task.kind = Task::Kind::kEvent;
  task.ticket = counters_->next_ticket.fetch_add(1, std::memory_order_relaxed);
  task.event = std::move(event);
  Enqueue(shard, std::move(task));
}

void ShardedEngine::PostEvent(EventMessage event) {
  counters_->events_posted.fetch_add(1, std::memory_order_relaxed);
  Route(std::move(event));
}

void ShardedEngine::Enqueue(uint32_t shard, Task&& task) {
  counters_->pending.fetch_add(1, std::memory_order_acq_rel);
  lanes_[shard]->Push(std::move(task), counters_->ring_overflows);
  if (!options_.deterministic) counters_->wake_cv.notify_one();
}

// --- Execution ---------------------------------------------------------------

void ShardedEngine::ExecuteTask(Lane& lane, Task&& task) {
  const uint32_t hops = task.hops;
  if (task.kind == Task::Kind::kEvent) {
    lane.engine->queue().Push(std::move(task.event));
    lane.engine->ProcessOne();
  } else {
    lane.engine->DeliverSeededWave(std::move(task.seeds),
                                   std::move(task.event));
  }
  // Cross-shard sub-waves accumulated during the task go out first (in
  // the single-queue engine those deliveries happened inside the wave,
  // before anything the wave posted), then the events the wave posted
  // to the shard engine's local queue re-enter sharded intake.
  lane.router->Flush(hops);
  while (std::optional<EventMessage> posted = lane.engine->queue().Pop()) {
    counters_->reposted_events.fetch_add(1, std::memory_order_relaxed);
    Route(std::move(*posted));
  }
  counters_->tasks_processed.fetch_add(1, std::memory_order_relaxed);
}

void ShardedEngine::FinishTask() {
  if (counters_->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(counters_->drain_mutex);
    counters_->drain_cv.notify_all();
  }
}

void ShardedEngine::WorkerLoop(size_t worker_index) {
  Task task;
  int idle_spins = 0;
  for (;;) {
    // Sweep the lanes, starting at this worker's home lane so workers
    // spread out. A claimed lane is skipped — its occupant drains it —
    // which keeps every ring single-consumer.
    bool did_work = false;
    for (size_t i = 0; i < lanes_.size(); ++i) {
      Lane& lane = *lanes_[(worker_index + i) % lanes_.size()];
      if (lane.busy.exchange(true, std::memory_order_acquire)) continue;
      // Bounded burst per claim so one hot lane cannot starve the rest
      // of this worker's sweep.
      for (int burst = 0; burst < 64 && lane.Pop(task); ++burst) {
        ExecuteTask(lane, std::move(task));
        FinishTask();
        did_work = true;
      }
      lane.busy.store(false, std::memory_order_release);
    }
    if (did_work) {
      idle_spins = 0;
      continue;
    }
    if (counters_->stop.load(std::memory_order_acquire)) return;
    // Briefly yield before parking: intake usually refills within a
    // scheduling quantum, and a yield is far cheaper than the
    // sleep/notify round trip (on a loaded host it also lets the
    // producer run).
    if (++idle_spins < 16) {
      std::this_thread::yield();
      continue;
    }
    std::unique_lock<std::mutex> lock(counters_->wake_mutex);
    // Timed wait: the producer's notify races the predicate check, and
    // the short timeout makes a lost wakeup cost a millisecond, not a
    // hang.
    counters_->wake_cv.wait_for(lock, std::chrono::milliseconds(1), [&] {
      if (counters_->stop.load(std::memory_order_acquire)) return true;
      for (const auto& lane : lanes_) {
        if (lane->HasWork()) return true;
      }
      return false;
    });
  }
}

void ShardedEngine::DrainDeterministic() {
  for (;;) {
    Lane* next = nullptr;
    uint64_t best_ticket = 0;
    for (auto& lane : lanes_) {
      uint64_t ticket = 0;
      if (lane->PeekTicket(ticket) &&
          (next == nullptr || ticket < best_ticket)) {
        next = lane.get();
        best_ticket = ticket;
      }
    }
    if (next == nullptr) return;
    Task task;
    next->Pop(task);
    ExecuteTask(*next, std::move(task));
    counters_->pending.fetch_sub(1, std::memory_order_acq_rel);
  }
}

size_t ShardedEngine::Drain() {
  if (options_.deterministic) {
    DrainDeterministic();
  } else {
    std::unique_lock<std::mutex> lock(counters_->drain_mutex);
    counters_->drain_cv.wait(lock, [&] {
      return counters_->pending.load(std::memory_order_acquire) == 0;
    });
  }
  const size_t total =
      counters_->tasks_processed.load(std::memory_order_acquire);
  const size_t delta = total - last_drain_processed_;
  last_drain_processed_ = total;
  return delta;
}

void ShardedEngine::RebalanceShards() {
  if (!shard_map_.dirty()) return;
  shard_map_.Rebalance();
}

// --- Introspection -----------------------------------------------------------

RunTimeEngine& ShardedEngine::shard(uint32_t index) {
  if (index >= lanes_.size()) {
    throw Error("ShardedEngine::shard: index out of range");
  }
  return *lanes_[index]->engine;
}

const RunTimeEngine& ShardedEngine::shard(uint32_t index) const {
  if (index >= lanes_.size()) {
    throw Error("ShardedEngine::shard: index out of range");
  }
  return *lanes_[index]->engine;
}

ShardedStats ShardedEngine::stats() const {
  ShardedStats stats;
  stats.events_posted =
      counters_->events_posted.load(std::memory_order_relaxed);
  stats.tasks_processed =
      counters_->tasks_processed.load(std::memory_order_relaxed);
  stats.handoff_waves =
      counters_->handoff_waves.load(std::memory_order_relaxed);
  stats.handoff_waves_truncated =
      counters_->handoff_waves_truncated.load(std::memory_order_relaxed);
  stats.reposted_events =
      counters_->reposted_events.load(std::memory_order_relaxed);
  stats.ring_overflows =
      counters_->ring_overflows.load(std::memory_order_relaxed);
  // Sourced from the map so direct shard_map().Rebalance() calls count.
  stats.rebalances = shard_map_.stats().rebalances;
  return stats;
}

EngineStats ShardedEngine::AggregateEngineStats() const {
  EngineStats total;
  for (const auto& lane : lanes_) {
    total.Accumulate(lane->engine->stats());
  }
  return total;
}

std::string ShardedEngine::MergedJournalDump() const {
  std::string text;
  for (const auto& lane : lanes_) {
    text += "shard " + std::to_string(lane->shard) + ":\n";
    text += lane->engine->journal().Dump();
  }
  return text;
}

std::vector<std::string> ShardedEngine::JournalLines() const {
  std::vector<std::string> lines;
  for (const auto& lane : lanes_) {
    const events::EventJournal& journal = lane->engine->journal();
    for (size_t i = 0; i < journal.Size(); ++i) {
      const events::JournalRecord record = journal.At(i);
      std::string line = "[";
      line += events::EventOriginName(record.event.origin);
      line += "] ";
      line += events::FormatEvent(record.event);
      lines.push_back(std::move(line));
    }
  }
  return lines;
}

void ShardedEngine::ClearJournals() {
  for (auto& lane : lanes_) lane->engine->ClearJournal();
}

void ShardedEngine::ResetStats() {
  for (auto& lane : lanes_) lane->engine->ResetStats();
  counters_->events_posted.store(0, std::memory_order_relaxed);
  counters_->tasks_processed.store(0, std::memory_order_relaxed);
  counters_->handoff_waves.store(0, std::memory_order_relaxed);
  counters_->handoff_waves_truncated.store(0, std::memory_order_relaxed);
  counters_->reposted_events.store(0, std::memory_order_relaxed);
  counters_->ring_overflows.store(0, std::memory_order_relaxed);
  last_drain_processed_ = 0;
}

}  // namespace damocles::engine
