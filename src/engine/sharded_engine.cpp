#include "engine/sharded_engine.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "blueprint/parser.hpp"
#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/log.hpp"

namespace damocles::engine {

using events::EventMessage;
using metadb::Oid;
using metadb::OidId;

namespace {

/// Smallest power of two >= n (and >= 4).
size_t RingCapacity(size_t n) {
  size_t capacity = 4;
  while (capacity < n) capacity <<= 1;
  return capacity;
}

}  // namespace

// --- Task & ring ------------------------------------------------------------

/// One unit of shard work: a routed queue event, or a cross-shard
/// sub-wave (seeds + shared payload).
struct ShardedEngine::Task {
  enum class Kind : uint8_t { kEvent, kSeededWave };

  Kind kind = Kind::kEvent;
  uint32_t hops = 0;  ///< Cross-shard handoffs behind this task.
  uint64_t ticket = 0;  ///< Global intake order (deterministic mode).
  /// The top-level wave this task transitively descends from — the
  /// deterministic scheduling key. Differs from event.wave_epoch for
  /// direction-posted sub-waves: they claim under their own epoch (a
  /// fresh visited universe) but schedule under their spawning wave, so
  /// a wave's reachable work — direction posts included — completes
  /// before the next wave starts, like the single FIFO queue.
  uint64_t order_epoch = 0;
  EventMessage event;
  std::vector<OidId> seeds;  ///< kSeededWave only.
};

/// Bounded Vyukov ring. Producers never lock; a full ring is reported
/// to the caller, which falls back to the lane's overflow deque so
/// intake can never deadlock on a saturated shard. Two pop flavours:
/// TryPop assumes a single consumer (the lane's busy flag serializes
/// claimants — the top-level event ring), TryPopShared runs the full
/// MPMC protocol so stealers and the lane occupant can drain the
/// sub-wave ring concurrently.
class ShardedEngine::TaskRing {
 public:
  explicit TaskRing(size_t capacity)
      : cells_(new Cell[capacity]), mask_(capacity - 1) {
    for (size_t i = 0; i < capacity; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  bool TryPush(Task&& task) {
    size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const size_t seq = cell.sequence.load(std::memory_order_acquire);
      const intptr_t dif =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (dif == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          cell.task = std::move(task);
          cell.sequence.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // Full.
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Single consumer at a time (the lane's busy flag serializes
  /// claimants and publishes dequeue_pos_ between them).
  bool TryPop(Task& out) {
    const size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    Cell& cell = cells_[pos & mask_];
    const size_t seq = cell.sequence.load(std::memory_order_acquire);
    if (static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1) < 0) {
      return false;  // Empty.
    }
    out = std::move(cell.task);
    cell.task = Task{};  // Release payloads eagerly.
    cell.sequence.store(pos + mask_ + 1, std::memory_order_release);
    dequeue_pos_.store(pos + 1, std::memory_order_relaxed);
    return true;
  }

  /// Multi-consumer pop (Vyukov MPMC): concurrent claimants race on
  /// dequeue_pos_ with CAS; the winner owns the cell.
  bool TryPopShared(Task& out) {
    size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const size_t seq = cell.sequence.load(std::memory_order_acquire);
      const intptr_t dif =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
      if (dif == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          out = std::move(cell.task);
          cell.task = Task{};  // Release payloads eagerly.
          cell.sequence.store(pos + mask_ + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // Empty.
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Approximate (racy reads are fine: idle wakeup predicate only).
  bool Empty() const {
    const size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    const Cell& cell = cells_[pos & mask_];
    return static_cast<intptr_t>(
               cell.sequence.load(std::memory_order_acquire)) -
               static_cast<intptr_t>(pos + 1) < 0;
  }

 private:
  struct Cell {
    std::atomic<size_t> sequence;
    Task task;
  };

  std::unique_ptr<Cell[]> cells_;
  size_t mask_;
  std::atomic<size_t> enqueue_pos_{0};
  std::atomic<size_t> dequeue_pos_{0};
};

// --- Shared counters --------------------------------------------------------

struct ShardedEngine::Counters {
  std::atomic<uint64_t> next_ticket{0};
  std::atomic<size_t> pending{0};  ///< Enqueued but not yet finished tasks.
  std::atomic<bool> stop{false};

  /// Per-OID delivery locks, striped by OID slot: a lane occupant and a
  /// stealer may deliver *different* epochs to the same OID
  /// concurrently; the stripe serializes the rule execution (and the
  /// property writes inside it). Stripe collisions only over-serialize.
  /// Cache-line padded: neighbouring stripes are hit by unrelated
  /// executors on every delivery, so sharing a line would put false
  /// sharing on exactly the path this layer optimizes.
  struct alignas(64) DeliveryStripe {
    std::atomic<uint8_t> flag{0};
  };
  std::array<DeliveryStripe, 256> delivery_stripes{};

  std::atomic<size_t> events_posted{0};
  std::atomic<size_t> tasks_processed{0};
  std::atomic<size_t> handoff_waves{0};
  std::atomic<size_t> handoff_seeds{0};
  std::atomic<size_t> seed_batch_splits{0};
  std::atomic<size_t> stolen_subwaves{0};
  std::atomic<size_t> handoff_waves_truncated{0};
  std::atomic<size_t> reposted_events{0};
  std::atomic<size_t> ring_overflows{0};

  // --- Wave epochs (exactly-once dedup) ---------------------------------
  std::atomic<uint64_t> next_epoch{0};   ///< Last minted epoch (0 = none).
  std::atomic<size_t> wave_epochs{0};    ///< Minted, for stats.
  /// In-flight refcounts per epoch; the ordered map keeps the purge
  /// horizon (the lowest live epoch) one begin() away. Guarded by
  /// epoch_mutex — this is per-task bookkeeping, far off the per-OID
  /// claim path, which stays lock-free inside the owning lane.
  std::mutex epoch_mutex;
  std::map<uint64_t, size_t> live_epochs;
  std::atomic<uint64_t> min_live_epoch{~uint64_t{0}};

  std::mutex drain_mutex;
  std::condition_variable drain_cv;

  /// Shared worker parking lot (workers service any lane, so there is
  /// no per-lane consumer to target a wakeup at).
  std::mutex wake_mutex;
  std::condition_variable wake_cv;
};

// --- Claim sets --------------------------------------------------------------

namespace {

/// (epoch -> delivered OID slots) exactly-once claim map with
/// rate-limited lazy merge-out. The ONE implementation of the claim
/// filter and purge cadence, wrapped unlocked by the lane-local router
/// path and under a mutex by the shared ClaimStore.
class EpochClaimSet {
 public:
  /// Filters `seeds` down to the claim winners (preserving order);
  /// returns the number suppressed. `horizon` is the caller's
  /// lowest-live-epoch snapshot, the merge-out bound.
  size_t Filter(uint64_t epoch, std::vector<OidId>& seeds, uint64_t horizon) {
    MaybePurge(horizon);
    claims_since_purge_ += seeds.size();
    std::unordered_set<uint32_t>& set = claims_[epoch];
    size_t suppressed = 0;
    auto keep = seeds.begin();
    for (const OidId seed : seeds) {
      if (set.insert(seed.value()).second) {
        *keep++ = seed;
      } else {
        ++suppressed;
      }
    }
    seeds.erase(keep, seeds.end());
    return suppressed;
  }

  /// The epoch below which completed waves' claim sets have been
  /// merged out (0 until the first purge).
  uint64_t purge_floor() const noexcept { return purge_floor_; }

 private:
  /// Lazy merge-out. Rate-limited: when many epochs are pinned live (a
  /// deep cross-shard backlog) an eager scan would free nothing and
  /// turn every claim round into an O(live-epochs) traversal.
  void MaybePurge(uint64_t horizon) {
    if (claims_since_purge_ < kPurgeInterval &&
        (claims_.size() <= kPurgeEpochThreshold ||
         claims_since_purge_ < kPurgeSizeBackoff)) {
      return;
    }
    claims_since_purge_ = 0;
    for (auto it = claims_.begin(); it != claims_.end();) {
      it = it->first < horizon ? claims_.erase(it) : std::next(it);
    }
    purge_floor_ = horizon;
  }

  /// Purge cadence: often enough that completed waves cannot pile up,
  /// rare enough to stay invisible next to rule execution. The size
  /// trigger fires at most once per kPurgeSizeBackoff claims.
  static constexpr size_t kPurgeInterval = 512;
  static constexpr size_t kPurgeEpochThreshold = 64;
  static constexpr size_t kPurgeSizeBackoff = 64;

  std::unordered_map<uint64_t, std::unordered_set<uint32_t>> claims_;
  size_t claims_since_purge_ = 0;
  uint64_t purge_floor_ = 0;
};

}  // namespace

/// The per-shard exactly-once claim set, published behind an
/// epoch-versioned read path so sub-waves of the shard can be claimed
/// from ANY executor (the owning lane's occupant or a stealing
/// worker): claim rounds happen under the store mutex — one batched
/// round per BFS generation, not one lock per receiver — and the purge
/// floor (the epoch below which claim sets have been merged out, i.e.
/// the version of the published claim state) is an atomic any thread
/// may read without the lock; ShardedStats::claim_purge_floor surfaces
/// it and the ShardedSteal suite asserts it advances. Only
/// instantiated for threaded multi-shard engines with lane stealing;
/// single-executor shards keep their lock-free lane-local claim sets
/// in the router.
class ShardedEngine::ClaimStore {
 public:
  /// Batched claim round under one lock acquisition; see
  /// EpochClaimSet::Filter.
  size_t ClaimBatch(uint64_t epoch, std::vector<OidId>& seeds,
                    uint64_t horizon) {
    std::lock_guard<std::mutex> lock(mutex_);
    const size_t suppressed = claims_.Filter(epoch, seeds, horizon);
    purge_floor_.store(claims_.purge_floor(), std::memory_order_release);
    return suppressed;
  }

  /// Lock-free view of the merge-out horizon.
  uint64_t purge_floor() const noexcept {
    return purge_floor_.load(std::memory_order_acquire);
  }

 private:
  std::mutex mutex_;
  EpochClaimSet claims_;
  std::atomic<uint64_t> purge_floor_{0};
};

// --- Cross-shard router ------------------------------------------------------

/// Per-executor WaveRouter bound to one shard: answers ownership from
/// the shard map, arbitrates the per-wave (epoch, OID) exactly-once
/// claims for the OIDs the bound shard owns, and accumulates foreign
/// receivers until the executor flushes them as seeded sub-wave tasks
/// after the current task completes. Lane routers stay bound to their
/// lane for life; each stealing worker owns one router it re-binds to
/// the stolen task's shard.
///
/// Claim routing: with lane stealing active, claims go to the bound
/// shard's shared ClaimStore (any executor may consult it); otherwise
/// every task of a shard runs under the lane's busy flag and the claims
/// stay in a lane-local map — no locks, no atomics on the claim path,
/// published between workers by the busy flag's acquire/release.
///
/// Handoff batching (batched_handoff): foreign receivers aggregate per
/// (wave epoch, target shard) in first-encounter order — the epoch
/// uniquely identifies the wave payload within a task, each direction
/// post minting its own — so a wave whose receivers interleave across
/// shards posts one aggregated sub-wave per shard instead of one per
/// consecutive run (the PR-4 baseline kept behind the option).
class ShardedEngine::LaneRouter final : public WaveRouter {
 public:
  LaneRouter(ShardedEngine& owner, uint32_t shard)
      : owner_(owner), shard_(shard) {}

  /// Re-targets this router at `shard` (steal contexts only; called
  /// between tasks, never mid-wave).
  void Bind(uint32_t shard) noexcept { shard_ = shard; }

  bool Owns(OidId receiver) override {
    // Cache the lookup: Handoff(receiver) follows immediately when this
    // returns false (AdmitReceiver), so the foreign path walks the
    // shard map once, not twice.
    last_receiver_ = receiver;
    last_shard_ = owner_.shard_map_.ShardOf(receiver);
    return last_shard_ == shard_;
  }

  uint64_t MintEpoch() override {
    const uint64_t epoch = owner_.MintEpoch();
    // Hold a ref for the rest of the current task: claims under this
    // epoch begin immediately (direction-post collection), before any
    // handoff task of the epoch is enqueued. Released by the executor
    // after Flush().
    owner_.AcquireEpochRef(epoch);
    minted_.push_back(epoch);
    return epoch;
  }

  size_t ClaimSeedBatch(uint64_t epoch, std::vector<OidId>& seeds) override {
    if (owner_.stealing_active_) {
      return owner_.StoreOf(shard_).ClaimBatch(epoch, seeds,
                                               owner_.MinLiveEpoch());
    }
    // Lane-local claims: same filter, no synchronization.
    return claims_.Filter(epoch, seeds, owner_.MinLiveEpoch());
  }

  void BeginDelivery(OidId receiver) override {
    owner_.LockDelivery(receiver);
  }

  void EndDelivery(OidId receiver) override {
    owner_.UnlockDelivery(receiver);
  }

  /// Epoch refs minted during the current task; the executor releases
  /// them once the task's handoffs are enqueued.
  std::vector<uint64_t> TakeMintedEpochs() {
    return std::exchange(minted_, {});
  }

  void Handoff(OidId receiver, const EventMessage& event) override {
    const uint32_t target = receiver == last_receiver_
                                ? last_shard_
                                : owner_.shard_map_.ShardOf(receiver);
    if (owner_.options_.batched_handoff) {
      // One aggregated sub-wave per (epoch, target shard), regardless
      // of how receivers interleave. Runs of same-shard receivers are
      // the common case, so the last pending wave is checked before
      // the map. Shards fit in 16 bits (enforced at construction); the
      // packed key below cannot alias, and epochs are dense counters
      // nowhere near 2^48.
      if (!pending_.empty() && pending_.back().target_shard == target &&
          pending_.back().epoch == event.wave_epoch) {
        pending_.back().seeds.push_back(receiver);
        return;
      }
      const uint64_t key = (event.wave_epoch << 16) |
                           static_cast<uint64_t>(target & 0xFFFF);
      const auto [it, inserted] =
          pending_index_.try_emplace(key, pending_.size());
      if (inserted) {
        pending_.push_back(PendingWave{target, event.wave_epoch, event, {}});
      }
      pending_[it->second].seeds.push_back(receiver);
      return;
    }
    // Unbatched baseline: only consecutive receivers of the same wave
    // payload headed for the same shard merge (the epoch uniquely
    // identifies the payload within a task).
    if (pending_.empty() || pending_.back().target_shard != target ||
        pending_.back().epoch != event.wave_epoch) {
      pending_.push_back(PendingWave{target, event.wave_epoch, event, {}});
    }
    pending_.back().seeds.push_back(receiver);
  }

  /// Enqueues every accumulated sub-wave on its target shard, splitting
  /// batches larger than max_batch_seeds into consecutive FIFO chunks.
  /// Called by the executor between tasks (never mid-wave). `hops` is
  /// the handoff depth of the task that produced these waves,
  /// `order_epoch` its scheduling root (inherited so direction-post
  /// handoffs stay inside their spawning wave's deterministic slot). A
  /// chain past the configured hop cap is dropped — the backstop behind
  /// the (epoch, OID) claims.
  void Flush(uint32_t hops, uint64_t order_epoch) {
    const bool truncate = hops >= owner_.options_.max_handoff_hops;
    const size_t limit = owner_.options_.max_batch_seeds;
    for (PendingWave& wave : pending_) {
      if (truncate) {
        owner_.counters_->handoff_waves_truncated.fetch_add(
            1, std::memory_order_relaxed);
        Log::Warning("cross-shard wave truncated after " +
                     std::to_string(hops) + " handoffs (event '" +
                     wave.event.name + "')");
        continue;
      }
      owner_.counters_->handoff_seeds.fetch_add(wave.seeds.size(),
                                                std::memory_order_relaxed);
      const size_t chunks =
          limit == 0 ? 1 : (wave.seeds.size() + limit - 1) / limit;
      if (chunks > 1) {
        owner_.counters_->seed_batch_splits.fetch_add(
            chunks - 1, std::memory_order_relaxed);
      }
      for (size_t chunk = 0; chunk < chunks; ++chunk) {
        Task task;
        task.kind = Task::Kind::kSeededWave;
        task.hops = hops + 1;
        task.ticket = owner_.counters_->next_ticket.fetch_add(
            1, std::memory_order_relaxed);
        task.order_epoch = order_epoch;
        if (chunk + 1 == chunks) {
          task.event = std::move(wave.event);
        } else {
          task.event = wave.event;
        }
        if (chunks == 1) {
          task.seeds = std::move(wave.seeds);
        } else {
          const size_t begin = chunk * limit;
          const size_t end = std::min(begin + limit, wave.seeds.size());
          task.seeds.assign(wave.seeds.begin() + static_cast<ptrdiff_t>(begin),
                            wave.seeds.begin() + static_cast<ptrdiff_t>(end));
        }
        owner_.counters_->handoff_waves.fetch_add(1, std::memory_order_relaxed);
        owner_.Enqueue(wave.target_shard, std::move(task));
      }
    }
    pending_.clear();
    pending_index_.clear();
  }

 private:
  struct PendingWave {
    uint32_t target_shard = 0;
    uint64_t epoch = 0;   ///< Payload identity within this task.
    EventMessage event;   ///< Snapshot of the payload.
    std::vector<OidId> seeds;
  };

  ShardedEngine& owner_;
  uint32_t shard_;
  OidId last_receiver_;  ///< Owns() memo consumed by Handoff().
  uint32_t last_shard_ = 0;
  std::vector<PendingWave> pending_;  ///< First-encounter order.
  /// (epoch, target shard) -> pending_ slot (batched_handoff mode).
  std::unordered_map<uint64_t, size_t> pending_index_;
  /// Lane-local claims (single-executor shards; no stealing).
  EpochClaimSet claims_;
  std::vector<uint64_t> minted_;  ///< Epoch refs held for this task.
};

// --- Index router ------------------------------------------------------------

/// Routes meta-database link notifications to the owning shard's
/// propagation index (the shard engines themselves stop observing), so
/// a link op costs O(1) index updates instead of one per shard, and the
/// N shard indexes together hold ~1× the link graph. Also owns the
/// boundary set — the links whose endpoints currently sit on different
/// shards, i.e. exactly the links that can carry a wave across a
/// handoff — and, as the ShardMap's listener, migrates an OID's buckets
/// between shard indexes when its assignment changes (incremental union
/// pulls and Rebalance re-deals; no index is ever rebuilt for either).
///
/// Registration order matters twice: the router registers with the
/// database *before* the ShardMap, so a link op is indexed under the
/// pre-union assignment and the union's migration then moves complete
/// buckets; and it registers as the map's listener so re-assignments
/// arrive after the map has switched, when ShardOf() already answers
/// the new shard.
class ShardedEngine::IndexRouter final : public metadb::LinkObserver,
                                         public metadb::ShardMapListener {
 public:
  explicit IndexRouter(ShardedEngine& owner) : owner_(owner) {
    // Scan-mode engines (use_propagation_index = false) query no index;
    // maintaining one per shard would be pure overhead.
    if (owner_.num_shards_ > 1 &&
        owner_.options_.engine.use_propagation_index) {
      owner_.db_.AddLinkObserver(this);
    }
  }

  ~IndexRouter() override { owner_.db_.RemoveLinkObserver(this); }

  /// Armed at the end of the sharded engine's constructor, once the
  /// shard engines exist to route to.
  void Activate() noexcept { active_ = true; }

  size_t boundary_link_count() const noexcept { return boundary_.size(); }
  size_t observer_updates() const noexcept { return observer_updates_; }
  size_t migrated_sources() const noexcept { return migrated_sources_; }

  // --- metadb::LinkObserver ---------------------------------------------

  void OnLinkAdded(metadb::LinkId id, const metadb::Link& link) override {
    if (!active_) return;
    ++observer_updates_;
    IndexOf(link.from).AddLinkSide(id, link, /*down_side=*/true);
    IndexOf(link.to).AddLinkSide(id, link, /*down_side=*/false);
    UpdateBoundary(id, link);
  }

  void OnLinkRemoved(metadb::LinkId id, const metadb::Link& link) override {
    if (!active_) return;
    ++observer_updates_;
    IndexOf(link.from).RemoveLinkSide(id, link, /*down_side=*/true);
    IndexOf(link.to).RemoveLinkSide(id, link, /*down_side=*/false);
    boundary_.erase(id.value());
  }

  void OnLinkEndpointMoved(metadb::LinkId id, bool endpoint_from,
                           OidId old_endpoint,
                           const metadb::Link& link) override {
    if (!active_) return;
    ++observer_updates_;
    const auto& events = link.propagates;
    using events::Direction;
    if (endpoint_from) {
      IndexOf(old_endpoint)
          .EraseEntriesAt(old_endpoint, Direction::kDown, events, id);
      IndexOf(link.from).AppendEntriesAt(link.from, Direction::kDown, events,
                                         id, link.to);
      IndexOf(link.to).PatchNeighborAt(link.to, Direction::kUp, events, id,
                                       link.from);
    } else {
      IndexOf(old_endpoint)
          .EraseEntriesAt(old_endpoint, Direction::kUp, events, id);
      IndexOf(link.to).AppendEntriesAt(link.to, Direction::kUp, events, id,
                                       link.from);
      IndexOf(link.from).PatchNeighborAt(link.from, Direction::kDown, events,
                                         id, link.to);
    }
    UpdateBoundary(id, link);
  }

  void OnLinkPropagatesChanged(metadb::LinkId /*id*/,
                               const std::vector<std::string>& old_propagates,
                               const metadb::Link& link) override {
    if (!active_) return;
    ++observer_updates_;
    using events::Direction;
    IndexOf(link.from).RebuildBucketsAt(owner_.db_, link.from,
                                        Direction::kDown, old_propagates,
                                        link.propagates);
    IndexOf(link.to).RebuildBucketsAt(owner_.db_, link.to, Direction::kUp,
                                      old_propagates, link.propagates);
    // Connectivity (and thus the boundary set) is unchanged.
  }

  // --- metadb::ShardMapListener -----------------------------------------

  void OnShardChanged(OidId id, uint32_t old_shard,
                      uint32_t new_shard) override {
    if (!active_) return;
    ++migrated_sources_;
    owner_.ShardIndex(old_shard).RemoveSourceBuckets(owner_.db_, id);
    owner_.ShardIndex(new_shard).AddSourceBuckets(owner_.db_, id);
    // The move can flip the crossing status of every adjacent link.
    for (const metadb::LinkId link_id : owner_.db_.OutLinks(id)) {
      UpdateBoundary(link_id, owner_.db_.GetLink(link_id));
    }
    for (const metadb::LinkId link_id : owner_.db_.InLinks(id)) {
      UpdateBoundary(link_id, owner_.db_.GetLink(link_id));
    }
  }

 private:
  PropagationIndex& IndexOf(OidId source) {
    return owner_.ShardIndex(owner_.shard_map_.ShardOf(source));
  }

  void UpdateBoundary(metadb::LinkId id, const metadb::Link& link) {
    const bool crossing = owner_.shard_map_.ShardOf(link.from) !=
                          owner_.shard_map_.ShardOf(link.to);
    if (crossing) {
      boundary_.insert(id.value());
    } else {
      boundary_.erase(id.value());
    }
  }

  ShardedEngine& owner_;
  bool active_ = false;
  std::unordered_set<uint32_t> boundary_;  ///< Cross-shard link slots.
  size_t observer_updates_ = 0;
  size_t migrated_sources_ = 0;
};

// --- Lane -------------------------------------------------------------------

struct ShardedEngine::Lane {
  uint32_t shard = 0;
  std::unique_ptr<RunTimeEngine> engine;
  std::unique_ptr<LaneRouter> router;

  /// Lock-free intake for TOP-LEVEL queue events (threaded mode); null
  /// in deterministic mode. Single consumer (the occupant), so
  /// per-shard FIFO for top-level waves is structural: stealing never
  /// touches this ring.
  std::unique_ptr<TaskRing> ring;

  /// Epoch-tagged cross-shard sub-waves (threaded mode); null in
  /// deterministic mode. Multi-consumer: the occupant and stealing
  /// workers pop concurrently (TryPopShared) — sub-wave order across
  /// executors is free, exactly-once comes from the claim stores.
  std::unique_ptr<TaskRing> sub_ring;

  /// Claim flag: at most one worker occupies a lane at a time, which
  /// keeps the event ring single-consumer and the shard's top-level
  /// delivery order FIFO with any worker count.
  std::atomic<bool> busy{false};

  /// Overflow fallbacks (threaded only). Once a push overflows, later
  /// pushes follow until a consumer drains the deque, so FIFO order
  /// holds across the spill.
  std::mutex overflow_mutex;
  std::deque<Task> overflow;
  std::atomic<bool> overflowed{false};
  std::mutex sub_overflow_mutex;
  std::deque<Task> sub_overflow;
  std::atomic<bool> sub_overflowed{false};

  /// Queued sub-wave gauge (incremented before a push is visible, so
  /// it never under-counts): the stealers' cheap probe for whether this
  /// lane has stealable work.
  std::atomic<size_t> queued_subwaves{0};

  /// Deterministic-mode storage: tasks keyed by (order epoch, ticket),
  /// so the scheduler's pick is one begin() away — O(log n) per push
  /// and pop instead of a deque scan. Tickets are globally unique, so
  /// keys never collide.
  std::map<std::pair<uint64_t, uint64_t>, Task> ordered;

  bool HasWork() {
    if (ring != nullptr && !ring->Empty()) return true;
    if (queued_subwaves.load(std::memory_order_acquire) > 0) return true;
    if (!overflowed.load(std::memory_order_acquire)) return false;
    std::lock_guard<std::mutex> lock(overflow_mutex);
    return !overflow.empty();
  }

  void Push(Task&& task, std::atomic<size_t>& overflow_counter) {
    if (ring == nullptr) {  // Deterministic mode.
      std::lock_guard<std::mutex> lock(overflow_mutex);
      const auto key = std::make_pair(task.order_epoch, task.ticket);
      ordered.emplace(key, std::move(task));
      return;
    }
    if (task.kind == Task::Kind::kSeededWave) {
      PushSub(std::move(task), overflow_counter);
      return;
    }
    // Chaos hook: a hit forces this task onto the overflow deque as
    // if the lock-free ring were full, exercising the spill path.
    common::FailpointHit spill;
    if (!DAMOCLES_FAILPOINT("sharded.ring.spill", &spill) &&
        !overflowed.load(std::memory_order_acquire) &&
        ring->TryPush(std::move(task))) {
      return;
    }
    {
      std::lock_guard<std::mutex> lock(overflow_mutex);
      overflowed.store(true, std::memory_order_release);
      overflow.push_back(std::move(task));
    }
    overflow_counter.fetch_add(1, std::memory_order_relaxed);
  }

  void PushSub(Task&& task, std::atomic<size_t>& overflow_counter) {
    queued_subwaves.fetch_add(1, std::memory_order_release);
    common::FailpointHit spill;
    if (!DAMOCLES_FAILPOINT("sharded.ring.spill", &spill) &&
        !sub_overflowed.load(std::memory_order_acquire) &&
        sub_ring->TryPush(std::move(task))) {
      return;
    }
    {
      std::lock_guard<std::mutex> lock(sub_overflow_mutex);
      sub_overflowed.store(true, std::memory_order_release);
      sub_overflow.push_back(std::move(task));
    }
    overflow_counter.fetch_add(1, std::memory_order_relaxed);
  }

  /// Single consumer (the occupant): event ring first (older tasks),
  /// then the spill.
  bool Pop(Task& out) {
    if (ring != nullptr && ring->TryPop(out)) return true;
    if (!overflowed.load(std::memory_order_acquire)) return false;
    std::lock_guard<std::mutex> lock(overflow_mutex);
    if (overflow.empty()) {
      overflowed.store(false, std::memory_order_release);
      return false;
    }
    out = std::move(overflow.front());
    overflow.pop_front();
    if (overflow.empty()) overflowed.store(false, std::memory_order_release);
    return true;
  }

  /// Multi-consumer sub-wave pop: occupant and stealers race through
  /// the MPMC ring, then the spill deque under its mutex.
  bool PopSub(Task& out) {
    if (sub_ring == nullptr) return false;
    if (sub_ring->TryPopShared(out)) {
      queued_subwaves.fetch_sub(1, std::memory_order_release);
      return true;
    }
    if (!sub_overflowed.load(std::memory_order_acquire)) return false;
    std::lock_guard<std::mutex> lock(sub_overflow_mutex);
    if (sub_overflow.empty()) {
      sub_overflowed.store(false, std::memory_order_release);
      return false;
    }
    out = std::move(sub_overflow.front());
    sub_overflow.pop_front();
    if (sub_overflow.empty()) {
      sub_overflowed.store(false, std::memory_order_release);
    }
    queued_subwaves.fetch_sub(1, std::memory_order_release);
    return true;
  }

  /// Deterministic mode: the lane's best (order epoch, ticket) key —
  /// root wave first, intake ticket within it — so the global scheduler
  /// finishes each wave's reachable work before the next wave starts,
  /// like the single FIFO queue would.
  bool PeekBest(std::pair<uint64_t, uint64_t>& key) {
    std::lock_guard<std::mutex> lock(overflow_mutex);
    if (ordered.empty()) return false;
    key = ordered.begin()->first;
    return true;
  }

  /// Deterministic mode: removes the head task (the one PeekBest saw).
  /// Same-wave tasks keep their enqueue (ticket) order; only cross-wave
  /// tasks jump the line, which a single-threaded drain may freely do.
  void PopBest(Task& out) {
    std::lock_guard<std::mutex> lock(overflow_mutex);
    out = std::move(ordered.begin()->second);
    ordered.erase(ordered.begin());
  }
};

// --- Steal contexts ----------------------------------------------------------

/// One stealing worker's private executor: a RunTimeEngine over the
/// shared meta-database plus a re-bindable router. The engine runs in
/// scan mode (use_propagation_index = false): wave expansion reads the
/// immutable-during-drain link graph directly, so it needs neither a
/// propagation index of its own nor access to the owning lane's (whose
/// symbol table the occupant may be growing concurrently). Scan and
/// index expansion produce identical receiver sets, so the delivered
/// record multiset is unchanged; the steal path trades per-hop lookup
/// speed for running on cycles that were idle anyway. Journal and
/// stats are private and merged into the engine-wide views.
struct ShardedEngine::StealContext {
  std::unique_ptr<RunTimeEngine> engine;
  std::unique_ptr<LaneRouter> router;
};

// --- Construction -----------------------------------------------------------

ShardedEngine::ShardedEngine(metadb::MetaDatabase& db, SimClock& clock,
                             ShardedEngineOptions options)
    : db_(db),
      clock_(clock),
      options_(options),
      num_shards_(options.num_shards == 0 ? 1 : options.num_shards),
      // Registers as a link observer (N > 1) ahead of shard_map_: link
      // ops must reach the indexes under pre-union assignments.
      index_router_(std::make_unique<IndexRouter>(*this)),
      shard_map_(db, num_shards_),
      counters_(std::make_unique<Counters>()) {
  if (num_shards_ > 0xFFFF) {
    // The batched-handoff key packs the target shard into 16 bits
    // (LaneRouter::Handoff); aliasing shards would break exactly-once.
    throw Error("ShardedEngine: num_shards must be <= 65535");
  }
  lanes_.reserve(num_shards_);
  // Shard engines never self-maintain their index: SetIndexScope below
  // installs the scoped build, so the constructor's full-graph build
  // would be N wasted passes over a pre-populated database.
  EngineOptions engine_options = options_.engine;
  if (num_shards_ > 1) engine_options.external_index_maintenance = true;
  for (uint32_t shard = 0; shard < num_shards_; ++shard) {
    auto lane = std::make_unique<Lane>();
    lane->shard = shard;
    lane->engine =
        std::make_unique<RunTimeEngine>(db_, clock_, engine_options);
    lane->router = std::make_unique<LaneRouter>(*this, shard);
    // With one shard no receiver can be foreign: skip the router so the
    // engine does not even pay the Owns() probe — num_shards = 1 is the
    // PR-2 engine, byte for byte (it also keeps its self-maintained
    // full index; scoping only pays off with actual shards).
    if (num_shards_ > 1) lane->engine->SetWaveRouter(lane->router.get());
    if (!options_.deterministic) {
      lane->ring = std::make_unique<TaskRing>(
          RingCapacity(options_.queue_capacity));
      lane->sub_ring = std::make_unique<TaskRing>(
          RingCapacity(options_.queue_capacity));
    }
    lanes_.push_back(std::move(lane));
  }
  if (num_shards_ > 1 && options_.engine.use_propagation_index) {
    // Scope every shard engine's index to its own subtree (the engine
    // never self-registered — external_index_maintenance above), then
    // fill all N indexes in ONE routed pass over the database instead
    // of N filtered walks, and arm the router + migration listener.
    for (uint32_t shard = 0; shard < num_shards_; ++shard) {
      lanes_[shard]->engine->SetIndexScope(
          [this, shard](OidId id) { return shard_map_.ShardOf(id) == shard; },
          /*rebuild=*/false);
    }
    db_.ForEachObject([this](OidId id, const metadb::MetaObject&) {
      ShardIndex(shard_map_.ShardOf(id)).AddSourceBuckets(db_, id);
    });
    index_router_->Activate();
    shard_map_.SetListener(index_router_.get());
  }
  if (!options_.deterministic) {
    size_t worker_count = options_.worker_threads;
    if (worker_count == 0) {
      const size_t cores = std::max(1u, std::thread::hardware_concurrency());
      worker_count = std::min<size_t>(num_shards_, cores);
    }
    worker_count = std::min<size_t>(worker_count, num_shards_);
    // Lane stealing: shared per-shard claim stores replace the
    // lane-local claim sets (any executor may consult them) and every
    // worker gets a private scan-mode steal engine. A single worker
    // never observes a busy lane, so stealing is moot below two.
    stealing_active_ =
        options_.lane_stealing && num_shards_ > 1 && worker_count > 1;
    if (stealing_active_) {
      claim_stores_.reserve(num_shards_);
      for (uint32_t shard = 0; shard < num_shards_; ++shard) {
        claim_stores_.push_back(std::make_unique<ClaimStore>());
      }
      EngineOptions steal_options = options_.engine;
      steal_options.use_propagation_index = false;
      steal_options.external_index_maintenance = false;
      steal_contexts_.reserve(worker_count);
      for (size_t i = 0; i < worker_count; ++i) {
        auto context = std::make_unique<StealContext>();
        context->engine =
            std::make_unique<RunTimeEngine>(db_, clock_, steal_options);
        context->router = std::make_unique<LaneRouter>(*this, 0);
        context->engine->SetWaveRouter(context->router.get());
        steal_contexts_.push_back(std::move(context));
      }
    }
    workers_.reserve(worker_count);
    for (size_t i = 0; i < worker_count; ++i) {
      workers_.emplace_back(&ShardedEngine::WorkerLoop, this, i);
    }
  }
}

ShardedEngine::~ShardedEngine() {
  counters_->stop.store(true, std::memory_order_release);
  counters_->wake_cv.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  shard_map_.SetListener(nullptr);
}

PropagationIndex& ShardedEngine::ShardIndex(uint32_t shard) {
  return lanes_[shard]->engine->mutable_propagation_index();
}

ShardedEngine::ClaimStore& ShardedEngine::StoreOf(uint32_t shard) {
  return *claim_stores_[shard];
}

void ShardedEngine::LockDelivery(OidId receiver) {
  if (!stealing_active_) return;
  std::atomic<uint8_t>& stripe =
      counters_->delivery_stripes[receiver.value() %
                                  counters_->delivery_stripes.size()]
          .flag;
  // Spin with yield: the bracket covers one OID's rule phases, which
  // are short, and each executor holds at most one stripe at a time
  // (no hold-and-wait, so no deadlock).
  while (stripe.exchange(1, std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
}

void ShardedEngine::UnlockDelivery(OidId receiver) {
  if (!stealing_active_) return;
  counters_->delivery_stripes[receiver.value() %
                              counters_->delivery_stripes.size()]
      .flag.store(0, std::memory_order_release);
}

// --- Wave epochs -------------------------------------------------------------

uint64_t ShardedEngine::MintEpoch() {
  counters_->wave_epochs.fetch_add(1, std::memory_order_relaxed);
  return counters_->next_epoch.fetch_add(1, std::memory_order_relaxed) + 1;
}

uint64_t ShardedEngine::epoch_ceiling() const noexcept {
  return counters_->next_epoch.load(std::memory_order_relaxed);
}

void ShardedEngine::RestoreEpochCeiling(uint64_t next_epoch,
                                        size_t wave_epochs) {
  counters_->next_epoch.store(next_epoch, std::memory_order_relaxed);
  counters_->wave_epochs.store(wave_epochs, std::memory_order_relaxed);
}

size_t ShardedEngine::steal_journal_count() const noexcept {
  return steal_contexts_.size();
}

events::EventJournal& ShardedEngine::steal_journal(size_t index) {
  return steal_contexts_[index]->engine->mutable_journal();
}

void ShardedEngine::AcquireEpochRef(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(counters_->epoch_mutex);
  ++counters_->live_epochs[epoch];
  counters_->min_live_epoch.store(counters_->live_epochs.begin()->first,
                                  std::memory_order_release);
}

void ShardedEngine::ReleaseEpochRef(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(counters_->epoch_mutex);
  const auto it = counters_->live_epochs.find(epoch);
  if (it != counters_->live_epochs.end() && --it->second == 0) {
    counters_->live_epochs.erase(it);
  }
  counters_->min_live_epoch.store(counters_->live_epochs.empty()
                                      ? ~uint64_t{0}
                                      : counters_->live_epochs.begin()->first,
                                  std::memory_order_release);
}

uint64_t ShardedEngine::MinLiveEpoch() const noexcept {
  return counters_->min_live_epoch.load(std::memory_order_acquire);
}

// --- Structural operations ---------------------------------------------------

void ShardedEngine::LoadBlueprint(const blueprint::Blueprint& blueprint,
                                  uint64_t policy_version) {
  for (auto& lane : lanes_) {
    lane->engine->LoadBlueprint(blueprint.Clone(), policy_version);
  }
  for (auto& context : steal_contexts_) {
    context->engine->LoadBlueprint(blueprint.Clone(), policy_version);
  }
}

void ShardedEngine::LoadBlueprintText(std::string_view text,
                                      uint64_t policy_version) {
  LoadBlueprint(blueprint::ParseBlueprint(text), policy_version);
}

uint64_t ShardedEngine::policy_version() const {
  return lanes_.front()->engine->policy_version();
}

OidId ShardedEngine::OnCreateObject(std::string_view block,
                                    std::string_view view,
                                    std::string_view user) {
  return lanes_.front()->engine->OnCreateObject(block, view, user);
}

metadb::LinkId ShardedEngine::OnCreateLink(metadb::LinkKind kind, OidId from,
                                           OidId to) {
  return lanes_.front()->engine->OnCreateLink(kind, from, to);
}

// --- Intake -----------------------------------------------------------------

uint32_t ShardedEngine::ShardOfTarget(const Oid& target) const {
  if (const std::optional<OidId> id = db_.FindObject(target)) {
    return shard_map_.ShardOf(*id);
  }
  // Dangling target: hash the block name so the journal warning lands
  // on a stable shard regardless of sharding degree.
  return static_cast<uint32_t>(std::hash<std::string>{}(target.block) %
                               num_shards_);
}

void ShardedEngine::Route(EventMessage event) {
  if (event.timestamp == 0) event.timestamp = clock_.NowSeconds();
  // Every top-level event opens a fresh wave scope — rule-posted events
  // re-enter here and scope like the queue boundary of the unsharded
  // engine. Overwrites whatever epoch a reposted event inherited from
  // the wave that posted it.
  event.wave_epoch = num_shards_ > 1 ? MintEpoch() : 0;
  const uint32_t shard = ShardOfTarget(event.target);
  Task task;
  task.kind = Task::Kind::kEvent;
  task.ticket = counters_->next_ticket.fetch_add(1, std::memory_order_relaxed);
  // A top-level wave schedules under itself (reposted events included:
  // the single FIFO queue runs them after everything already queued).
  task.order_epoch = event.wave_epoch;
  task.event = std::move(event);
  Enqueue(shard, std::move(task));
}

void ShardedEngine::PostEvent(EventMessage event) {
  counters_->events_posted.fetch_add(1, std::memory_order_relaxed);
  Route(std::move(event));
}

void ShardedEngine::Enqueue(uint32_t shard, Task&& task) {
  counters_->pending.fetch_add(1, std::memory_order_acq_rel);
  // The task pins its wave's epoch while queued/executing, so no lane
  // purges the wave's claim sets mid-flight. Acquired before the task
  // becomes visible to workers; released in FinishTask.
  if (task.event.wave_epoch != 0) AcquireEpochRef(task.event.wave_epoch);
  lanes_[shard]->Push(std::move(task), counters_->ring_overflows);
  if (!options_.deterministic) counters_->wake_cv.notify_one();
}

// --- Execution ---------------------------------------------------------------

void ShardedEngine::ExecuteTask(RunTimeEngine& engine, LaneRouter& router,
                                Task&& task) {
  const uint32_t hops = task.hops;
  const uint64_t order_epoch = task.order_epoch;
  if (task.kind == Task::Kind::kEvent) {
    engine.queue().Push(std::move(task.event));
    engine.ProcessOne();
  } else {
    engine.DeliverSeededWave(std::move(task.seeds), std::move(task.event));
  }
  // Cross-shard sub-waves accumulated during the task go out first (in
  // the single-queue engine those deliveries happened inside the wave,
  // before anything the wave posted), then the events the wave posted
  // to the shard engine's local queue re-enter sharded intake. Epoch
  // refs minted mid-task (direction-post scopes) are dropped last, so
  // their handoff tasks are pinned before the mint ref lapses.
  router.Flush(hops, order_epoch);
  while (std::optional<EventMessage> posted = engine.queue().Pop()) {
    counters_->reposted_events.fetch_add(1, std::memory_order_relaxed);
    Route(std::move(*posted));
  }
  for (const uint64_t epoch : router.TakeMintedEpochs()) {
    ReleaseEpochRef(epoch);
  }
  counters_->tasks_processed.fetch_add(1, std::memory_order_relaxed);
}

void ShardedEngine::FinishTask(uint64_t epoch) {
  if (epoch != 0) ReleaseEpochRef(epoch);
  if (counters_->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(counters_->drain_mutex);
    counters_->drain_cv.notify_all();
  }
}

bool ShardedEngine::TrySteal(size_t worker_index) {
  // One stolen task per pass, then back to the regular sweep: occupying
  // a free lane beats stealing from a busy one. Sub-waves may be stolen
  // from any lane (busy or not) — exactly-once is arbitrated by the
  // shared claim stores and same-OID execution by the delivery locks,
  // and top-level waves are untouched (they live in the single-consumer
  // event rings).
  StealContext& context = *steal_contexts_[worker_index];
  Task task;
  for (size_t i = 0; i < lanes_.size(); ++i) {
    Lane& lane = *lanes_[(worker_index + i) % lanes_.size()];
    if (lane.queued_subwaves.load(std::memory_order_acquire) == 0) continue;
    if (!lane.PopSub(task)) continue;
    counters_->stolen_subwaves.fetch_add(1, std::memory_order_relaxed);
    context.router->Bind(lane.shard);
    const uint64_t epoch = task.event.wave_epoch;
    ExecuteTask(*context.engine, *context.router, std::move(task));
    FinishTask(epoch);
    return true;
  }
  return false;
}

void ShardedEngine::WorkerLoop(size_t worker_index) {
  Task task;
  int idle_spins = 0;
  for (;;) {
    // Sweep the lanes, starting at this worker's home lane so workers
    // spread out. A claimed lane is skipped — its occupant drains it —
    // which keeps every event ring single-consumer.
    bool did_work = false;
    for (size_t i = 0; i < lanes_.size(); ++i) {
      Lane& lane = *lanes_[(worker_index + i) % lanes_.size()];
      if (lane.busy.exchange(true, std::memory_order_acquire)) continue;
      // Bounded burst per claim so one hot lane cannot starve the rest
      // of this worker's sweep. Queued sub-waves first: they complete
      // in-flight epochs, which lowers the claim purge horizon.
      for (int burst = 0;
           burst < 64 && (lane.PopSub(task) || lane.Pop(task)); ++burst) {
        const uint64_t epoch = task.event.wave_epoch;
        ExecuteTask(*lane.engine, *lane.router, std::move(task));
        FinishTask(epoch);
        did_work = true;
      }
      lane.busy.store(false, std::memory_order_release);
    }
    if (!did_work && stealing_active_) did_work = TrySteal(worker_index);
    if (did_work) {
      idle_spins = 0;
      continue;
    }
    if (counters_->stop.load(std::memory_order_acquire)) return;
    // Briefly yield before parking: intake usually refills within a
    // scheduling quantum, and a yield is far cheaper than the
    // sleep/notify round trip (on a loaded host it also lets the
    // producer run).
    if (++idle_spins < 16) {
      std::this_thread::yield();
      continue;
    }
    std::unique_lock<std::mutex> lock(counters_->wake_mutex);
    // Timed wait: the producer's notify races the predicate check, and
    // the short timeout makes a lost wakeup cost a millisecond, not a
    // hang.
    counters_->wake_cv.wait_for(lock, std::chrono::milliseconds(1), [&] {
      if (counters_->stop.load(std::memory_order_acquire)) return true;
      for (const auto& lane : lanes_) {
        if (lane->HasWork()) return true;
      }
      return false;
    });
  }
}

void ShardedEngine::DrainDeterministic() {
  // Global (order epoch, ticket) order across every queued task — not
  // arrival order: a wave's cross-shard sub-waves (direction posts
  // included, which schedule under their spawning wave) run before any
  // later wave's work, reproducing the wave atomicity of the single
  // FIFO queue under the dedup path. Within a wave, tickets rise along
  // the handoff chain, so causal order holds.
  for (;;) {
    Lane* next = nullptr;
    std::pair<uint64_t, uint64_t> best{};
    for (auto& lane : lanes_) {
      std::pair<uint64_t, uint64_t> key{};
      if (lane->PeekBest(key) && (next == nullptr || key < best)) {
        next = lane.get();
        best = key;
      }
    }
    if (next == nullptr) return;
    Task task;
    next->PopBest(task);
    const uint64_t epoch = task.event.wave_epoch;
    ExecuteTask(*next->engine, *next->router, std::move(task));
    if (epoch != 0) ReleaseEpochRef(epoch);
    counters_->pending.fetch_sub(1, std::memory_order_acq_rel);
  }
}

size_t ShardedEngine::Drain() {
  if (options_.deterministic) {
    DrainDeterministic();
  } else {
    std::unique_lock<std::mutex> lock(counters_->drain_mutex);
    counters_->drain_cv.wait(lock, [&] {
      return counters_->pending.load(std::memory_order_acquire) == 0;
    });
  }
  const size_t total =
      counters_->tasks_processed.load(std::memory_order_acquire);
  const size_t delta = total - last_drain_processed_;
  last_drain_processed_ = total;
  return delta;
}

void ShardedEngine::RebalanceShards() {
  if (!shard_map_.dirty()) return;
  shard_map_.Rebalance();
}

// --- Introspection -----------------------------------------------------------

RunTimeEngine& ShardedEngine::shard(uint32_t index) {
  if (index >= lanes_.size()) {
    throw Error("ShardedEngine::shard: index out of range");
  }
  return *lanes_[index]->engine;
}

const RunTimeEngine& ShardedEngine::shard(uint32_t index) const {
  if (index >= lanes_.size()) {
    throw Error("ShardedEngine::shard: index out of range");
  }
  return *lanes_[index]->engine;
}

ShardedStats ShardedEngine::stats() const {
  ShardedStats stats;
  stats.events_posted =
      counters_->events_posted.load(std::memory_order_relaxed);
  stats.tasks_processed =
      counters_->tasks_processed.load(std::memory_order_relaxed);
  stats.handoff_waves =
      counters_->handoff_waves.load(std::memory_order_relaxed);
  stats.handoff_seeds =
      counters_->handoff_seeds.load(std::memory_order_relaxed);
  stats.seed_batch_splits =
      counters_->seed_batch_splits.load(std::memory_order_relaxed);
  stats.stolen_subwaves =
      counters_->stolen_subwaves.load(std::memory_order_relaxed);
  for (const auto& store : claim_stores_) {
    stats.claim_purge_floor =
        std::max(stats.claim_purge_floor, store->purge_floor());
  }
  stats.handoff_waves_truncated =
      counters_->handoff_waves_truncated.load(std::memory_order_relaxed);
  stats.reposted_events =
      counters_->reposted_events.load(std::memory_order_relaxed);
  stats.ring_overflows =
      counters_->ring_overflows.load(std::memory_order_relaxed);
  // Sourced from the map so direct shard_map().Rebalance() calls count.
  stats.rebalances = shard_map_.stats().rebalances;
  stats.wave_epochs = counters_->wave_epochs.load(std::memory_order_relaxed);
  for (const auto& lane : lanes_) {
    stats.index_entries += lane->engine->propagation_index().entry_count();
  }
  stats.boundary_links = index_router_->boundary_link_count();
  stats.index_observer_updates = index_router_->observer_updates();
  stats.index_migrated_sources = index_router_->migrated_sources();
  return stats;
}

EngineStats ShardedEngine::AggregateEngineStats() const {
  EngineStats total;
  for (const auto& lane : lanes_) {
    total.Accumulate(lane->engine->stats());
  }
  for (const auto& context : steal_contexts_) {
    total.Accumulate(context->engine->stats());
  }
  return total;
}

std::string ShardedEngine::MergedJournalDump() const {
  std::string text;
  for (const auto& lane : lanes_) {
    text += "shard " + std::to_string(lane->shard) + ":\n";
    text += lane->engine->journal().Dump();
  }
  for (size_t i = 0; i < steal_contexts_.size(); ++i) {
    const events::EventJournal& journal = steal_contexts_[i]->engine->journal();
    if (journal.Empty()) continue;
    text += "steal worker " + std::to_string(i) + ":\n";
    text += journal.Dump();
  }
  return text;
}

std::vector<std::string> ShardedEngine::JournalLines() const {
  std::vector<std::string> lines;
  const auto append = [&lines](const events::EventJournal& journal) {
    for (size_t i = 0; i < journal.Size(); ++i) {
      const events::JournalRecord record = journal.At(i);
      std::string line = "[";
      line += events::EventOriginName(record.event.origin);
      line += "] ";
      line += events::FormatEvent(record.event);
      lines.push_back(std::move(line));
    }
  };
  for (const auto& lane : lanes_) append(lane->engine->journal());
  for (const auto& context : steal_contexts_) {
    append(context->engine->journal());
  }
  return lines;
}

void ShardedEngine::ClearJournals() {
  for (auto& lane : lanes_) lane->engine->ClearJournal();
  for (auto& context : steal_contexts_) context->engine->ClearJournal();
}

void ShardedEngine::ResetStats() {
  for (auto& lane : lanes_) lane->engine->ResetStats();
  for (auto& context : steal_contexts_) context->engine->ResetStats();
  counters_->events_posted.store(0, std::memory_order_relaxed);
  counters_->tasks_processed.store(0, std::memory_order_relaxed);
  counters_->handoff_waves.store(0, std::memory_order_relaxed);
  counters_->handoff_seeds.store(0, std::memory_order_relaxed);
  counters_->seed_batch_splits.store(0, std::memory_order_relaxed);
  counters_->stolen_subwaves.store(0, std::memory_order_relaxed);
  counters_->handoff_waves_truncated.store(0, std::memory_order_relaxed);
  counters_->reposted_events.store(0, std::memory_order_relaxed);
  counters_->ring_overflows.store(0, std::memory_order_relaxed);
  counters_->wave_epochs.store(0, std::memory_order_relaxed);
  last_drain_processed_ = 0;
}

}  // namespace damocles::engine
