#include "engine/sharded_engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "blueprint/parser.hpp"
#include "common/error.hpp"
#include "common/log.hpp"

namespace damocles::engine {

using events::EventMessage;
using metadb::Oid;
using metadb::OidId;

namespace {

/// Smallest power of two >= n (and >= 4).
size_t RingCapacity(size_t n) {
  size_t capacity = 4;
  while (capacity < n) capacity <<= 1;
  return capacity;
}

}  // namespace

// --- Task & ring ------------------------------------------------------------

/// One unit of shard work: a routed queue event, or a cross-shard
/// sub-wave (seeds + shared payload).
struct ShardedEngine::Task {
  enum class Kind : uint8_t { kEvent, kSeededWave };

  Kind kind = Kind::kEvent;
  uint32_t hops = 0;  ///< Cross-shard handoffs behind this task.
  uint64_t ticket = 0;  ///< Global intake order (deterministic mode).
  /// The top-level wave this task transitively descends from — the
  /// deterministic scheduling key. Differs from event.wave_epoch for
  /// direction-posted sub-waves: they claim under their own epoch (a
  /// fresh visited universe) but schedule under their spawning wave, so
  /// a wave's reachable work — direction posts included — completes
  /// before the next wave starts, like the single FIFO queue.
  uint64_t order_epoch = 0;
  EventMessage event;
  std::vector<OidId> seeds;  ///< kSeededWave only.
};

/// Bounded multi-producer single-consumer ring (Vyukov's bounded MPMC
/// restricted to one consumer). Producers never lock; a full ring is
/// reported to the caller, which falls back to the lane's overflow
/// deque so intake can never deadlock on a saturated shard.
class ShardedEngine::TaskRing {
 public:
  explicit TaskRing(size_t capacity)
      : cells_(new Cell[capacity]), mask_(capacity - 1) {
    for (size_t i = 0; i < capacity; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  bool TryPush(Task&& task) {
    size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const size_t seq = cell.sequence.load(std::memory_order_acquire);
      const intptr_t dif =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (dif == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          cell.task = std::move(task);
          cell.sequence.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // Full.
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Single consumer at a time (the lane's busy flag serializes
  /// claimants and publishes dequeue_pos_ between them).
  bool TryPop(Task& out) {
    const size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    Cell& cell = cells_[pos & mask_];
    const size_t seq = cell.sequence.load(std::memory_order_acquire);
    if (static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1) < 0) {
      return false;  // Empty.
    }
    out = std::move(cell.task);
    cell.task = Task{};  // Release payloads eagerly.
    cell.sequence.store(pos + mask_ + 1, std::memory_order_release);
    dequeue_pos_.store(pos + 1, std::memory_order_relaxed);
    return true;
  }

  /// Approximate (racy reads are fine: idle wakeup predicate only).
  bool Empty() const {
    const size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    const Cell& cell = cells_[pos & mask_];
    return static_cast<intptr_t>(
               cell.sequence.load(std::memory_order_acquire)) -
               static_cast<intptr_t>(pos + 1) < 0;
  }

 private:
  struct Cell {
    std::atomic<size_t> sequence;
    Task task;
  };

  std::unique_ptr<Cell[]> cells_;
  size_t mask_;
  std::atomic<size_t> enqueue_pos_{0};
  std::atomic<size_t> dequeue_pos_{0};
};

// --- Shared counters --------------------------------------------------------

struct ShardedEngine::Counters {
  std::atomic<uint64_t> next_ticket{0};
  std::atomic<size_t> pending{0};  ///< Enqueued but not yet finished tasks.
  std::atomic<bool> stop{false};

  std::atomic<size_t> events_posted{0};
  std::atomic<size_t> tasks_processed{0};
  std::atomic<size_t> handoff_waves{0};
  std::atomic<size_t> handoff_waves_truncated{0};
  std::atomic<size_t> reposted_events{0};
  std::atomic<size_t> ring_overflows{0};

  // --- Wave epochs (exactly-once dedup) ---------------------------------
  std::atomic<uint64_t> next_epoch{0};   ///< Last minted epoch (0 = none).
  std::atomic<size_t> wave_epochs{0};    ///< Minted, for stats.
  /// In-flight refcounts per epoch; the ordered map keeps the purge
  /// horizon (the lowest live epoch) one begin() away. Guarded by
  /// epoch_mutex — this is per-task bookkeeping, far off the per-OID
  /// claim path, which stays lock-free inside the owning lane.
  std::mutex epoch_mutex;
  std::map<uint64_t, size_t> live_epochs;
  std::atomic<uint64_t> min_live_epoch{~uint64_t{0}};

  std::mutex drain_mutex;
  std::condition_variable drain_cv;

  /// Shared worker parking lot (workers service any lane, so there is
  /// no per-lane consumer to target a wakeup at).
  std::mutex wake_mutex;
  std::condition_variable wake_cv;
};

// --- Cross-shard router ------------------------------------------------------

/// Per-lane WaveRouter: answers ownership from the shard map,
/// arbitrates the per-wave (epoch, OID) exactly-once claims for the
/// OIDs this shard owns, and accumulates foreign receivers, grouped per
/// (source event, target shard) in first-encounter order, until the
/// lane flushes them as seeded sub-wave tasks after the current task
/// completes. All state is touched only by the worker occupying the
/// lane (the busy flag's acquire/release publishes it between workers),
/// so the claim path needs no locks and no atomics.
class ShardedEngine::LaneRouter final : public WaveRouter {
 public:
  LaneRouter(ShardedEngine& owner, uint32_t shard)
      : owner_(owner), shard_(shard) {}

  bool Owns(OidId receiver) override {
    // Cache the lookup: Handoff(receiver) follows immediately when this
    // returns false (AdmitReceiver), so the foreign path walks the
    // shard map once, not twice.
    last_receiver_ = receiver;
    last_shard_ = owner_.shard_map_.ShardOf(receiver);
    return last_shard_ == shard_;
  }

  uint64_t MintEpoch() override {
    const uint64_t epoch = owner_.MintEpoch();
    // Hold a ref for the rest of the current task: claims under this
    // epoch begin immediately (direction-post collection), before any
    // handoff task of the epoch is enqueued. Released by the lane after
    // Flush().
    owner_.AcquireEpochRef(epoch);
    minted_.push_back(epoch);
    return epoch;
  }

  bool ClaimDelivery(uint64_t epoch, OidId receiver) override {
    // Lazy merge-out: every so often drop the claim sets of completed
    // waves (everything below the lowest in-flight epoch). The size
    // trigger is rate-limited too: when many epochs are pinned live (a
    // deep cross-shard backlog), an eager scan would free nothing and
    // turn every claim into an O(live-epochs) traversal.
    ++claims_since_purge_;
    if (claims_since_purge_ >= kPurgeInterval ||
        (claims_.size() > kPurgeEpochThreshold &&
         claims_since_purge_ >= kPurgeSizeBackoff)) {
      claims_since_purge_ = 0;
      const uint64_t horizon = owner_.MinLiveEpoch();
      for (auto it = claims_.begin(); it != claims_.end();) {
        it = it->first < horizon ? claims_.erase(it) : std::next(it);
      }
    }
    return claims_[epoch].insert(receiver.value()).second;
  }

  /// Epoch refs minted during the current task; the lane releases them
  /// once the task's handoffs are enqueued.
  std::vector<uint64_t> TakeMintedEpochs() {
    return std::exchange(minted_, {});
  }

  void Handoff(OidId receiver, const EventMessage& event) override {
    const uint32_t target = receiver == last_receiver_
                                ? last_shard_
                                : owner_.shard_map_.ShardOf(receiver);
    // Group consecutive receivers of the same wave payload headed for
    // the same shard into one seeded sub-wave, so the target delivers
    // them in one batch exactly like the origin shard would have. The
    // source pointer is only an identity hint (direction posts reuse
    // storage), so the payload fields are compared too.
    if (pending_.empty() || pending_.back().target_shard != target ||
        pending_.back().source != &event ||
        !SamePayload(pending_.back().event, event)) {
      pending_.push_back(PendingWave{target, &event, event, {}});
    }
    pending_.back().seeds.push_back(receiver);
  }

  /// Enqueues every accumulated sub-wave on its target shard. Called
  /// by the owning lane between tasks (never mid-wave). `hops` is the
  /// handoff depth of the task that produced these waves, `order_epoch`
  /// its scheduling root (inherited so direction-post handoffs stay
  /// inside their spawning wave's deterministic slot). A chain past the
  /// configured hop cap is dropped — the backstop behind the
  /// (epoch, OID) claims.
  void Flush(uint32_t hops, uint64_t order_epoch) {
    const bool truncate = hops >= owner_.options_.max_handoff_hops;
    for (PendingWave& wave : pending_) {
      if (truncate) {
        owner_.counters_->handoff_waves_truncated.fetch_add(
            1, std::memory_order_relaxed);
        Log::Warning("cross-shard wave truncated after " +
                     std::to_string(hops) + " handoffs (event '" +
                     wave.event.name + "')");
        continue;
      }
      Task task;
      task.kind = Task::Kind::kSeededWave;
      task.hops = hops + 1;
      task.ticket =
          owner_.counters_->next_ticket.fetch_add(1, std::memory_order_relaxed);
      task.order_epoch = order_epoch;
      task.event = std::move(wave.event);
      task.seeds = std::move(wave.seeds);
      owner_.counters_->handoff_waves.fetch_add(1, std::memory_order_relaxed);
      owner_.Enqueue(wave.target_shard, std::move(task));
    }
    pending_.clear();
  }

 private:
  struct PendingWave {
    uint32_t target_shard = 0;
    const EventMessage* source = nullptr;  ///< Identity hint, never read.
    EventMessage event;                    ///< Snapshot of the payload.
    std::vector<OidId> seeds;
  };

  static bool SamePayload(const EventMessage& a, const EventMessage& b) {
    // The epoch participates: a direction post can carry the same name,
    // direction and argument as its enclosing wave, but it is its own
    // wave scope and must not merge into the parent's sub-wave.
    return a.wave_epoch == b.wave_epoch && a.name == b.name &&
           a.direction == b.direction && a.arg == b.arg && a.user == b.user &&
           a.timestamp == b.timestamp;
  }

  /// Claim purge cadence: often enough that completed waves cannot pile
  /// up, rare enough to stay invisible next to rule execution. The size
  /// trigger fires at most once per kPurgeSizeBackoff claims.
  static constexpr size_t kPurgeInterval = 512;
  static constexpr size_t kPurgeEpochThreshold = 64;
  static constexpr size_t kPurgeSizeBackoff = 64;

  ShardedEngine& owner_;
  uint32_t shard_;
  OidId last_receiver_;  ///< Owns() memo consumed by Handoff().
  uint32_t last_shard_ = 0;
  std::vector<PendingWave> pending_;
  /// (epoch -> delivered OID slots) claim shards; see ClaimDelivery.
  std::unordered_map<uint64_t, std::unordered_set<uint32_t>> claims_;
  size_t claims_since_purge_ = 0;
  std::vector<uint64_t> minted_;  ///< Epoch refs held for this task.
};

// --- Index router ------------------------------------------------------------

/// Routes meta-database link notifications to the owning shard's
/// propagation index (the shard engines themselves stop observing), so
/// a link op costs O(1) index updates instead of one per shard, and the
/// N shard indexes together hold ~1× the link graph. Also owns the
/// boundary set — the links whose endpoints currently sit on different
/// shards, i.e. exactly the links that can carry a wave across a
/// handoff — and, as the ShardMap's listener, migrates an OID's buckets
/// between shard indexes when its assignment changes (incremental union
/// pulls and Rebalance re-deals; no index is ever rebuilt for either).
///
/// Registration order matters twice: the router registers with the
/// database *before* the ShardMap, so a link op is indexed under the
/// pre-union assignment and the union's migration then moves complete
/// buckets; and it registers as the map's listener so re-assignments
/// arrive after the map has switched, when ShardOf() already answers
/// the new shard.
class ShardedEngine::IndexRouter final : public metadb::LinkObserver,
                                         public metadb::ShardMapListener {
 public:
  explicit IndexRouter(ShardedEngine& owner) : owner_(owner) {
    // Scan-mode engines (use_propagation_index = false) query no index;
    // maintaining one per shard would be pure overhead.
    if (owner_.num_shards_ > 1 && owner_.options_.engine.use_propagation_index) {
      owner_.db_.AddLinkObserver(this);
    }
  }

  ~IndexRouter() override { owner_.db_.RemoveLinkObserver(this); }

  /// Armed at the end of the sharded engine's constructor, once the
  /// shard engines exist to route to.
  void Activate() noexcept { active_ = true; }

  size_t boundary_link_count() const noexcept { return boundary_.size(); }
  size_t observer_updates() const noexcept { return observer_updates_; }
  size_t migrated_sources() const noexcept { return migrated_sources_; }

  // --- metadb::LinkObserver ---------------------------------------------

  void OnLinkAdded(metadb::LinkId id, const metadb::Link& link) override {
    if (!active_) return;
    ++observer_updates_;
    IndexOf(link.from).AddLinkSide(id, link, /*down_side=*/true);
    IndexOf(link.to).AddLinkSide(id, link, /*down_side=*/false);
    UpdateBoundary(id, link);
  }

  void OnLinkRemoved(metadb::LinkId id, const metadb::Link& link) override {
    if (!active_) return;
    ++observer_updates_;
    IndexOf(link.from).RemoveLinkSide(id, link, /*down_side=*/true);
    IndexOf(link.to).RemoveLinkSide(id, link, /*down_side=*/false);
    boundary_.erase(id.value());
  }

  void OnLinkEndpointMoved(metadb::LinkId id, bool endpoint_from,
                           OidId old_endpoint,
                           const metadb::Link& link) override {
    if (!active_) return;
    ++observer_updates_;
    const auto& events = link.propagates;
    using events::Direction;
    if (endpoint_from) {
      IndexOf(old_endpoint)
          .EraseEntriesAt(old_endpoint, Direction::kDown, events, id);
      IndexOf(link.from).AppendEntriesAt(link.from, Direction::kDown, events,
                                         id, link.to);
      IndexOf(link.to).PatchNeighborAt(link.to, Direction::kUp, events, id,
                                       link.from);
    } else {
      IndexOf(old_endpoint)
          .EraseEntriesAt(old_endpoint, Direction::kUp, events, id);
      IndexOf(link.to).AppendEntriesAt(link.to, Direction::kUp, events, id,
                                       link.from);
      IndexOf(link.from).PatchNeighborAt(link.from, Direction::kDown, events,
                                         id, link.to);
    }
    UpdateBoundary(id, link);
  }

  void OnLinkPropagatesChanged(metadb::LinkId /*id*/,
                               const std::vector<std::string>& old_propagates,
                               const metadb::Link& link) override {
    if (!active_) return;
    ++observer_updates_;
    using events::Direction;
    IndexOf(link.from).RebuildBucketsAt(owner_.db_, link.from,
                                        Direction::kDown, old_propagates,
                                        link.propagates);
    IndexOf(link.to).RebuildBucketsAt(owner_.db_, link.to, Direction::kUp,
                                      old_propagates, link.propagates);
    // Connectivity (and thus the boundary set) is unchanged.
  }

  // --- metadb::ShardMapListener -----------------------------------------

  void OnShardChanged(OidId id, uint32_t old_shard,
                      uint32_t new_shard) override {
    if (!active_) return;
    ++migrated_sources_;
    owner_.ShardIndex(old_shard).RemoveSourceBuckets(owner_.db_, id);
    owner_.ShardIndex(new_shard).AddSourceBuckets(owner_.db_, id);
    // The move can flip the crossing status of every adjacent link.
    for (const metadb::LinkId link_id : owner_.db_.OutLinks(id)) {
      UpdateBoundary(link_id, owner_.db_.GetLink(link_id));
    }
    for (const metadb::LinkId link_id : owner_.db_.InLinks(id)) {
      UpdateBoundary(link_id, owner_.db_.GetLink(link_id));
    }
  }

 private:
  PropagationIndex& IndexOf(OidId source) {
    return owner_.ShardIndex(owner_.shard_map_.ShardOf(source));
  }

  void UpdateBoundary(metadb::LinkId id, const metadb::Link& link) {
    const bool crossing = owner_.shard_map_.ShardOf(link.from) !=
                          owner_.shard_map_.ShardOf(link.to);
    if (crossing) {
      boundary_.insert(id.value());
    } else {
      boundary_.erase(id.value());
    }
  }

  ShardedEngine& owner_;
  bool active_ = false;
  std::unordered_set<uint32_t> boundary_;  ///< Cross-shard link slots.
  size_t observer_updates_ = 0;
  size_t migrated_sources_ = 0;
};

// --- Lane -------------------------------------------------------------------

struct ShardedEngine::Lane {
  uint32_t shard = 0;
  std::unique_ptr<RunTimeEngine> engine;
  std::unique_ptr<LaneRouter> router;

  /// Lock-free intake (threaded mode); null in deterministic mode.
  std::unique_ptr<TaskRing> ring;

  /// Claim flag: at most one worker occupies a lane at a time, which
  /// keeps the ring single-consumer and the shard's delivery order
  /// FIFO with any worker count.
  std::atomic<bool> busy{false};

  /// Overflow fallback (threaded only). Once a push overflows, later
  /// pushes follow until the consumer drains the deque, so FIFO order
  /// holds across the spill.
  std::mutex overflow_mutex;
  std::deque<Task> overflow;
  std::atomic<bool> overflowed{false};

  /// Deterministic-mode storage: tasks keyed by (order epoch, ticket),
  /// so the scheduler's pick is one begin() away — O(log n) per push
  /// and pop instead of a deque scan. Tickets are globally unique, so
  /// keys never collide.
  std::map<std::pair<uint64_t, uint64_t>, Task> ordered;

  bool HasWork() {
    if (ring != nullptr && !ring->Empty()) return true;
    if (!overflowed.load(std::memory_order_acquire)) return false;
    std::lock_guard<std::mutex> lock(overflow_mutex);
    return !overflow.empty();
  }

  void Push(Task&& task, std::atomic<size_t>& overflow_counter) {
    if (ring == nullptr) {  // Deterministic mode.
      std::lock_guard<std::mutex> lock(overflow_mutex);
      const auto key = std::make_pair(task.order_epoch, task.ticket);
      ordered.emplace(key, std::move(task));
      return;
    }
    if (!overflowed.load(std::memory_order_acquire) &&
        ring->TryPush(std::move(task))) {
      return;
    }
    {
      std::lock_guard<std::mutex> lock(overflow_mutex);
      overflowed.store(true, std::memory_order_release);
      overflow.push_back(std::move(task));
    }
    overflow_counter.fetch_add(1, std::memory_order_relaxed);
  }

  /// Single consumer: ring first (older tasks), then the spill.
  bool Pop(Task& out) {
    if (ring != nullptr && ring->TryPop(out)) return true;
    if (!overflowed.load(std::memory_order_acquire)) return false;
    std::lock_guard<std::mutex> lock(overflow_mutex);
    if (overflow.empty()) {
      overflowed.store(false, std::memory_order_release);
      return false;
    }
    out = std::move(overflow.front());
    overflow.pop_front();
    if (overflow.empty()) overflowed.store(false, std::memory_order_release);
    return true;
  }

  /// Deterministic mode: the lane's best (order epoch, ticket) key —
  /// root wave first, intake ticket within it — so the global scheduler
  /// finishes each wave's reachable work before the next wave starts,
  /// like the single FIFO queue would.
  bool PeekBest(std::pair<uint64_t, uint64_t>& key) {
    std::lock_guard<std::mutex> lock(overflow_mutex);
    if (ordered.empty()) return false;
    key = ordered.begin()->first;
    return true;
  }

  /// Deterministic mode: removes the head task (the one PeekBest saw).
  /// Same-wave tasks keep their enqueue (ticket) order; only cross-wave
  /// tasks jump the line, which a single-threaded drain may freely do.
  void PopBest(Task& out) {
    std::lock_guard<std::mutex> lock(overflow_mutex);
    out = std::move(ordered.begin()->second);
    ordered.erase(ordered.begin());
  }
};

// --- Construction -----------------------------------------------------------

ShardedEngine::ShardedEngine(metadb::MetaDatabase& db, SimClock& clock,
                             ShardedEngineOptions options)
    : db_(db),
      clock_(clock),
      options_(options),
      num_shards_(options.num_shards == 0 ? 1 : options.num_shards),
      // Registers as a link observer (N > 1) ahead of shard_map_: link
      // ops must reach the indexes under pre-union assignments.
      index_router_(std::make_unique<IndexRouter>(*this)),
      shard_map_(db, num_shards_),
      counters_(std::make_unique<Counters>()) {
  lanes_.reserve(num_shards_);
  // Shard engines never self-maintain their index: SetIndexScope below
  // installs the scoped build, so the constructor's full-graph build
  // would be N wasted passes over a pre-populated database.
  EngineOptions engine_options = options_.engine;
  if (num_shards_ > 1) engine_options.external_index_maintenance = true;
  for (uint32_t shard = 0; shard < num_shards_; ++shard) {
    auto lane = std::make_unique<Lane>();
    lane->shard = shard;
    lane->engine =
        std::make_unique<RunTimeEngine>(db_, clock_, engine_options);
    lane->router = std::make_unique<LaneRouter>(*this, shard);
    // With one shard no receiver can be foreign: skip the router so the
    // engine does not even pay the Owns() probe — num_shards = 1 is the
    // PR-2 engine, byte for byte (it also keeps its self-maintained
    // full index; scoping only pays off with actual shards).
    if (num_shards_ > 1) lane->engine->SetWaveRouter(lane->router.get());
    if (!options_.deterministic) {
      lane->ring = std::make_unique<TaskRing>(
          RingCapacity(options_.queue_capacity));
    }
    lanes_.push_back(std::move(lane));
  }
  if (num_shards_ > 1 && options_.engine.use_propagation_index) {
    // Scope every shard engine's index to its own subtree (the engine
    // never self-registered — external_index_maintenance above), then
    // fill all N indexes in ONE routed pass over the database instead
    // of N filtered walks, and arm the router + migration listener.
    for (uint32_t shard = 0; shard < num_shards_; ++shard) {
      lanes_[shard]->engine->SetIndexScope(
          [this, shard](OidId id) { return shard_map_.ShardOf(id) == shard; },
          /*rebuild=*/false);
    }
    db_.ForEachObject([this](OidId id, const metadb::MetaObject&) {
      ShardIndex(shard_map_.ShardOf(id)).AddSourceBuckets(db_, id);
    });
    index_router_->Activate();
    shard_map_.SetListener(index_router_.get());
  }
  if (!options_.deterministic) {
    size_t worker_count = options_.worker_threads;
    if (worker_count == 0) {
      const size_t cores = std::max(1u, std::thread::hardware_concurrency());
      worker_count = std::min<size_t>(num_shards_, cores);
    }
    worker_count = std::min<size_t>(worker_count, num_shards_);
    workers_.reserve(worker_count);
    for (size_t i = 0; i < worker_count; ++i) {
      workers_.emplace_back(&ShardedEngine::WorkerLoop, this, i);
    }
  }
}

ShardedEngine::~ShardedEngine() {
  counters_->stop.store(true, std::memory_order_release);
  counters_->wake_cv.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  shard_map_.SetListener(nullptr);
}

PropagationIndex& ShardedEngine::ShardIndex(uint32_t shard) {
  return lanes_[shard]->engine->mutable_propagation_index();
}

// --- Wave epochs -------------------------------------------------------------

uint64_t ShardedEngine::MintEpoch() {
  counters_->wave_epochs.fetch_add(1, std::memory_order_relaxed);
  return counters_->next_epoch.fetch_add(1, std::memory_order_relaxed) + 1;
}

void ShardedEngine::AcquireEpochRef(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(counters_->epoch_mutex);
  ++counters_->live_epochs[epoch];
  counters_->min_live_epoch.store(counters_->live_epochs.begin()->first,
                                  std::memory_order_release);
}

void ShardedEngine::ReleaseEpochRef(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(counters_->epoch_mutex);
  const auto it = counters_->live_epochs.find(epoch);
  if (it != counters_->live_epochs.end() && --it->second == 0) {
    counters_->live_epochs.erase(it);
  }
  counters_->min_live_epoch.store(counters_->live_epochs.empty()
                                      ? ~uint64_t{0}
                                      : counters_->live_epochs.begin()->first,
                                  std::memory_order_release);
}

uint64_t ShardedEngine::MinLiveEpoch() const noexcept {
  return counters_->min_live_epoch.load(std::memory_order_acquire);
}

// --- Structural operations ---------------------------------------------------

void ShardedEngine::LoadBlueprint(const blueprint::Blueprint& blueprint) {
  for (auto& lane : lanes_) {
    lane->engine->LoadBlueprint(blueprint.Clone());
  }
}

void ShardedEngine::LoadBlueprintText(std::string_view text) {
  LoadBlueprint(blueprint::ParseBlueprint(text));
}

OidId ShardedEngine::OnCreateObject(std::string_view block,
                                    std::string_view view,
                                    std::string_view user) {
  return lanes_.front()->engine->OnCreateObject(block, view, user);
}

metadb::LinkId ShardedEngine::OnCreateLink(metadb::LinkKind kind, OidId from,
                                           OidId to) {
  return lanes_.front()->engine->OnCreateLink(kind, from, to);
}

// --- Intake -----------------------------------------------------------------

uint32_t ShardedEngine::ShardOfTarget(const Oid& target) const {
  if (const std::optional<OidId> id = db_.FindObject(target)) {
    return shard_map_.ShardOf(*id);
  }
  // Dangling target: hash the block name so the journal warning lands
  // on a stable shard regardless of sharding degree.
  return static_cast<uint32_t>(std::hash<std::string>{}(target.block) %
                               num_shards_);
}

void ShardedEngine::Route(EventMessage event) {
  if (event.timestamp == 0) event.timestamp = clock_.NowSeconds();
  // Every top-level event opens a fresh wave scope — rule-posted events
  // re-enter here and scope like the queue boundary of the unsharded
  // engine. Overwrites whatever epoch a reposted event inherited from
  // the wave that posted it.
  event.wave_epoch = num_shards_ > 1 ? MintEpoch() : 0;
  const uint32_t shard = ShardOfTarget(event.target);
  Task task;
  task.kind = Task::Kind::kEvent;
  task.ticket = counters_->next_ticket.fetch_add(1, std::memory_order_relaxed);
  // A top-level wave schedules under itself (reposted events included:
  // the single FIFO queue runs them after everything already queued).
  task.order_epoch = event.wave_epoch;
  task.event = std::move(event);
  Enqueue(shard, std::move(task));
}

void ShardedEngine::PostEvent(EventMessage event) {
  counters_->events_posted.fetch_add(1, std::memory_order_relaxed);
  Route(std::move(event));
}

void ShardedEngine::Enqueue(uint32_t shard, Task&& task) {
  counters_->pending.fetch_add(1, std::memory_order_acq_rel);
  // The task pins its wave's epoch while queued/executing, so no lane
  // purges the wave's claim sets mid-flight. Acquired before the task
  // becomes visible to workers; released in FinishTask.
  if (task.event.wave_epoch != 0) AcquireEpochRef(task.event.wave_epoch);
  lanes_[shard]->Push(std::move(task), counters_->ring_overflows);
  if (!options_.deterministic) counters_->wake_cv.notify_one();
}

// --- Execution ---------------------------------------------------------------

void ShardedEngine::ExecuteTask(Lane& lane, Task&& task) {
  const uint32_t hops = task.hops;
  const uint64_t order_epoch = task.order_epoch;
  if (task.kind == Task::Kind::kEvent) {
    lane.engine->queue().Push(std::move(task.event));
    lane.engine->ProcessOne();
  } else {
    lane.engine->DeliverSeededWave(std::move(task.seeds),
                                   std::move(task.event));
  }
  // Cross-shard sub-waves accumulated during the task go out first (in
  // the single-queue engine those deliveries happened inside the wave,
  // before anything the wave posted), then the events the wave posted
  // to the shard engine's local queue re-enter sharded intake. Epoch
  // refs minted mid-task (direction-post scopes) are dropped last, so
  // their handoff tasks are pinned before the mint ref lapses.
  lane.router->Flush(hops, order_epoch);
  while (std::optional<EventMessage> posted = lane.engine->queue().Pop()) {
    counters_->reposted_events.fetch_add(1, std::memory_order_relaxed);
    Route(std::move(*posted));
  }
  for (const uint64_t epoch : lane.router->TakeMintedEpochs()) {
    ReleaseEpochRef(epoch);
  }
  counters_->tasks_processed.fetch_add(1, std::memory_order_relaxed);
}

void ShardedEngine::FinishTask(uint64_t epoch) {
  if (epoch != 0) ReleaseEpochRef(epoch);
  if (counters_->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(counters_->drain_mutex);
    counters_->drain_cv.notify_all();
  }
}

void ShardedEngine::WorkerLoop(size_t worker_index) {
  Task task;
  int idle_spins = 0;
  for (;;) {
    // Sweep the lanes, starting at this worker's home lane so workers
    // spread out. A claimed lane is skipped — its occupant drains it —
    // which keeps every ring single-consumer.
    bool did_work = false;
    for (size_t i = 0; i < lanes_.size(); ++i) {
      Lane& lane = *lanes_[(worker_index + i) % lanes_.size()];
      if (lane.busy.exchange(true, std::memory_order_acquire)) continue;
      // Bounded burst per claim so one hot lane cannot starve the rest
      // of this worker's sweep.
      for (int burst = 0; burst < 64 && lane.Pop(task); ++burst) {
        const uint64_t epoch = task.event.wave_epoch;
        ExecuteTask(lane, std::move(task));
        FinishTask(epoch);
        did_work = true;
      }
      lane.busy.store(false, std::memory_order_release);
    }
    if (did_work) {
      idle_spins = 0;
      continue;
    }
    if (counters_->stop.load(std::memory_order_acquire)) return;
    // Briefly yield before parking: intake usually refills within a
    // scheduling quantum, and a yield is far cheaper than the
    // sleep/notify round trip (on a loaded host it also lets the
    // producer run).
    if (++idle_spins < 16) {
      std::this_thread::yield();
      continue;
    }
    std::unique_lock<std::mutex> lock(counters_->wake_mutex);
    // Timed wait: the producer's notify races the predicate check, and
    // the short timeout makes a lost wakeup cost a millisecond, not a
    // hang.
    counters_->wake_cv.wait_for(lock, std::chrono::milliseconds(1), [&] {
      if (counters_->stop.load(std::memory_order_acquire)) return true;
      for (const auto& lane : lanes_) {
        if (lane->HasWork()) return true;
      }
      return false;
    });
  }
}

void ShardedEngine::DrainDeterministic() {
  // Global (order epoch, ticket) order across every queued task — not
  // arrival order: a wave's cross-shard sub-waves (direction posts
  // included, which schedule under their spawning wave) run before any
  // later wave's work, reproducing the wave atomicity of the single
  // FIFO queue under the dedup path. Within a wave, tickets rise along
  // the handoff chain, so causal order holds.
  for (;;) {
    Lane* next = nullptr;
    std::pair<uint64_t, uint64_t> best{};
    for (auto& lane : lanes_) {
      std::pair<uint64_t, uint64_t> key{};
      if (lane->PeekBest(key) && (next == nullptr || key < best)) {
        next = lane.get();
        best = key;
      }
    }
    if (next == nullptr) return;
    Task task;
    next->PopBest(task);
    const uint64_t epoch = task.event.wave_epoch;
    ExecuteTask(*next, std::move(task));
    if (epoch != 0) ReleaseEpochRef(epoch);
    counters_->pending.fetch_sub(1, std::memory_order_acq_rel);
  }
}

size_t ShardedEngine::Drain() {
  if (options_.deterministic) {
    DrainDeterministic();
  } else {
    std::unique_lock<std::mutex> lock(counters_->drain_mutex);
    counters_->drain_cv.wait(lock, [&] {
      return counters_->pending.load(std::memory_order_acquire) == 0;
    });
  }
  const size_t total =
      counters_->tasks_processed.load(std::memory_order_acquire);
  const size_t delta = total - last_drain_processed_;
  last_drain_processed_ = total;
  return delta;
}

void ShardedEngine::RebalanceShards() {
  if (!shard_map_.dirty()) return;
  shard_map_.Rebalance();
}

// --- Introspection -----------------------------------------------------------

RunTimeEngine& ShardedEngine::shard(uint32_t index) {
  if (index >= lanes_.size()) {
    throw Error("ShardedEngine::shard: index out of range");
  }
  return *lanes_[index]->engine;
}

const RunTimeEngine& ShardedEngine::shard(uint32_t index) const {
  if (index >= lanes_.size()) {
    throw Error("ShardedEngine::shard: index out of range");
  }
  return *lanes_[index]->engine;
}

ShardedStats ShardedEngine::stats() const {
  ShardedStats stats;
  stats.events_posted =
      counters_->events_posted.load(std::memory_order_relaxed);
  stats.tasks_processed =
      counters_->tasks_processed.load(std::memory_order_relaxed);
  stats.handoff_waves =
      counters_->handoff_waves.load(std::memory_order_relaxed);
  stats.handoff_waves_truncated =
      counters_->handoff_waves_truncated.load(std::memory_order_relaxed);
  stats.reposted_events =
      counters_->reposted_events.load(std::memory_order_relaxed);
  stats.ring_overflows =
      counters_->ring_overflows.load(std::memory_order_relaxed);
  // Sourced from the map so direct shard_map().Rebalance() calls count.
  stats.rebalances = shard_map_.stats().rebalances;
  stats.wave_epochs = counters_->wave_epochs.load(std::memory_order_relaxed);
  for (const auto& lane : lanes_) {
    stats.index_entries += lane->engine->propagation_index().entry_count();
  }
  stats.boundary_links = index_router_->boundary_link_count();
  stats.index_observer_updates = index_router_->observer_updates();
  stats.index_migrated_sources = index_router_->migrated_sources();
  return stats;
}

EngineStats ShardedEngine::AggregateEngineStats() const {
  EngineStats total;
  for (const auto& lane : lanes_) {
    total.Accumulate(lane->engine->stats());
  }
  return total;
}

std::string ShardedEngine::MergedJournalDump() const {
  std::string text;
  for (const auto& lane : lanes_) {
    text += "shard " + std::to_string(lane->shard) + ":\n";
    text += lane->engine->journal().Dump();
  }
  return text;
}

std::vector<std::string> ShardedEngine::JournalLines() const {
  std::vector<std::string> lines;
  for (const auto& lane : lanes_) {
    const events::EventJournal& journal = lane->engine->journal();
    for (size_t i = 0; i < journal.Size(); ++i) {
      const events::JournalRecord record = journal.At(i);
      std::string line = "[";
      line += events::EventOriginName(record.event.origin);
      line += "] ";
      line += events::FormatEvent(record.event);
      lines.push_back(std::move(line));
    }
  }
  return lines;
}

void ShardedEngine::ClearJournals() {
  for (auto& lane : lanes_) lane->engine->ClearJournal();
}

void ShardedEngine::ResetStats() {
  for (auto& lane : lanes_) lane->engine->ResetStats();
  counters_->events_posted.store(0, std::memory_order_relaxed);
  counters_->tasks_processed.store(0, std::memory_order_relaxed);
  counters_->handoff_waves.store(0, std::memory_order_relaxed);
  counters_->handoff_waves_truncated.store(0, std::memory_order_relaxed);
  counters_->reposted_events.store(0, std::memory_order_relaxed);
  counters_->ring_overflows.store(0, std::memory_order_relaxed);
  counters_->wave_epochs.store(0, std::memory_order_relaxed);
  last_drain_processed_ = 0;
}

}  // namespace damocles::engine
