// The sharded wave engine: parallel change propagation over
// block-subtree shards.
//
// PR 2 made per-delivery cost flat (integer-keyed receiver lookups,
// compiled rule tables, copy-free payloads); the remaining ceiling is
// single-threaded wave throughput. The paper's propagation model is
// naturally partitionable: a wave confined to one block subtree never
// touches another, so independent subtrees can process waves
// concurrently. This layer owns N per-shard RunTimeEngines over ONE
// shared meta-database and
//  * routes intake: PostEvent resolves the target's shard through the
//    metadb::ShardMap (use-link subtree roots, dealt round-robin) and
//    enqueues the event on that shard's bounded lock-free MPSC ring —
//    intake never blocks on wave execution;
//  * runs one worker thread per shard, each draining its ring in FIFO
//    order through its shard engine, so delivery order *within a
//    shard* is byte-identical to the unsharded PR-2 engine;
//  * hands cross-shard waves off: when a delivery's receiver set spans
//    shards (a derive link between blocks of different subtrees — the
//    PropagationIndex surfaces the receiver, the WaveRouter detects
//    the foreign shard), the foreign receivers are grouped per target
//    shard and re-enter that shard's queue as a seeded sub-wave
//    (RunTimeEngine::DeliverSeededWave), behind whatever that shard
//    already has queued;
//  * re-routes rule-posted events ('post ... to <View>') from each
//    shard engine's local queue back through sharded intake after every
//    task, preserving the relative order a single queue would produce.
//
// The journal is the synchronization point: each shard engine journals
// its own deliveries under dense per-shard sequence numbers, and the
// merged views below stitch them together. Differential guarantees:
//  * num_shards = 1 is journal-byte-identical to the plain PR-2 engine
//    (no router is installed, so not even the Owns() probe is paid);
//  * for N > 1 the multiset of journal records is identical to the
//    1-shard run whenever cross-shard links do not reconverge (an OID
//    reachable from one wave through two different shards may be
//    delivered once per entering sub-wave — the documented deviation);
//    only the interleaving *across* shards differs.
// ShardedEngineOptions::deterministic = true disables the worker pool:
// tasks execute on the calling thread in global intake-ticket order, so
// differential tests get a reproducible schedule.
//
// Threading contract: PostEvent / Drain may be called from any thread
// (intake is lock-free until a ring overflows to its fallback deque).
// Everything structural — LoadBlueprint, OnCreateObject / OnCreateLink,
// direct MetaDatabase mutations, Rebalance, journal/stat accessors —
// must happen while the engine is quiescent (after Drain returns and
// before new events are posted). Workers only write disjoint state:
// per-shard engine internals and the properties of OIDs inside their
// own shard's waves.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "engine/run_time_engine.hpp"
#include "metadb/shard_map.hpp"

namespace damocles::engine {

/// Tuning knobs for the sharded engine.
struct ShardedEngineOptions {
  /// Number of shards (and worker threads). 1 reproduces the plain
  /// engine exactly.
  uint32_t num_shards = 1;

  /// Execute tasks on the calling thread in global intake-ticket order
  /// instead of on the worker pool (differential testing; fully
  /// reproducible schedules).
  bool deterministic = false;

  /// Per-shard ring capacity (rounded up to a power of two). Overflow
  /// falls back to a locked deque so producers never deadlock.
  size_t queue_capacity = 1024;

  /// Worker threads servicing the shard lanes. 0 = auto:
  /// min(num_shards, hardware cores). A worker claims one lane at a
  /// time (per-shard FIFO is preserved with any worker count), so
  /// fewer workers than shards degrades gracefully instead of
  /// oversubscribing the host.
  size_t worker_threads = 0;

  /// Safety cap on cross-shard handoff chains. Each handoff sub-wave
  /// starts with a fresh visited set, so a propagation cycle whose
  /// links cross shards (A -> B -> A through mutually propagating
  /// derive links) would ping-pong forever where the single visited
  /// set of an unsharded wave terminates; a wave that exceeds this
  /// many hops is dropped and counted (stats().handoff_waves_truncated
  /// — the sharded analogue of max_wave_deliveries). Legitimate chains
  /// are bounded by the number of subtree crossings, far below this.
  uint32_t max_handoff_hops = 64;

  /// Options forwarded to every per-shard engine.
  EngineOptions engine;
};

/// Counters the sharded layer maintains (per-shard engine counters live
/// in each shard's EngineStats; AggregateEngineStats sums them).
struct ShardedStats {
  size_t events_posted = 0;    ///< External events routed through intake.
  size_t tasks_processed = 0;  ///< Queue events + handoff waves executed.
  size_t handoff_waves = 0;    ///< Cross-shard sub-wave tasks enqueued.
  size_t handoff_waves_truncated = 0;  ///< Dropped at max_handoff_hops.
  size_t reposted_events = 0;  ///< Rule-posted events re-routed at intake.
  size_t ring_overflows = 0;   ///< Pushes that took the fallback deque.
  size_t rebalances = 0;       ///< Shard-map rebalance passes (from the
                               ///< map's own stats; survives ResetStats).
};

/// N per-shard engines + shard map + intake queues + worker pool.
class ShardedEngine {
 public:
  ShardedEngine(metadb::MetaDatabase& db, SimClock& clock,
                ShardedEngineOptions options = {});
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  // --- Structural operations (quiescent engine only) --------------------

  /// Installs the blueprint on every shard engine (deep copies; each
  /// engine compiles its own rule tables against its own interner).
  void LoadBlueprint(const blueprint::Blueprint& blueprint);

  /// Parses rule-file text and installs it. Throws ParseError.
  void LoadBlueprintText(std::string_view text);

  /// Creation notifications, template application included. Delegated
  /// to shard 0's engine: template application only mutates the shared
  /// meta-database, so any engine produces identical meta-data.
  metadb::OidId OnCreateObject(std::string_view block, std::string_view view,
                               std::string_view user);
  metadb::LinkId OnCreateLink(metadb::LinkKind kind, metadb::OidId from,
                              metadb::OidId to);

  // --- Intake and execution ---------------------------------------------

  /// Routes an event to its target's shard and enqueues it. Lock-free
  /// until the ring overflows. Safe from multiple threads.
  void PostEvent(events::EventMessage event);

  /// Blocks until every queued event (and every task it spawned) has
  /// been processed. Returns the number of tasks processed by this
  /// drain. One drainer at a time (the coordinating thread); PostEvent
  /// from other threads stays safe while a drain waits.
  size_t Drain();

  /// Rebalances the shard map if a use-link removal/move dirtied it
  /// (subtree re-parenting). Structural: call only while quiescent. A
  /// stale map never loses events — waves crossing a stale boundary
  /// ride the handoff path — it only costs locality until rebalanced.
  void RebalanceShards();

  // --- Introspection -----------------------------------------------------

  uint32_t num_shards() const noexcept { return num_shards_; }
  RunTimeEngine& shard(uint32_t index);
  const RunTimeEngine& shard(uint32_t index) const;
  metadb::ShardMap& shard_map() noexcept { return shard_map_; }
  const metadb::ShardMap& shard_map() const noexcept { return shard_map_; }

  ShardedStats stats() const;

  /// Sums every shard engine's counters (max_wave_extent is the max).
  EngineStats AggregateEngineStats() const;

  /// All shards' journals, one "shard N:" section per shard, each in
  /// its own per-shard sequence order.
  std::string MergedJournalDump() const;

  /// Every journal record across all shards as "[origin] <event>"
  /// lines (no sequence numbers), shard by shard. Sorting the result
  /// gives the multiset differential tests compare.
  std::vector<std::string> JournalLines() const;

  void ClearJournals();
  void ResetStats();

 private:
  struct Task;
  class TaskRing;
  struct Lane;
  class LaneRouter;

  uint32_t ShardOfTarget(const metadb::Oid& target) const;
  void Route(events::EventMessage event);
  void Enqueue(uint32_t shard, Task&& task);
  void ExecuteTask(Lane& lane, Task&& task);
  void FinishTask();
  void WorkerLoop(size_t worker_index);
  void DrainDeterministic();

  metadb::MetaDatabase& db_;
  SimClock& clock_;
  ShardedEngineOptions options_;
  uint32_t num_shards_;
  metadb::ShardMap shard_map_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::thread> workers_;

  // Threading state lives behind the Lane pimpl plus these counters;
  // see sharded_engine.cpp.
  struct Counters;
  std::unique_ptr<Counters> counters_;
  size_t last_drain_processed_ = 0;
};

}  // namespace damocles::engine
