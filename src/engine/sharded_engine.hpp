// The sharded wave engine: parallel change propagation over
// block-subtree shards.
//
// PR 2 made per-delivery cost flat (integer-keyed receiver lookups,
// compiled rule tables, copy-free payloads); the remaining ceiling is
// single-threaded wave throughput. The paper's propagation model is
// naturally partitionable: a wave confined to one block subtree never
// touches another, so independent subtrees can process waves
// concurrently. This layer owns N per-shard RunTimeEngines over ONE
// shared meta-database and
//  * routes intake: PostEvent resolves the target's shard through the
//    metadb::ShardMap (use-link subtree roots, dealt round-robin) and
//    enqueues the event on that shard's bounded lock-free MPSC ring —
//    intake never blocks on wave execution;
//  * runs one worker thread per shard, each draining its ring in FIFO
//    order through its shard engine, so delivery order *within a
//    shard* is byte-identical to the unsharded PR-2 engine;
//  * hands cross-shard waves off BATCHED: when a delivery's receiver
//    set spans shards (a derive link between blocks of different
//    subtrees — the PropagationIndex surfaces the receiver, the
//    WaveRouter detects the foreign shard), the foreign receivers
//    aggregate per (wave epoch, target shard) — however they interleave
//    — and re-enter the target shard as ONE seeded sub-wave per shard
//    (RunTimeEngine::DeliverSeededWave), split into FIFO chunks above
//    max_batch_seeds; epochs identify wave payloads, so no payload
//    comparison is ever needed;
//  * re-routes rule-posted events ('post ... to <View>') from each
//    shard engine's local queue back through sharded intake after every
//    task, preserving the relative order a single queue would produce.
//
// Exactly-once waves. Every top-level wave gets a global WaveEpoch
// ticket minted at intake (and every direction-posted sub-wave its own
// — it opens a fresh visited universe in the unsharded engine too); all
// cross-shard sub-waves of a wave carry the epoch in their payload.
// Delivery is arbitrated per (epoch, OID) by the receiver's OWNING
// shard, one batched claim round per BFS generation: without stealing
// each lane keeps its own claim set (touched only by the worker
// occupying the lane — no locks, no atomics on the claim path); with
// lane stealing the claims live in per-shard ClaimStores published
// behind an epoch-versioned read path (mutex-guarded writes, an atomic
// purge floor) so ANY executor can consult the owning shard's claims.
// Foreign receivers are handed off unclaimed, and the claim at the
// target collapses however many sub-waves reach an OID into one
// delivery. Retired epochs are merged out lazily: claim sets below the
// globally lowest in-flight epoch (refcounted per task) drop on the
// next claim round. The hop cap is thereby a backstop against runaway
// chains of *distinct* OIDs, not a termination patch — cross-shard
// cycles terminate through the claims exactly like the single visited
// set of an unsharded wave.
//
// Lane stealing. Top-level events and sub-waves queue separately: the
// event ring stays single-consumer under the lane's busy flag (per
// -shard FIFO for top-level waves is structural), while sub-wave tasks
// sit in an MPMC ring any idle worker may pop. A stealing worker runs
// the stolen sub-wave on its private scan-mode engine (wave expansion
// reads the drain-quiescent link graph directly; scan and index
// expansion deliver identical receiver sets), claims against the
// owning shard's ClaimStore, and serializes same-OID rule execution
// against the lane's occupant through striped per-OID delivery locks
// (different epochs may reach one OID concurrently). Stolen deliveries
// journal into the steal engine's private journal; the merged views
// below and AggregateEngineStats fold them in.
//
// Per-shard propagation indexes. Each shard engine's PropagationIndex
// is scoped to the sources its shard owns (SetIndexScope), so N shards
// together hold ~1× the link graph instead of N×. The shard engines do
// not observe the meta-database; one IndexRouter (registered before the
// ShardMap so it sees pre-union assignments) applies each link op to
// the owning shard's index — O(1) observer updates per op, not O(N) —
// tracks the boundary set (links whose endpoints sit on different
// shards), and, when the ShardMap reassigns an OID (incremental union
// or Rebalance re-deal), migrates that OID's buckets between shard
// indexes instead of rebuilding either one.
//
// The journal is the synchronization point: each shard engine journals
// its own deliveries under dense per-shard sequence numbers, and the
// merged views below stitch them together. Differential guarantees:
//  * num_shards = 1 is journal-byte-identical to the plain PR-2 engine
//    (no router is installed, so not even the Owns() probe is paid);
//  * for N > 1 the multiset of journal records equals the 1-shard run
//    — including reconvergent topologies where one wave reaches an OID
//    through two shards (the epoch claim delivers it once); only the
//    interleaving *across* shards differs.
// ShardedEngineOptions::deterministic = true disables the worker pool:
// tasks execute on the calling thread ordered by (wave epoch, intake
// ticket) — all of a wave's reachable work completes before the next
// wave's, mirroring the wave atomicity of the single FIFO queue — so
// differential tests get a reproducible schedule.
//
// Threading contract: PostEvent / Drain may be called from any thread
// (intake is lock-free until a ring overflows to its fallback deque).
// Everything structural — LoadBlueprint, OnCreateObject / OnCreateLink,
// direct MetaDatabase mutations, Rebalance, journal/stat accessors —
// must happen while the engine is quiescent (after Drain returns and
// before new events are posted). Workers only write disjoint state:
// per-shard engine internals and the properties of OIDs inside their
// own shard's waves.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "engine/run_time_engine.hpp"
#include "metadb/shard_map.hpp"

namespace damocles::engine {

/// Tuning knobs for the sharded engine.
struct ShardedEngineOptions {
  /// Number of shards (and worker threads). 1 reproduces the plain
  /// engine exactly.
  uint32_t num_shards = 1;

  /// Execute tasks on the calling thread in global intake-ticket order
  /// instead of on the worker pool (differential testing; fully
  /// reproducible schedules).
  bool deterministic = false;

  /// Per-shard ring capacity (rounded up to a power of two). Overflow
  /// falls back to a locked deque so producers never deadlock.
  size_t queue_capacity = 1024;

  /// Worker threads servicing the shard lanes. 0 = auto:
  /// min(num_shards, hardware cores). A worker claims one lane at a
  /// time (per-shard FIFO is preserved with any worker count), so
  /// fewer workers than shards degrades gracefully instead of
  /// oversubscribing the host.
  size_t worker_threads = 0;

  /// Backstop cap on cross-shard handoff chains. Cycles terminate
  /// through the per-wave (epoch, OID) claims — an OID is delivered
  /// once per wave no matter how often the wave re-enters its shard —
  /// so this only stops pathological chains of *distinct* OIDs
  /// snaking across shards; a wave that exceeds this many hops is
  /// dropped and counted (stats().handoff_waves_truncated — the
  /// sharded analogue of max_wave_deliveries). Legitimate chains are
  /// bounded by the number of subtree crossings, far below this.
  uint32_t max_handoff_hops = 64;

  /// Aggregate handoff seeds per (wave epoch, target shard): a wave
  /// whose foreign receivers interleave across shards posts ONE seeded
  /// sub-wave per target shard instead of one per consecutive run of
  /// receivers, amortizing ring traffic and claim rounds. Off keeps the
  /// PR-4 behaviour (only consecutive same-shard receivers merge) as
  /// the benchmark baseline; the delivered record multiset is identical
  /// either way.
  bool batched_handoff = true;

  /// Upper bound on seeds per handoff task (0 = unbounded). A batch
  /// larger than this is split into consecutive FIFO chunks, which
  /// bounds task granularity so stolen sub-waves stay small and a batch
  /// larger than the intake ring spills cleanly instead of wedging one
  /// giant task.
  size_t max_batch_seeds = 1024;

  /// Let idle workers steal queued cross-shard sub-wave tasks from busy
  /// lanes and execute them on a per-worker steal engine. Top-level
  /// waves are never stolen (per-shard FIFO is preserved structurally:
  /// they live in the lane's single-consumer ring); epoch-tagged
  /// sub-waves may run anywhere because exactly-once is arbitrated by
  /// the owning shard's shared claim store and same-OID rule execution
  /// is serialized by per-OID delivery locks. Threaded mode only.
  bool lane_stealing = true;

  /// Options forwarded to every per-shard engine.
  EngineOptions engine;
};

/// Counters the sharded layer maintains (per-shard engine counters live
/// in each shard's EngineStats; AggregateEngineStats sums them).
struct ShardedStats {
  size_t events_posted = 0;    ///< External events routed through intake.
  size_t tasks_processed = 0;  ///< Queue events + handoff waves executed.
  size_t handoff_waves = 0;    ///< Cross-shard sub-wave tasks enqueued.
  size_t handoff_seeds = 0;    ///< Receivers carried by those tasks (the
                               ///< batching win: seeds per task).
  size_t seed_batch_splits = 0;  ///< Extra chunks created when a batch
                                 ///< exceeded max_batch_seeds.
  size_t stolen_subwaves = 0;  ///< Sub-wave tasks executed by a worker
                               ///< that did not occupy the owning lane.
  uint64_t claim_purge_floor = 0;  ///< Gauge: highest epoch below which
                                   ///< some shard's ClaimStore has
                                   ///< merged out completed waves (the
                                   ///< epoch-versioned read path's
                                   ///< published version; 0 with
                                   ///< lane-local claims or before the
                                   ///< first merge-out).
  size_t handoff_waves_truncated = 0;  ///< Dropped at max_handoff_hops.
  size_t reposted_events = 0;  ///< Rule-posted events re-routed at intake.
  size_t ring_overflows = 0;   ///< Pushes that took the fallback deque.
  size_t rebalances = 0;       ///< Shard-map rebalance passes (from the
                               ///< map's own stats; survives ResetStats).
  size_t wave_epochs = 0;      ///< Wave scopes minted (top-level waves +
                               ///< direction-posted sub-waves).
  size_t index_entries = 0;    ///< Gauge: live propagation-index entries
                               ///< summed across shard indexes (~1× the
                               ///< link graph; the pre-split engine held
                               ///< num_shards ×).
  size_t boundary_links = 0;   ///< Gauge: live links whose endpoints sit
                               ///< on different shards (router-owned
                               ///< boundary set).
  size_t index_observer_updates = 0;  ///< Link ops applied to shard
                                      ///< indexes (O(1) per op; the
                                      ///< pre-split engine paid one per
                                      ///< shard). Survives ResetStats.
  size_t index_migrated_sources = 0;  ///< OIDs whose index buckets moved
                                      ///< between shards (union pulls +
                                      ///< rebalance re-deals). Survives
                                      ///< ResetStats.
};

/// N per-shard engines + shard map + intake queues + worker pool.
class ShardedEngine {
 public:
  ShardedEngine(metadb::MetaDatabase& db, SimClock& clock,
                ShardedEngineOptions options = {});
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  // --- Structural operations (quiescent engine only) --------------------

  /// Installs the blueprint on every shard engine (deep copies; each
  /// engine compiles its own rule tables against its own interner).
  /// `policy_version` stamps the PolicyStore commit the blueprint came
  /// from (0 = direct install); every shard's compiled generation
  /// carries it, so live rebinds stay version-traceable per shard.
  void LoadBlueprint(const blueprint::Blueprint& blueprint,
                     uint64_t policy_version = 0);

  /// Parses rule-file text and installs it. Throws ParseError.
  void LoadBlueprintText(std::string_view text, uint64_t policy_version = 0);

  /// PolicyStore version id the installed blueprint was compiled from
  /// (0 = unversioned); identical across shards by construction.
  uint64_t policy_version() const;

  /// Creation notifications, template application included. Delegated
  /// to shard 0's engine: template application only mutates the shared
  /// meta-database, so any engine produces identical meta-data.
  metadb::OidId OnCreateObject(std::string_view block, std::string_view view,
                               std::string_view user);
  metadb::LinkId OnCreateLink(metadb::LinkKind kind, metadb::OidId from,
                              metadb::OidId to);

  // --- Intake and execution ---------------------------------------------

  /// Routes an event to its target's shard and enqueues it. Lock-free
  /// until the ring overflows. Safe from multiple threads.
  void PostEvent(events::EventMessage event);

  /// Blocks until every queued event (and every task it spawned) has
  /// been processed. Returns the number of tasks processed by this
  /// drain. One drainer at a time (the coordinating thread); PostEvent
  /// from other threads stays safe while a drain waits.
  size_t Drain();

  /// Rebalances the shard map if a use-link removal/move dirtied it
  /// (subtree re-parenting). Structural: call only while quiescent. A
  /// stale map never loses events — waves crossing a stale boundary
  /// ride the handoff path — it only costs locality until rebalanced.
  /// Re-assigned OIDs have their propagation-index buckets migrated to
  /// the new shard's index (stats().index_migrated_sources); neither
  /// index is rebuilt.
  void RebalanceShards();

  // --- Introspection -----------------------------------------------------

  uint32_t num_shards() const noexcept { return num_shards_; }
  RunTimeEngine& shard(uint32_t index);
  const RunTimeEngine& shard(uint32_t index) const;
  metadb::ShardMap& shard_map() noexcept { return shard_map_; }
  const metadb::ShardMap& shard_map() const noexcept { return shard_map_; }

  ShardedStats stats() const;

  /// Sums every shard engine's counters (max_wave_extent is the max).
  EngineStats AggregateEngineStats() const;

  /// All shards' journals, one "shard N:" section per shard, each in
  /// its own per-shard sequence order.
  std::string MergedJournalDump() const;

  /// Every journal record across all shards as "[origin] <event>"
  /// lines (no sequence numbers), shard by shard. Sorting the result
  /// gives the multiset differential tests compare.
  std::vector<std::string> JournalLines() const;

  void ClearJournals();
  void ResetStats();

  // --- Durability hooks (events/wal.hpp, metadb/recovery.hpp) ------------

  /// Last minted wave epoch (0 when none yet): the value a checkpoint
  /// records so a recovered engine keeps minting past every epoch the
  /// crashed process ever issued.
  uint64_t epoch_ceiling() const noexcept;

  /// Restores the epoch counters from a checkpoint manifest. Call only
  /// while quiescent, before any post-recovery event is posted.
  void RestoreEpochCeiling(uint64_t next_epoch, size_t wave_epochs);

  /// Steal-context journals (threaded lane stealing); the durability
  /// layer mirrors each one as its own WAL row stream.
  size_t steal_journal_count() const noexcept;
  events::EventJournal& steal_journal(size_t index);

 private:
  struct Task;
  class TaskRing;
  struct Lane;
  class LaneRouter;
  class IndexRouter;
  class ClaimStore;
  struct StealContext;

  uint32_t ShardOfTarget(const metadb::Oid& target) const;
  PropagationIndex& ShardIndex(uint32_t shard);
  void Route(events::EventMessage event);
  void Enqueue(uint32_t shard, Task&& task);
  void ExecuteTask(RunTimeEngine& engine, LaneRouter& router, Task&& task);
  void FinishTask(uint64_t epoch);
  void WorkerLoop(size_t worker_index);
  void DrainDeterministic();

  /// One steal pass for `worker_index`: pops queued sub-wave tasks from
  /// any lane (busy or not) and executes them on the worker's steal
  /// engine against the owning shard's claim store. Returns true when a
  /// task was executed.
  bool TrySteal(size_t worker_index);

  /// The shared (epoch, OID) claim store arbitrating shard `shard`'s
  /// deliveries.
  ClaimStore& StoreOf(uint32_t shard);

  /// Per-OID delivery locks (striped): serialize same-OID rule
  /// execution between a lane's occupant and stealers. No-ops unless
  /// lane stealing is active.
  void LockDelivery(metadb::OidId receiver);
  void UnlockDelivery(metadb::OidId receiver);

  /// Mints the next wave-scope epoch (monotone from 1; 0 is reserved
  /// for "no scope").
  uint64_t MintEpoch();

  /// Per-epoch in-flight refcounts: one ref per queued/executing task
  /// of the epoch plus one per mid-task mint. When an epoch's count
  /// drops to zero its wave is complete and every lane may purge its
  /// claim set ("merged lazily").
  void AcquireEpochRef(uint64_t epoch);
  void ReleaseEpochRef(uint64_t epoch);

  /// Lowest epoch still in flight (UINT64_MAX when none): the lanes'
  /// lock-free purge horizon.
  uint64_t MinLiveEpoch() const noexcept;

  metadb::MetaDatabase& db_;
  SimClock& clock_;
  ShardedEngineOptions options_;
  uint32_t num_shards_;
  /// Declared (and so registered as a link observer) before shard_map_:
  /// the router must see link ops before the map re-groups, so entries
  /// land under the assignment they were placed with.
  std::unique_ptr<IndexRouter> index_router_;
  metadb::ShardMap shard_map_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  /// Per-shard shared claim stores (threaded N > 1 only; deterministic
  /// and 1-shard runs keep lane-local claims inside the routers).
  std::vector<std::unique_ptr<ClaimStore>> claim_stores_;
  /// Per-worker steal engines (threaded, lane_stealing): scan-mode
  /// expansion over the shared read-only link graph, private journal
  /// and stats merged into the engine-wide views.
  std::vector<std::unique_ptr<StealContext>> steal_contexts_;
  bool stealing_active_ = false;
  std::vector<std::thread> workers_;

  // Threading state lives behind the Lane pimpl plus these counters;
  // see sharded_engine.cpp.
  struct Counters;
  std::unique_ptr<Counters> counters_;
  size_t last_drain_processed_ = 0;
};

}  // namespace damocles::engine
