// A line-oriented command session against the project server.
//
// The paper's tracking system is a network service: wrapper scripts and
// designers talk to it in plain text. This session implements that
// surface — postEvent plus the designer-facing query commands — so a
// telnet-style client, a wrapper script or a test can drive the whole
// system through one string-in/string-out interface.
//
// Commands:
//   postEvent <ev> <up|down> <block,view,version> ["arg"]
//   checkin <block> <view> ["content"]
//   checkout <block> <view>
//   link <use|derive> <block,view,version> <block,view,version>
//   query outofdate
//   query state <block,view,version>
//   query block <block>
//   blockers <prop>=<value> [<prop>=<value> ...]
//   report
//   snapshot <name>
//   validate
//   advance <seconds>
//   help
#pragma once

#include <string>
#include <string_view>

#include "engine/project_server.hpp"

namespace damocles::engine {

/// One authenticated session (the user is fixed at construction, the
/// way a per-connection identity would be).
class WireSession {
 public:
  WireSession(ProjectServer& server, std::string user)
      : server_(server), user_(std::move(user)) {}

  /// Executes one command line and returns the textual response.
  /// Errors are reported in-band ("error: ..."), never thrown — a
  /// malformed remote command must not take the server down.
  std::string HandleLine(std::string_view line);

  const std::string& user() const noexcept { return user_; }
  size_t commands_handled() const noexcept { return commands_handled_; }

 private:
  std::string Dispatch(std::string_view line);

  ProjectServer& server_;
  std::string user_;
  size_t commands_handled_ = 0;
};

}  // namespace damocles::engine
