// A line-oriented command session against the project server.
//
// The paper's tracking system is a network service: wrapper scripts and
// designers talk to it in plain text. This session implements that
// surface — postEvent plus the designer-facing query commands — so a
// telnet-style client, a wrapper script or a test can drive the whole
// system through one string-in/string-out interface.
//
// Commands are described by a registry (WireCommands()) instead of an
// if/else chain: one table drives dispatch, the generated `help` text,
// the README command table, and — crucially for the session mux — the
// read/mutate classification that decides whether a line may run
// lock-free on a pinned snapshot or must be serialized through the
// mutation queue.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "engine/project_server.hpp"
#include "metadb/snapshot.hpp"

namespace damocles::engine {

/// How a wire command relates to project state.
enum class WireCommandKind {
  kRead,    ///< Answerable from a snapshot; never mutates state.
  kMutate,  ///< Changes project state; the session mux serializes it.
};

/// One registry row: everything the dispatcher, the generated help
/// text, the README table and the mux's classifier need to know.
struct WireCommandInfo {
  std::string_view name;     ///< The command word.
  std::string_view usage;    ///< Full usage line.
  std::string_view summary;  ///< One-line description.
  WireCommandKind kind = WireCommandKind::kRead;
  bool deprecated = false;
  std::string_view replacement;  ///< Successor name (deprecated only).
  /// Mutate commands the mux must still admit while the server is in
  /// degraded read-only mode — the heal/observability surface
  /// (wal-reopen, failpoint). Reads are always admitted.
  bool allowed_degraded = false;
};

/// The command registry, in the order `help` lists commands.
const std::vector<WireCommandInfo>& WireCommands();

/// The `help` response, generated from the registry.
const std::string& WireCommandHelp();

/// A GitHub-markdown table of the registry — the README's command table
/// is this text verbatim (a test keeps them from drifting).
std::string WireCommandMarkdownTable();

/// Classifies one wire line by its command word. Unknown or empty
/// commands classify as reads so they are answered (with an in-band
/// error) immediately instead of entering the mutation queue.
WireCommandKind ClassifyWireLine(std::string_view line);

/// True when `line` may run even while the server is degraded: every
/// read, plus the mutate commands flagged allowed_degraded above.
bool WireLineAllowedDegraded(std::string_view line);

/// One authenticated session (the user is fixed at construction, the
/// way a per-connection identity would be).
class WireSession {
 public:
  WireSession(ProjectServer& server, std::string user)
      : server_(server), user_(std::move(user)) {}

  /// Executes one command line and returns the textual response.
  /// Errors are reported in-band ("error: ..."), never thrown — a
  /// malformed remote command must not take the server down.
  std::string HandleLine(std::string_view line);

  /// When enabled, read commands pin database().Latest() and answer
  /// from that published snapshot — lock-free against committing
  /// waves. Off (the default), reads go against the live database,
  /// the single-threaded compatibility mode.
  void set_snapshot_reads(bool on) noexcept { snapshot_reads_ = on; }
  bool snapshot_reads() const noexcept { return snapshot_reads_; }

  /// Epoch the most recent read command answered from
  /// (Snapshot::kLiveEpoch when reading the live database).
  uint64_t last_read_epoch() const noexcept { return last_read_epoch_; }

  const std::string& user() const noexcept { return user_; }
  size_t commands_handled() const noexcept { return commands_handled_; }

 private:
  /// Per-line state threaded through a command handler.
  struct Context {
    std::string_view rest;  ///< The line after the command word.
    std::string_view line;  ///< The whole line.
    metadb::Snapshot snap;  ///< The read snapshot (pinned or live).
  };
  using Handler = std::string (WireSession::*)(Context&);
  struct Entry;  ///< Registry row + bound handler (defined in the .cpp).

  /// The dispatch table (registry rows bound to member handlers).
  /// WireCommands() projects the info columns out of it.
  static const std::vector<Entry>& Registry();
  friend const std::vector<WireCommandInfo>& WireCommands();

  std::string Dispatch(std::string_view line);

  std::string CmdPostEvent(Context& ctx);
  std::string CmdCheckin(Context& ctx);
  std::string CmdCheckout(Context& ctx);
  std::string CmdLink(Context& ctx);
  std::string CmdQuery(Context& ctx);
  std::string CmdBlockers(Context& ctx);
  std::string CmdReport(Context& ctx);
  std::string CmdViz(Context& ctx);
  std::string CmdEpoch(Context& ctx);
  std::string CmdCheckpoint(Context& ctx);
  std::string CmdSnapshotAlias(Context& ctx);
  std::string CmdValidate(Context& ctx);
  std::string CmdAdvance(Context& ctx);
  std::string CmdWalStatus(Context& ctx);
  std::string CmdWalCheckpoint(Context& ctx);
  std::string CmdRecover(Context& ctx);
  std::string CmdHealth(Context& ctx);
  std::string CmdWalReopen(Context& ctx);
  std::string CmdFailpoint(Context& ctx);
  std::string CmdPolicyPropose(Context& ctx);
  std::string CmdPolicyValidate(Context& ctx);
  std::string CmdPolicyPromote(Context& ctx);
  std::string CmdPolicyRollback(Context& ctx);
  std::string CmdPolicyLog(Context& ctx);
  std::string CmdShadowWave(Context& ctx);
  std::string CmdHelp(Context& ctx);

  ProjectServer& server_;
  std::string user_;
  size_t commands_handled_ = 0;
  bool snapshot_reads_ = false;
  uint64_t last_read_epoch_ = metadb::Snapshot::kLiveEpoch;
};

}  // namespace damocles::engine
