// The DAMOCLES project server (paper Fig. 1).
//
// Owns the meta-database, the run-time engine, the simulated clock and
// one workspace, and wires them together:
//  * workspace check-ins are observed (non-obstructively) and turned
//    into meta-data registration plus a `ckin` event;
//  * wrapper programs submit textual `postEvent` lines over the
//    simulated network channel;
//  * designers query project state through the query layer, which takes
//    a const reference to the database.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/backoff.hpp"
#include "common/clock.hpp"
#include "common/error.hpp"
#include "engine/run_time_engine.hpp"
#include "engine/sharded_engine.hpp"
#include "events/wal.hpp"
#include "events/wire.hpp"
#include "metadb/meta_database.hpp"
#include "metadb/recovery.hpp"
#include "metadb/workspace.hpp"
#include "policy/policy_engine.hpp"
#include "policy/policy_store.hpp"

namespace damocles::engine {

/// Server configuration.
struct ServerOptions {
  EngineOptions engine;
  /// Number of engine shards. 1 (default) runs the plain single-thread
  /// RunTimeEngine; >1 backs the server with a ShardedEngine so
  /// submitted events flow through the lock-free sharded intake rings
  /// and execute on the worker pool. Structural operations (check-in
  /// registration, link registration, blueprint loads) remain
  /// single-writer: the session mux serializes all mutations onto its
  /// apply thread.
  uint32_t num_shards = 1;
  /// Forwarded to the ShardedEngine when num_shards > 1.
  bool deterministic_shards = false;
  /// Direction stamped on auto-posted ckin events; the paper's sample
  /// command uses `up` ("postEvent ckin up reg,verilog,4 ...").
  events::Direction checkin_direction = events::Direction::kUp;
  /// Process the queue after every submitted event (interactive mode)
  /// instead of waiting for an explicit Drain() (batch mode).
  bool auto_drain = true;
  /// On InitializeBlueprint, re-apply the new link templates to every
  /// existing link (PROPAGATE / TYPE / carry). This makes switching
  /// between loose and strict blueprints effective for data created
  /// under the previous phase (paper §3.2).
  bool retemplate_on_init = true;

  // --- Durability (write-ahead log; see events/wal.hpp) ------------------

  /// Directory for WAL segments, checkpoints and manifests. Created on
  /// demand. Empty (default) disables durability entirely.
  std::string wal_dir;
  /// When appended WAL bytes are forced down (none|batch|every_record).
  events::FsyncPolicy wal_fsync = events::FsyncPolicy::kNone;
  /// Segment roll threshold.
  size_t wal_segment_bytes = 4u << 20;
  /// Take a checkpoint automatically every N logged operations
  /// (0 = only explicit WalCheckpoint / wire "wal-checkpoint" calls).
  size_t checkpoint_every_ops = 0;
  /// Recover from wal_dir contents at construction (default on).
  bool auto_recover = true;
  /// Crash-harness hook observing durable extents; not owned.
  events::WalAppendObserver* wal_observer = nullptr;
  /// WAL append/flush/fsync failures retry on this jittered-exponential
  /// schedule before the server trips into degraded read-only mode
  /// (attempts = 0 degrades on the first failure).
  common::BackoffPolicy wal_retry{3, std::chrono::milliseconds(1),
                                  std::chrono::milliseconds(50), 2.0, 0.5};
};

/// Fault-tolerance snapshot (the wire "health" command's payload).
struct ServerHealth {
  bool durable = false;
  bool degraded = false;    ///< WAL failing; mutations rejected in-band.
  std::string reason;       ///< Failure that tripped degraded mode.
  uint64_t wal_failures = 0;         ///< WAL I/O failures observed.
  uint64_t wal_retries = 0;          ///< Backoff retry attempts made.
  uint64_t checkpoint_failures = 0;  ///< Auto-checkpoints that failed.
  uint64_t heals = 0;                ///< Successful WalReopen() calls.
};

/// Durability-state snapshot (the wire "wal-status" command's payload).
struct WalStatus {
  bool enabled = false;
  std::string dir;
  events::FsyncPolicy fsync = events::FsyncPolicy::kNone;
  bool recovered = false;  ///< A checkpoint was loaded at construction.
  uint64_t checkpoint_id = 0;       ///< Checkpoint recovered from.
  uint64_t recovered_op_seq = 0;    ///< op_seq the checkpoint covered.
  size_t replayed_ops = 0;          ///< WAL tail ops re-executed.
  uint64_t replayed_ops_offset = 0; ///< Ops offset replayed through.
  size_t restored_rows = 0;         ///< Journal rows restored.
  size_t manifests_skipped = 0;     ///< Torn checkpoints passed over.
  uint64_t ops_logged = 0;          ///< Current operation sequence number.
  uint64_t ops_end_offset = 0;      ///< Ops stream logical end, now.
  uint64_t checkpoints_taken = 0;   ///< Checkpoints this process wrote.
};

/// Facade bundling the tracking system's moving parts.
class ProjectServer {
 public:
  explicit ProjectServer(std::string project_name, ServerOptions options = {});
  ~ProjectServer();

  // Non-copyable, non-movable: the workspace observer captures `this`.
  ProjectServer(const ProjectServer&) = delete;
  ProjectServer& operator=(const ProjectServer&) = delete;

  const std::string& project_name() const noexcept { return project_name_; }

  /// Initializes (or re-initializes, between project phases) the
  /// blueprint from rule-file text. Throws ParseError on bad input.
  /// The text is adopted into the policy store as a directly installed
  /// (already promoted) version, keeping the commit chain complete.
  void InitializeBlueprint(std::string_view rule_file_text);

  // --- Versioned policy lifecycle ----------------------------------------
  //
  // The gated path to changing the live rule set:
  //   PolicyPropose -> PolicyValidate -> PolicyPromote -> PolicyRollback
  // Promotion and rollback recompile the chosen version through the
  // compiled-rules generation counter, so live engines (plain or
  // sharded) rebind per-OID rule caches lazily — no stop-the-world
  // reload. All four are durable structural operations: they append to
  // the WAL post-apply and replay through the same methods.

  /// Registers a candidate rule file. Throws ParseError on malformed
  /// text; never touches the live engines. Returns the version id.
  uint64_t PolicyPropose(std::string_view blueprint_text,
                         std::string_view author, std::string_view message);

  /// Statically validates a proposed version (kValidated / kRejected).
  blueprint::ValidationReport PolicyValidate(uint64_t id);

  /// Makes a validated (or previously active) version the live rule
  /// set. Returns a copy of the newly active version.
  policy::PolicyVersion PolicyPromote(uint64_t id);

  /// Restores the previously promoted version's compiled tables without
  /// a restart. Returns a copy of the re-activated version.
  policy::PolicyVersion PolicyRollback();

  /// The versioned policy table (thread-safe; hands out copies).
  policy::PolicyStore& policy_store() noexcept { return policy_store_; }
  const policy::PolicyStore& policy_store() const noexcept {
    return policy_store_;
  }

  // --- Project policies --------------------------------------------------

  /// Installs a policy engine; designer operations are checked against
  /// it from now on (nullptr removes the policy — everything allowed).
  /// The engine is not owned and must outlive the server.
  void SetPolicy(policy::PolicyEngine* policy) noexcept { policy_ = policy; }
  policy::PolicyEngine* policy() const noexcept { return policy_; }

  /// Sets the project phase the policy rules match against.
  void SetProjectPhase(std::string phase);
  const std::string& project_phase() const noexcept { return phase_; }

  // --- Designer-facing operations -------------------------------------

  /// Checks design data in; the observer registers the new version with
  /// the engine and posts `ckin`. Returns the new OID.
  metadb::Oid CheckIn(std::string_view block, std::string_view view,
                      std::string_view content, std::string_view user);

  /// Checks the latest version out for editing.
  metadb::Oid CheckOut(std::string_view block, std::string_view view,
                       std::string_view user);

  /// Registers a link created by a design activity (tools call this via
  /// their wrappers, e.g. the synthesizer registering hierarchy).
  metadb::LinkId RegisterLink(metadb::LinkKind kind, const metadb::Oid& from,
                              const metadb::Oid& to);

  /// Accepts one wire-protocol line ("postEvent ckin up cpu,hdl,3 ...").
  void SubmitWireLine(std::string_view line, std::string_view user);

  /// Posts an already parsed event.
  void Submit(events::EventMessage event);

  /// Drains the event queue; returns events processed.
  size_t Drain();

  /// Advances simulated time (design activities take time).
  void AdvanceClock(int64_t seconds);

  // --- Durability ---------------------------------------------------------

  /// True when operations and journal rows are mirrored to a WAL.
  bool durable() const noexcept { return ops_writer_ != nullptr; }

  /// Drains, syncs every stream and writes a checkpoint (database,
  /// blueprint, workspace, per-stream offsets). Returns the checkpoint
  /// id. Throws Error when durability is off.
  uint64_t WalCheckpoint();

  /// Current durability state (recovery provenance included).
  WalStatus GetWalStatus() const;

  // --- Fault tolerance -----------------------------------------------------

  /// True while the server is in degraded read-only mode: the WAL hit
  /// an unrecoverable I/O failure, mutations are rejected with
  /// DegradedError, reads keep serving from pinned snapshots. Safe to
  /// call from any thread.
  bool degraded() const noexcept {
    return degraded_.load(std::memory_order_acquire);
  }

  /// Fault-tolerance counters + degraded reason. Safe from any thread.
  ServerHealth GetHealth() const;

  /// Heals a degraded server once the fault cleared: quiesces the
  /// engine, discards the (possibly wedged) writers, re-verifies every
  /// stream's tail by truncating to its CRC-valid prefix, reopens fresh
  /// writers and takes a checkpoint re-baselining durability at the
  /// current in-memory state. The checkpoint neutralizes both halves of
  /// the fsync ambiguity: operations that reached disk but were
  /// rejected ("ghosts") carry op_seq <= the new manifest's and are
  /// never replayed; applied operations whose frames were lost are
  /// captured by the checkpointed state itself. Returns the checkpoint
  /// id; throws (and stays degraded) while the fault persists. Also
  /// valid on a healthy server (rolls every stream onto fresh
  /// segments). Callers must serialize this against mutations — the
  /// session mux runs it on the apply thread.
  uint64_t WalReopen();

  /// Throws DegradedError when mutations are currently rejected.
  void RequireWritable() const;

  /// Replays the complete operation history of another WAL directory
  /// into this server (full-genesis replay: checkpoints in `dir` are
  /// ignored, the ops stream alone is the source). Intended for
  /// standing up a fresh server from a crashed one's log; throws Error
  /// when `dir` is this server's own WAL directory. Returns the number
  /// of operations applied.
  size_t RecoverFrom(const std::string& dir);

  // --- Component access --------------------------------------------------

  metadb::MetaDatabase& database() noexcept { return db_; }
  const metadb::MetaDatabase& database() const noexcept { return db_; }

  /// The engine behind the server: the plain engine, or shard 0 of the
  /// sharded engine (template application and retemplating delegate to
  /// shard 0, so it is the structural-operation peer either way).
  RunTimeEngine& engine() noexcept {
    return sharded_ != nullptr ? sharded_->shard(0) : *engine_;
  }
  const RunTimeEngine& engine() const noexcept {
    return sharded_ != nullptr ? sharded_->shard(0) : *engine_;
  }

  /// True when events flow through the sharded intake rings.
  bool is_sharded() const noexcept { return sharded_ != nullptr; }

  /// The sharded backend, or nullptr when num_shards == 1.
  ShardedEngine* sharded_engine() noexcept { return sharded_.get(); }
  const ShardedEngine* sharded_engine() const noexcept {
    return sharded_.get();
  }

  metadb::Workspace& workspace() noexcept { return workspace_; }
  SimClock& clock() noexcept { return clock_; }

 private:
  /// Throws PermissionError when the installed policy denies the request.
  void EnforcePolicy(policy::Operation operation, std::string_view user,
                     std::string_view view, std::string_view block) const;

  /// Routes one event to the plain engine or the sharded intake rings.
  void PostToEngine(events::EventMessage event);

  /// Parses `rule_file_text` and installs it into the live engines,
  /// stamping the compiled rules with `version_id` so bindings rebind.
  /// Shared by InitializeBlueprint, promote/rollback and the recovery
  /// re-install; does not touch the policy store and never logs.
  void InstallBlueprintRules(std::string_view rule_file_text,
                             uint64_t version_id);

  // --- Durability internals ----------------------------------------------

  /// The journal a WAL row stream mirrors ("shard<K>" -> lane K,
  /// "steal<K>" -> steal context K; unknown names fold into shard 0 so
  /// a config change never loses restored rows). Null only when the
  /// stream index is out of range and no fallback exists.
  events::EventJournal* JournalForStream(const std::string& name);

  /// Creates the ops + row writers and attaches the journal sinks.
  void AttachWal();

  /// True when operations should be appended to the ops stream: the
  /// call sites log through the writer's zero-copy Append*Op methods
  /// after an operation succeeded (policy, validation and mutation),
  /// and skip it while replaying or when durability is off.
  bool logging() const noexcept {
    return ops_writer_ != nullptr && !replaying_;
  }

  /// Assigns the next op_seq (and counts toward auto-checkpointing).
  uint64_t NextOpSeq() noexcept {
    ++ops_since_checkpoint_;
    return ++op_seq_;
  }

  /// Re-executes one logged operation (replay path).
  void ApplyOp(const events::WalOpRecord& op);

  /// Replays the post-checkpoint ops tail at construction.
  void ReplayOps(const std::vector<events::WalOpEntry>& ops);

  /// Applies the fsync policy at drain boundaries. Never throws: a
  /// failure retries on options_.wal_retry, then trips degraded mode
  /// (the drained mutations already applied and were acked).
  void FlushWal();

  void MaybeAutoCheckpoint();

  /// Logs one ops-stream record, assigning its op_seq. The happy path
  /// is exactly one inlined Append*Op call; WalIoError diverts to the
  /// cold retry/degrade path. `pre_apply` marks ops logged before their
  /// mutation executes (Submit): those throw DegradedError on
  /// exhaustion because rejecting the client is still truthful. Ops
  /// logged after their mutation applied swallow the failure instead —
  /// the client is acked and durability re-baselines at WalReopen().
  template <typename AppendFn>
  void LogOp(bool pre_apply, AppendFn&& append) {
    const uint64_t seq = NextOpSeq();
    const uint64_t mark = ops_writer_->frames_appended();
    try {
      append(seq);
    } catch (const WalIoError& error) {
      RetryFailedAppend([&append](uint64_t s) { append(s); }, seq,
                        error.what(),
                        ops_writer_->frames_appended() != mark, pre_apply);
    }
  }

  /// Cold path behind LogOp: bounded jittered-exponential retry, then
  /// TripDegraded. When the failed append already framed its record
  /// into the writer's buffer, retries re-drive the I/O (Flush/Sync)
  /// instead of re-appending — a second frame would duplicate the op.
  void RetryFailedAppend(const std::function<void(uint64_t)>& append,
                         uint64_t seq, std::string last_error,
                         bool frame_buffered, bool pre_apply);

  /// Enters degraded read-only mode (idempotent).
  void TripDegraded(const std::string& reason);

  std::string project_name_;
  ServerOptions options_;
  SimClock clock_;
  metadb::MetaDatabase db_;
  std::unique_ptr<RunTimeEngine> engine_;   ///< num_shards == 1.
  std::unique_ptr<ShardedEngine> sharded_;  ///< num_shards > 1.
  metadb::Workspace workspace_;
  policy::PolicyEngine* policy_ = nullptr;
  policy::PolicyStore policy_store_;
  std::string phase_;

  // Durability state (all inert when wal_dir is empty).
  std::unique_ptr<events::WalWriter> ops_writer_;
  std::vector<std::unique_ptr<events::WalWriter>> row_writers_;
  /// Journals with an attached sink, for detaching at destruction.
  std::vector<events::EventJournal*> sink_journals_;
  uint64_t op_seq_ = 0;
  size_t ops_since_checkpoint_ = 0;
  bool replaying_ = false;
  /// The active blueprint's source text (checkpointed alongside the
  /// database so recovery can re-install the rules).
  std::string blueprint_text_;
  bool recovered_checkpoint_ = false;
  uint64_t recovered_checkpoint_id_ = 0;
  uint64_t recovered_op_seq_ = 0;
  size_t replayed_ops_ = 0;
  uint64_t replayed_ops_offset_ = 0;
  size_t restored_rows_ = 0;
  size_t manifests_skipped_ = 0;
  uint64_t checkpoints_taken_ = 0;

  // Fault-tolerance state. The atomics are read by concurrent health /
  // read sessions while the apply thread mutates; the reason string is
  // guarded separately.
  std::atomic<bool> degraded_{false};
  std::atomic<uint64_t> wal_failures_{0};
  std::atomic<uint64_t> wal_retries_{0};
  std::atomic<uint64_t> checkpoint_failures_{0};
  std::atomic<uint64_t> heals_{0};
  mutable std::mutex degraded_reason_mutex_;
  std::string degraded_reason_;
};

}  // namespace damocles::engine
