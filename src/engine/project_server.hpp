// The DAMOCLES project server (paper Fig. 1).
//
// Owns the meta-database, the run-time engine, the simulated clock and
// one workspace, and wires them together:
//  * workspace check-ins are observed (non-obstructively) and turned
//    into meta-data registration plus a `ckin` event;
//  * wrapper programs submit textual `postEvent` lines over the
//    simulated network channel;
//  * designers query project state through the query layer, which takes
//    a const reference to the database.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/backoff.hpp"
#include "common/clock.hpp"
#include "common/error.hpp"
#include "engine/run_time_engine.hpp"
#include "engine/sharded_engine.hpp"
#include "events/wal.hpp"
#include "events/wire.hpp"
#include "metadb/meta_database.hpp"
#include "metadb/recovery.hpp"
#include "metadb/workspace.hpp"
#include "policy/policy_engine.hpp"
#include "policy/policy_store.hpp"

namespace damocles::engine {

/// What a checkpoint writes: the complete database dump, or only the
/// slots dirtied since the previous checkpoint. Delta checkpoints chain
/// onto their base manifest (base → delta → delta …); recovery loads
/// the base, applies the deltas in order, then replays the ops tail.
enum class CheckpointMode { kFull, kDelta };

/// Server configuration.
struct ServerOptions {
  EngineOptions engine;
  /// Number of engine shards. 1 (default) runs the plain single-thread
  /// RunTimeEngine; >1 backs the server with a ShardedEngine so
  /// submitted events flow through the lock-free sharded intake rings
  /// and execute on the worker pool. Structural operations (check-in
  /// registration, link registration, blueprint loads) remain
  /// single-writer: the session mux serializes all mutations onto its
  /// apply thread.
  uint32_t num_shards = 1;
  /// Forwarded to the ShardedEngine when num_shards > 1.
  bool deterministic_shards = false;
  /// Direction stamped on auto-posted ckin events; the paper's sample
  /// command uses `up` ("postEvent ckin up reg,verilog,4 ...").
  events::Direction checkin_direction = events::Direction::kUp;
  /// Process the queue after every submitted event (interactive mode)
  /// instead of waiting for an explicit Drain() (batch mode).
  bool auto_drain = true;
  /// On InitializeBlueprint, re-apply the new link templates to every
  /// existing link (PROPAGATE / TYPE / carry). This makes switching
  /// between loose and strict blueprints effective for data created
  /// under the previous phase (paper §3.2).
  bool retemplate_on_init = true;

  // --- Durability (write-ahead log; see events/wal.hpp) ------------------

  /// Directory for WAL segments, checkpoints and manifests. Created on
  /// demand. Empty (default) disables durability entirely.
  std::string wal_dir;
  /// When appended WAL bytes are forced down (none|batch|every_record).
  events::FsyncPolicy wal_fsync = events::FsyncPolicy::kNone;
  /// Segment roll threshold.
  size_t wal_segment_bytes = 4u << 20;
  /// Take a checkpoint automatically every N logged operations
  /// (0 = only explicit WalCheckpoint / wire "wal-checkpoint" calls).
  size_t checkpoint_every_ops = 0;
  /// Recover from wal_dir contents at construction (default on).
  bool auto_recover = true;
  /// Crash-harness hook observing durable extents; not owned.
  events::WalAppendObserver* wal_observer = nullptr;
  /// WAL append/flush/fsync failures retry on this jittered-exponential
  /// schedule before the server trips into degraded read-only mode
  /// (attempts = 0 degrades on the first failure).
  common::BackoffPolicy wal_retry{3, std::chrono::milliseconds(1),
                                  std::chrono::milliseconds(50), 2.0, 0.5};
  /// Kind of checkpoint the auto-checkpoint path takes. Delta (default)
  /// writes only the dirty slots since the last committed checkpoint;
  /// the first checkpoint (no base on record) is always full, and every
  /// checkpoint_chain_limit-th forces a full to re-anchor the chain.
  CheckpointMode auto_checkpoint_mode = CheckpointMode::kDelta;
  /// Manifests a base→delta chain may span before the next checkpoint
  /// is forced full, bounding recovery's base + deltas + tail work.
  size_t checkpoint_chain_limit = 8;
  /// Write checkpoints on a dedicated background thread: the apply
  /// thread only builds the cut (pinned snapshot, dirty delta, stream
  /// offsets) and keeps serving mutations while the worker serializes,
  /// writes and commits. Synchronous WalCheckpoint() calls enqueue and
  /// wait; auto-checkpoints enqueue and return.
  bool background_checkpoints = false;
  /// Segment retention: after a checkpoint commits, WAL segments wholly
  /// below the committed floor (ops offset for "ops", last journal
  /// reset for row streams) are pruned, keeping this many prunable
  /// segments as a safety margin. Negative (default) never prunes —
  /// RecoverFrom()-style full-genesis replay needs the complete ops
  /// history. Checkpoint chains older than the committed base are
  /// pruned under the same knob.
  int wal_retain_segments = -1;
};

/// Fault-tolerance snapshot (the wire "health" command's payload).
struct ServerHealth {
  bool durable = false;
  bool degraded = false;    ///< WAL failing; mutations rejected in-band.
  std::string reason;       ///< Failure that tripped degraded mode.
  uint64_t wal_failures = 0;         ///< WAL I/O failures observed.
  uint64_t wal_retries = 0;          ///< Backoff retry attempts made.
  uint64_t checkpoint_failures = 0;  ///< Checkpoint attempts that failed.
  uint64_t checkpoint_retries = 0;   ///< Backoff-gated checkpoint re-arms.
  uint64_t heals = 0;                ///< Successful WalReopen() calls.
  /// Garbage collection (segment retention, checkpoint pruning, startup
  /// sweeps) has observed fs::remove failures: disk is leaking and
  /// pruning is falling behind. A warning, not degraded mode — the
  /// durable state itself is intact.
  bool prune_behind = false;
  uint64_t failed_removals = 0;      ///< fs::remove failures across GC paths.
};

/// Durability-state snapshot (the wire "wal-status" command's payload).
struct WalStatus {
  bool enabled = false;
  std::string dir;
  events::FsyncPolicy fsync = events::FsyncPolicy::kNone;
  bool recovered = false;  ///< A checkpoint was loaded at construction.
  uint64_t checkpoint_id = 0;       ///< Checkpoint recovered from.
  uint64_t recovered_op_seq = 0;    ///< op_seq the checkpoint covered.
  size_t replayed_ops = 0;          ///< WAL tail ops re-executed.
  uint64_t replayed_ops_offset = 0; ///< Ops offset replayed through.
  size_t restored_rows = 0;         ///< Journal rows restored.
  size_t manifests_skipped = 0;     ///< Torn checkpoints passed over.
  uint64_t ops_logged = 0;          ///< Current operation sequence number.
  uint64_t ops_end_offset = 0;      ///< Ops stream logical end, now.
  uint64_t checkpoints_taken = 0;   ///< Checkpoints this process wrote.

  // Incremental-checkpoint chain + retention state.
  uint64_t last_checkpoint_id = 0;  ///< Newest committed checkpoint.
  bool last_checkpoint_delta = false;  ///< Its kind (true = delta).
  uint64_t chain_base_id = 0;       ///< Full checkpoint anchoring the chain.
  size_t chain_length = 0;          ///< Manifests in the chain (1 = full only).
  bool background = false;          ///< Background checkpointing enabled.
  int retain_segments = -1;         ///< Retention knob (-1 = never prune).
  uint64_t segments_pruned = 0;     ///< WAL segments removed by retention.
  uint64_t bytes_pruned = 0;        ///< Bytes those segments held.
  uint64_t checkpoints_pruned = 0;  ///< Superseded manifest/checkpoint files.
  uint64_t gc_artifacts_removed = 0;  ///< Startup-sweep removals (tmp, orphans).
  uint64_t failed_removals = 0;     ///< fs::remove failures across GC paths.
};

/// Facade bundling the tracking system's moving parts.
class ProjectServer {
 public:
  explicit ProjectServer(std::string project_name, ServerOptions options = {});
  ~ProjectServer();

  // Non-copyable, non-movable: the workspace observer captures `this`.
  ProjectServer(const ProjectServer&) = delete;
  ProjectServer& operator=(const ProjectServer&) = delete;

  const std::string& project_name() const noexcept { return project_name_; }

  /// Initializes (or re-initializes, between project phases) the
  /// blueprint from rule-file text. Throws ParseError on bad input.
  /// The text is adopted into the policy store as a directly installed
  /// (already promoted) version, keeping the commit chain complete.
  void InitializeBlueprint(std::string_view rule_file_text);

  // --- Versioned policy lifecycle ----------------------------------------
  //
  // The gated path to changing the live rule set:
  //   PolicyPropose -> PolicyValidate -> PolicyPromote -> PolicyRollback
  // Promotion and rollback recompile the chosen version through the
  // compiled-rules generation counter, so live engines (plain or
  // sharded) rebind per-OID rule caches lazily — no stop-the-world
  // reload. All four are durable structural operations: they append to
  // the WAL post-apply and replay through the same methods.

  /// Registers a candidate rule file. Throws ParseError on malformed
  /// text; never touches the live engines. Returns the version id.
  uint64_t PolicyPropose(std::string_view blueprint_text,
                         std::string_view author, std::string_view message);

  /// Statically validates a proposed version (kValidated / kRejected).
  blueprint::ValidationReport PolicyValidate(uint64_t id);

  /// Makes a validated (or previously active) version the live rule
  /// set. Returns a copy of the newly active version.
  policy::PolicyVersion PolicyPromote(uint64_t id);

  /// Restores the previously promoted version's compiled tables without
  /// a restart. Returns a copy of the re-activated version.
  policy::PolicyVersion PolicyRollback();

  /// The versioned policy table (thread-safe; hands out copies).
  policy::PolicyStore& policy_store() noexcept { return policy_store_; }
  const policy::PolicyStore& policy_store() const noexcept {
    return policy_store_;
  }

  // --- Project policies --------------------------------------------------

  /// Installs a policy engine; designer operations are checked against
  /// it from now on (nullptr removes the policy — everything allowed).
  /// The engine is not owned and must outlive the server.
  void SetPolicy(policy::PolicyEngine* policy) noexcept { policy_ = policy; }
  policy::PolicyEngine* policy() const noexcept { return policy_; }

  /// Sets the project phase the policy rules match against.
  void SetProjectPhase(std::string phase);
  const std::string& project_phase() const noexcept { return phase_; }

  // --- Designer-facing operations -------------------------------------

  /// Checks design data in; the observer registers the new version with
  /// the engine and posts `ckin`. Returns the new OID.
  metadb::Oid CheckIn(std::string_view block, std::string_view view,
                      std::string_view content, std::string_view user);

  /// Checks the latest version out for editing.
  metadb::Oid CheckOut(std::string_view block, std::string_view view,
                       std::string_view user);

  /// Registers a link created by a design activity (tools call this via
  /// their wrappers, e.g. the synthesizer registering hierarchy).
  metadb::LinkId RegisterLink(metadb::LinkKind kind, const metadb::Oid& from,
                              const metadb::Oid& to);

  /// Accepts one wire-protocol line ("postEvent ckin up cpu,hdl,3 ...").
  void SubmitWireLine(std::string_view line, std::string_view user);

  /// Posts an already parsed event.
  void Submit(events::EventMessage event);

  /// Drains the event queue; returns events processed.
  size_t Drain();

  /// Advances simulated time (design activities take time).
  void AdvanceClock(int64_t seconds);

  // --- Durability ---------------------------------------------------------

  /// True when operations and journal rows are mirrored to a WAL.
  bool durable() const noexcept { return ops_writer_ != nullptr; }

  /// Drains, syncs every stream and writes a checkpoint (database,
  /// blueprint, workspace, per-stream offsets). Returns the checkpoint
  /// id. Throws Error when durability is off. kFull (default) dumps the
  /// complete database; kDelta writes only the slots dirtied since the
  /// last committed checkpoint and chains onto it (silently upgraded to
  /// full when no base exists or the chain hit checkpoint_chain_limit).
  /// With background_checkpoints on, the call enqueues the cut to the
  /// worker thread and waits for the commit.
  uint64_t WalCheckpoint(CheckpointMode mode = CheckpointMode::kFull);

  /// Current durability state (recovery provenance included).
  WalStatus GetWalStatus() const;

  // --- Fault tolerance -----------------------------------------------------

  /// True while the server is in degraded read-only mode: the WAL hit
  /// an unrecoverable I/O failure, mutations are rejected with
  /// DegradedError, reads keep serving from pinned snapshots. Safe to
  /// call from any thread.
  bool degraded() const noexcept {
    return degraded_.load(std::memory_order_acquire);
  }

  /// Fault-tolerance counters + degraded reason. Safe from any thread.
  ServerHealth GetHealth() const;

  /// Heals a degraded server once the fault cleared: quiesces the
  /// engine, discards the (possibly wedged) writers, re-verifies every
  /// stream's tail by truncating to its CRC-valid prefix, reopens fresh
  /// writers and takes a checkpoint re-baselining durability at the
  /// current in-memory state. The checkpoint neutralizes both halves of
  /// the fsync ambiguity: operations that reached disk but were
  /// rejected ("ghosts") carry op_seq <= the new manifest's and are
  /// never replayed; applied operations whose frames were lost are
  /// captured by the checkpointed state itself. Returns the checkpoint
  /// id; throws (and stays degraded) while the fault persists. Also
  /// valid on a healthy server (rolls every stream onto fresh
  /// segments). Callers must serialize this against mutations — the
  /// session mux runs it on the apply thread.
  uint64_t WalReopen();

  /// Throws DegradedError when mutations are currently rejected.
  void RequireWritable() const;

  /// Replays the complete operation history of another WAL directory
  /// into this server (full-genesis replay: checkpoints in `dir` are
  /// ignored, the ops stream alone is the source). Intended for
  /// standing up a fresh server from a crashed one's log; throws Error
  /// when `dir` is this server's own WAL directory. Returns the number
  /// of operations applied.
  size_t RecoverFrom(const std::string& dir);

  // --- Component access --------------------------------------------------

  metadb::MetaDatabase& database() noexcept { return db_; }
  const metadb::MetaDatabase& database() const noexcept { return db_; }

  /// The engine behind the server: the plain engine, or shard 0 of the
  /// sharded engine (template application and retemplating delegate to
  /// shard 0, so it is the structural-operation peer either way).
  RunTimeEngine& engine() noexcept {
    return sharded_ != nullptr ? sharded_->shard(0) : *engine_;
  }
  const RunTimeEngine& engine() const noexcept {
    return sharded_ != nullptr ? sharded_->shard(0) : *engine_;
  }

  /// True when events flow through the sharded intake rings.
  bool is_sharded() const noexcept { return sharded_ != nullptr; }

  /// The sharded backend, or nullptr when num_shards == 1.
  ShardedEngine* sharded_engine() noexcept { return sharded_.get(); }
  const ShardedEngine* sharded_engine() const noexcept {
    return sharded_.get();
  }

  metadb::Workspace& workspace() noexcept { return workspace_; }
  SimClock& clock() noexcept { return clock_; }

 private:
  /// Throws PermissionError when the installed policy denies the request.
  void EnforcePolicy(policy::Operation operation, std::string_view user,
                     std::string_view view, std::string_view block) const;

  /// Routes one event to the plain engine or the sharded intake rings.
  void PostToEngine(events::EventMessage event);

  /// Parses `rule_file_text` and installs it into the live engines,
  /// stamping the compiled rules with `version_id` so bindings rebind.
  /// Shared by InitializeBlueprint, promote/rollback and the recovery
  /// re-install; does not touch the policy store and never logs.
  void InstallBlueprintRules(std::string_view rule_file_text,
                             uint64_t version_id);

  // --- Durability internals ----------------------------------------------

  /// The journal a WAL row stream mirrors ("shard<K>" -> lane K,
  /// "steal<K>" -> steal context K; unknown names fold into shard 0 so
  /// a config change never loses restored rows). Null only when the
  /// stream index is out of range and no fallback exists.
  events::EventJournal* JournalForStream(const std::string& name);

  /// Creates the ops + row writers and attaches the journal sinks.
  void AttachWal();

  /// True when operations should be appended to the ops stream: the
  /// call sites log through the writer's zero-copy Append*Op methods
  /// after an operation succeeded (policy, validation and mutation),
  /// and skip it while replaying or when durability is off.
  bool logging() const noexcept {
    return ops_writer_ != nullptr && !replaying_;
  }

  /// Assigns the next op_seq (and counts toward auto-checkpointing).
  uint64_t NextOpSeq() noexcept {
    ++ops_since_checkpoint_;
    return ++op_seq_;
  }

  /// Re-executes one logged operation (replay path).
  void ApplyOp(const events::WalOpRecord& op);

  /// Replays the post-checkpoint ops tail at construction.
  void ReplayOps(const std::vector<events::WalOpEntry>& ops);

  /// Applies the fsync policy at drain boundaries. Never throws: a
  /// failure retries on options_.wal_retry, then trips degraded mode
  /// (the drained mutations already applied and were acked).
  void FlushWal();

  void MaybeAutoCheckpoint();

  // --- Incremental / background checkpointing ------------------------------

  /// Everything a checkpoint write needs, frozen on the apply thread at
  /// a drain-quiescent point. The snapshot pins the database version
  /// (background mode) or wraps it live (inline mode); serialization
  /// happens wherever the write runs, so with background checkpointing
  /// on the apply thread never pays the dump cost.
  struct CheckpointCut {
    bool delta = false;
    uint64_t base_id = 0;
    uint64_t op_seq = 0;
    uint64_t ops_offset = 0;
    int64_t clock_seconds = 0;
    uint64_t epoch_next = 0;
    uint64_t epoch_waves = 0;
    metadb::Snapshot snap;
    metadb::DirtySet dirty;
    std::string blueprint_text;
    std::string workspace_text;
    std::string policy_text;
    std::vector<std::pair<std::string, uint64_t>> streams;
    /// Segment-retention floors captured at cut time: the checkpoint
    /// ops offset for "ops", each row writer's last-reset end (0 keeps
    /// the stream untouched). Applied only after the write commits.
    std::vector<std::pair<std::string, uint64_t>> prune_floors;
  };

  /// Apply-thread half: drains, heals stale mirrors, syncs every
  /// stream, then freezes offsets + snapshot + dirty delta. Anything
  /// that can throw runs before the dirty cut, so a failed build never
  /// loses dirty marks. Resolves kDelta down to full when no base
  /// exists or the chain hit its limit.
  CheckpointCut BuildCheckpointCut(CheckpointMode mode);

  /// Write half (worker thread in background mode): serializes the
  /// database from the cut's snapshot and writes checkpoint files +
  /// manifest. Returns the new checkpoint id.
  uint64_t RunCheckpointWrite(const CheckpointCut& cut);

  /// Publishes a committed checkpoint: chain/floor atomics, counter
  /// resets, backoff re-arm. Worker thread in background mode — touches
  /// atomics and the checkpoint mutex only, never the live database.
  void CommitCheckpoint(const CheckpointCut& cut, uint64_t id);

  /// Retention after a commit: prunes WAL segments wholly below the
  /// cut's floors and checkpoint chains below the committed base.
  /// Failures surface as counters (prune-behind warning), never as a
  /// checkpoint failure — the manifest already committed.
  void PruneAfterCommit(const CheckpointCut& cut);

  /// Failure bookkeeping shared by the inline and worker paths: counts
  /// the failure, parks the cut's dirty set for merge-back on the apply
  /// thread, and arms the next auto-attempt on the backoff schedule
  /// (after the schedule exhausts, re-attempts keep the max interval —
  /// never once-per-op).
  void HandleCheckpointFailure(CheckpointCut&& cut);

  /// Re-marks dirty sets parked by failed checkpoints (apply thread
  /// only; caller holds checkpoint_mutex_).
  void MergeBackFailedDirtyLocked();

  uint64_t CheckpointInline(CheckpointCut&& cut);
  uint64_t CheckpointThroughWorker(CheckpointCut&& cut);
  void CheckpointWorkerLoop();
  void StopCheckpointWorker();

  /// Logs one ops-stream record, assigning its op_seq. The happy path
  /// is exactly one inlined Append*Op call; WalIoError diverts to the
  /// cold retry/degrade path. `pre_apply` marks ops logged before their
  /// mutation executes (Submit): those throw DegradedError on
  /// exhaustion because rejecting the client is still truthful. Ops
  /// logged after their mutation applied swallow the failure instead —
  /// the client is acked and durability re-baselines at WalReopen().
  template <typename AppendFn>
  void LogOp(bool pre_apply, AppendFn&& append) {
    const uint64_t seq = NextOpSeq();
    const uint64_t mark = ops_writer_->frames_appended();
    try {
      append(seq);
    } catch (const WalIoError& error) {
      RetryFailedAppend([&append](uint64_t s) { append(s); }, seq,
                        error.what(),
                        ops_writer_->frames_appended() != mark, pre_apply);
    }
  }

  /// Cold path behind LogOp: bounded jittered-exponential retry, then
  /// TripDegraded. When the failed append already framed its record
  /// into the writer's buffer, retries re-drive the I/O (Flush/Sync)
  /// instead of re-appending — a second frame would duplicate the op.
  void RetryFailedAppend(const std::function<void(uint64_t)>& append,
                         uint64_t seq, std::string last_error,
                         bool frame_buffered, bool pre_apply);

  /// Enters degraded read-only mode (idempotent).
  void TripDegraded(const std::string& reason);

  std::string project_name_;
  ServerOptions options_;
  SimClock clock_;
  metadb::MetaDatabase db_;
  std::unique_ptr<RunTimeEngine> engine_;   ///< num_shards == 1.
  std::unique_ptr<ShardedEngine> sharded_;  ///< num_shards > 1.
  metadb::Workspace workspace_;
  policy::PolicyEngine* policy_ = nullptr;
  policy::PolicyStore policy_store_;
  std::string phase_;

  // Durability state (all inert when wal_dir is empty).
  std::unique_ptr<events::WalWriter> ops_writer_;
  std::vector<std::unique_ptr<events::WalWriter>> row_writers_;
  /// Journals with an attached sink, for detaching at destruction.
  std::vector<events::EventJournal*> sink_journals_;
  uint64_t op_seq_ = 0;
  /// Ops since the last *committed* checkpoint (reset at commit, which
  /// runs on the worker thread in background mode — hence atomic).
  std::atomic<size_t> ops_since_checkpoint_{0};
  bool replaying_ = false;
  /// The active blueprint's source text (checkpointed alongside the
  /// database so recovery can re-install the rules).
  std::string blueprint_text_;
  bool recovered_checkpoint_ = false;
  uint64_t recovered_checkpoint_id_ = 0;
  uint64_t recovered_op_seq_ = 0;
  size_t replayed_ops_ = 0;
  uint64_t replayed_ops_offset_ = 0;
  size_t restored_rows_ = 0;
  size_t manifests_skipped_ = 0;
  std::atomic<uint64_t> checkpoints_taken_{0};

  // Committed-checkpoint chain + retention state. Written by whichever
  // thread commits (worker in background mode), read by health/status
  // sessions — atomics throughout.
  std::atomic<uint64_t> committed_checkpoint_id_{0};
  std::atomic<bool> committed_checkpoint_delta_{false};
  std::atomic<uint64_t> committed_chain_base_{0};
  std::atomic<uint64_t> committed_chain_length_{0};
  std::atomic<uint64_t> segments_pruned_{0};
  std::atomic<uint64_t> bytes_pruned_{0};
  std::atomic<uint64_t> checkpoints_pruned_{0};
  std::atomic<uint64_t> gc_artifacts_removed_{0};
  std::atomic<uint64_t> failed_removals_{0};
  std::atomic<uint64_t> checkpoint_retries_{0};
  /// steady_clock deadline (ms since epoch) before which the
  /// auto-checkpoint path will not re-attempt after a failure. The fix
  /// for the checkpoint-failure storm: failures used to reset the op
  /// counter to the threshold, re-attempting on *every* subsequent op.
  std::atomic<int64_t> checkpoint_retry_at_ms_{0};

  // Background-checkpoint worker. One cut pending or in flight at a
  // time; only the apply thread enqueues.
  std::mutex checkpoint_mutex_;
  std::condition_variable checkpoint_cv_;
  std::thread checkpoint_thread_;
  bool checkpoint_shutdown_ = false;
  bool checkpoint_busy_ = false;  ///< A cut is pending or being written.
  std::optional<CheckpointCut> pending_cut_;
  uint64_t checkpoint_ticket_ = 0;  ///< Cuts enqueued.
  uint64_t checkpoint_done_ = 0;    ///< Cuts completed (either way).
  uint64_t last_worker_id_ = 0;     ///< Id from the last completed cut.
  std::exception_ptr last_worker_error_;  ///< Its failure, if any.
  /// Dirty sets from failed cuts, parked until the apply thread can
  /// safely restamp them (the tracker's arrays may grow concurrently).
  std::vector<metadb::DirtySet> failed_dirty_;
  common::BackoffState checkpoint_backoff_;

  // Fault-tolerance state. The atomics are read by concurrent health /
  // read sessions while the apply thread mutates; the reason string is
  // guarded separately.
  std::atomic<bool> degraded_{false};
  std::atomic<uint64_t> wal_failures_{0};
  std::atomic<uint64_t> wal_retries_{0};
  std::atomic<uint64_t> checkpoint_failures_{0};
  std::atomic<uint64_t> heals_{0};
  mutable std::mutex degraded_reason_mutex_;
  std::string degraded_reason_;
};

}  // namespace damocles::engine
