// The DAMOCLES project server (paper Fig. 1).
//
// Owns the meta-database, the run-time engine, the simulated clock and
// one workspace, and wires them together:
//  * workspace check-ins are observed (non-obstructively) and turned
//    into meta-data registration plus a `ckin` event;
//  * wrapper programs submit textual `postEvent` lines over the
//    simulated network channel;
//  * designers query project state through the query layer, which takes
//    a const reference to the database.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.hpp"
#include "engine/run_time_engine.hpp"
#include "engine/sharded_engine.hpp"
#include "events/wire.hpp"
#include "metadb/meta_database.hpp"
#include "metadb/workspace.hpp"
#include "policy/policy_engine.hpp"

namespace damocles::engine {

/// Server configuration.
struct ServerOptions {
  EngineOptions engine;
  /// Number of engine shards. 1 (default) runs the plain single-thread
  /// RunTimeEngine; >1 backs the server with a ShardedEngine so
  /// submitted events flow through the lock-free sharded intake rings
  /// and execute on the worker pool. Structural operations (check-in
  /// registration, link registration, blueprint loads) remain
  /// single-writer: the session mux serializes all mutations onto its
  /// apply thread.
  uint32_t num_shards = 1;
  /// Forwarded to the ShardedEngine when num_shards > 1.
  bool deterministic_shards = false;
  /// Direction stamped on auto-posted ckin events; the paper's sample
  /// command uses `up` ("postEvent ckin up reg,verilog,4 ...").
  events::Direction checkin_direction = events::Direction::kUp;
  /// Process the queue after every submitted event (interactive mode)
  /// instead of waiting for an explicit Drain() (batch mode).
  bool auto_drain = true;
  /// On InitializeBlueprint, re-apply the new link templates to every
  /// existing link (PROPAGATE / TYPE / carry). This makes switching
  /// between loose and strict blueprints effective for data created
  /// under the previous phase (paper §3.2).
  bool retemplate_on_init = true;
};

/// Facade bundling the tracking system's moving parts.
class ProjectServer {
 public:
  explicit ProjectServer(std::string project_name, ServerOptions options = {});
  ~ProjectServer();

  // Non-copyable, non-movable: the workspace observer captures `this`.
  ProjectServer(const ProjectServer&) = delete;
  ProjectServer& operator=(const ProjectServer&) = delete;

  const std::string& project_name() const noexcept { return project_name_; }

  /// Initializes (or re-initializes, between project phases) the
  /// blueprint from rule-file text. Throws ParseError on bad input.
  void InitializeBlueprint(std::string_view rule_file_text);

  // --- Project policies --------------------------------------------------

  /// Installs a policy engine; designer operations are checked against
  /// it from now on (nullptr removes the policy — everything allowed).
  /// The engine is not owned and must outlive the server.
  void SetPolicy(policy::PolicyEngine* policy) noexcept { policy_ = policy; }
  policy::PolicyEngine* policy() const noexcept { return policy_; }

  /// Sets the project phase the policy rules match against.
  void SetProjectPhase(std::string phase);
  const std::string& project_phase() const noexcept { return phase_; }

  // --- Designer-facing operations -------------------------------------

  /// Checks design data in; the observer registers the new version with
  /// the engine and posts `ckin`. Returns the new OID.
  metadb::Oid CheckIn(std::string_view block, std::string_view view,
                      std::string_view content, std::string_view user);

  /// Checks the latest version out for editing.
  metadb::Oid CheckOut(std::string_view block, std::string_view view,
                       std::string_view user);

  /// Registers a link created by a design activity (tools call this via
  /// their wrappers, e.g. the synthesizer registering hierarchy).
  metadb::LinkId RegisterLink(metadb::LinkKind kind, const metadb::Oid& from,
                              const metadb::Oid& to);

  /// Accepts one wire-protocol line ("postEvent ckin up cpu,hdl,3 ...").
  void SubmitWireLine(std::string_view line, std::string_view user);

  /// Posts an already parsed event.
  void Submit(events::EventMessage event);

  /// Drains the event queue; returns events processed.
  size_t Drain();

  /// Advances simulated time (design activities take time).
  void AdvanceClock(int64_t seconds) { clock_.Advance(seconds); }

  // --- Component access --------------------------------------------------

  metadb::MetaDatabase& database() noexcept { return db_; }
  const metadb::MetaDatabase& database() const noexcept { return db_; }

  /// The engine behind the server: the plain engine, or shard 0 of the
  /// sharded engine (template application and retemplating delegate to
  /// shard 0, so it is the structural-operation peer either way).
  RunTimeEngine& engine() noexcept {
    return sharded_ != nullptr ? sharded_->shard(0) : *engine_;
  }
  const RunTimeEngine& engine() const noexcept {
    return sharded_ != nullptr ? sharded_->shard(0) : *engine_;
  }

  /// True when events flow through the sharded intake rings.
  bool is_sharded() const noexcept { return sharded_ != nullptr; }

  /// The sharded backend, or nullptr when num_shards == 1.
  ShardedEngine* sharded_engine() noexcept { return sharded_.get(); }
  const ShardedEngine* sharded_engine() const noexcept {
    return sharded_.get();
  }

  metadb::Workspace& workspace() noexcept { return workspace_; }
  SimClock& clock() noexcept { return clock_; }

 private:
  /// Throws PermissionError when the installed policy denies the request.
  void EnforcePolicy(policy::Operation operation, std::string_view user,
                     std::string_view view, std::string_view block) const;

  /// Routes one event to the plain engine or the sharded intake rings.
  void PostToEngine(events::EventMessage event);

  std::string project_name_;
  ServerOptions options_;
  SimClock clock_;
  metadb::MetaDatabase db_;
  std::unique_ptr<RunTimeEngine> engine_;   ///< num_shards == 1.
  std::unique_ptr<ShardedEngine> sharded_;  ///< num_shards > 1.
  metadb::Workspace workspace_;
  policy::PolicyEngine* policy_ = nullptr;
  std::string phase_;
};

}  // namespace damocles::engine
