// Private designer workspaces and promotion.
//
// Paper §3.3: "every time a new version of schematic is promoted
// (checked in) to the project workspace" — designers iterate in private
// sandboxes the tracking system does not watch; only *promotion* into
// the project workspace creates a tracked version and fires the ckin
// machinery. This keeps tracking non-obstructive during high-churn
// editing: a hundred sandbox saves cost the project server nothing.
#pragma once

#include <string>
#include <string_view>

#include "engine/project_server.hpp"
#include "metadb/workspace.hpp"

namespace damocles::engine {

/// A designer's private sandbox bound to one project server.
class DesignerWorkspace {
 public:
  DesignerWorkspace(ProjectServer& server, std::string owner)
      : server_(server),
        owner_(std::move(owner)),
        sandbox_(owner_ + ".sandbox") {}

  const std::string& owner() const noexcept { return owner_; }

  /// Saves a draft in the sandbox. Untracked: the project's meta-data
  /// and event queue are untouched.
  metadb::Oid SaveDraft(std::string_view block, std::string_view view,
                        std::string_view content);

  /// Number of drafts of (block, view) in the sandbox.
  int DraftVersion(std::string_view block, std::string_view view) const {
    return sandbox_.LatestVersion(block, view);
  }

  /// Reads the latest draft content ("" when none).
  std::string LatestDraft(std::string_view block, std::string_view view)
      const;

  /// Promotes the latest draft into the project workspace: this is the
  /// tracked check-in (templates apply, ckin fires, policies gate).
  /// Throws NotFoundError when no draft exists.
  metadb::Oid Promote(std::string_view block, std::string_view view);

  /// Pulls the latest project version of (block, view) into the sandbox
  /// as a new draft (the "update my sandbox" operation). Throws
  /// NotFoundError when the project has no such data.
  metadb::Oid Pull(std::string_view block, std::string_view view);

  size_t promotions() const noexcept { return promotions_; }

 private:
  ProjectServer& server_;
  std::string owner_;
  metadb::Workspace sandbox_;
  size_t promotions_ = 0;
};

}  // namespace damocles::engine
