// The engine-side interface to wrapper scripts.
//
// `exec` run-time rules invoke shell scripts in the paper; here the
// script layer is abstract so the tool library (damocles::tools) can
// register simulated EDA tools while tests plug in recording stubs.
// Defining the interface in the engine keeps the dependency one-way:
// tools depends on engine, never the reverse.
#pragma once

#include <string>
#include <vector>

#include "metadb/oid.hpp"

namespace damocles::engine {

/// Everything a script invocation sees.
struct ExecRequest {
  std::string script;              ///< Script name, e.g. "netlister.sh".
  std::vector<std::string> args;   ///< Expanded arguments.
  metadb::Oid target;              ///< OID whose rule fired.
  std::string event;               ///< Event that triggered the rule.
  std::string user;                ///< Acting designer.
  int64_t timestamp = 0;           ///< SimClock seconds.
};

/// Executes wrapper scripts on behalf of exec rules.
class ScriptExecutor {
 public:
  virtual ~ScriptExecutor() = default;

  /// Runs the script; returns its exit status (0 = success). May post
  /// new events back to the engine (they are queued FIFO behind the
  /// event being processed).
  virtual int Execute(const ExecRequest& request) = 0;
};

/// A notification produced by a `notify` action.
struct Notification {
  std::string message;
  metadb::Oid target;
  std::string event;
  int64_t timestamp = 0;
};

}  // namespace damocles::engine
