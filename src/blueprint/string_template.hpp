// Substitution templates for rule bodies.
//
// Rule actions carry strings with embedded variables, e.g.
//   "$owner: Your oid $OID has been modified"
// The template is parsed once at blueprint-load time into literal and
// variable pieces; execution only concatenates.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace damocles::blueprint {

/// Resolves a variable name ("arg", "oid", "user", or a property name)
/// to its value. Returning an empty string is valid (unknown variables
/// expand to nothing, matching shell behaviour of the wrapper scripts).
using VariableResolver = std::function<std::string(std::string_view)>;

/// A pre-parsed "$"-substitution template.
class StringTemplate {
 public:
  StringTemplate() = default;

  /// Parses `text`; `$name` and `${name}`-free forms are supported
  /// ($ followed by word characters). `$$` escapes a literal dollar.
  static StringTemplate Parse(std::string_view text);

  /// A template consisting of a single variable reference, e.g. built
  /// from the bare token `$arg` in an assignment.
  static StringTemplate Variable(std::string_view name);

  /// A template with no substitutions.
  static StringTemplate Literal(std::string_view text);

  /// Expands the template through `resolver`.
  std::string Expand(const VariableResolver& resolver) const;

  /// True when the template contains no variable pieces.
  bool IsPureLiteral() const noexcept;

  /// The original source text (for pretty-printing).
  const std::string& source() const noexcept { return source_; }

  /// Names of all variables referenced, in order of appearance.
  std::vector<std::string> VariableNames() const;

 private:
  struct Piece {
    bool is_variable = false;
    std::string text;  ///< Literal text or variable name.
  };

  std::string source_;
  std::vector<Piece> pieces_;
};

}  // namespace damocles::blueprint
