#include "blueprint/validator.hpp"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace damocles::blueprint {

namespace {

/// Variables the engine always resolves, independent of templates.
const std::unordered_set<std::string>& BuiltinVariables() {
  static const std::unordered_set<std::string> kBuiltins = {
      "arg",  "oid",  "OID",     "user", "owner",
      "date", "event", "dir",    "block", "view",
      "version"};
  return kBuiltins;
}

class Validator {
 public:
  explicit Validator(const Blueprint& bp) : bp_(bp) {}

  ValidationReport Run() {
    CollectDeclarations();
    for (const ViewTemplate& view : bp_.views) {
      CheckLinks(view);
      CheckContinuousAssignments(view);
      CheckRules(view);
      CheckShadowing(view);
    }
    CheckDeadTraffic();
    return std::move(report_);
  }

 private:
  void Add(DiagnosticSeverity severity, const std::string& view,
           std::string code, std::string message) {
    report_.diagnostics.push_back(
        Diagnostic{severity, view, std::move(code), std::move(message)});
  }

  void CollectDeclarations() {
    for (const ViewTemplate& view : bp_.views) {
      view_names_.insert(view.name);
      for (const PropertyTemplate& property : view.properties) {
        declared_properties_[view.name].insert(property.name);
      }
      for (const ContinuousAssignment& assignment : view.assignments) {
        declared_properties_[view.name].insert(assignment.property);
      }
      // Properties written by assign actions also count as defined.
      for (const RuntimeRule& rule : view.rules) {
        for (const Action& action : rule.actions) {
          if (const auto* assign = std::get_if<ActionAssign>(&action)) {
            declared_properties_[view.name].insert(assign->property);
          }
        }
      }
      for (const LinkTemplate& link : view.links) {
        for (const std::string& event : link.propagates) {
          propagated_events_.insert(event);
        }
      }
      for (const RuntimeRule& rule : view.rules) {
        handled_events_.insert(rule.event);
      }
    }
  }

  bool PropertyVisible(const std::string& view,
                       const std::string& property) const {
    const auto in = [&](const std::string& scope) {
      const auto it = declared_properties_.find(scope);
      return it != declared_properties_.end() &&
             it->second.find(property) != it->second.end();
    };
    return in(view) || in(Blueprint::kDefaultViewName);
  }

  void CheckLinks(const ViewTemplate& view) {
    for (const LinkTemplate& link : view.links) {
      if (link.kind == metadb::LinkKind::kDerive) {
        if (view_names_.find(link.from_view) == view_names_.end()) {
          Add(DiagnosticSeverity::kError, view.name, "unknown-link-view",
              "link_from names view '" + link.from_view +
                  "' which is not declared in this blueprint");
        }
        if (link.from_view == view.name) {
          Add(DiagnosticSeverity::kError, view.name, "self-link",
              "link_from names its own view '" + view.name +
                  "' (hierarchy within a view uses use_link)");
        }
      }
      if (link.propagates.empty()) {
        Add(DiagnosticSeverity::kError, view.name, "empty-propagates",
            "a link template propagates no events; the link would be "
            "untraversable");
      }
    }
  }

  void CheckContinuousAssignments(const ViewTemplate& view) {
    for (const ContinuousAssignment& assignment : view.assignments) {
      std::vector<std::string> variables;
      assignment.expr.CollectVariables(variables);
      for (const std::string& variable : variables) {
        if (BuiltinVariables().contains(variable)) continue;
        if (PropertyVisible(view.name, variable)) continue;
        Add(DiagnosticSeverity::kWarning, view.name, "unknown-variable",
            "continuous assignment of '" + assignment.property +
                "' reads $" + variable +
                " which no property template in scope defines");
      }
    }
  }

  void CheckRules(const ViewTemplate& view) {
    std::set<std::pair<std::string, std::string>> assigned;
    for (const RuntimeRule& rule : view.rules) {
      for (const Action& action : rule.actions) {
        if (const auto* post = std::get_if<ActionPost>(&action)) {
          if (!post->to_view.empty() &&
              view_names_.find(post->to_view) == view_names_.end()) {
            Add(DiagnosticSeverity::kWarning, view.name, "unknown-post-view",
                "rule for '" + rule.event + "' posts to view '" +
                    post->to_view + "' which is not declared");
          }
          if (post->to_view.empty() &&
              propagated_events_.find(post->event) ==
                  propagated_events_.end()) {
            Add(DiagnosticSeverity::kWarning, view.name, "undelivered-post",
                "rule for '" + rule.event + "' posts '" + post->event +
                    "' " + events::DirectionName(post->direction) +
                    " but no link template propagates that event");
          }
        } else if (const auto* assign = std::get_if<ActionAssign>(&action)) {
          if (!assigned.emplace(rule.event, assign->property).second) {
            Add(DiagnosticSeverity::kWarning, view.name, "duplicate-rule",
                "property '" + assign->property +
                    "' is assigned more than once on event '" + rule.event +
                    "'");
          }
        }
      }
    }
  }

  void CheckShadowing(const ViewTemplate& view) {
    if (view.name == Blueprint::kDefaultViewName) return;
    const ViewTemplate* default_view = bp_.DefaultView();
    if (default_view == nullptr) return;
    for (const PropertyTemplate& property : view.properties) {
      const PropertyTemplate* base = default_view->FindProperty(property.name);
      if (base != nullptr && base->default_value != property.default_value) {
        Add(DiagnosticSeverity::kWarning, view.name, "shadowed-property",
            "property '" + property.name + "' shadows the default view's "
            "with a different default ('" + property.default_value +
                "' vs '" + base->default_value + "')");
      }
    }
  }

  void CheckDeadTraffic() {
    for (const std::string& event : propagated_events_) {
      if (handled_events_.find(event) == handled_events_.end()) {
        Add(DiagnosticSeverity::kWarning, "", "unread-event",
            "links propagate '" + event +
                "' but no run-time rule reacts to it");
      }
    }
  }

  const Blueprint& bp_;
  ValidationReport report_;
  std::unordered_set<std::string> view_names_;
  std::unordered_map<std::string, std::unordered_set<std::string>>
      declared_properties_;
  std::unordered_set<std::string> propagated_events_;
  std::unordered_set<std::string> handled_events_;
};

}  // namespace

const char* DiagnosticSeverityName(DiagnosticSeverity severity) noexcept {
  return severity == DiagnosticSeverity::kError ? "error" : "warning";
}

bool ValidationReport::HasErrors() const { return ErrorCount() > 0; }

size_t ValidationReport::ErrorCount() const {
  return static_cast<size_t>(std::count_if(
      diagnostics.begin(), diagnostics.end(), [](const Diagnostic& d) {
        return d.severity == DiagnosticSeverity::kError;
      }));
}

size_t ValidationReport::WarningCount() const {
  return diagnostics.size() - ErrorCount();
}

std::vector<Diagnostic> ValidationReport::WithCode(
    const std::string& code) const {
  std::vector<Diagnostic> matches;
  for (const Diagnostic& diagnostic : diagnostics) {
    if (diagnostic.code == code) matches.push_back(diagnostic);
  }
  return matches;
}

ValidationReport ValidateBlueprint(const Blueprint& bp) {
  return Validator(bp).Run();
}

std::string FormatValidationReport(const ValidationReport& report) {
  if (report.diagnostics.empty()) return "blueprint is clean\n";
  std::string text;
  for (const Diagnostic& diagnostic : report.diagnostics) {
    text += std::string(DiagnosticSeverityName(diagnostic.severity)) + " [" +
            diagnostic.code + "]";
    if (!diagnostic.view.empty()) text += " in view " + diagnostic.view;
    text += ": " + diagnostic.message + "\n";
  }
  return text;
}

}  // namespace damocles::blueprint
