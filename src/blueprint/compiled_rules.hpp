// Compiled run-time rule tables: the symbol-interned fast path for rule
// matching.
//
// The interpreted matcher (RunTimeEngine::ForEachMatchingRule) walks the
// default view's rule list plus the target view's, comparing event-name
// strings — three times per delivery, once per rule phase. On large
// blueprints that is the dominant non-propagation cost of a wave.
//
// CompiledRules flattens the blueprint once, at install time, into
// phase-partitioned action lists keyed by (view SymbolId, event
// SymbolId): for every tracked view and every event either the default
// view or that view reacts to, one RuleSet holds the assign actions
// (phase 1), the exec/notify actions (phase 3, relative order preserved)
// and the post actions (phase 4, posted-event names pre-interned) — with
// the default view's actions prepended, exactly the order the
// interpreted matcher produces. Untracked views resolve to a
// default-view-only table. A delivery then costs one Resolve (cached
// per OID by the engine) plus one integer-hash Find per phase set.
//
// RuleSets hold pointers into the Blueprint that was compiled; the
// engine recompiles whenever it installs a blueprint, which also
// refreshes any symbol bindings (SymbolIds themselves never go stale —
// the engine's SymbolTable only grows).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "blueprint/ast.hpp"
#include "common/symbol.hpp"

namespace damocles::blueprint {

class CompiledRules {
 public:
  /// A post action with its posted-event name pre-interned, so starting
  /// the sub-wave needs no string hashing.
  struct CompiledPost {
    const ActionPost* action = nullptr;
    SymbolId event_sym = SymbolTable::kNoSymbol;
  };

  /// Phase-partitioned actions for one (view, event) pair. Default-view
  /// rules come first, then the specific view's, preserving rule and
  /// action order within each — the interpreted matcher's order.
  struct RuleSet {
    std::vector<const ActionAssign*> assigns;      ///< Phase 1.
    std::vector<const Action*> execs_and_notifies; ///< Phase 3 (exec|notify).
    std::vector<CompiledPost> posts;               ///< Phase 4.
  };

  /// A view name resolved against the compiled blueprint. Valid until
  /// the next Compile; the engine caches one per OID, tagged with
  /// generation().
  struct Binding {
    /// Key for Find: the view's own symbol when the blueprint tracks
    /// the view, kNoSymbol to use the default-view-only tables.
    SymbolId rule_view = SymbolTable::kNoSymbol;
    /// Continuous assignments to re-evaluate at OIDs of the view
    /// (default view's first, then the view's own).
    const std::vector<const ContinuousAssignment*>* assignments = nullptr;
  };

  /// Flattens `blueprint` into the tables, interning every view and
  /// event name through `symbols`. Pointers into `blueprint` are kept;
  /// it must outlive the tables (the engine recompiles on install).
  /// `source_version` stamps the PolicyStore version the blueprint was
  /// compiled from (0 = unversioned / direct install), so every cached
  /// rule binding can be traced back to a commit-chain entry.
  void Compile(const Blueprint& blueprint, SymbolTable& symbols,
               uint64_t source_version = 0);

  void Clear();

  /// Monotonic compile counter (0 = never compiled); the engine uses it
  /// to invalidate cached Bindings across blueprint reloads.
  uint32_t generation() const noexcept { return generation_; }

  /// PolicyStore version id the current tables were compiled from
  /// (0 = unversioned). Travels with generation(): a generation bump
  /// re-stamps the source version, which is how a pinned reader can
  /// name the exact policy commit its bindings came from.
  uint64_t source_version() const noexcept { return source_version_; }

  /// Resolves an interned view name to its rule tables.
  Binding Resolve(SymbolId view_sym) const;

  /// The actions for (resolved view, event), or nullptr when neither
  /// the view nor the default view reacts to the event. One
  /// integer-hash lookup.
  const RuleSet* Find(const Binding& binding, SymbolId event_sym) const {
    if (binding.rule_view == SymbolTable::kNoSymbol) {
      const auto it = default_rules_.find(event_sym);
      return it == default_rules_.end() ? nullptr : &it->second;
    }
    const auto it = rules_.find(Key(binding.rule_view, event_sym));
    return it == rules_.end() ? nullptr : &it->second;
  }

  /// Compiled (view, event) rule sets, counting the default-only table.
  size_t rule_set_count() const noexcept {
    return rules_.size() + default_rules_.size();
  }

 private:
  static constexpr uint64_t Key(SymbolId view, SymbolId event) noexcept {
    return (static_cast<uint64_t>(view) << 32) | event;
  }

  /// splitmix64 finalizer (std::hash<uint64_t> is the identity on
  /// libstdc++ and these keys are dense structured integers).
  struct KeyHash {
    size_t operator()(uint64_t key) const noexcept {
      key += 0x9e3779b97f4a7c15ull;
      key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ull;
      key = (key ^ (key >> 27)) * 0x94d049bb133111ebull;
      return static_cast<size_t>(key ^ (key >> 31));
    }
  };

  static void AppendActions(const RuntimeRule& rule, SymbolTable& symbols,
                            RuleSet& set);

  /// (view sym, event sym) -> actions, for every tracked view.
  std::unordered_map<uint64_t, RuleSet, KeyHash> rules_;
  /// event sym -> default-view actions, for untracked views.
  std::unordered_map<SymbolId, RuleSet> default_rules_;
  /// view sym -> merged continuous-assignment list, for tracked views.
  std::unordered_map<SymbolId, std::vector<const ContinuousAssignment*>>
      assignments_;
  /// Default view's continuous assignments, for untracked views.
  std::vector<const ContinuousAssignment*> default_assignments_;
  uint32_t generation_ = 0;
  uint64_t source_version_ = 0;
};

}  // namespace damocles::blueprint
