#include "blueprint/lexer.hpp"

#include <array>
#include <cctype>

#include "common/error.hpp"

namespace damocles::blueprint {

namespace {

constexpr std::array<std::string_view, 22> kKeywords = {
    "blueprint", "endblueprint", "view",   "endview", "property",
    "default",   "copy",         "move",   "link_from", "use_link",
    "propagates", "type",        "let",    "when",    "do",
    "done",      "post",         "exec",   "notify",  "to",
    "up",        "down",
};

// 'and' / 'or' / 'not' are expression operators; they are lexed as
// keywords too so the expression parser can recognise them without
// string comparisons against identifiers.
constexpr std::array<std::string_view, 3> kOperators = {"and", "or", "not"};

bool IsWordStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == '.' || c == '-';
}

class Cursor {
 public:
  explicit Cursor(std::string_view source) : source_(source) {}

  bool AtEnd() const noexcept { return pos_ >= source_.size(); }
  char Peek() const noexcept { return source_[pos_]; }
  char PeekAhead() const noexcept {
    return pos_ + 1 < source_.size() ? source_[pos_ + 1] : '\0';
  }

  char Advance() {
    const char c = source_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  int line() const noexcept { return line_; }
  int column() const noexcept { return column_; }

 private:
  std::string_view source_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

bool IsBlueprintKeyword(std::string_view word) noexcept {
  for (const std::string_view keyword : kKeywords) {
    if (word == keyword) return true;
  }
  for (const std::string_view keyword : kOperators) {
    if (word == keyword) return true;
  }
  return false;
}

std::vector<Token> Tokenize(std::string_view source) {
  std::vector<Token> tokens;
  Cursor cursor(source);

  const auto push = [&](TokenKind kind, std::string text, int line,
                        int column) {
    tokens.push_back(Token{kind, std::move(text), line, column});
  };

  while (!cursor.AtEnd()) {
    const int line = cursor.line();
    const int column = cursor.column();
    const char c = cursor.Peek();

    if (std::isspace(static_cast<unsigned char>(c))) {
      cursor.Advance();
      continue;
    }
    if (c == '#') {
      while (!cursor.AtEnd() && cursor.Peek() != '\n') cursor.Advance();
      continue;
    }
    if (c == '"') {
      cursor.Advance();
      std::string body;
      bool closed = false;
      while (!cursor.AtEnd()) {
        const char d = cursor.Advance();
        if (d == '\\' && !cursor.AtEnd()) {
          body.push_back(cursor.Advance());
          continue;
        }
        if (d == '"') {
          closed = true;
          break;
        }
        body.push_back(d);
      }
      if (!closed) {
        throw ParseError("unterminated string literal", line, column);
      }
      push(TokenKind::kString, std::move(body), line, column);
      continue;
    }
    if (c == '$') {
      cursor.Advance();
      std::string name;
      while (!cursor.AtEnd() && IsWordChar(cursor.Peek())) {
        name.push_back(cursor.Advance());
      }
      if (name.empty()) {
        throw ParseError("'$' must be followed by a variable name", line,
                         column);
      }
      push(TokenKind::kVariable, std::move(name), line, column);
      continue;
    }
    if (IsWordStart(c)) {
      std::string word;
      while (!cursor.AtEnd() && IsWordChar(cursor.Peek())) {
        word.push_back(cursor.Advance());
      }
      const TokenKind kind = IsBlueprintKeyword(word) ? TokenKind::kKeyword
                                                      : TokenKind::kIdentifier;
      push(kind, std::move(word), line, column);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      // Bare numbers appear as property values; lex them as identifiers.
      std::string word;
      while (!cursor.AtEnd() && IsWordChar(cursor.Peek())) {
        word.push_back(cursor.Advance());
      }
      push(TokenKind::kIdentifier, std::move(word), line, column);
      continue;
    }

    switch (c) {
      case '=':
        cursor.Advance();
        if (!cursor.AtEnd() && cursor.Peek() == '=') {
          cursor.Advance();
          push(TokenKind::kEqEq, "==", line, column);
        } else {
          push(TokenKind::kEquals, "=", line, column);
        }
        continue;
      case '!':
        cursor.Advance();
        if (!cursor.AtEnd() && cursor.Peek() == '=') {
          cursor.Advance();
          push(TokenKind::kNotEq, "!=", line, column);
          continue;
        }
        throw ParseError("unexpected '!' (did you mean '!='?)", line, column);
      case '(':
        cursor.Advance();
        push(TokenKind::kLParen, "(", line, column);
        continue;
      case ')':
        cursor.Advance();
        push(TokenKind::kRParen, ")", line, column);
        continue;
      case ';':
        cursor.Advance();
        push(TokenKind::kSemicolon, ";", line, column);
        continue;
      case ',':
        cursor.Advance();
        push(TokenKind::kComma, ",", line, column);
        continue;
      default:
        throw ParseError(std::string("illegal character '") + c + "'", line,
                         column);
    }
  }

  tokens.push_back(Token{TokenKind::kEnd, "", cursor.line(), cursor.column()});
  return tokens;
}

const char* TokenKindName(TokenKind kind) noexcept {
  switch (kind) {
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kVariable:
      return "variable";
    case TokenKind::kString:
      return "string";
    case TokenKind::kKeyword:
      return "keyword";
    case TokenKind::kEquals:
      return "'='";
    case TokenKind::kEqEq:
      return "'=='";
    case TokenKind::kNotEq:
      return "'!='";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kEnd:
      return "end of file";
  }
  return "unknown";
}

}  // namespace damocles::blueprint
