// Token stream for the BluePrint rule-file language.
#pragma once

#include <string>

namespace damocles::blueprint {

enum class TokenKind {
  kIdentifier,  ///< view / property / event / value names.
  kVariable,    ///< $arg, $oid, $user, $<property>.
  kString,      ///< double-quoted, may contain $substitutions.
  kKeyword,     ///< reserved words (blueprint, view, when, ...).
  kEquals,      ///< =
  kEqEq,        ///< ==
  kNotEq,       ///< !=
  kLParen,      ///< (
  kRParen,      ///< )
  kSemicolon,   ///< ;
  kComma,       ///< ,
  kEnd,         ///< end of input.
};

const char* TokenKindName(TokenKind kind) noexcept;

/// One lexed token with its source position (1-based).
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;  ///< Identifier/keyword/variable name or string body.
  int line = 0;
  int column = 0;

  bool Is(TokenKind k) const noexcept { return kind == k; }
  bool IsKeyword(const char* word) const {
    return kind == TokenKind::kKeyword && text == word;
  }
};

}  // namespace damocles::blueprint
