// Abstract syntax of a parsed project BluePrint.
//
// Two rule classes, per paper §3.2: template rules (configuration
// information — properties, links, continuous assignments per view) and
// run-time rules (when <event> do <actions> done).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "blueprint/expr.hpp"
#include "blueprint/string_template.hpp"
#include "events/event.hpp"
#include "metadb/link.hpp"

namespace damocles::blueprint {

/// Template rule: a property attached to every new OID of a view.
/// `carry` says where the initial value of a non-first version comes
/// from (paper Fig. 2: "property DRC default bad copy").
struct PropertyTemplate {
  std::string name;
  std::string default_value;
  metadb::CarryPolicy carry = metadb::CarryPolicy::kNone;
};

/// Template rule: a link expected between views. Use links stay within
/// one view type and have an empty `from_view` (paper §3.2: "the use
/// link does not specify a parent view name").
struct LinkTemplate {
  metadb::LinkKind kind = metadb::LinkKind::kDerive;
  std::string from_view;  ///< Source view name; empty for use links.
  std::vector<std::string> propagates;  ///< PROPAGATE property content.
  std::string type;                     ///< TYPE property content.
  metadb::CarryPolicy carry = metadb::CarryPolicy::kNone;
};

/// Template rule: `let <property> = <expr>` — continuously re-evaluated.
struct ContinuousAssignment {
  std::string property;
  Expr expr;

  ContinuousAssignment(std::string property_name, Expr expression)
      : property(std::move(property_name)), expr(std::move(expression)) {}
  ContinuousAssignment(ContinuousAssignment&&) noexcept = default;
  ContinuousAssignment& operator=(ContinuousAssignment&&) noexcept = default;
  ContinuousAssignment Clone() const {
    return ContinuousAssignment(property, expr.Clone());
  }
};

/// Run-time action: `<property> = <value>`.
struct ActionAssign {
  std::string property;
  StringTemplate value;
};

/// Run-time action: `exec <script> [args...]`.
struct ActionExec {
  StringTemplate script;
  std::vector<StringTemplate> args;
};

/// Run-time action: `notify "<message>"`.
struct ActionNotify {
  StringTemplate message;
};

/// Run-time action: `post <event> up|down [to <View>] ["arg"]`.
struct ActionPost {
  std::string event;
  events::Direction direction = events::Direction::kDown;
  std::string to_view;  ///< Empty = propagate from the current OID.
  StringTemplate arg;
};

using Action = std::variant<ActionAssign, ActionExec, ActionNotify,
                            ActionPost>;

/// Run-time rule: `when <event> do <action>; ... done`.
struct RuntimeRule {
  std::string event;
  std::vector<Action> actions;
};

/// Everything declared for one view.
struct ViewTemplate {
  std::string name;
  std::vector<PropertyTemplate> properties;
  std::vector<LinkTemplate> links;
  std::vector<ContinuousAssignment> assignments;
  std::vector<RuntimeRule> rules;

  ViewTemplate() = default;
  ViewTemplate(ViewTemplate&&) noexcept = default;
  ViewTemplate& operator=(ViewTemplate&&) noexcept = default;
  ViewTemplate(const ViewTemplate&) = delete;
  ViewTemplate& operator=(const ViewTemplate&) = delete;

  /// Deep copy (assignments hold move-only expression trees, so copying
  /// is explicit; the sharded engine clones one blueprint per shard).
  ViewTemplate Clone() const;

  const PropertyTemplate* FindProperty(std::string_view property_name) const;
};

/// A complete parsed blueprint. The view named "default" (if present)
/// applies to all views (paper §3.4: "these two rules are added ... to
/// the special default view which applies to all the views").
struct Blueprint {
  std::string name;
  std::vector<ViewTemplate> views;

  Blueprint() = default;
  Blueprint(Blueprint&&) noexcept = default;
  Blueprint& operator=(Blueprint&&) noexcept = default;
  Blueprint(const Blueprint&) = delete;
  Blueprint& operator=(const Blueprint&) = delete;

  /// Deep copy; see ViewTemplate::Clone.
  Blueprint Clone() const;

  static constexpr const char* kDefaultViewName = "default";

  /// The template for `view_name`, or nullptr when the blueprint does
  /// not track that view.
  const ViewTemplate* FindView(std::string_view view_name) const;

  /// The special default view, or nullptr if none was declared.
  const ViewTemplate* DefaultView() const;

  /// True when `view_name` is tracked (has its own template).
  bool Tracks(std::string_view view_name) const {
    return FindView(view_name) != nullptr;
  }
};

}  // namespace damocles::blueprint
