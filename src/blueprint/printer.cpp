#include "blueprint/printer.hpp"

#include "common/strings.hpp"

namespace damocles::blueprint {

namespace {

/// Values print bare when they lex as a single identifier, quoted
/// otherwise (so they re-lex to the same token).
std::string FormatValue(const std::string& value) {
  return IsIdentifier(value) ? value : QuoteString(value);
}

/// A template prints as its original source: a bare identifier if it
/// was one, otherwise quoted.
std::string FormatTemplateValue(const StringTemplate& value) {
  const std::string& source = value.source();
  if (IsIdentifier(source)) return source;
  if (!source.empty() && source.front() == '$' &&
      IsIdentifier(source.substr(1))) {
    return source;  // A bare $variable token.
  }
  return QuoteString(source);
}

std::string FormatCarry(metadb::CarryPolicy carry) {
  switch (carry) {
    case metadb::CarryPolicy::kCopy:
      return " copy";
    case metadb::CarryPolicy::kMove:
      return " move";
    case metadb::CarryPolicy::kNone:
      return "";
  }
  return "";
}

}  // namespace

std::string FormatAction(const Action& action) {
  struct Visitor {
    std::string operator()(const ActionAssign& assign) const {
      return assign.property + " = " + FormatTemplateValue(assign.value);
    }
    std::string operator()(const ActionExec& exec) const {
      std::string text = "exec " + FormatTemplateValue(exec.script);
      for (const StringTemplate& arg : exec.args) {
        text += " " + FormatTemplateValue(arg);
      }
      return text;
    }
    std::string operator()(const ActionNotify& notify) const {
      return "notify " + FormatTemplateValue(notify.message);
    }
    std::string operator()(const ActionPost& post) const {
      std::string text = "post " + post.event + " " +
                         events::DirectionName(post.direction);
      if (!post.to_view.empty()) text += " to " + post.to_view;
      if (!post.arg.source().empty()) {
        text += " " + FormatTemplateValue(post.arg);
      }
      return text;
    }
  };
  return std::visit(Visitor{}, action);
}

std::string FormatBlueprint(const Blueprint& blueprint) {
  std::string out = "blueprint " + blueprint.name + "\n";
  for (const ViewTemplate& view : blueprint.views) {
    out += "view " + view.name + "\n";
    for (const PropertyTemplate& property : view.properties) {
      out += "  property " + property.name + " default " +
             FormatValue(property.default_value) + FormatCarry(property.carry) +
             "\n";
    }
    for (const LinkTemplate& link : view.links) {
      if (link.kind == metadb::LinkKind::kUse) {
        out += "  use_link" + FormatCarry(link.carry) + " propagates " +
               Join(link.propagates, ", ") + "\n";
      } else {
        out += "  link_from " + link.from_view + FormatCarry(link.carry) +
               " propagates " + Join(link.propagates, ", ");
        if (!link.type.empty()) out += " type " + link.type;
        out += "\n";
      }
    }
    for (const ContinuousAssignment& assignment : view.assignments) {
      out += "  let " + assignment.property + " = " +
             assignment.expr.ToSource() + "\n";
    }
    for (const RuntimeRule& rule : view.rules) {
      out += "  when " + rule.event + " do ";
      for (size_t i = 0; i < rule.actions.size(); ++i) {
        if (i != 0) out += "; ";
        out += FormatAction(rule.actions[i]);
      }
      out += " done\n";
    }
    out += "endview\n";
  }
  out += "endblueprint\n";
  return out;
}

}  // namespace damocles::blueprint
