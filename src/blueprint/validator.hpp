// Static validation of parsed blueprints.
//
// The project administrator writes rule files by hand (paper §3.2); the
// parser catches syntax errors, but a well-formed blueprint can still be
// silently broken: a rule posts an event no link template propagates, a
// link names a view that is never declared, a continuous assignment
// reads a property no template defines. The validator finds these before
// the blueprint is installed — the kind of lint a production deployment
// runs in the administrator's editor.
#pragma once

#include <string>
#include <vector>

#include "blueprint/ast.hpp"

namespace damocles::blueprint {

enum class DiagnosticSeverity {
  kWarning,  ///< Suspicious but legal; the engine will run it.
  kError,    ///< Almost certainly a broken flow definition.
};

const char* DiagnosticSeverityName(DiagnosticSeverity severity) noexcept;

/// One finding, tied to the view it was found in.
struct Diagnostic {
  DiagnosticSeverity severity = DiagnosticSeverity::kWarning;
  std::string view;     ///< View the finding belongs to ("" = global).
  std::string code;     ///< Stable identifier, e.g. "unknown-link-view".
  std::string message;  ///< Human-readable explanation.
};

/// Result of validating one blueprint.
struct ValidationReport {
  std::vector<Diagnostic> diagnostics;

  bool HasErrors() const;
  size_t ErrorCount() const;
  size_t WarningCount() const;

  /// All diagnostics with the given code (test/tooling helper).
  std::vector<Diagnostic> WithCode(const std::string& code) const;
};

/// Validates `bp`. Checks performed:
///   unknown-link-view   (error)   link_from names an undeclared view
///   self-link           (error)   link_from names its own view
///   empty-propagates    (error)   a link template propagates no events
///   undelivered-post    (warning) a rule posts an event with a direction
///                                 but no link template propagates it
///   unknown-post-view   (warning) 'post ... to V' names an undeclared view
///   unread-event        (warning) a link propagates an event no rule
///                                 reacts to (dead traffic)
///   unknown-variable    (warning) a continuous assignment reads a
///                                 property no template in scope defines
///                                 (and it is not a built-in variable)
///   duplicate-rule      (warning) two rules in one view for the same
///                                 event with an identical action kind
///                                 assigning the same property
///   shadowed-property   (warning) a view redefines a default-view
///                                 property with a different default
ValidationReport ValidateBlueprint(const Blueprint& bp);

/// Formats a report as one diagnostic per line.
std::string FormatValidationReport(const ValidationReport& report);

}  // namespace damocles::blueprint
