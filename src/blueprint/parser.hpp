// Recursive-descent parser for blueprint rule files.
//
// Grammar (paper §3.2 / §3.4; [] optional, * repetition, | choice):
//
//   file        := 'blueprint' IDENT view* 'endblueprint'
//   view        := 'view' IDENT member* ('endview' | &'view' | &'endblueprint')
//   member      := property | link_from | use_link | let | when
//   property    := 'property' IDENT 'default' value ['copy'|'move']
//   link_from   := 'link_from' IDENT ['move'|'copy'] 'propagates' events
//                  ['type' IDENT] ['move'|'copy']
//   use_link    := 'use_link' ['move'|'copy'] 'propagates' events
//   events      := IDENT (',' IDENT)*
//   let         := 'let' IDENT '=' expr
//   when        := 'when' IDENT 'do' action (';' action)* 'done'
//   action      := assign | exec | notify | post
//   assign      := IDENT '=' value
//   exec        := 'exec' value value*
//   notify      := 'notify' value
//   post        := 'post' IDENT ('up'|'down') ['to' IDENT] [value]
//   value       := IDENT | STRING | VARIABLE
//   expr        := or ; or := and ('or' and)* ; and := un ('and' un)*
//   un          := 'not' un | prim
//   prim        := '(' expr ')' | value (('=='|'!=') value)?
//
// The paper's own sample omits one `endview`; the parser is lenient and
// lets a new `view` or `endblueprint` implicitly close the open view.
#pragma once

#include <string_view>

#include "blueprint/ast.hpp"

namespace damocles::blueprint {

/// Parses a complete blueprint file. Throws ParseError with line/column
/// on the first syntax error, and on semantic errors the engine cannot
/// tolerate (duplicate view names, duplicate property templates).
Blueprint ParseBlueprint(std::string_view source);

}  // namespace damocles::blueprint
