// Lexer for the ASCII blueprint rule files (paper §3.2).
//
// The language is free-form: newlines are whitespace, `#` starts a
// comment to end of line. Keywords are reserved; everything else that
// looks like a word is an identifier. `$name` is a substitution
// variable; double-quoted strings keep their `$` sequences raw (they
// are template-expanded at rule execution time).
#pragma once

#include <string_view>
#include <vector>

#include "blueprint/token.hpp"

namespace damocles::blueprint {

/// True if `word` is reserved by the blueprint language.
bool IsBlueprintKeyword(std::string_view word) noexcept;

/// Tokenizes a complete rule file. Throws ParseError on illegal
/// characters or unterminated strings. The result always ends with a
/// kEnd token.
std::vector<Token> Tokenize(std::string_view source);

}  // namespace damocles::blueprint
