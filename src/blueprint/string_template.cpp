#include "blueprint/string_template.hpp"

#include <cctype>

namespace damocles::blueprint {

namespace {

bool IsVarChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

}  // namespace

StringTemplate StringTemplate::Parse(std::string_view text) {
  StringTemplate result;
  result.source_ = std::string(text);

  std::string literal;
  size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (c != '$') {
      literal.push_back(c);
      ++i;
      continue;
    }
    if (i + 1 < text.size() && text[i + 1] == '$') {
      literal.push_back('$');
      i += 2;
      continue;
    }
    size_t j = i + 1;
    while (j < text.size() && IsVarChar(text[j])) ++j;
    if (j == i + 1) {
      // Lone '$' with no name: keep it literal.
      literal.push_back('$');
      ++i;
      continue;
    }
    if (!literal.empty()) {
      result.pieces_.push_back(Piece{false, std::move(literal)});
      literal.clear();
    }
    result.pieces_.push_back(
        Piece{true, std::string(text.substr(i + 1, j - i - 1))});
    i = j;
  }
  if (!literal.empty()) {
    result.pieces_.push_back(Piece{false, std::move(literal)});
  }
  return result;
}

StringTemplate StringTemplate::Variable(std::string_view name) {
  StringTemplate result;
  result.source_ = "$" + std::string(name);
  result.pieces_.push_back(Piece{true, std::string(name)});
  return result;
}

StringTemplate StringTemplate::Literal(std::string_view text) {
  StringTemplate result;
  result.source_ = std::string(text);
  if (!text.empty()) {
    result.pieces_.push_back(Piece{false, std::string(text)});
  }
  return result;
}

std::string StringTemplate::Expand(const VariableResolver& resolver) const {
  std::string out;
  for (const Piece& piece : pieces_) {
    if (piece.is_variable) {
      out += resolver(piece.text);
    } else {
      out += piece.text;
    }
  }
  return out;
}

bool StringTemplate::IsPureLiteral() const noexcept {
  for (const Piece& piece : pieces_) {
    if (piece.is_variable) return false;
  }
  return true;
}

std::vector<std::string> StringTemplate::VariableNames() const {
  std::vector<std::string> names;
  for (const Piece& piece : pieces_) {
    if (piece.is_variable) names.push_back(piece.text);
  }
  return names;
}

}  // namespace damocles::blueprint
