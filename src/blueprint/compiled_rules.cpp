#include "blueprint/compiled_rules.hpp"

namespace damocles::blueprint {

void CompiledRules::Clear() {
  rules_.clear();
  default_rules_.clear();
  assignments_.clear();
  default_assignments_.clear();
}

void CompiledRules::AppendActions(const RuntimeRule& rule,
                                  SymbolTable& symbols, RuleSet& set) {
  for (const Action& action : rule.actions) {
    if (const auto* assign = std::get_if<ActionAssign>(&action)) {
      set.assigns.push_back(assign);
    } else if (std::get_if<ActionExec>(&action) != nullptr ||
               std::get_if<ActionNotify>(&action) != nullptr) {
      // Phase 3 runs exec and notify interleaved in declaration order;
      // keeping the variant pointer preserves that order.
      set.execs_and_notifies.push_back(&action);
    } else if (const auto* post = std::get_if<ActionPost>(&action)) {
      set.posts.push_back(CompiledPost{post, symbols.Intern(post->event)});
    }
  }
}

void CompiledRules::Compile(const Blueprint& blueprint, SymbolTable& symbols,
                            uint64_t source_version) {
  Clear();
  ++generation_;
  source_version_ = source_version;

  const ViewTemplate* default_view = blueprint.DefaultView();
  if (default_view != nullptr) {
    for (const ContinuousAssignment& assignment : default_view->assignments) {
      default_assignments_.push_back(&assignment);
    }
    for (const RuntimeRule& rule : default_view->rules) {
      AppendActions(rule, symbols, default_rules_[symbols.Intern(rule.event)]);
    }
  }

  for (const ViewTemplate& view : blueprint.views) {
    const SymbolId view_sym = symbols.Intern(view.name);
    if (assignments_.find(view_sym) != assignments_.end()) {
      continue;  // Duplicate view declaration: first wins, like FindView.
    }
    // The interpreted engine iterates {default view, specific view} —
    // for the "default" view itself that pairs it with itself, running
    // its rules and assignments twice; the tables reproduce that.
    const ViewTemplate* sources[2] = {default_view, &view};
    std::vector<const ContinuousAssignment*>& assignments =
        assignments_[view_sym];
    for (const ViewTemplate* source : sources) {
      if (source == nullptr) continue;
      for (const ContinuousAssignment& assignment : source->assignments) {
        assignments.push_back(&assignment);
      }
      for (const RuntimeRule& rule : source->rules) {
        AppendActions(rule, symbols,
                      rules_[Key(view_sym, symbols.Intern(rule.event))]);
      }
    }
  }
}

CompiledRules::Binding CompiledRules::Resolve(SymbolId view_sym) const {
  const auto it = assignments_.find(view_sym);
  if (it == assignments_.end()) {
    return Binding{SymbolTable::kNoSymbol, &default_assignments_};
  }
  return Binding{view_sym, &it->second};
}

}  // namespace damocles::blueprint
