#include "blueprint/expr.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"

namespace damocles::blueprint {

Expr Expr::MakeLiteral(std::string text) {
  Expr e;
  e.kind_ = Kind::kLiteral;
  e.text_ = std::move(text);
  return e;
}

Expr Expr::MakeVar(std::string name) {
  Expr e;
  e.kind_ = Kind::kVar;
  e.text_ = std::move(name);
  return e;
}

Expr Expr::MakeBinary(Kind kind, Expr lhs, Expr rhs) {
  Expr e;
  e.kind_ = kind;
  e.lhs_ = std::make_unique<Expr>(std::move(lhs));
  e.rhs_ = std::make_unique<Expr>(std::move(rhs));
  return e;
}

Expr Expr::MakeNot(Expr operand) {
  Expr e;
  e.kind_ = Kind::kNot;
  e.lhs_ = std::make_unique<Expr>(std::move(operand));
  return e;
}

Expr Expr::Clone() const {
  Expr e;
  e.kind_ = kind_;
  e.text_ = text_;
  if (lhs_) e.lhs_ = std::make_unique<Expr>(lhs_->Clone());
  if (rhs_) e.rhs_ = std::make_unique<Expr>(rhs_->Clone());
  return e;
}

std::string Expr::EvaluateString(const VariableResolver& resolver) const {
  switch (kind_) {
    case Kind::kLiteral:
      return text_;
    case Kind::kVar:
      return resolver(text_);
    default:
      return EvaluateBool(resolver) ? "true" : "false";
  }
}

bool Expr::EvaluateBool(const VariableResolver& resolver) const {
  switch (kind_) {
    case Kind::kLiteral:
      return text_ == "true";
    case Kind::kVar:
      return resolver(text_) == "true";
    case Kind::kEq:
      return lhs_->EvaluateString(resolver) == rhs_->EvaluateString(resolver);
    case Kind::kNe:
      return lhs_->EvaluateString(resolver) != rhs_->EvaluateString(resolver);
    case Kind::kAnd:
      return lhs_->EvaluateBool(resolver) && rhs_->EvaluateBool(resolver);
    case Kind::kOr:
      return lhs_->EvaluateBool(resolver) || rhs_->EvaluateBool(resolver);
    case Kind::kNot:
      return !lhs_->EvaluateBool(resolver);
  }
  throw Error("Expr::EvaluateBool: corrupt expression node");
}

void Expr::CollectVariables(std::vector<std::string>& names) const {
  if (kind_ == Kind::kVar) names.push_back(text_);
  if (lhs_) lhs_->CollectVariables(names);
  if (rhs_) rhs_->CollectVariables(names);
}

std::string Expr::ToSource() const {
  switch (kind_) {
    case Kind::kLiteral:
      return IsIdentifier(text_) ? text_ : QuoteString(text_);
    case Kind::kVar:
      return "$" + text_;
    case Kind::kEq:
      return "(" + lhs_->ToSource() + " == " + rhs_->ToSource() + ")";
    case Kind::kNe:
      return "(" + lhs_->ToSource() + " != " + rhs_->ToSource() + ")";
    case Kind::kAnd:
      return "(" + lhs_->ToSource() + " and " + rhs_->ToSource() + ")";
    case Kind::kOr:
      return "(" + lhs_->ToSource() + " or " + rhs_->ToSource() + ")";
    case Kind::kNot:
      return "(not " + lhs_->ToSource() + ")";
  }
  return "<corrupt>";
}

}  // namespace damocles::blueprint
