#include "blueprint/parser.hpp"

#include <unordered_set>

#include "blueprint/lexer.hpp"
#include "common/error.hpp"

namespace damocles::blueprint {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view source) : tokens_(Tokenize(source)) {}

  Blueprint ParseFile() {
    Blueprint blueprint;
    ExpectKeyword("blueprint");
    blueprint.name = ExpectIdentifier("blueprint name");

    std::unordered_set<std::string> seen_views;
    while (!Peek().IsKeyword("endblueprint")) {
      if (Peek().Is(TokenKind::kEnd)) {
        Fail("missing 'endblueprint'");
      }
      ExpectKeyword("view");
      ViewTemplate view = ParseView();
      if (!seen_views.insert(view.name).second) {
        Fail("duplicate view '" + view.name + "'");
      }
      blueprint.views.push_back(std::move(view));
    }
    ExpectKeyword("endblueprint");
    if (!Peek().Is(TokenKind::kEnd)) {
      Fail("unexpected input after 'endblueprint'");
    }
    return blueprint;
  }

 private:
  // --- Token plumbing ------------------------------------------------

  const Token& Peek() const { return tokens_[pos_]; }

  const Token& Advance() { return tokens_[pos_++]; }

  [[noreturn]] void Fail(const std::string& message) const {
    const Token& token = Peek();
    throw ParseError(message + " (at " + TokenKindName(token.kind) +
                         (token.text.empty() ? "" : " '" + token.text + "'") +
                         ")",
                     token.line, token.column);
  }

  void ExpectKeyword(const char* word) {
    if (!Peek().IsKeyword(word)) {
      Fail(std::string("expected '") + word + "'");
    }
    Advance();
  }

  bool AcceptKeyword(const char* word) {
    if (Peek().IsKeyword(word)) {
      Advance();
      return true;
    }
    return false;
  }

  std::string ExpectIdentifier(const char* what) {
    if (!Peek().Is(TokenKind::kIdentifier)) {
      Fail(std::string("expected ") + what);
    }
    return Advance().text;
  }

  // --- Values -----------------------------------------------------------

  /// A value token: identifier literal, quoted string or $variable.
  /// Returns the value as a StringTemplate (identifiers are literal).
  StringTemplate ParseValueTemplate(const char* what) {
    const Token& token = Peek();
    switch (token.kind) {
      case TokenKind::kIdentifier:
        Advance();
        return StringTemplate::Literal(token.text);
      case TokenKind::kString:
        Advance();
        return StringTemplate::Parse(token.text);
      case TokenKind::kVariable:
        Advance();
        return StringTemplate::Variable(token.text);
      default:
        Fail(std::string("expected ") + what);
    }
  }

  bool PeekIsValue() const {
    const TokenKind kind = Peek().kind;
    return kind == TokenKind::kIdentifier || kind == TokenKind::kString ||
           kind == TokenKind::kVariable;
  }

  // --- Views ---------------------------------------------------------------

  ViewTemplate ParseView() {
    ViewTemplate view;
    // 'default' is a keyword (property defaults) but is also the name of
    // the special view that applies to all views (paper §3.4).
    if (Peek().IsKeyword("default")) {
      Advance();
      view.name = Blueprint::kDefaultViewName;
    } else {
      view.name = ExpectIdentifier("view name");
    }

    while (true) {
      const Token& token = Peek();
      if (token.IsKeyword("endview")) {
        Advance();
        return view;
      }
      // Leniency: the paper's own example omits an endview; a following
      // 'view' or 'endblueprint' closes the current one.
      if (token.IsKeyword("view") || token.IsKeyword("endblueprint")) {
        return view;
      }
      if (token.Is(TokenKind::kEnd)) {
        Fail("missing 'endview' for view '" + view.name + "'");
      }

      if (AcceptKeyword("property")) {
        ParsePropertyTemplate(view);
      } else if (AcceptKeyword("link_from")) {
        ParseLinkFrom(view);
      } else if (AcceptKeyword("use_link")) {
        ParseUseLink(view);
      } else if (AcceptKeyword("let")) {
        ParseLet(view);
      } else if (AcceptKeyword("when")) {
        ParseWhen(view);
      } else {
        Fail("expected a view member (property / link_from / use_link / "
             "let / when)");
      }
    }
  }

  void ParsePropertyTemplate(ViewTemplate& view) {
    PropertyTemplate property;
    property.name = ExpectIdentifier("property name");
    ExpectKeyword("default");
    property.default_value = ParseLiteralValue("property default value");
    property.carry = ParseCarryPolicy();
    if (view.FindProperty(property.name) != nullptr) {
      Fail("duplicate property template '" + property.name + "' in view '" +
           view.name + "'");
    }
    view.properties.push_back(std::move(property));
  }

  /// Literal value (identifier or string); $vars are not allowed in
  /// template defaults — they have no OID context at creation time.
  std::string ParseLiteralValue(const char* what) {
    const Token& token = Peek();
    if (token.Is(TokenKind::kIdentifier) || token.Is(TokenKind::kString)) {
      Advance();
      return token.text;
    }
    Fail(std::string("expected ") + what);
  }

  metadb::CarryPolicy ParseCarryPolicy() {
    if (AcceptKeyword("copy")) return metadb::CarryPolicy::kCopy;
    if (AcceptKeyword("move")) return metadb::CarryPolicy::kMove;
    return metadb::CarryPolicy::kNone;
  }

  void ParseLinkFrom(ViewTemplate& view) {
    LinkTemplate link;
    link.kind = metadb::LinkKind::kDerive;
    link.from_view = ExpectIdentifier("source view name");
    // The paper writes the carry keyword either right after the view
    // name ("link_from synth_lib move propagates ...") or at the end
    // ("link_from NetList propagates OutOfDate type derive_from MOVE").
    link.carry = ParseCarryPolicy();
    ExpectKeyword("propagates");
    link.propagates = ParseEventList();
    if (AcceptKeyword("type")) {
      link.type = ExpectIdentifier("link type");
    }
    if (link.carry == metadb::CarryPolicy::kNone) {
      link.carry = ParseCarryPolicy();
    }
    view.links.push_back(std::move(link));
  }

  void ParseUseLink(ViewTemplate& view) {
    LinkTemplate link;
    link.kind = metadb::LinkKind::kUse;
    link.carry = ParseCarryPolicy();
    ExpectKeyword("propagates");
    link.propagates = ParseEventList();
    if (link.carry == metadb::CarryPolicy::kNone) {
      link.carry = ParseCarryPolicy();
    }
    view.links.push_back(std::move(link));
  }

  std::vector<std::string> ParseEventList() {
    std::vector<std::string> events;
    events.push_back(ExpectIdentifier("event name"));
    while (Peek().Is(TokenKind::kComma)) {
      Advance();
      events.push_back(ExpectIdentifier("event name"));
    }
    return events;
  }

  void ParseLet(ViewTemplate& view) {
    std::string property = ExpectIdentifier("assignment target");
    if (!Peek().Is(TokenKind::kEquals)) {
      Fail("expected '=' in continuous assignment");
    }
    Advance();
    Expr expr = ParseExpr();
    view.assignments.emplace_back(std::move(property), std::move(expr));
  }

  // --- Run-time rules ------------------------------------------------------

  void ParseWhen(ViewTemplate& view) {
    RuntimeRule rule;
    rule.event = ExpectIdentifier("event name");
    ExpectKeyword("do");
    rule.actions.push_back(ParseAction());
    while (Peek().Is(TokenKind::kSemicolon)) {
      Advance();
      if (Peek().IsKeyword("done")) break;  // Trailing ';' is tolerated.
      rule.actions.push_back(ParseAction());
    }
    ExpectKeyword("done");
    view.rules.push_back(std::move(rule));
  }

  Action ParseAction() {
    if (AcceptKeyword("exec")) {
      ActionExec action;
      action.script = ParseValueTemplate("script name");
      while (PeekIsValue()) {
        action.args.push_back(ParseValueTemplate("script argument"));
      }
      return action;
    }
    if (AcceptKeyword("notify")) {
      ActionNotify action;
      action.message = ParseValueTemplate("notification message");
      return action;
    }
    if (AcceptKeyword("post")) {
      ActionPost action;
      action.event = ExpectIdentifier("event name");
      if (AcceptKeyword("up")) {
        action.direction = events::Direction::kUp;
      } else if (AcceptKeyword("down")) {
        action.direction = events::Direction::kDown;
      } else {
        Fail("expected 'up' or 'down' after posted event name");
      }
      if (AcceptKeyword("to")) {
        action.to_view = ExpectIdentifier("target view name");
      }
      if (PeekIsValue()) {
        action.arg = ParseValueTemplate("post argument");
      }
      return action;
    }
    // Otherwise: assignment "<property> = <value>".
    ActionAssign action;
    action.property = ExpectIdentifier("action");
    if (!Peek().Is(TokenKind::kEquals)) {
      Fail("expected '=' in assignment action");
    }
    Advance();
    action.value = ParseValueTemplate("assignment value");
    return action;
  }

  // --- Expressions -----------------------------------------------------------

  Expr ParseExpr() { return ParseOr(); }

  Expr ParseOr() {
    Expr lhs = ParseAnd();
    while (AcceptKeyword("or")) {
      Expr rhs = ParseAnd();
      lhs = Expr::MakeBinary(Expr::Kind::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Expr ParseAnd() {
    Expr lhs = ParseUnary();
    while (AcceptKeyword("and")) {
      Expr rhs = ParseUnary();
      lhs = Expr::MakeBinary(Expr::Kind::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Expr ParseUnary() {
    if (AcceptKeyword("not")) {
      return Expr::MakeNot(ParseUnary());
    }
    return ParsePrimary();
  }

  Expr ParsePrimary() {
    if (Peek().Is(TokenKind::kLParen)) {
      Advance();
      Expr inner = ParseExpr();
      if (!Peek().Is(TokenKind::kRParen)) {
        Fail("expected ')'");
      }
      Advance();
      return MaybeComparison(std::move(inner));
    }
    return MaybeComparison(ParseExprValue());
  }

  /// Parses an optional trailing `== value` / `!= value`.
  Expr MaybeComparison(Expr lhs) {
    if (Peek().Is(TokenKind::kEqEq)) {
      Advance();
      return Expr::MakeBinary(Expr::Kind::kEq, std::move(lhs),
                              ParseExprValue());
    }
    if (Peek().Is(TokenKind::kNotEq)) {
      Advance();
      return Expr::MakeBinary(Expr::Kind::kNe, std::move(lhs),
                              ParseExprValue());
    }
    return lhs;
  }

  Expr ParseExprValue() {
    const Token& token = Peek();
    switch (token.kind) {
      case TokenKind::kIdentifier:
      case TokenKind::kString:
        Advance();
        return Expr::MakeLiteral(token.text);
      case TokenKind::kVariable:
        Advance();
        return Expr::MakeVar(token.text);
      case TokenKind::kLParen: {
        Advance();
        Expr inner = ParseExpr();
        if (!Peek().Is(TokenKind::kRParen)) {
          Fail("expected ')'");
        }
        Advance();
        return inner;
      }
      default:
        Fail("expected a value in expression");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Blueprint ParseBlueprint(std::string_view source) {
  Parser parser(source);
  return parser.ParseFile();
}

}  // namespace damocles::blueprint
