#include "blueprint/ast.hpp"

namespace damocles::blueprint {

ViewTemplate ViewTemplate::Clone() const {
  ViewTemplate copy;
  copy.name = name;
  copy.properties = properties;
  copy.links = links;
  copy.assignments.reserve(assignments.size());
  for (const ContinuousAssignment& assignment : assignments) {
    copy.assignments.push_back(assignment.Clone());
  }
  copy.rules = rules;
  return copy;
}

Blueprint Blueprint::Clone() const {
  Blueprint copy;
  copy.name = name;
  copy.views.reserve(views.size());
  for (const ViewTemplate& view : views) copy.views.push_back(view.Clone());
  return copy;
}

const PropertyTemplate* ViewTemplate::FindProperty(
    std::string_view property_name) const {
  for (const PropertyTemplate& property : properties) {
    if (property.name == property_name) return &property;
  }
  return nullptr;
}

const ViewTemplate* Blueprint::FindView(std::string_view view_name) const {
  for (const ViewTemplate& view : views) {
    if (view.name == view_name) return &view;
  }
  return nullptr;
}

const ViewTemplate* Blueprint::DefaultView() const {
  return FindView(kDefaultViewName);
}

}  // namespace damocles::blueprint
