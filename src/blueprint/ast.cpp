#include "blueprint/ast.hpp"

namespace damocles::blueprint {

const PropertyTemplate* ViewTemplate::FindProperty(
    std::string_view property_name) const {
  for (const PropertyTemplate& property : properties) {
    if (property.name == property_name) return &property;
  }
  return nullptr;
}

const ViewTemplate* Blueprint::FindView(std::string_view view_name) const {
  for (const ViewTemplate& view : views) {
    if (view.name == view_name) return &view;
  }
  return nullptr;
}

const ViewTemplate* Blueprint::DefaultView() const {
  return FindView(kDefaultViewName);
}

}  // namespace damocles::blueprint
