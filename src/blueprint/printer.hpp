// Pretty-printer: renders a parsed Blueprint back to rule-file syntax.
//
// Printing then re-parsing a blueprint yields a structurally identical
// blueprint (round-trip property checked by the test suite); the printer
// is also used by the examples to show the effective rule set.
#pragma once

#include <string>

#include "blueprint/ast.hpp"

namespace damocles::blueprint {

/// Renders one action in rule syntax (without trailing ';').
std::string FormatAction(const Action& action);

/// Renders a complete blueprint as a rule file.
std::string FormatBlueprint(const Blueprint& blueprint);

}  // namespace damocles::blueprint
