// Boolean expression trees for continuous assignments.
//
// Paper §3.2: "the state of the OID can be given by a continuous
// assignment combining the value of several properties (e.g.
// my_state = ($simulation == ok) and ($DRC == good)). Such an assignment
// is continuously being reevaluated."
//
// Values are strings; comparisons are string equality. A bare value used
// in boolean position is truthy iff it equals "true".
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "blueprint/string_template.hpp"

namespace damocles::blueprint {

/// One node of an expression tree.
class Expr {
 public:
  enum class Kind {
    kLiteral,  ///< Constant string value (identifier or quoted string).
    kVar,      ///< $property / $builtin reference.
    kEq,       ///< lhs == rhs (string equality).
    kNe,       ///< lhs != rhs.
    kAnd,      ///< lhs and rhs.
    kOr,       ///< lhs or rhs.
    kNot,      ///< not lhs.
  };

  /// Leaf constructors.
  static Expr MakeLiteral(std::string text);
  static Expr MakeVar(std::string name);

  /// Interior constructors (take ownership of children).
  static Expr MakeBinary(Kind kind, Expr lhs, Expr rhs);
  static Expr MakeNot(Expr operand);

  Expr(Expr&&) noexcept = default;
  Expr& operator=(Expr&&) noexcept = default;
  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;

  /// Deep copy (expression trees are shared between blueprint phases).
  Expr Clone() const;

  Kind kind() const noexcept { return kind_; }
  const std::string& text() const noexcept { return text_; }
  const Expr& lhs() const { return *lhs_; }
  const Expr& rhs() const { return *rhs_; }

  /// Evaluates the node as a string: leaves yield their value, interior
  /// nodes yield "true"/"false".
  std::string EvaluateString(const VariableResolver& resolver) const;

  /// Evaluates the node as a boolean (strings are truthy iff "true").
  bool EvaluateBool(const VariableResolver& resolver) const;

  /// All $variable names referenced anywhere in the tree.
  void CollectVariables(std::vector<std::string>& names) const;

  /// Renders the tree back to blueprint source syntax.
  std::string ToSource() const;

 private:
  Expr() = default;

  Kind kind_ = Kind::kLiteral;
  std::string text_;
  std::unique_ptr<Expr> lhs_;
  std::unique_ptr<Expr> rhs_;
};

}  // namespace damocles::blueprint
