#include "viz/flow_viz.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>

#include "common/strings.hpp"

namespace damocles::viz {

using metadb::Link;
using metadb::LinkId;
using metadb::LinkKind;
using metadb::MetaObject;
using metadb::OidId;

std::string RenderFlowDiagram(const blueprint::Blueprint& bp) {
  std::string text = "flow '" + bp.name + "'\n";
  for (const blueprint::ViewTemplate& view : bp.views) {
    if (view.name == blueprint::Blueprint::kDefaultViewName) continue;
    text += "  [" + view.name + "]\n";
    for (const blueprint::PropertyTemplate& property : view.properties) {
      text += "      . " + property.name + " (default '" +
              property.default_value + "')\n";
    }
    for (const blueprint::ContinuousAssignment& assignment :
         view.assignments) {
      text += "      . " + assignment.property + " = " +
              assignment.expr.ToSource() + "\n";
    }
    for (const blueprint::LinkTemplate& link : view.links) {
      if (link.kind == LinkKind::kUse) {
        text += "      <hierarchy> use_link propagates " +
                Join(link.propagates, ", ") + "\n";
      } else {
        text += "      <-- " + link.from_view;
        if (!link.type.empty()) text += " (" + link.type + ")";
        text += " propagates " + Join(link.propagates, ", ") + "\n";
      }
    }
    for (const blueprint::RuntimeRule& rule : view.rules) {
      text += "      on " + rule.event + ": " +
              std::to_string(rule.actions.size()) + " action(s)\n";
    }
  }
  const blueprint::ViewTemplate* default_view = bp.DefaultView();
  if (default_view != nullptr) {
    text += "  [*] default view: " +
            std::to_string(default_view->properties.size()) +
            " propert(ies), " + std::to_string(default_view->rules.size()) +
            " rule(s) applied to every view\n";
  }
  return text;
}

std::string RenderBlockState(const metadb::Snapshot& snapshot,
                             std::string_view block) {
  const metadb::MetaDatabase& db = snapshot.db();
  // Collect the latest version of every view this block has.
  std::map<std::string, OidId> latest;
  db.ForEachObject([&](OidId id, const MetaObject& object) {
    if (object.oid.block != block) return;
    const auto it = latest.find(object.oid.view);
    if (it == latest.end() ||
        db.GetObject(it->second).oid.version < object.oid.version) {
      latest[object.oid.view] = id;
    }
  });

  std::string text = "block '" + std::string(block) + "'\n";
  if (latest.empty()) {
    text += "  (no tracked data)\n";
    return text;
  }
  for (const auto& [view, id] : latest) {
    const MetaObject& object = db.GetObject(id);
    const std::string uptodate = object.PropertyOr("uptodate", "-");
    const std::string state = object.PropertyOr("state", "-");
    text += "  [" + view + "] v" + std::to_string(object.oid.version) +
            "  uptodate=" + uptodate + " state=" + state + "\n";
    for (const auto& [name, value] : object.properties) {
      if (name == "uptodate" || name == "state") continue;
      text += "      . " + name + " = '" + value + "'\n";
    }
    for (const LinkId link_id : db.InLinks(id)) {
      const Link& link = db.GetLink(link_id);
      const MetaObject& source = db.GetObject(link.from);
      text += "      <-- " + FormatOid(source.oid);
      if (!link.type.empty()) text += " (" + link.type + ")";
      text += "\n";
    }
  }
  return text;
}

std::string RenderBlockState(const metadb::MetaDatabase& db,
                             std::string_view block) {
  return RenderBlockState(metadb::Snapshot::Live(db), block);
}

namespace {

std::string DotId(const metadb::Oid& oid) {
  std::string id = oid.block + "__" + oid.view + "__" +
                   std::to_string(oid.version);
  for (char& c : id) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) c = '_';
  }
  return id;
}

std::string DotEscape(const std::string& text) {
  return ReplaceAll(text, "\"", "\\\"");
}

}  // namespace

std::string ExportDot(const metadb::Snapshot& snapshot,
                      const DotOptions& options) {
  const metadb::MetaDatabase& db = snapshot.db();
  // Select the nodes.
  std::set<uint32_t> included;
  if (options.latest_only) {
    std::map<std::string, OidId> latest;
    db.ForEachObject([&](OidId id, const MetaObject& object) {
      std::string key = object.oid.block;
      key.push_back('\0');
      key += object.oid.view;
      const auto it = latest.find(key);
      if (it == latest.end() ||
          db.GetObject(it->second).oid.version < object.oid.version) {
        latest[key] = id;
      }
    });
    for (const auto& [key, id] : latest) included.insert(id.value());
  } else {
    db.ForEachObject(
        [&](OidId id, const MetaObject&) { included.insert(id.value()); });
  }

  std::string dot = "digraph damocles {\n  rankdir=LR;\n"
                    "  node [shape=box, fontname=\"monospace\"];\n";
  db.ForEachObject([&](OidId id, const MetaObject& object) {
    if (!included.contains(id.value())) return;
    std::string color = "lightgrey";
    if (options.color_by_state) {
      const std::string uptodate = object.PropertyOr("uptodate", "");
      if (uptodate == "true") color = "palegreen";
      if (uptodate == "false") color = "lightcoral";
    }
    dot += "  " + DotId(object.oid) + " [label=\"" +
           DotEscape(FormatOid(object.oid)) +
           "\", style=filled, fillcolor=" + color + "];\n";
  });
  db.ForEachLink([&](LinkId, const Link& link) {
    if (!included.contains(link.from.value()) ||
        !included.contains(link.to.value())) {
      return;
    }
    dot += "  " + DotId(db.GetObject(link.from).oid) + " -> " +
           DotId(db.GetObject(link.to).oid);
    std::string attrs;
    if (link.kind == LinkKind::kUse) attrs += "style=dashed";
    if (options.label_links) {
      if (!attrs.empty()) attrs += ", ";
      std::string label = link.type;
      if (!link.propagates.empty()) {
        if (!label.empty()) label += "\\n";
        label += Join(link.propagates, ",");
      }
      attrs += "label=\"" + DotEscape(label) + "\"";
    }
    if (!attrs.empty()) dot += " [" + attrs + "]";
    dot += ";\n";
  });
  dot += "}\n";
  return dot;
}

std::string ExportDot(const metadb::MetaDatabase& db,
                      const DotOptions& options) {
  return ExportDot(metadb::Snapshot::Live(db), options);
}

}  // namespace damocles::viz
