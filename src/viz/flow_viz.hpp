// Design-state visualization relative to the flow.
//
// Paper conclusion: "we are working on a graphical interface to
// visualize the design state relative to its flow."  This module is the
// library's version of that interface: a textual flow diagram (the shape
// of paper Fig. 5), a per-block state view, and Graphviz DOT export for
// actual graphics.
#pragma once

#include <string>
#include <string_view>

#include "blueprint/ast.hpp"
#include "metadb/meta_database.hpp"

namespace damocles::viz {

/// Renders the blueprint's view/link topology as indented text — which
/// views are tracked, which links feed them, what each link propagates.
std::string RenderFlowDiagram(const blueprint::Blueprint& bp);

/// Renders the state of one block relative to the flow: for every view
/// the block has, the latest version, its tracked properties and the
/// state of its incoming links. Primary form reads a pinned snapshot
/// (lock-free against waves); the MetaDatabase overload wraps the live
/// database unpinned for single-threaded callers.
std::string RenderBlockState(const metadb::Snapshot& snapshot,
                             std::string_view block);
std::string RenderBlockState(const metadb::MetaDatabase& db,
                             std::string_view block);

/// Options for DOT export.
struct DotOptions {
  /// Only include the latest version of each (block, view).
  bool latest_only = true;
  /// Color nodes by the `uptodate` property (green/red/grey).
  bool color_by_state = true;
  /// Include link labels (TYPE + PROPAGATE).
  bool label_links = true;
};

/// Exports the meta-data graph as Graphviz DOT ("dot -Tsvg ..." renders
/// the picture the paper's GUI would have shown). Snapshot form is
/// primary; the MetaDatabase overload wraps the live database unpinned.
std::string ExportDot(const metadb::Snapshot& snapshot,
                      const DotOptions& options = {});
std::string ExportDot(const metadb::MetaDatabase& db,
                      const DotOptions& options = {});

}  // namespace damocles::viz
