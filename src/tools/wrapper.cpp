#include "tools/wrapper.hpp"

#include "events/wire.hpp"

namespace damocles::tools {

PermissionDecision RequestPermission(
    const engine::ProjectServer& server, const std::string& block,
    const std::string& view,
    const std::vector<InputRequirement>& requirements) {
  const metadb::MetaDatabase& db = server.database();
  const auto id = db.FindLatest(block, view);
  if (!id.has_value()) {
    return PermissionDecision{false,
                              "no version of " + block + "." + view + " exists"};
  }
  const metadb::MetaObject& object = db.GetObject(*id);
  for (const InputRequirement& requirement : requirements) {
    const auto it = object.properties.find(requirement.property);
    const std::string actual =
        it == object.properties.end() ? std::string() : it->second;
    if (actual != requirement.required_value) {
      return PermissionDecision{
          false, metadb::FormatOid(object.oid) + ": " + requirement.property +
                     " = '" + actual + "', required '" +
                     requirement.required_value + "'"};
    }
  }
  return PermissionDecision{true, ""};
}

bool WrapperProgram::Gate(const std::string& block, const std::string& view,
                          const std::vector<InputRequirement>& requirements) {
  const PermissionDecision decision =
      RequestPermission(server_, block, view, requirements);
  if (decision.granted) {
    ++runs_;
  } else {
    ++denials_;
  }
  return decision.granted;
}

void WrapperProgram::PostWire(const std::string& event,
                              events::Direction direction,
                              const metadb::Oid& target,
                              const std::string& arg,
                              const std::string& user) {
  events::EventMessage message;
  message.name = event;
  message.direction = direction;
  message.target = target;
  message.arg = arg;
  // Round-trip through the wire codec: the tool layer talks to the
  // server exactly like an external shell script would.
  const std::string line = events::FormatWireEvent(message);
  server_.SubmitWireLine(line, user);
}

}  // namespace damocles::tools
