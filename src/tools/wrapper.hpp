// Wrapper-program support: permission gating on input state.
//
// Paper §3.3: "Tool scheduling is implemented by the wrapper programs.
// The program queries the meta-database, requesting the permission to
// access data and to run the tool. The permission is given based on the
// state of the input data. For example, prior to running a simulation,
// the wrapper makes sure that the input netlist is up to date."
#pragma once

#include <string>
#include <vector>

#include "engine/project_server.hpp"
#include "metadb/oid.hpp"

namespace damocles::tools {

/// One property requirement on a tool's input data.
struct InputRequirement {
  std::string property;
  std::string required_value;
};

/// Result of a permission request.
struct PermissionDecision {
  bool granted = false;
  std::string reason;  ///< Human-readable denial reason ("" when granted).
};

/// Checks the latest version of (block, view) against the requirements.
/// Denies when the object is unknown or any required property differs.
PermissionDecision RequestPermission(
    const engine::ProjectServer& server, const std::string& block,
    const std::string& view, const std::vector<InputRequirement>& requirements);

/// Base class for simulated EDA tools. Concrete tools implement Run()
/// and use the protected helpers to touch the workspace and post events
/// exactly the way a wrapper shell script would.
class WrapperProgram {
 public:
  WrapperProgram(engine::ProjectServer& server, std::string tool_name)
      : server_(server), tool_name_(std::move(tool_name)) {}
  virtual ~WrapperProgram() = default;

  const std::string& tool_name() const noexcept { return tool_name_; }

  /// Number of times the tool body actually ran.
  size_t runs() const noexcept { return runs_; }
  /// Number of times permission was denied.
  size_t denials() const noexcept { return denials_; }

 protected:
  /// Gate + count helper: returns true (and counts a run) when all
  /// requirements hold, else counts a denial.
  bool Gate(const std::string& block, const std::string& view,
            const std::vector<InputRequirement>& requirements);

  /// Posts an event over the wire protocol, as a wrapper script does.
  void PostWire(const std::string& event, events::Direction direction,
                const metadb::Oid& target, const std::string& arg,
                const std::string& user);

  engine::ProjectServer& server_;

 private:
  std::string tool_name_;
  size_t runs_ = 0;
  size_t denials_ = 0;
};

}  // namespace damocles::tools
