// Script registry: the library's stand-in for the shell-script wrapper
// programs of the paper.
//
// exec run-time rules name scripts ("netlister.sh"); the registry maps
// those names to C++ callables. Every invocation is recorded so tests
// and benches can assert on automatic tool scheduling.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/script_executor.hpp"

namespace damocles::tools {

/// Callable backing one script name.
using ScriptFn = std::function<int(const engine::ExecRequest&)>;

/// Registry of wrapper scripts, pluggable into the run-time engine.
class ScriptRegistry : public engine::ScriptExecutor {
 public:
  /// When true, executing an unregistered script throws NotFoundError;
  /// when false it returns exit status 127 (shell "command not found").
  explicit ScriptRegistry(bool strict = false) : strict_(strict) {}

  /// Registers (or replaces) a script.
  void Register(std::string name, ScriptFn fn);

  bool Has(const std::string& name) const {
    return scripts_.find(name) != scripts_.end();
  }

  int Execute(const engine::ExecRequest& request) override;

  /// Complete invocation history, in execution order.
  const std::vector<engine::ExecRequest>& History() const noexcept {
    return history_;
  }

  /// Number of invocations of one script.
  size_t CallCount(const std::string& name) const;

  void ClearHistory() { history_.clear(); }

 private:
  bool strict_;
  std::unordered_map<std::string, ScriptFn> scripts_;
  std::vector<engine::ExecRequest> history_;
};

}  // namespace damocles::tools
