#include "tools/script_registry.hpp"

#include "common/error.hpp"
#include "common/log.hpp"

namespace damocles::tools {

void ScriptRegistry::Register(std::string name, ScriptFn fn) {
  scripts_[std::move(name)] = std::move(fn);
}

int ScriptRegistry::Execute(const engine::ExecRequest& request) {
  history_.push_back(request);
  const auto it = scripts_.find(request.script);
  if (it == scripts_.end()) {
    if (strict_) {
      throw NotFoundError("ScriptRegistry: unknown script '" + request.script +
                          "'");
    }
    Log::Warning("unknown script '" + request.script + "' (exit 127)");
    return 127;
  }
  return it->second(request);
}

size_t ScriptRegistry::CallCount(const std::string& name) const {
  size_t count = 0;
  for (const engine::ExecRequest& request : history_) {
    if (request.script == name) ++count;
  }
  return count;
}

}  // namespace damocles::tools
