#include "tools/scheduler.hpp"

namespace damocles::tools {

ToolScheduler::ToolScheduler(engine::ProjectServer& server)
    : server_(server), registry_(/*strict=*/false) {
  server_.engine().SetScriptExecutor(&registry_);
}

void ToolScheduler::InstallStandardScripts(Netlister& netlister) {
  const auto run_netlister = [this, &netlister](
                                 const engine::ExecRequest& request) {
    const int status = netlister.RunFromScript(request);
    ledger_.push_back(ScheduledRun{request.script, request.target,
                                   request.event, status, request.timestamp});
    return status;
  };
  registry_.Register("netlister", run_netlister);
  registry_.Register("netlister.sh", run_netlister);
}

void ToolScheduler::Register(std::string name, ScriptFn fn) {
  registry_.Register(std::move(name),
                     [this, fn = std::move(fn)](
                         const engine::ExecRequest& request) {
                       const int status = fn(request);
                       ledger_.push_back(ScheduledRun{request.script,
                                                      request.target,
                                                      request.event, status,
                                                      request.timestamp});
                       return status;
                     });
}

}  // namespace damocles::tools
