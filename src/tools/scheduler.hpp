// Tool scheduling (paper §3.3).
//
// Two cooperating mechanisms:
//  * exec run-time rules give *automatic* invocation — the blueprint
//    fires "exec netlister $oid" on every schematic check-in;
//  * wrapper-side permission gating stops tools from running on stale
//    or failed inputs.
//
// The ToolScheduler binds script names to tools and keeps the ledger of
// automatic invocations that bench_claim_scheduling reports.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "engine/project_server.hpp"
#include "tools/script_registry.hpp"
#include "tools/simulated_tools.hpp"

namespace damocles::tools {

/// Record of one scheduled invocation.
struct ScheduledRun {
  std::string script;
  metadb::Oid trigger;    ///< OID whose rule fired.
  std::string event;      ///< Triggering event.
  int exit_status = 0;
  int64_t timestamp = 0;
};

/// Binds blueprint exec-rules to the simulated tool suite.
class ToolScheduler {
 public:
  explicit ToolScheduler(engine::ProjectServer& server);

  /// Registers the standard EDTC tool scripts:
  ///   netlister / netlister.sh  -> Netlister::RunFromScript
  /// and wires the registry into the engine.
  void InstallStandardScripts(Netlister& netlister);

  /// Registers an arbitrary script.
  void Register(std::string name, ScriptFn fn);

  ScriptRegistry& registry() noexcept { return registry_; }

  /// Ledger of every scheduled run (script invocations via exec rules).
  const std::vector<ScheduledRun>& ledger() const noexcept { return ledger_; }

  size_t automatic_runs() const noexcept { return ledger_.size(); }

 private:
  engine::ProjectServer& server_;
  ScriptRegistry registry_;
  std::vector<ScheduledRun> ledger_;
};

}  // namespace damocles::tools
