// The simulated EDA tool suite.
//
// The paper's design flow (Figs. 4-5) involves a synthesis tool, a
// schematic generator/editor, a netlister, simulators, a layout editor,
// DRC and LVS. Real tools are proprietary; these simulations reproduce
// exactly the behaviour the tracking system sees: they read design data
// from the workspace, create new versions and links, and post result
// events through wrapper programs. Tool outcomes are a deterministic
// function of the design content (a content hash) so runs reproduce,
// with an optional injected defect rate for workload realism.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "tools/wrapper.hpp"

namespace damocles::tools {

/// Deterministic verdict model shared by the checking tools: content
/// whose hash lands below `defect_rate` fails. defect_rate 0 = always
/// pass; 1 = always fail.
struct VerdictModel {
  double defect_rate = 0.0;

  /// "good" or a failure message derived from the content.
  std::string Judge(const std::string& content, const char* failure) const;
};

/// Writes HDL models: check-out / edit / check-in cycles.
class HdlEditor : public WrapperProgram {
 public:
  explicit HdlEditor(engine::ProjectServer& server)
      : WrapperProgram(server, "hdl_editor") {}

  /// Saves a new HDL model version for `block` and returns its OID.
  metadb::Oid Edit(const std::string& block, const std::string& content,
                   const std::string& user);
};

/// HDL simulator: judges the latest HDL model and posts `hdl_sim`.
class HdlSimulator : public WrapperProgram {
 public:
  HdlSimulator(engine::ProjectServer& server, VerdictModel model)
      : WrapperProgram(server, "hdl_simulator"), model_(model) {}

  /// Runs the simulation; returns the verdict it posted, or "" when
  /// permission was denied (no HDL model).
  std::string Simulate(const std::string& block, const std::string& user);

 private:
  VerdictModel model_;
};

/// Synthesis tool: HDL model -> schematic hierarchy.
///
/// Creates one schematic OID for the block and one per sub-block,
/// wires use links (hierarchy), a derive link from the HDL model and a
/// depend_on link from the synthesis library.
class SynthesisTool : public WrapperProgram {
 public:
  explicit SynthesisTool(engine::ProjectServer& server)
      : WrapperProgram(server, "synthesis") {}

  /// Requires the HDL model's sim_result to be "good" (the gate of
  /// paper §3.3). Returns the top schematic OID on success.
  std::optional<metadb::Oid> Synthesize(
      const std::string& block, const std::vector<std::string>& sub_blocks,
      const std::string& user);
};

/// Netlister: schematic -> netlist, derive link from the schematic.
class Netlister : public WrapperProgram {
 public:
  explicit Netlister(engine::ProjectServer& server)
      : WrapperProgram(server, "netlister") {}

  std::optional<metadb::Oid> Netlist(const std::string& block,
                                     const std::string& user);

  /// Script-registry entry point: `exec netlister "$oid"`.
  int RunFromScript(const engine::ExecRequest& request);
};

/// Netlist simulator: posts `nl_sim` with its verdict.
class NetlistSimulator : public WrapperProgram {
 public:
  NetlistSimulator(engine::ProjectServer& server, VerdictModel model)
      : WrapperProgram(server, "nl_simulator"), model_(model) {}

  /// Gate: the netlist must be up to date (paper §3.3's example).
  std::string Simulate(const std::string& block, const std::string& user);

 private:
  VerdictModel model_;
};

/// Layout editor: produces the layout view, linked as an equivalence
/// of the schematic.
class LayoutEditor : public WrapperProgram {
 public:
  explicit LayoutEditor(engine::ProjectServer& server)
      : WrapperProgram(server, "layout_editor") {}

  std::optional<metadb::Oid> Draw(const std::string& block,
                                  const std::string& user);
};

/// Design-rule check: posts `drc`.
class DrcTool : public WrapperProgram {
 public:
  DrcTool(engine::ProjectServer& server, VerdictModel model)
      : WrapperProgram(server, "drc"), model_(model) {}

  std::string Check(const std::string& block, const std::string& user);

 private:
  VerdictModel model_;
};

/// Layout-versus-schematic check: posts `lvs`.
class LvsTool : public WrapperProgram {
 public:
  LvsTool(engine::ProjectServer& server, VerdictModel model)
      : WrapperProgram(server, "lvs"), model_(model) {}

  std::string Check(const std::string& block, const std::string& user);

 private:
  VerdictModel model_;
};

/// Installs new synthesis-library versions. The EDTC blueprint makes
/// schematics depend_on the library, so an installation invalidates
/// every derived schematic (paper §3.4: "the installation of a new
/// version of the library will automatically invalidate data which
/// depends on it").
class LibraryInstaller : public WrapperProgram {
 public:
  explicit LibraryInstaller(engine::ProjectServer& server)
      : WrapperProgram(server, "lib_installer") {}

  metadb::Oid Install(const std::string& library_block,
                      const std::string& content, const std::string& user);
};

/// View-type names shared by tools, blueprints and workloads.
namespace views {
inline constexpr const char* kHdlModel = "HDL_model";
inline constexpr const char* kSynthLib = "synth_lib";
inline constexpr const char* kSchematic = "schematic";
inline constexpr const char* kNetlist = "netlist";
inline constexpr const char* kLayout = "layout";
}  // namespace views

}  // namespace damocles::tools
