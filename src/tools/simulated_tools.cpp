#include "tools/simulated_tools.hpp"

#include "common/error.hpp"

namespace damocles::tools {

namespace {

using metadb::LinkKind;
using metadb::Oid;

/// FNV-1a: stable across platforms, so tool verdicts are reproducible
/// everywhere (std::hash is implementation-defined).
uint64_t StableHash(const std::string& text) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (const unsigned char c : text) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// Maps content to [0, 1) deterministically.
double ContentDraw(const std::string& content) {
  return static_cast<double>(StableHash(content) >> 11) * 0x1.0p-53;
}

std::string ReadLatestContent(engine::ProjectServer& server,
                              const std::string& block,
                              const std::string& view) {
  const int version = server.workspace().LatestVersion(block, view);
  if (version == 0) return std::string();
  const auto file =
      server.workspace().Read(Oid{block, view, version});
  return file.has_value() ? file->content : std::string();
}

Oid LatestOid(const engine::ProjectServer& server, const std::string& block,
              const std::string& view) {
  const auto id = server.database().FindLatest(block, view);
  if (!id.has_value()) {
    throw NotFoundError("no tracked version of " + block + "." + view);
  }
  return server.database().GetObject(*id).oid;
}

}  // namespace

std::string VerdictModel::Judge(const std::string& content,
                                const char* failure) const {
  if (defect_rate <= 0.0) return "good";
  if (defect_rate >= 1.0 || ContentDraw(content) < defect_rate) {
    // Derive a small error count from the content so messages vary the
    // way real log extracts do ("4 errors").
    const int errors = 1 + static_cast<int>(StableHash(content) % 9);
    return std::string(failure) + ": " + std::to_string(errors) + " errors";
  }
  return "good";
}

// --- HdlEditor -----------------------------------------------------------------

Oid HdlEditor::Edit(const std::string& block, const std::string& content,
                    const std::string& user) {
  return server_.CheckIn(block, views::kHdlModel, content, user);
}

// --- HdlSimulator ---------------------------------------------------------------

std::string HdlSimulator::Simulate(const std::string& block,
                                   const std::string& user) {
  if (!Gate(block, views::kHdlModel, {})) return std::string();
  const std::string content =
      ReadLatestContent(server_, block, views::kHdlModel);
  const std::string verdict = model_.Judge(content, "sim failed");
  PostWire("hdl_sim", events::Direction::kUp,
           LatestOid(server_, block, views::kHdlModel), verdict, user);
  return verdict;
}

// --- SynthesisTool ---------------------------------------------------------------

std::optional<Oid> SynthesisTool::Synthesize(
    const std::string& block, const std::vector<std::string>& sub_blocks,
    const std::string& user) {
  // The §3.3 gate: the input HDL model must have passed simulation.
  if (!Gate(block, views::kHdlModel,
            {InputRequirement{"sim_result", "good"}})) {
    return std::nullopt;
  }
  const Oid hdl = LatestOid(server_, block, views::kHdlModel);
  const std::string hdl_content =
      ReadLatestContent(server_, block, views::kHdlModel);

  const Oid top = server_.CheckIn(
      block, views::kSchematic, "synthesized from " + hdl_content, user);

  // Hierarchy: one schematic per sub-block plus a use link from the top.
  for (const std::string& sub : sub_blocks) {
    const Oid child = server_.CheckIn(
        sub, views::kSchematic, "synthesized component of " + block, user);
    server_.RegisterLink(LinkKind::kUse, top, child);
  }

  // Derivation provenance: schematic derives from the HDL model and
  // depends on the installed synthesis library (when present).
  server_.RegisterLink(LinkKind::kDerive, hdl, top);
  if (server_.database().FindLatest(block, views::kSynthLib).has_value()) {
    server_.RegisterLink(LinkKind::kDerive,
                         LatestOid(server_, block, views::kSynthLib), top);
  } else if (server_.database()
                 .FindLatest("project", views::kSynthLib)
                 .has_value()) {
    server_.RegisterLink(
        LinkKind::kDerive, LatestOid(server_, "project", views::kSynthLib),
        top);
  }
  return top;
}

// --- Netlister --------------------------------------------------------------------

std::optional<Oid> Netlister::Netlist(const std::string& block,
                                      const std::string& user) {
  if (!Gate(block, views::kSchematic, {})) return std::nullopt;
  const Oid schematic = LatestOid(server_, block, views::kSchematic);
  const std::string schematic_content =
      ReadLatestContent(server_, block, views::kSchematic);

  const Oid netlist = server_.CheckIn(
      block, views::kNetlist, "netlist of " + schematic_content, user);
  server_.RegisterLink(LinkKind::kDerive, schematic, netlist);
  return netlist;
}

int Netlister::RunFromScript(const engine::ExecRequest& request) {
  // `exec netlister "$oid"` passes the schematic OID in wire form.
  if (request.args.empty()) return 2;
  const Oid schematic = metadb::ParseOidWire(request.args[0]);
  const std::string user =
      request.user.empty() ? std::string("scheduler") : request.user;
  return Netlist(schematic.block, user).has_value() ? 0 : 1;
}

// --- NetlistSimulator -----------------------------------------------------------

std::string NetlistSimulator::Simulate(const std::string& block,
                                       const std::string& user) {
  // "prior to running a simulation, the wrapper makes sure that the
  // input netlist is up to date" (paper §3.3).
  if (!Gate(block, views::kNetlist, {InputRequirement{"uptodate", "true"}})) {
    return std::string();
  }
  const std::string content =
      ReadLatestContent(server_, block, views::kNetlist);
  const std::string verdict = model_.Judge(content, "nl sim failed");
  PostWire("nl_sim", events::Direction::kUp,
           LatestOid(server_, block, views::kNetlist), verdict, user);
  return verdict;
}

// --- LayoutEditor ----------------------------------------------------------------

std::optional<Oid> LayoutEditor::Draw(const std::string& block,
                                      const std::string& user) {
  if (!Gate(block, views::kSchematic, {InputRequirement{"uptodate", "true"}})) {
    return std::nullopt;
  }
  const Oid schematic = LatestOid(server_, block, views::kSchematic);
  const Oid layout = server_.CheckIn(block, views::kLayout,
                                     "layout of " + block, user);
  server_.RegisterLink(LinkKind::kDerive, schematic, layout);
  return layout;
}

// --- DrcTool ---------------------------------------------------------------------

std::string DrcTool::Check(const std::string& block, const std::string& user) {
  if (!Gate(block, views::kLayout, {})) return std::string();
  const std::string content = ReadLatestContent(server_, block, views::kLayout);
  const std::string verdict = model_.Judge(content, "drc violations");
  PostWire("drc", events::Direction::kUp,
           LatestOid(server_, block, views::kLayout), verdict, user);
  return verdict;
}

// --- LvsTool ---------------------------------------------------------------------

std::string LvsTool::Check(const std::string& block, const std::string& user) {
  if (!Gate(block, views::kLayout, {})) return std::string();
  const std::string content = ReadLatestContent(server_, block, views::kLayout);
  // LVS verdicts use the equivalence vocabulary of the EDTC blueprint.
  std::string verdict = model_.Judge(content, "mismatch");
  if (verdict == "good") verdict = "is_equiv";
  PostWire("lvs", events::Direction::kUp,
           LatestOid(server_, block, views::kLayout), verdict, user);
  return verdict;
}

// --- LibraryInstaller ------------------------------------------------------------

Oid LibraryInstaller::Install(const std::string& library_block,
                              const std::string& content,
                              const std::string& user) {
  return server_.CheckIn(library_block, views::kSynthLib, content, user);
}

}  // namespace damocles::tools
