// Wire codec for the postEvent protocol.
//
// Wrapper programs are shell scripts; they talk to the BluePrint server
// in a plain-text, line-oriented protocol (paper §3.1):
//
//   postEvent ckin up reg,verilog,4 "logic sim passed"
//
// This module converts between that textual form and EventMessage.
#pragma once

#include <string>
#include <string_view>

#include "events/event.hpp"

namespace damocles::events {

/// Serializes an event to the wire form. Inverse of ParseWireEvent for
/// the fields carried on the wire (user/timestamp/origin are transport
/// metadata and are not serialized).
std::string FormatWireEvent(const EventMessage& event);

/// Parses one wire line. Accepts both bare-word and double-quoted
/// arguments. Throws WireFormatError on malformed input.
EventMessage ParseWireEvent(std::string_view line);

}  // namespace damocles::events
