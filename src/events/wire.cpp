#include "events/wire.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"

namespace damocles::events {

namespace {

constexpr std::string_view kCommand = "postEvent";

/// Reads the next token starting at `pos`: either a double-quoted string
/// or a run of non-space characters. Returns false at end of line.
bool NextToken(std::string_view line, size_t& pos, std::string& out) {
  while (pos < line.size() && line[pos] == ' ') ++pos;
  if (pos >= line.size()) return false;
  if (line[pos] == '"') {
    if (!UnquoteString(line, pos, out)) {
      throw WireFormatError("unterminated quoted argument: '" +
                            std::string(line) + "'");
    }
    return true;
  }
  const size_t start = pos;
  while (pos < line.size() && line[pos] != ' ') ++pos;
  out.assign(line.substr(start, pos - start));
  return true;
}

}  // namespace

std::string FormatWireEvent(const EventMessage& event) {
  std::string line(kCommand);
  line += " ";
  line += event.name;
  line += " ";
  line += DirectionName(event.direction);
  line += " ";
  line += metadb::FormatOidWire(event.target);
  if (!event.arg.empty() || !event.extra_args.empty()) {
    line += " ";
    line += QuoteString(event.arg);
  }
  for (const std::string& extra : event.extra_args) {
    line += " ";
    line += QuoteString(extra);
  }
  return line;
}

EventMessage ParseWireEvent(std::string_view line) {
  size_t pos = 0;
  std::string token;

  if (!NextToken(line, pos, token) || token != kCommand) {
    throw WireFormatError("expected 'postEvent', got '" + token + "'");
  }

  EventMessage event;
  if (!NextToken(line, pos, event.name) || event.name.empty()) {
    throw WireFormatError("postEvent: missing event name");
  }
  if (!damocles::IsIdentifier(event.name)) {
    throw WireFormatError("postEvent: malformed event name '" + event.name +
                          "'");
  }

  if (!NextToken(line, pos, token)) {
    throw WireFormatError("postEvent: missing direction");
  }
  if (token == "up") {
    event.direction = Direction::kUp;
  } else if (token == "down") {
    event.direction = Direction::kDown;
  } else {
    throw WireFormatError("postEvent: direction must be 'up' or 'down', got '" +
                          token + "'");
  }

  if (!NextToken(line, pos, token)) {
    throw WireFormatError("postEvent: missing target OID");
  }
  event.target = metadb::ParseOidWire(token);

  if (NextToken(line, pos, event.arg)) {
    while (NextToken(line, pos, token)) {
      event.extra_args.push_back(token);
    }
  }
  event.origin = EventOrigin::kExternal;
  return event;
}

}  // namespace damocles::events
