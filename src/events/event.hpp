// Design event messages.
//
// Paper §3.1: "An event message consists of an event name, a propagation
// direction (either up or down through the links), a target OID and
// optional arguments:  postEvent ckin up reg,verilog,4 'logic sim passed'"
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "metadb/oid.hpp"

namespace damocles::events {

/// Propagation direction through links. `kDown` travels along link
/// orientation (source -> target), `kUp` against it.
enum class Direction {
  kUp,
  kDown,
};

const char* DirectionName(Direction direction) noexcept;

/// How an event entered the system; used for audit and by the engine's
/// statistics.
enum class EventOrigin {
  kExternal,   ///< Posted by a wrapper program / designer.
  kRule,       ///< Posted by a run-time rule (post action).
  kPropagated, ///< Delivered across a link by the propagation walker.
  kSystem,     ///< Synthesised by the tracking system (create / newlink).
};

const char* EventOriginName(EventOrigin origin) noexcept;

/// One event message. Events are small value types; the queue copies
/// them freely.
struct EventMessage {
  std::string name;                  ///< Event name, e.g. "ckin".
  Direction direction = Direction::kDown;
  metadb::Oid target;                ///< The OID the event is aimed at.
  std::string arg;                   ///< First optional argument ($arg).
  std::vector<std::string> extra_args;  ///< Further optional arguments.
  std::string user;                  ///< Acting designer ($user).
  int64_t timestamp = 0;             ///< SimClock seconds at posting.
  EventOrigin origin = EventOrigin::kExternal;

  /// Wave-scope ticket. The sharded engine mints one per top-level wave
  /// at intake (and per direction-posted sub-wave mid-wave); every
  /// cross-shard sub-wave of the wave carries the same epoch, and the
  /// per-(epoch, OID) dedup handshake delivers each OID exactly once per
  /// wave no matter how many shards the wave re-enters through. Within
  /// one shard task the epoch also uniquely identifies the wave payload
  /// (each direction post opens its own epoch), which is what lets the
  /// cross-shard handoff batch seeds per (epoch, target shard) without
  /// comparing payload fields. 0 means "no wave scope" (unsharded
  /// engines; 1-shard sharded runs). Internal to the engine: not part
  /// of the wire protocol and never printed by FormatEvent.
  uint64_t wave_epoch = 0;

  /// Events the tracking system itself synthesises.
  static constexpr const char* kCreate = "create";    ///< New OID version.
  static constexpr const char* kNewLink = "newlink";  ///< New link instance.
};

/// Human-readable one-line rendering, e.g.
/// "ckin up <reg.verilog.4> \"logic sim passed\"".
std::string FormatEvent(const EventMessage& event);

}  // namespace damocles::events
