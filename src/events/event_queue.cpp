#include "events/event_queue.hpp"

#include <algorithm>

namespace damocles::events {

void EventQueue::Push(EventMessage event) {
  queue_.push_back(std::move(event));
  ++stats_.enqueued;
  stats_.high_water_mark = std::max(stats_.high_water_mark, queue_.size());
}

std::optional<EventMessage> EventQueue::Pop() {
  if (queue_.empty()) return std::nullopt;
  EventMessage event = std::move(queue_.front());
  queue_.pop_front();
  ++stats_.dequeued;
  return event;
}

const EventMessage* EventQueue::Peek() const {
  return queue_.empty() ? nullptr : &queue_.front();
}

void EventQueue::Clear() { queue_.clear(); }

}  // namespace damocles::events
