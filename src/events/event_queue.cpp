#include "events/event_queue.hpp"

#include <algorithm>

namespace damocles::events {

void EventQueue::Grow() {
  // Unroll the circular order into a fresh, larger ring.
  const size_t capacity = ring_.empty() ? 16 : ring_.size() * 2;
  std::vector<EventMessage> next(capacity);
  for (size_t i = 0; i < count_; ++i) {
    next[i] = std::move(ring_[(head_ + i) % ring_.size()]);
  }
  ring_.swap(next);
  head_ = 0;
}

void EventQueue::Push(EventMessage event) {
  if (count_ == ring_.size()) Grow();
  ring_[(head_ + count_) % ring_.size()] = std::move(event);
  ++count_;
  ++stats_.enqueued;
  stats_.high_water_mark = std::max(stats_.high_water_mark, count_);
}

std::optional<EventMessage> EventQueue::Pop() {
  if (count_ == 0) return std::nullopt;
  EventMessage event = std::move(ring_[head_]);
  head_ = (head_ + 1) % ring_.size();
  --count_;
  ++stats_.dequeued;
  return event;
}

const EventMessage* EventQueue::Peek() const {
  return count_ == 0 ? nullptr : &ring_[head_];
}

void EventQueue::Clear() {
  // Release payloads but keep the slots.
  for (size_t i = 0; i < count_; ++i) {
    ring_[(head_ + i) % ring_.size()] = EventMessage{};
  }
  head_ = 0;
  count_ = 0;
}

}  // namespace damocles::events
