#include "events/journal.hpp"

namespace damocles::events {

void EventJournal::Record(const EventMessage& event) {
  JournalRecord record;
  record.sequence = records_.size();
  record.event = event;
  records_.push_back(std::move(record));
}

void EventJournal::Record(EventMessage&& event) {
  JournalRecord record;
  record.sequence = records_.size();
  record.event = std::move(event);
  records_.push_back(std::move(record));
}

void EventJournal::Clear() { records_.clear(); }

std::vector<EventMessage> EventJournal::ExternalTrace() const {
  std::vector<EventMessage> trace;
  for (const JournalRecord& record : records_) {
    if (record.event.origin == EventOrigin::kExternal ||
        record.event.origin == EventOrigin::kSystem) {
      trace.push_back(record.event);
    }
  }
  return trace;
}

std::string EventJournal::Dump() const {
  std::string text;
  for (const JournalRecord& record : records_) {
    text += std::to_string(record.sequence);
    text += ": [";
    text += EventOriginName(record.event.origin);
    text += "] ";
    text += FormatEvent(record.event);
    text += "\n";
  }
  return text;
}

}  // namespace damocles::events
