#include "events/journal.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"
#include "metadb/oid.hpp"

namespace damocles::events {

EventJournal::PayloadKey EventJournal::MakePayloadKey(
    const EventMessage& event) {
  PayloadKey key;
  key.name = strings_.Intern(event.name);
  key.arg = strings_.Intern(event.arg);
  key.user = strings_.Intern(event.user);
  key.timestamp = event.timestamp;
  key.epoch = event.wave_epoch;
  key.direction = static_cast<uint8_t>(event.direction);
  if (!event.extra_args.empty()) {
    if (event.extra_args.size() > 0xFFFF) {
      throw Error("EventJournal: more than 65535 extra args on event '" +
                  event.name + "'");
    }
    key.extra_begin = static_cast<uint32_t>(extra_pool_.size());
    key.extra_count = static_cast<uint16_t>(event.extra_args.size());
    for (const std::string& extra : event.extra_args) {
      extra_pool_.push_back(strings_.Intern(extra));
    }
  }
  return key;
}

EventJournal::Row EventJournal::RowFromKey(const PayloadKey& key,
                                           const metadb::Oid& target) {
  Row row;
  row.name = key.name;
  row.block = strings_.Intern(target.block);
  row.view = strings_.Intern(target.view);
  row.arg = key.arg;
  row.user = key.user;
  row.version = target.version;
  row.timestamp = key.timestamp;
  row.epoch = key.epoch;
  row.extra_begin = key.extra_begin;
  row.extra_count = key.extra_count;
  row.direction = key.direction;
  return row;
}

EventJournal::Row EventJournal::MakeRow(const EventMessage& event,
                                        const metadb::Oid& target) {
  // The per-event form keys the payload, then assembles the row
  // exactly like the seed-batch path does.
  Row row = RowFromKey(MakePayloadKey(event), target);
  row.origin = static_cast<uint8_t>(event.origin);
  return row;
}

void EventJournal::Record(const EventMessage& event) {
  rows_.push_back(MakeRow(event, event.target));
  if (sink_ != nullptr) sink_->OnAppend(*this);
}

void EventJournal::RecordPropagated(const EventMessage& event,
                                    const metadb::Oid& target) {
  // The substitute target is interned directly — the shared payload's
  // own target (the wave origin) never touches the side table here.
  Row row = MakeRow(event, target);
  row.origin = static_cast<uint8_t>(EventOrigin::kPropagated);
  rows_.push_back(row);
  if (sink_ != nullptr) sink_->OnAppend(*this);
}

void EventJournal::RecordPropagated(const PayloadKey& key,
                                    const metadb::Oid& target) {
  Row row = RowFromKey(key, target);
  row.origin = static_cast<uint8_t>(EventOrigin::kPropagated);
  rows_.push_back(row);
  if (sink_ != nullptr) sink_->OnAppend(*this);
}

EventMessage EventJournal::Materialize(const Row& row) const {
  EventMessage event;
  event.name = strings_.Text(row.name);
  event.direction = static_cast<Direction>(row.direction);
  event.target.block = strings_.Text(row.block);
  event.target.view = strings_.Text(row.view);
  event.target.version = row.version;
  event.arg = strings_.Text(row.arg);
  event.user = strings_.Text(row.user);
  event.timestamp = row.timestamp;
  event.wave_epoch = row.epoch;
  event.origin = static_cast<EventOrigin>(row.origin);
  event.extra_args.reserve(row.extra_count);
  for (uint16_t i = 0; i < row.extra_count; ++i) {
    event.extra_args.push_back(strings_.Text(extra_pool_[row.extra_begin + i]));
  }
  return event;
}

JournalRecord EventJournal::At(size_t index) const {
  if (index >= rows_.size()) {
    throw NotFoundError("EventJournal::At: index " + std::to_string(index) +
                        " out of range (size " + std::to_string(rows_.size()) +
                        ")");
  }
  return JournalRecord{index, Materialize(rows_[index])};
}

void EventJournal::Clear() {
  rows_.clear();
  extra_pool_.clear();
  strings_ = SymbolTable();
  if (sink_ != nullptr) sink_->OnClear(*this);
}

std::vector<EventMessage> EventJournal::ExternalTrace() const {
  std::vector<EventMessage> trace;
  for (const Row& row : rows_) {
    const auto origin = static_cast<EventOrigin>(row.origin);
    if (origin == EventOrigin::kExternal || origin == EventOrigin::kSystem) {
      trace.push_back(Materialize(row));
    }
  }
  return trace;
}

std::string EventJournal::Dump() const {
  std::string text;
  for (size_t i = 0; i < rows_.size(); ++i) {
    text += std::to_string(i);
    text += ": [";
    text += EventOriginName(static_cast<EventOrigin>(rows_[i].origin));
    text += "] ";
    text += FormatEvent(Materialize(rows_[i]));
    text += "\n";
  }
  return text;
}

}  // namespace damocles::events
