// The FIFO design-event queue in front of the BluePrint engine.
//
// Paper §3.1: "the design activities are converted to events and sent to
// the project BluePrint, where they are queued. ... Events are processed
// sequentially, first-in first-out."
//
// Storage is a growable circular buffer: slots are reused, so in steady
// state Push/Pop move an EventMessage in and out without touching the
// allocator (the historical std::deque paid block allocations as the
// queue breathed). Capacity only grows, doubling on overflow.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "events/event.hpp"

namespace damocles::events {

/// Counters describing queue traffic since construction.
struct QueueStats {
  size_t enqueued = 0;
  size_t dequeued = 0;
  size_t high_water_mark = 0;  ///< Largest depth ever observed.
};

/// Strict FIFO queue of event messages.
class EventQueue {
 public:
  /// Appends an event at the tail.
  void Push(EventMessage event);

  /// Pops the head event, or nullopt when empty.
  std::optional<EventMessage> Pop();

  /// Head event without removing it, or nullptr when empty.
  const EventMessage* Peek() const;

  bool Empty() const noexcept { return count_ == 0; }
  size_t Depth() const noexcept { return count_; }
  const QueueStats& Stats() const noexcept { return stats_; }

  /// Drops all queued events (used when re-initializing a blueprint
  /// between project phases). Slot capacity is retained.
  void Clear();

 private:
  void Grow();

  std::vector<EventMessage> ring_;  ///< Circular slot storage.
  size_t head_ = 0;                 ///< Index of the head event.
  size_t count_ = 0;                ///< Live events in the ring.
  QueueStats stats_;
};

}  // namespace damocles::events
