// The FIFO design-event queue in front of the BluePrint engine.
//
// Paper §3.1: "the design activities are converted to events and sent to
// the project BluePrint, where they are queued. ... Events are processed
// sequentially, first-in first-out."
#pragma once

#include <cstddef>
#include <deque>
#include <optional>

#include "events/event.hpp"

namespace damocles::events {

/// Counters describing queue traffic since construction.
struct QueueStats {
  size_t enqueued = 0;
  size_t dequeued = 0;
  size_t high_water_mark = 0;  ///< Largest depth ever observed.
};

/// Strict FIFO queue of event messages.
class EventQueue {
 public:
  /// Appends an event at the tail.
  void Push(EventMessage event);

  /// Pops the head event, or nullopt when empty.
  std::optional<EventMessage> Pop();

  /// Head event without removing it, or nullptr when empty.
  const EventMessage* Peek() const;

  bool Empty() const noexcept { return queue_.empty(); }
  size_t Depth() const noexcept { return queue_.size(); }
  const QueueStats& Stats() const noexcept { return stats_; }

  /// Drops all queued events (used when re-initializing a blueprint
  /// between project phases).
  void Clear();

 private:
  std::deque<EventMessage> queue_;
  QueueStats stats_;
};

}  // namespace damocles::events
