// Segmented write-ahead log for the event journal and server operations.
//
// The durability layer mirrors two kinds of streams into append-only
// binary segment files under one WAL directory:
//
//  * Row streams ("shard0", "steal1", ...): every journal append is
//    re-encoded against a segment-local symbol table and written as one
//    framed record, so a recovered process can rebuild the exact journal
//    contents (and their interned side tables) up to a checkpointed
//    offset. Row streams are an audit mirror — they are truncated back
//    to the checkpoint manifest's offsets on recovery, because rows past
//    the checkpoint are re-derived by replaying operations.
//
//  * The operation stream ("ops"): structural server operations
//    (check-in, link registration, event submission, blueprint load,
//    clock advance) logged *before* execution. This is the replay
//    source: recovery re-executes the tail of "ops" past the newest
//    checkpoint to regenerate post-checkpoint state — property values,
//    journal rows, and per-shard epoch bookkeeping alike.
//
// Record framing: u32 payload length, u8 record type, payload bytes,
// u32 CRC32 over (type + payload). Recovery truncates a stream at the
// first short or CRC-failing record — a torn write loses the tail, never
// the prefix. Segments roll at a size threshold; every segment starts
// with a fixed header (magic, format version, shard id, logical base
// offset, epoch floor, header CRC) and a fresh symbol table, so a
// post-truncation writer never has to reconstruct interning state.
//
// All integers are little-endian. Logical stream offsets are continuous
// across segments (header bytes included): a segment's records cover
// [base_offset + header, base_offset + file size).
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "events/event.hpp"
#include "events/journal.hpp"
#include "metadb/link.hpp"
#include "metadb/oid.hpp"

namespace damocles::events {

// --- Framing primitives ----------------------------------------------------

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
/// `seed` chains partial computations: Crc32(b, Crc32(a)) == Crc32(a+b).
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0) noexcept;

/// Record type tags. Row-stream records are < 0x10; operation records
/// carry the 0x10 bit.
enum class WalRecordType : uint8_t {
  kSymbol = 0x01,     ///< Segment-local symbol definition (id + text).
  kRow = 0x02,        ///< One journal row (symbol ids are segment-local).
  kReset = 0x03,      ///< The journal was cleared.
  kOpEvent = 0x10,    ///< ProjectServer::Submit.
  kOpCheckIn = 0x11,  ///< ProjectServer::CheckIn.
  kOpLink = 0x12,     ///< ProjectServer::RegisterLink.
  kOpBlueprint = 0x13,  ///< ProjectServer::InitializeBlueprint.
  kOpClock = 0x14,    ///< ProjectServer::AdvanceClock (absolute seconds).
  kOpPolicyPropose = 0x15,   ///< ProjectServer::PolicyPropose.
  kOpPolicyValidate = 0x16,  ///< ProjectServer::PolicyValidate.
  kOpPolicyPromote = 0x17,   ///< ProjectServer::PolicyPromote.
  kOpPolicyRollback = 0x18,  ///< ProjectServer::PolicyRollback.
};

/// True for the operation record types (the "ops" stream).
bool IsWalOpType(WalRecordType type) noexcept;

/// When appended bytes are forced to the OS / the disk.
enum class FsyncPolicy {
  /// Best-effort: records stay in the writer's buffer until it fills,
  /// a checkpoint syncs, or the writer closes. Appends are pure
  /// memcpys (no syscalls on the mutation path); a kill -9 loses the
  /// buffered tail of recent operations.
  kNone,
  kBatch,        ///< Flush + fsync at drain boundaries.
  kEveryRecord,  ///< Fsync after every append group (slowest, safest).
};

const char* FsyncPolicyName(FsyncPolicy policy) noexcept;

/// Parses "none" / "batch" / "every_record". Throws WireFormatError on
/// anything else.
FsyncPolicy ParseFsyncPolicy(std::string_view text);

// --- Operation records -----------------------------------------------------

/// One logged server operation. Which fields are meaningful depends on
/// `type`; unused fields stay default-initialized (and encode empty).
struct WalOpRecord {
  WalRecordType type = WalRecordType::kOpEvent;
  /// Dense per-server operation sequence number; recovery replays ops
  /// with op_seq greater than the checkpoint manifest's.
  uint64_t op_seq = 0;

  EventMessage event;  ///< kOpEvent.

  std::string block;    ///< kOpCheckIn.
  std::string view;     ///< kOpCheckIn.
  std::string content;  ///< kOpCheckIn.
  std::string user;     ///< kOpCheckIn.

  uint8_t link_kind = 0;   ///< kOpLink (metadb::LinkKind).
  metadb::Oid link_from;   ///< kOpLink.
  metadb::Oid link_to;     ///< kOpLink.

  std::string text;  ///< kOpBlueprint / kOpPolicyPropose (rule-file text).

  int64_t clock_seconds = 0;  ///< kOpClock (absolute simulated time).

  /// kOpPolicyValidate / kOpPolicyPromote: the PolicyStore version id
  /// the operation addressed. kOpPolicyPropose reuses `text` (proposed
  /// rule-file text), `user` (author) and `content` (commit message);
  /// replay re-derives the id from the store, so it is not encoded.
  uint64_t policy_version = 0;
};

/// Serializes the payload of an operation record (framing excluded).
std::string EncodeWalOp(const WalOpRecord& op);

/// Inverse of EncodeWalOp. Throws WireFormatError on malformed payloads.
WalOpRecord DecodeWalOp(WalRecordType type, std::string_view payload);

// --- Writer ----------------------------------------------------------------

/// Observes the durable extent of WAL files as the writer flushes them.
/// The crash-point fuzz harness records these (path, physical end
/// offset) events to pick kill points; production runs leave it unset.
class WalAppendObserver {
 public:
  virtual ~WalAppendObserver() = default;
  /// Bytes [0, end_offset) of `path` have been handed to the OS (or
  /// fsynced, per policy). Called in global append order.
  virtual void OnDurableExtent(const std::string& path,
                               uint64_t end_offset) = 0;
};

struct WalWriterOptions {
  std::string dir;      ///< WAL directory (must exist).
  std::string stream;   ///< Stream name, e.g. "ops" or "shard0".
  uint32_t shard_id = 0;
  size_t segment_bytes = 4u << 20;  ///< Roll threshold (may overshoot by
                                    ///< one append group).
  FsyncPolicy fsync = FsyncPolicy::kNone;
  /// Sampled at segment open to stamp the header's epoch floor (the
  /// sharded claim purge floor; 0 when unsharded / unset).
  std::function<uint64_t()> epoch_floor;
  WalAppendObserver* observer = nullptr;  ///< Not owned; may be null.
};

/// Appends framed records to a stream's segment files. As a JournalSink
/// it mirrors journal rows; AppendOp serves the operation stream. A
/// writer always opens a *new* segment (index = last on disk + 1, base
/// offset continuing where the last segment ends), so its segment-local
/// symbol table starts empty and can never collide with pre-existing
/// records — in particular after recovery truncated a torn tail.
class WalWriter final : public JournalSink {
 public:
  explicit WalWriter(WalWriterOptions options);
  ~WalWriter() override;

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // JournalSink: mirrors the newest row / the clear marker.
  void OnAppend(const EventJournal& journal) override;
  void OnClear(const EventJournal& journal) override;

  /// Logs one operation record (the caller fills op_seq).
  void AppendOp(const WalOpRecord& op);

  /// Rewrites the stream to mirror the journal's full current
  /// contents: one kReset record (recovery drops everything before it)
  /// followed by every row. The heal path uses this on freshly
  /// reopened writers, because the fail-soft sink may have dropped
  /// rows while the WAL was failing — after the mirror, the stream's
  /// end offset covers the complete in-memory journal again. Throws
  /// WalIoError on failure.
  void MirrorJournal(const EventJournal& journal);

  // Zero-copy logging for the hot server operations: encodes straight
  // from the caller's fields into the reused scratch buffer, skipping
  // the WalOpRecord (and its string copies) entirely. Byte-identical to
  // AppendOp with the equivalent record.
  void AppendCheckInOp(uint64_t op_seq, std::string_view block,
                       std::string_view view, std::string_view content,
                       std::string_view user);
  void AppendEventOp(uint64_t op_seq, const EventMessage& event);
  void AppendLinkOp(uint64_t op_seq, uint8_t link_kind,
                    const metadb::Oid& from, const metadb::Oid& to);
  void AppendBlueprintOp(uint64_t op_seq, std::string_view text);
  void AppendClockOp(uint64_t op_seq, int64_t clock_seconds);
  void AppendPolicyProposeOp(uint64_t op_seq, std::string_view text,
                             std::string_view author,
                             std::string_view message);
  /// kOpPolicyValidate or kOpPolicyPromote (both carry one version id).
  void AppendPolicyVersionOp(WalRecordType type, uint64_t op_seq,
                             uint64_t policy_version);
  void AppendPolicyRollbackOp(uint64_t op_seq);

  /// Hands buffered bytes to the OS and notifies the observer. Throws
  /// WalIoError on write failure; already-written bytes are consumed
  /// from the buffer first, so a retry continues where the last attempt
  /// stopped instead of duplicating bytes mid-stream.
  void Flush();

  /// Flush + fsync (durable against power loss). Throws WalIoError on
  /// failure. After a failed fsync the kernel may have dropped the
  /// dirty pages, so callers must treat the unflushed tail as lost and
  /// heal by re-checkpointing, not by retrying the fsync.
  void Sync();

  /// Empty while every mirrored row reached the stream. The JournalSink
  /// paths (OnAppend / OnClear) are fail-soft — they must not throw
  /// through engine worker threads — so the first I/O failure is
  /// recorded here and later rows are dropped. The row mirror is then
  /// incomplete; ProjectServer::WalReopen() rebuilds it by truncating
  /// to the CRC-valid prefix and taking a fresh checkpoint.
  const std::string& failure() const noexcept { return failure_; }
  bool ok() const noexcept { return failure_.empty(); }

  /// Logical end offset of the stream (base + bytes in the open segment).
  uint64_t logical_end() const noexcept { return base_offset_ + file_bytes_; }

  /// End offset of the newest kReset record this writer appended (0 when
  /// it appended none). Recovery drops every row before the last reset,
  /// so segment retention may prune row-stream segments wholly below
  /// this floor; 0 conservatively disables pruning for the stream.
  uint64_t last_reset_end() const noexcept { return last_reset_end_; }

  /// Frames committed to the buffer so far (flushed or not). Lets the
  /// retry path tell "append failed before framing — re-append" from
  /// "frame is buffered, the flush failed — re-drive the I/O only".
  uint64_t frames_appended() const noexcept { return frames_appended_; }

  const std::string& stream() const noexcept { return options_.stream; }
  uint64_t segment_index() const noexcept { return segment_index_; }

 private:
  void OpenSegment();
  void CloseSegment();
  /// Rolls to the next segment when the threshold is reached. Called
  /// once per append group so a group's symbol records and its row land
  /// in the same segment.
  void MaybeRoll();
  void WriteRecord(WalRecordType type, std::string_view payload);
  /// Opens a frame in the write buffer (length placeholder + type byte)
  /// and returns its start offset. The payload is then appended
  /// directly to the buffer; nothing may flush or start another record
  /// until the matching EndRecord.
  size_t BeginRecord(WalRecordType type);
  /// Back-patches the length, CRCs type + payload in place, appends the
  /// trailer and runs the spill check.
  void EndRecord(size_t mark);
  void WriteRaw(const void* data, size_t size);
  /// Evaluates the "wal.append" failpoint; throws WalIoError on a hit.
  void CheckAppendFailpoint();
  /// Throwing body of OnAppend (the override wraps it fail-soft).
  void AppendRowOrThrow(const EventJournal& journal);
  /// Frames one journal row (symbols first). No failpoint check, no
  /// append-group end — callers own both.
  void AppendRowAt(const EventJournal& journal, size_t index);
  /// Returns the segment-local id for `text`, emitting a kSymbol record
  /// on first sight within the current segment.
  uint32_t InternStreamSymbol(const std::string& text);
  /// InternStreamSymbol via a dense journal-id cache, so steady-state
  /// row mirroring never hashes symbol text.
  uint32_t InternJournalSymbol(const EventJournal& journal, SymbolId id);
  void EndAppendGroup();

  WalWriterOptions options_;
  int fd_ = -1;
  /// Appended frames not yet handed to the OS. Raw fd + own buffer
  /// instead of stdio: appends are plain memcpys with no per-call
  /// stream locking, and every flush point is policy-driven.
  std::string write_buffer_;
  std::string path_;
  uint64_t segment_index_ = 0;
  uint64_t base_offset_ = 0;
  uint64_t file_bytes_ = 0;
  bool dirty_ = false;
  uint64_t frames_appended_ = 0;
  uint64_t last_reset_end_ = 0;
  std::string failure_;  ///< First fail-soft sink failure; see failure().
  std::unordered_map<std::string, uint32_t> stream_symbols_;
  /// Journal SymbolId -> segment-local id; invalidated with
  /// stream_symbols_ at segment open and when the journal resets its
  /// own symbol table (OnClear).
  std::vector<uint32_t> journal_symbol_cache_;
  std::string payload_scratch_;  ///< Reused row/op encode buffer.
};

// --- Reader ----------------------------------------------------------------

/// Per-segment inspection result.
struct WalSegmentInfo {
  std::string path;
  uint64_t index = 0;
  uint32_t version = 0;
  uint32_t shard_id = 0;
  uint64_t base_offset = 0;
  uint64_t epoch_floor = 0;
  uint64_t file_bytes = 0;   ///< Physical size on disk.
  uint64_t valid_bytes = 0;  ///< Bytes covered by intact records (header
                             ///< included).
  size_t records = 0;
  size_t symbols = 0;
  bool header_valid = false;
  bool torn = false;         ///< Scan stopped inside this segment.
  std::string error;         ///< Human-readable reason when torn/invalid.
};

/// One decoded journal row with the logical offset just past its frame.
struct WalRestoredRow {
  EventMessage event;
  uint64_t end_offset = 0;
};

/// One decoded operation with the logical offset just past its frame.
struct WalOpEntry {
  WalOpRecord op;
  uint64_t end_offset = 0;
};

/// Everything recovered from one stream's segment chain, scanned in
/// logical order and stopped at the first torn or corrupt record.
struct WalStreamData {
  std::vector<WalSegmentInfo> segments;
  uint64_t valid_end = 0;  ///< Logical offset of the last intact record.
  bool torn = false;
  std::string error;
  std::vector<WalRestoredRow> rows;
  std::vector<uint64_t> resets;  ///< End offsets of kReset records.
  std::vector<WalOpEntry> ops;
};

/// File name for segment `index` of `stream`: "<stream>-000042.wal".
std::string WalSegmentFileName(const std::string& stream, uint64_t index);

/// Stream names present in `dir`, sorted. A missing directory yields {}.
std::vector<std::string> ListWalStreams(const std::string& dir);

/// Scans a stream's segments in index order, validating every frame.
WalStreamData ReadWalStream(const std::string& dir, const std::string& stream);

/// Physically truncates a stream to `logical_offset`: later segments are
/// deleted, the segment containing the offset is resized (and deleted
/// when the cut falls inside its header). Writers opened afterwards
/// continue at exactly `logical_offset` in a fresh segment. When
/// `failed_removals` is given, fs::remove failures are counted into it
/// instead of being silently ignored (they leak disk until the next
/// sweep; the server surfaces the count through wal-status).
void TruncateWalStream(const std::string& dir, const std::string& stream,
                       uint64_t logical_offset,
                       size_t* failed_removals = nullptr);

/// Outcome of PruneWalSegments / RemoveOrphanedWalPrefix.
struct WalPruneStats {
  size_t segments_removed = 0;
  size_t failed_removals = 0;   ///< fs::remove errors (disk still leaked).
  uint64_t bytes_removed = 0;   ///< Physical bytes reclaimed.
};

/// WAL segment retention: removes segments of `stream` that lie wholly
/// below `floor_offset` (the committed checkpoint's logical offset for
/// this stream — recovery never reads below it), oldest first, keeping
/// the newest `retain_segments` of the prunable prefix as margin. The
/// newest segment of a stream is never pruned (the writer's
/// continuation point lives there), and removal is strictly ascending
/// by segment index so a crash mid-prune leaves a removed prefix plus a
/// contiguous remainder, which ReadWalStream absorbs like any pruned
/// prefix. A negative `retain_segments` disables pruning entirely.
WalPruneStats PruneWalSegments(const std::string& dir,
                               const std::string& stream,
                               uint64_t floor_offset, int retain_segments);

/// Garbage-collects segments stranded below a base-offset discontinuity
/// (a prune interrupted before its directory update fully persisted):
/// everything below the LAST forward gap in the segment chain is
/// removed, matching what ReadWalStream's gap handling already refuses
/// to read. No-op on contiguous streams.
WalPruneStats RemoveOrphanedWalPrefix(const std::string& dir,
                                      const std::string& stream);

/// Multi-line human-readable report over every stream in `dir` (segment
/// headers, record counts, CRC verification, truncation points; torn
/// segments include the physical byte offset where the tail begins).
/// The wal-inspect CLI prints exactly this. When `any_torn` is given it
/// is set to whether any stream failed CRC verification, so callers get
/// the verdict from the same single scan that built the report.
std::string FormatWalInspection(const std::string& dir,
                                bool* any_torn = nullptr);

/// Machine-readable sibling of FormatWalInspection: one JSON object
/// over the same single scan ({"dir", "torn", "streams": [{"name",
/// "valid_end", "torn", "torn_offset", "rows", "resets", "ops",
/// "segments": [...]}, ...]}). Segment entries carry the header fields
/// (index, version, shard, base offset, epoch floor), the byte extents
/// (file vs CRC-valid) and record/symbol counts; a torn segment's
/// `torn_offset` is the physical byte offset where the tail begins.
/// The wal_inspect CLI prints exactly this under --json.
std::string FormatWalInspectionJson(const std::string& dir,
                                    bool* any_torn = nullptr);

}  // namespace damocles::events
